//! Property-based tests of the core invariants, on random digraph
//! queries.

use cq_approx::prelude::*;
use cqapx_cq::eval::naive::eval_naive;
use cqapx_structures::{
    core_of, hom_exists, order, partition::for_each_partition, quotient::quotient_pointed,
};
use proptest::prelude::*;
use std::ops::ControlFlow;

/// Strategy: a random small digraph (as edge list over n nodes) whose
/// every node is used (resampled via active-domain restriction).
fn digraph_structure(max_n: usize) -> impl Strategy<Value = Structure> {
    (2..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 1..=(2 * n))
            .prop_map(move |edges| {
                let s = Structure::digraph(n, &edges);
                let (s, _) = s.restrict_to_adom();
                s
            })
            .prop_filter("needs at least one tuple", |s| !s.is_relations_empty())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Quotient projections are homomorphisms; hom-composition works.
    #[test]
    fn quotients_are_homomorphic_images(s in digraph_structure(6)) {
        let p = Pointed::boolean(s);
        let n = p.structure.universe_size();
        for_each_partition(n, |part| {
            let (q, h) = quotient_pointed(&p, part);
            assert!(h.verify(&p.structure, &q.structure));
            // T_Q → quotient, always.
            assert!(hom_exists(&p, &q));
            ControlFlow::Continue(())
        });
    }

    /// The core is hom-equivalent to the original and idempotent.
    #[test]
    fn core_equivalent_and_idempotent(s in digraph_structure(7)) {
        let p = Pointed::boolean(s);
        let r = core_of(&p);
        prop_assert!(hom_exists(&p, &r.core));
        prop_assert!(hom_exists(&r.core, &p));
        let r2 = core_of(&r.core);
        prop_assert_eq!(r2.iterations, 0);
    }

    /// Containment duality: Q ⊆ Q' iff the canonical database of Q
    /// satisfies Q' at x̄ — here specialized to Boolean queries:
    /// Q ⊆ Q' iff Q'(T_Q) is true.
    #[test]
    fn containment_matches_canonical_database(
        s1 in digraph_structure(5),
        s2 in digraph_structure(5),
    ) {
        let q1 = query_from_tableau(&Pointed::boolean(s1));
        let q2 = query_from_tableau(&Pointed::boolean(s2));
        let canonical_of_q1 = tableau_of(&q1).structure;
        let q2_true_on_canon = !eval_naive(&q2, &canonical_of_q1).is_empty();
        prop_assert_eq!(contained_in(&q1, &q2), q2_true_on_canon);
    }

    /// Approximations: soundness + class membership + →-minimality among
    /// the in-class quotients.
    #[test]
    fn approximation_contract(s in digraph_structure(5)) {
        let q = query_from_tableau(&Pointed::boolean(s));
        let opts = ApproxOptions::default();
        let rep = all_approximations(&q, &TwK(1), &opts);
        prop_assert!(rep.complete);
        prop_assert!(!rep.approximations.is_empty());
        let tq = tableau_of(&q);
        for a in &rep.approximations {
            prop_assert!(contained_in(a, &q));
            prop_assert!(TwK(1).contains_tableau(&tableau_of(a)));
            // No in-class quotient strictly between T_Q and the
            // approximation.
            let ta = tableau_of(a);
            let n = tq.structure.universe_size();
            for_each_partition(n, |part| {
                let (cand, _) = quotient_pointed(&tq, part);
                if TwK(1).contains_tableau(&cand) {
                    let strictly_between = order::hom_exists(&cand, &ta)
                        && !order::hom_exists(&ta, &cand);
                    assert!(!strictly_between, "quotient strictly between");
                }
                ControlFlow::Continue(())
            });
        }
    }

    /// Yannakakis agrees with naive evaluation on random acyclic queries
    /// (generated as random forests of atoms) and random databases.
    #[test]
    fn yannakakis_equals_naive(
        s in digraph_structure(5),
        db in digraph_structure(8),
    ) {
        let q = query_from_tableau(&Pointed::boolean(s));
        if let Ok(plan) = AcyclicPlan::compile(&q) {
            let exact = eval_naive(&q, &db);
            prop_assert_eq!(plan.eval(&db), exact);
        }
    }

    /// Differential evaluation: naive, Yannakakis (when acyclic), and
    /// the engine's chosen plan return identical answer sets — Boolean
    /// and unary-head variants.
    #[test]
    fn engine_plan_matches_naive_and_yannakakis(
        s in digraph_structure(5),
        db in digraph_structure(7),
    ) {
        use cqapx_engine::{Engine, EngineConfig, Request};

        // Boolean and unary-head variants of the same random body.
        let queries = [
            query_from_tableau(&Pointed::boolean(s.clone())),
            query_from_tableau(&Pointed::new(s, vec![0])),
        ];
        let engine = Engine::new(EngineConfig::default());
        let d = engine.register_database("db", db.clone());
        for (i, q) in queries.into_iter().enumerate() {
            let exact = eval_naive(&q, &db);
            if let Ok(plan) = AcyclicPlan::compile(&q) {
                prop_assert_eq!(plan.eval(&db), exact.clone());
            }
            let qid = engine.prepare_query(format!("q{i}"), q);
            let r = engine.execute(&Request::new(qid, d));
            prop_assert_eq!(r.answers, exact);
        }
    }

    /// Differential evaluation under a forced approximation sandwich:
    /// exact mode must still produce the exact answers, and certain-only
    /// mode a sound subset.
    #[test]
    fn engine_sandwich_is_sound_and_exact_on_demand(
        s in digraph_structure(4),
        db in digraph_structure(7),
    ) {
        use cqapx_engine::{Engine, EngineConfig, EvalMode, Request};

        let q = query_from_tableau(&Pointed::boolean(s));
        let exact = eval_naive(&q, &db);
        let engine = Engine::new(EngineConfig {
            naive_cost_budget: 0.0, // every cyclic query goes sandwich
            ..EngineConfig::default()
        });
        let d = engine.register_database("db", db.clone());
        let qid = engine.prepare_query("q", q);
        let r = engine.execute(&Request::new(qid, d));
        prop_assert_eq!(r.answers, exact.clone());
        let certain = engine.execute(&Request {
            query: qid,
            db: d,
            mode: EvalMode::CertainOnly,
            timeout: None,
        });
        for a in &certain.answers {
            prop_assert!(exact.contains(a), "certain answer {:?} not in Q(D)", a);
        }
    }

    /// Dense-domain dictionary encoding is invisible: evaluation with
    /// direct-addressed join indexes, with the hashed fallback forced,
    /// and naive evaluation all agree — cold and warm, Boolean and
    /// unary heads, sequential and parallel thread budgets.
    #[test]
    fn dense_encoding_agrees_with_hashed_and_naive(
        s in digraph_structure(5),
        db in digraph_structure(8),
    ) {
        use cqapx_cq::eval::set_direct_index_enabled;
        use cqapx_engine::{Engine, EngineConfig, Request};

        // Restore the default (direct indexes on) however the test exits.
        struct KnobReset;
        impl Drop for KnobReset {
            fn drop(&mut self) {
                set_direct_index_enabled(true);
            }
        }
        let _reset = KnobReset;

        let queries = [
            query_from_tableau(&Pointed::boolean(s.clone())),
            query_from_tableau(&Pointed::new(s, vec![0])),
        ];
        let exact: Vec<_> = queries.iter().map(|q| eval_naive(q, &db)).collect();
        for threads in [1usize, 2] {
            for direct in [false, true] {
                set_direct_index_enabled(direct);
                let engine = Engine::new(EngineConfig {
                    threads,
                    ..EngineConfig::default()
                });
                let d = engine.register_database("db", db.clone());
                for (i, q) in queries.iter().enumerate() {
                    let qid = engine.prepare_query(format!("q{i}"), q.clone());
                    let cold = engine.execute(&Request::new(qid, d));
                    let warm = engine.execute(&Request::new(qid, d));
                    prop_assert_eq!(&cold.answers, &exact[i],
                        "cold, direct={} threads={}", direct, threads);
                    prop_assert_eq!(&warm.answers, &exact[i],
                        "warm, direct={} threads={}", direct, threads);
                }
            }
        }
    }

    /// A starvation-level cache budget only costs rebuilds, never
    /// answers: every response matches naive evaluation, resident bytes
    /// stay bounded, and the materialization traffic (hits + misses) of
    /// a parallel schedule never exceeds the sequential rebuild count.
    /// (Exact equality does not hold under starvation: a concurrent
    /// request can coalesce onto a still-in-flight or not-yet-evicted
    /// source entry and skip that source's per-part lookups, whereas
    /// the sequential engine re-misses after every synchronous eviction
    /// and redoes them — coalescing can only remove calls, never add.)
    #[test]
    fn tiny_cache_budget_is_correct_and_schedule_independent(
        s in digraph_structure(5),
        db in digraph_structure(8),
    ) {
        use cqapx_engine::{Engine, EngineConfig, Request};

        let q = query_from_tableau(&Pointed::boolean(s));
        let exact = eval_naive(&q, &db);
        let mut outcomes = Vec::new();
        for threads in [1usize, 4] {
            let engine = Engine::new(EngineConfig {
                threads,
                mat_cache_budget_bytes: Some(1), // every landing evicts
                approx_cache_budget_bytes: Some(1),
                ..EngineConfig::default()
            });
            let d = engine.register_database("db", db.clone());
            let qid = engine.prepare_query("q", q.clone());
            for _ in 0..3 {
                let r = engine.execute(&Request::new(qid, d));
                prop_assert_eq!(&r.answers, &exact, "threads={}", threads);
            }
            let snap = engine.snapshot();
            prop_assert!(snap.mat_cache_bytes_by_db["db"] <= 1);
            let stats = engine.stats();
            outcomes.push(stats.mat_hits + stats.mat_misses);
        }
        prop_assert!(
            outcomes[1] <= outcomes[0],
            "parallel traffic {} exceeds sequential rebuild count {}",
            outcomes[1],
            outcomes[0]
        );
    }

    /// Theorem 5.1 consistency: the polynomial classifier predicts the
    /// computed acyclic approximations.
    #[test]
    fn trichotomy_consistent(s in digraph_structure(5)) {
        let q = query_from_tableau(&Pointed::boolean(s));
        let rep = all_approximations(&q, &TwK(1), &ApproxOptions::default());
        match classify_boolean_graph_query(&q) {
            BooleanTrichotomy::NotBipartite => {
                prop_assert_eq!(rep.approximations.len(), 1);
                prop_assert_eq!(rep.approximations[0].atom_count(), 1);
            }
            BooleanTrichotomy::BipartiteUnbalanced => {
                prop_assert_eq!(rep.approximations.len(), 1);
                let k2 = parse_cq("Q() :- E(x,y), E(y,x)").unwrap();
                prop_assert!(equivalent(&rep.approximations[0], &k2));
            }
            BooleanTrichotomy::BipartiteBalanced => {
                for a in &rep.approximations {
                    for atom in a.atoms() {
                        prop_assert_ne!(atom.args[0], atom.args[1]);
                    }
                }
            }
        }
    }
}
