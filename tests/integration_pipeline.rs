//! End-to-end integration: parse → approximate → compile → evaluate,
//! checking the semantic contracts across all crates.

use cq_approx::prelude::*;
use cqapx_cq::eval::naive::eval_naive as naive;
use cqapx_graphs::generators;

/// Soundness of the whole pipeline on real databases: for every database,
/// the approximation's answers are a subset of the exact answers.
#[test]
fn approximation_answers_are_subset_on_random_databases() {
    let queries = [
        "Q() :- E(x,y), E(y,z), E(z,x)",
        "Q(x) :- E(x,y), E(y,z), E(z,x), E(x,w)",
        "Q() :- E(a,b), E(b,c), E(c,d), E(d,a)",
        "Q(a) :- E(a,b), E(b,c), E(c,a), E(a,d), E(d,e), E(e,a)",
    ];
    for qs in queries {
        let q = parse_cq(qs).unwrap();
        let rep = all_approximations(&q, &TwK(1), &ApproxOptions::default());
        assert!(!rep.approximations.is_empty(), "{qs}");
        for a in &rep.approximations {
            let plan = AcyclicPlan::compile(a)
                .unwrap_or_else(|_| panic!("TW(1) approximation {a} must be acyclic"));
            for seed in 0..5 {
                let d = generators::random_digraph(14, 0.18, seed).to_structure();
                let exact = naive(&q, &d);
                let approx = plan.eval(&d);
                assert!(
                    approx.iter().all(|t| exact.contains(t)),
                    "soundness of {a} vs {qs} on seed {seed}"
                );
                // Cross-check the two evaluators on the approximation.
                assert_eq!(approx, naive(a, &d), "evaluators agree on {a}");
            }
        }
    }
}

/// The static guarantees: approximations are in-class, contained, minimal
/// among each other (pairwise incomparable).
#[test]
fn approximations_are_pairwise_incomparable() {
    let q = parse_cq("Q() :- R(x1,x2,x3), R(x3,x4,x5), R(x5,x6,x1)").unwrap();
    let rep = all_approximations(&q, &Acyclic, &ApproxOptions::default());
    assert_eq!(rep.approximations.len(), 3);
    for (i, a) in rep.approximations.iter().enumerate() {
        assert!(contained_in(a, &q));
        for (j, b) in rep.approximations.iter().enumerate() {
            if i != j {
                assert!(
                    !contained_in(a, b),
                    "approximations must be ⊆-incomparable: {a} vs {b}"
                );
            }
        }
    }
}

/// `is_approximation` agrees with `all_approximations` on a suite.
#[test]
fn identification_agrees_with_enumeration() {
    let suite = [
        "Q() :- E(x,y), E(y,z), E(z,x)",
        "Q() :- E(a,b), E(b,c), E(c,d), E(d,a)",
        "Q(x) :- E(x,y), E(y,x), E(y,z), E(z,y), E(z,x), E(x,z)",
    ];
    let opts = ApproxOptions::default();
    for qs in suite {
        let q = parse_cq(qs).unwrap();
        let rep = all_approximations(&q, &TwK(1), &opts);
        for a in &rep.approximations {
            assert_eq!(
                is_approximation(&q, a, &TwK(1), &opts),
                Some(true),
                "{a} must identify as an approximation of {qs}"
            );
        }
        // The trivial query is an approximation only when enumeration says
        // so.
        let trivial = cqapx_core::trivial_query(q.vocabulary(), q.arity());
        let is_in = rep.approximations.iter().any(|a| equivalent(a, &trivial));
        assert_eq!(
            is_approximation(&q, &trivial, &TwK(1), &opts),
            Some(is_in),
            "trivial query status for {qs}"
        );
    }
}

/// Minimization commutes with approximation: approximating the minimized
/// query yields the same approximations.
#[test]
fn approximation_invariant_under_minimization() {
    // A redundant query (C3 plus a foldable pendant path).
    let q = parse_cq("Q() :- E(x,y), E(y,z), E(z,x), E(x,w), E(x,v)").unwrap();
    let m = minimize(&q);
    assert!(m.atom_count() < q.atom_count());
    let opts = ApproxOptions::default();
    let rep_q = all_approximations(&q, &TwK(1), &opts);
    let rep_m = all_approximations(&m, &TwK(1), &opts);
    assert_eq!(rep_q.approximations.len(), rep_m.approximations.len());
    for a in &rep_q.approximations {
        assert!(
            rep_m.approximations.iter().any(|b| equivalent(a, b)),
            "approximation sets must agree up to equivalence"
        );
    }
}

/// The greedy anytime mode is always sound and in-class.
#[test]
fn greedy_mode_soundness_sweep() {
    for seed in 0..8u64 {
        let g = generators::random_digraph(7, 0.35, seed);
        let s = g.to_structure();
        if s.is_relations_empty() {
            continue;
        }
        let (s, _) = s.restrict_to_adom();
        let q = query_from_tableau(&Pointed::boolean(s));
        for class in [&TwK(1) as &dyn QueryClass, &Acyclic] {
            let a = one_approximation(&q, class, 16);
            assert!(contained_in(&a, &q), "seed {seed}");
            assert!(class.contains_tableau(&tableau_of(&a)), "seed {seed}");
        }
    }
}
