//! Integration tests crossing the gadget crate with the core algorithms:
//! the paper's lower-bound objects, exercised through the public API.

use cq_approx::gadgets::{decision, dp, paper_examples, prop44};
use cq_approx::prelude::*;
use cqapx_graphs::{balance, UGraph};

/// Prop 4.4 pipeline: the fold queries are sound in-class under-
/// approximations of Q_n, pairwise non-equivalent, and minimized.
#[test]
fn prop44_folds_are_sound_candidates() {
    let (gn, _) = prop44::g_n(2);
    let qn = query_from_tableau(&Pointed::boolean(gn.to_structure()));
    let words = prop44::all_words(2);
    let mut folds = Vec::new();
    for w in &words {
        let fq = query_from_tableau(&Pointed::boolean(prop44::g_n_s(w).to_structure()));
        assert!(contained_in(&fq, &qn), "fold ⊆ Q_n");
        assert!(TwK(1).contains_tableau(&tableau_of(&fq)));
        assert!(cqapx_cq::is_minimized(&fq), "folds are cores");
        folds.push(fq);
    }
    for (i, a) in folds.iter().enumerate() {
        for b in folds.iter().skip(i + 1) {
            assert!(!equivalent(a, b), "folds pairwise non-equivalent");
        }
    }
}

/// The Q* folds are acyclic approximations of Q* in the digraph sense
/// (Claim 8.4): verified through the decision procedure on the quotient
/// witness space being unable to beat them — spot-checked via
/// incomparability + hom checks (the full claim needs the appendix
/// argument; here we check its observable consequences).
#[test]
fn qstar_fold_observable_consequences() {
    let q = dp::q_star();
    let qs = q.g.to_structure();
    for i in 1..=4 {
        let ti = dp::t_i(i);
        let ts = ti.g.to_structure();
        // Q* → T_i and T_i is acyclic.
        assert!(HomProblem::new(&qs, &ts).exists());
        assert!(UGraph::underlying(&ti.g).is_forest());
        // The other folds cannot sit between: T_j → T_i fails for j ≠ i.
        for j in 1..=4 {
            if j != i {
                let tj = dp::t_i(j).g.to_structure();
                assert!(!HomProblem::new(&tj, &ts).exists());
            }
        }
    }
}

/// The decision procedures agree with the enumeration-based identifier on
/// graph instances.
#[test]
fn decision_procedures_cross_check() {
    use cqapx_graphs::Digraph;
    // (G, T) pairs with known verdicts.
    let c4 = Digraph::cycle(4);
    let k2 = Digraph::from_edges(2, &[(0, 1), (1, 0)]);
    let lp = Digraph::from_edges(1, &[(0, 0)]);
    assert_eq!(
        decision::graph_acyclic_approximation(&c4, &k2, 1 << 20),
        Some(true)
    );
    assert_eq!(
        decision::graph_acyclic_approximation(&c4, &lp, 1 << 20),
        Some(false)
    );
    // Against is_approximation on the query side.
    let q = query_from_tableau(&Pointed::boolean(c4.to_structure()));
    let k2q = query_from_tableau(&Pointed::boolean(k2.to_structure()));
    let lpq = query_from_tableau(&Pointed::boolean(lp.to_structure()));
    let opts = ApproxOptions::default();
    assert_eq!(is_approximation(&q, &k2q, &TwK(1), &opts), Some(true));
    assert_eq!(is_approximation(&q, &lpq, &TwK(1), &opts), Some(false));
}

/// Exact-4-colorability instances drive the reduction's source side.
#[test]
fn exact_colorability_suite() {
    use cqapx_graphs::generators;
    // Mycielski-ish cases: odd wheels are exactly 4-chromatic; even
    // wheels exactly 3-chromatic.
    assert!(decision::exact_four_colorability(&generators::wheel(5)));
    assert!(decision::exact_four_colorability(&generators::wheel(7)));
    assert!(!decision::exact_four_colorability(&generators::wheel(6)));
    assert!(decision::exact_k_colorability(&generators::wheel(6), 3));
}

/// The paper's intro examples all behave as stated, via the public API.
#[test]
fn intro_examples_end_to_end() {
    let q1 = paper_examples::intro_q1();
    let rep = all_approximations(&q1, &TwK(1), &ApproxOptions::default());
    assert_eq!(rep.approximations.len(), 1);
    assert!(equivalent(
        &rep.approximations[0],
        &paper_examples::intro_q1_approx()
    ));

    let q2 = paper_examples::intro_q2();
    let rep = all_approximations(&q2, &TwK(1), &ApproxOptions::default());
    assert_eq!(rep.approximations.len(), 1);
    assert!(equivalent(
        &rep.approximations[0],
        &paper_examples::intro_q2_approx()
    ));

    let q66 = paper_examples::example_66();
    let rep = all_approximations(&q66, &Acyclic, &ApproxOptions::default());
    let expected = paper_examples::example_66_approxes();
    assert_eq!(rep.approximations.len(), 3);
    for e in &expected {
        assert!(rep.approximations.iter().any(|a| equivalent(a, e)));
    }
}

/// Levels/heights of the appendix gadgets match the figures.
#[test]
fn gadget_levels_match_figures() {
    assert_eq!(balance::height(&dp::q_star().g), 25);
    for i in 1..=4 {
        assert_eq!(balance::height(&dp::t_i(i).g), 25);
    }
    assert_eq!(balance::height(&dp::t_5().g), 25);
    assert_eq!(balance::height(&dp::big_t().g), 25);
    let (d, _) = prop44::digraph_d();
    assert_eq!(balance::height(&d), 9);
}
