//! Quickstart: approximate a cyclic query by an acyclic one and evaluate
//! both on a small database.
//!
//! Run with `cargo run --example quickstart`.

use cq_approx::prelude::*;

fn main() {
    // The paper's introduction, query Q2: two 3-paths with two cross
    // edges — cyclic, so combined complexity |D|^O(|Q|) in general.
    let q =
        parse_cq("Q() :- E(x,y), E(y,z), E(z,u), E(x1,y1), E(y1,z1), E(z1,u1), E(x,z1), E(y,u1)")
            .unwrap();
    println!("query Q:    {q}");
    println!(
        "  cyclic:   {}",
        !cq_approx::cq::classes::is_acyclic_query(&q)
    );

    // Classify per Theorem 5.1: bipartite + balanced means nontrivial
    // acyclic approximations exist.
    println!("  class:    {:?}", classify_boolean_graph_query(&q));

    // Compute all acyclic (TW(1)) approximations exactly.
    let rep = all_approximations(&q, &TwK(1), &ApproxOptions::default());
    println!(
        "  searched {} quotients, {} candidates, complete = {}",
        rep.partitions, rep.candidates, rep.complete
    );
    for a in &rep.approximations {
        println!("approximation: {a}");
    }
    let q_prime = &rep.approximations[0];
    assert!(contained_in(q_prime, &q), "approximations are sound");

    // Evaluate both on a database: a long directed path. The original
    // query is FALSE here (no cross edges), the approximation is TRUE —
    // and correct whenever it says true on databases where they agree.
    let d = Structure::digraph(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
    let plan = AcyclicPlan::compile(q_prime).expect("approximation is acyclic");
    println!("\ndatabase: directed path with 6 nodes");
    println!("  Q' (Yannakakis): {}", plan.eval_boolean(&d));
    println!("  Q  (naive):      {}", !eval_naive(&q, &d).is_empty());

    // The price of the approximation is possible incompleteness: on the
    // canonical database of Q (its own tableau), Q is true but the
    // strictly-contained Q' is not — Q' never lies, it only abstains.
    let t = tableau_of(&q);
    let d2 = t.structure.clone();
    println!("\ndatabase: the tableau of Q itself (canonical database)");
    println!(
        "  Q' (Yannakakis): {}  <- may miss answers…",
        plan.eval_boolean(&d2)
    );
    println!(
        "  Q  (naive):      {}   <- …that the exact query has",
        !eval_naive(&q, &d2).is_empty()
    );
    assert!(
        !plan.eval_boolean(&d2) || !eval_naive(&q, &d2).is_empty(),
        "soundness: whenever Q' answers true, so does Q"
    );
}
