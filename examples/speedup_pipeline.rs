//! The paper's motivating pipeline, end to end: take an expensive cyclic
//! query, compute its acyclic approximation **once** (static analysis),
//! then answer a stream of databases with Yannakakis instead of the
//! backtracking join — trading completeness for guaranteed-correct
//! answers and `O(|D| · |Q'|)` evaluation.
//!
//! Run with `cargo run --release --example speedup_pipeline`.

use cq_approx::prelude::*;
use cqapx_graphs::generators;
use std::time::Instant;

fn main() {
    // A "brutal" cyclic pattern: a 4-clique of symmetric edges with a
    // pendant path — treewidth 3.
    let q = parse_cq(
        "Q(p) :- E(a,b), E(b,a), E(a,c), E(c,a), E(a,d), E(d,a), \
                 E(b,c), E(c,b), E(b,d), E(d,b), E(c,d), E(d,c), \
                 E(a,p), E(p,p2), E(p2,p3)",
    )
    .unwrap();
    println!("Q = {q}");
    println!("treewidth(Q) = {}", cq_approx::cq::treewidth_of_query(&q));

    // Static step: one TW(1)-approximation (greedy anytime mode — exact
    // enumeration over 7 variables also works, this is the fast path).
    let t0 = Instant::now();
    let q_prime = one_approximation(&q, &TwK(1), 64);
    println!(
        "Q' = {q_prime}   (found in {:.2?}, sound: {})",
        t0.elapsed(),
        contained_in(&q_prime, &q)
    );

    let plan = AcyclicPlan::compile(&q_prime).expect("acyclic");

    // Dynamic step: evaluate on growing random databases.
    println!(
        "\n{:>8} {:>14} {:>14} {:>9} {:>9}",
        "|D| nodes", "naive Q", "Yannakakis Q'", "ans Q", "ans Q'"
    );
    for n in [50usize, 100, 200, 400] {
        let d = generators::random_digraph(n, 8.0 / n as f64, 42).to_structure();
        let t0 = Instant::now();
        let full = eval_naive(&q, &d);
        let t_naive = t0.elapsed();
        let t0 = Instant::now();
        let approx = plan.eval(&d);
        let t_yann = t0.elapsed();
        // Soundness on real data: approximate answers ⊆ exact answers.
        assert!(approx.iter().all(|a| full.contains(a)));
        println!(
            "{:>8} {:>14.2?} {:>14.2?} {:>9} {:>9}",
            n,
            t_naive,
            t_yann,
            full.len(),
            approx.len()
        );
    }
    println!("\nEvery tuple the approximation returns is a correct answer of Q.");
}
