//! Serving CQs with `cqapx-engine`: catalog, planner, approximation
//! cache, and a parallel batch — the whole subsystem in one tour.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example engine_serving
//! ```

use cq_approx::prelude::*;
use cqapx_engine::{ApproxClassChoice, EngineConfig};

fn main() {
    // An engine with a deliberately small naive budget, so the cyclic
    // query below is forced onto the approximation sandwich and we can
    // watch the cache amortize the expensive search.
    let config = EngineConfig {
        naive_cost_budget: 1e4,
        approx_class: ApproxClassChoice::TwK(1),
        ..EngineConfig::default()
    };
    let engine = Engine::new(config);

    // ── Catalog: two databases with different statistics ─────────────
    let path = Structure::digraph(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
    let mut dense_edges: Vec<(u32, u32)> = Vec::new();
    for u in 0..40u32 {
        for v in 0..40u32 {
            if u != v && (u * 7 + v * 3) % 5 != 0 {
                dense_edges.push((u, v));
            }
        }
    }
    let dense = Structure::digraph(40, &dense_edges);
    let db_path = engine.register_database("path6", path);
    let db_dense = engine.register_database("dense40", dense);

    // ── Prepared queries ─────────────────────────────────────────────
    // Acyclic: the planner always picks Yannakakis.
    let two_hop = engine.prepare_query("two_hop", parse_cq("Q(x, z) :- E(x, y), E(y, z)").unwrap());
    // Cyclic: naive on the small path database, sandwich on the dense one.
    let triangle = engine.prepare_query(
        "triangle_members",
        parse_cq("Q(x) :- E(x, y), E(y, z), E(z, x)").unwrap(),
    );

    // ── Single requests: watch the plans differ per database ─────────
    // Certain-only mode: sandwich requests serve the approximation's
    // guaranteed answers immediately (exact mode would run the full
    // join instead and only fall back to the approximation on timeout).
    let certain = |q, db| Request {
        query: q,
        db,
        mode: EvalMode::CertainOnly,
        timeout: None,
    };
    for (label, db) in [("path6", db_path), ("dense40", db_dense)] {
        let r = engine.execute(&certain(triangle, db));
        println!(
            "triangle_members @ {label}: plan={} answers={} status={:?}\n  rationale: {}",
            r.plan,
            r.answers.len(),
            r.status,
            r.plan_reason()
        );
    }

    // ── The cache pays off on repetition (and across renamings) ──────
    let renamed = engine.prepare_query(
        "triangle_renamed",
        parse_cq("Q(a) :- E(a, b), E(b, c), E(c, a)").unwrap(),
    );
    let r = engine.execute(&certain(renamed, db_dense));
    println!(
        "renamed triangle @ dense40: cache_hit={:?} (isomorphic tableau ⇒ shared entry)",
        r.cache_hit
    );

    // ── Parallel batch over the full workload ────────────────────────
    let reqs: Vec<Request> = (0..32)
        .map(|i| {
            let q = if i % 2 == 0 { two_hop } else { triangle };
            let db = if i % 4 < 2 { db_path } else { db_dense };
            Request::new(q, db)
        })
        .collect();
    let responses = engine.execute_batch(&reqs);
    let total: usize = responses.iter().map(|r| r.answers.len()).sum();
    println!(
        "\nbatch of {} requests returned {total} answer tuples",
        reqs.len()
    );

    println!("\n── engine stats ──\n{}", engine.stats());
}
