//! The under/over sandwich: certain vs candidate answers.
//!
//! The paper computes maximally-contained under-approximations; its
//! conclusion lists overapproximations as future work. `cqapx-core`
//! implements a sound version of both directions, giving for any cyclic
//! query `Q` a pair `Q⁻ ⊆ Q ⊆ Q⁺` of tractable queries:
//! `Q⁻`'s answers are certainly correct, `Q⁺`'s answers are the only
//! candidates — and both evaluate with Yannakakis.
//!
//! Run with `cargo run --release --example certain_answers_sandwich`.

use cq_approx::core::over;
use cq_approx::prelude::*;

fn main() {
    // "Find a that lies on a triangle" — cyclic, NP-hard combined
    // complexity.
    let q = parse_cq("Q(a) :- E(a,b), E(b,c), E(c,a)").unwrap();
    println!("Q  = {q}\n");

    let (under, over) = over::sandwich(&q, &TwK(1), &ApproxOptions::default());
    let over = over.expect("overapproximation exists");
    println!("Q⁻ = {under}   (maximally contained, Thm 4.1)");
    println!("Q⁺ = {over}   (sound overapproximation, §7 extension)\n");
    assert!(contained_in(&under, &q));
    assert!(contained_in(&q, &over));

    // Evaluate all three on a database: two triangles sharing structure
    // with some almost-triangles.
    let d = Structure::digraph(
        8,
        &[
            (0, 1),
            (1, 2),
            (2, 0), // triangle on 0,1,2
            (3, 4),
            (4, 5),
            (5, 3), // triangle on 3,4,5
            (6, 7),
            (7, 6), // a 2-cycle (almost)
            (2, 6),
            (6, 3),
        ],
    );
    let plan_under = AcyclicPlan::compile(&under).unwrap();
    let plan_over = AcyclicPlan::compile(&over).unwrap();
    let certain = plan_under.eval(&d);
    let exact = eval_naive(&q, &d);
    let candidates = plan_over.eval(&d);

    println!("certain answers   (Q⁻, Yannakakis): {certain:?}");
    println!("exact answers     (Q,  naive):      {exact:?}");
    println!("candidate answers (Q⁺, Yannakakis): {candidates:?}");

    assert!(certain.iter().all(|t| exact.contains(t)));
    assert!(exact.iter().all(|t| candidates.contains(t)));
    println!(
        "\nsandwich holds: {} certain ⊆ {} exact ⊆ {} candidates",
        certain.len(),
        exact.len(),
        candidates.len()
    );
    println!(
        "error bound on this database: at most {} answers undecided",
        candidates.len() - certain.len()
    );
}
