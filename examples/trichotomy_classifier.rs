//! Theorem 5.1 in action: classify Boolean graph queries by the shape of
//! their tableau and print their acyclic approximations.
//!
//! Run with `cargo run --example trichotomy_classifier`.

use cq_approx::prelude::*;

fn main() {
    let suite = [
        ("triangle", "Q() :- E(x,y), E(y,z), E(z,x)"),
        (
            "odd 5-cycle",
            "Q() :- E(a,b), E(b,c), E(c,d), E(d,e), E(e,a)",
        ),
        ("directed 4-cycle", "Q() :- E(a,b), E(b,c), E(c,d), E(d,a)"),
        (
            "oriented 4-cycle (unbalanced)",
            "Q() :- E(x,y), E(y,z), E(z,u), E(x,u)",
        ),
        (
            "intro Q2 (balanced)",
            "Q() :- E(x,y), E(y,z), E(z,u), E(x1,y1), E(y1,z1), E(z1,u1), E(x,z1), E(y,u1)",
        ),
        (
            "balanced zigzag square",
            "Q() :- E(x,y), E(z,y), E(z,u), E(x,u)",
        ),
    ];

    for (name, body) in suite {
        let q = parse_cq(body).unwrap();
        let class = classify_boolean_graph_query(&q);
        println!("{name}: {q}");
        println!("  Theorem 5.1 class: {class:?}");
        let prediction = match class {
            BooleanTrichotomy::NotBipartite => "only the trivial loop E(x,x)",
            BooleanTrichotomy::BipartiteUnbalanced => "only the double edge E(x,y),E(y,x)",
            BooleanTrichotomy::BipartiteBalanced => "nontrivial, loop- and K2-free",
        };
        println!("  predicted acyclic approximations: {prediction}");
        let rep = all_approximations(&q, &TwK(1), &ApproxOptions::default());
        for a in &rep.approximations {
            println!(
                "  computed: {a}   ({} joins vs {} in Q)",
                a.join_count(),
                q.join_count()
            );
        }
        println!();
    }
}
