//! A tour of the Theorem 4.12 machinery: the DP-hardness gadgets of the
//! appendix, machine-verified live.
//!
//! Run with `cargo run --release --example dp_gadget_tour`.

use cq_approx::gadgets::decision;
use cq_approx::gadgets::dp;
use cq_approx::graphs::{balance, generators, Digraph, UGraph};
use cq_approx::structures::HomProblem;
use std::time::Instant;

fn main() {
    println!("== oriented-path alphabet ==");
    for i in 1..=9 {
        let p = dp::p_i(i);
        println!("P_{i} = {p}   (net {}, 13 edges)", p.net_length());
    }

    println!("\n== Q* and its folds ==");
    let q = dp::q_star();
    let info = balance::levels(&q.g);
    println!(
        "Q*: {} nodes, balanced = {}, height = {}",
        q.g.n(),
        info.balanced,
        info.height
    );
    for i in 1..=4 {
        let t = dp::t_i(i);
        println!(
            "T_{i}: {} nodes, acyclic = {}, Q* → T_{i}: {}",
            t.g.n(),
            UGraph::underlying(&t.g).is_forest(),
            HomProblem::new(&q.g.to_structure(), &t.g.to_structure()).exists()
        );
    }

    println!("\n== the big target T (Figure 14) ==");
    let t = dp::big_t();
    println!(
        "T: {} nodes, tree = {}, colors t1..t4 at level 25",
        t.g.n(),
        UGraph::underlying(&t.g).is_forest()
    );

    println!("\n== extended chooser pair tables (Claim 8.9) ==");
    for (gadget, name, (i, j)) in [
        (dp::choosers::extended_chooser_21(), "S~21", (2, 1)),
        (dp::choosers::extended_chooser_34(), "S~34", (3, 4)),
    ] {
        let t0 = Instant::now();
        let table = dp::choosers::pair_table(&gadget, &t);
        let ok = table == dp::choosers::expected_extended_table(i, j);
        println!(
            "{name} ({} nodes): verified in {:.2?} — {}",
            gadget.g.n(),
            t0.elapsed(),
            ok
        );
        for (bi, row) in table.iter().enumerate() {
            let cells: Vec<&str> = row.iter().map(|&c| if c { "✓" } else { "·" }).collect();
            println!("   a=t{}: b ∈ [{}]", bi + 1, cells.join(" "));
        }
    }

    println!("\n== the decision problems ==");
    // Exact Four Colorability on small graphs.
    for (name, g) in [
        ("K4", generators::complete_digraph(4)),
        ("K3", generators::complete_digraph(3)),
        ("odd wheel W5", generators::wheel(5)),
    ] {
        println!(
            "exact-4-colorable({name}) = {}",
            decision::exact_four_colorability(&g)
        );
    }
    // Exact Acyclic Homomorphism / Graph Acyclic Approximation.
    let c4 = Digraph::cycle(4);
    let k2 = Digraph::from_edges(2, &[(0, 1), (1, 0)]);
    println!(
        "exact-acyclic-hom(C4, K2^<->) = {}",
        decision::exact_acyclic_homomorphism(&c4, &k2)
    );
    println!(
        "graph-acyclic-approximation(C4, K2^<->) = {:?}",
        decision::graph_acyclic_approximation(&c4, &k2, 1 << 20)
    );
    let lp = Digraph::from_edges(1, &[(0, 0)]);
    println!(
        "graph-acyclic-approximation(C4, loop)   = {:?} (K2 sits strictly between)",
        decision::graph_acyclic_approximation(&c4, &lp, 1 << 20)
    );
}
