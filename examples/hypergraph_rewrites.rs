//! Hypergraph-based approximations (Section 6): beyond graphs, acyclic
//! approximations can even have MORE atoms than the query they
//! approximate.
//!
//! Run with `cargo run --example hypergraph_rewrites`.

use cq_approx::prelude::*;
use cqapx_cq::classes;

fn main() {
    // Example 6.6: three ternary atoms forming a Berge cycle.
    let q = parse_cq("Q() :- R(x1,x2,x3), R(x3,x4,x5), R(x5,x6,x1)").unwrap();
    println!("Q = {q}");
    println!("  acyclic: {}", classes::is_acyclic_query(&q));
    println!(
        "  hypertree width: {}",
        classes::hypertree_width_of_query(&q)
    );

    let rep = all_approximations(&q, &Acyclic, &ApproxOptions::default());
    println!(
        "\n{} non-equivalent acyclic approximations (searched {} quotients):",
        rep.approximations.len(),
        rep.partitions
    );
    for a in &rep.approximations {
        let delta = a.join_count() as i64 - q.join_count() as i64;
        let tag = match delta.signum() {
            -1 => "fewer joins than Q",
            0 => "as many joins as Q",
            _ => "MORE joins than Q (a covering atom was added)",
        };
        println!("  {a}\n      → {tag}");
    }

    // The same query has a width-2 hypertree decomposition, so its
    // HTW(2)-approximation is the query itself.
    let rep2 = all_approximations(&q, &HtwK(2), &ApproxOptions::default());
    println!("\nHTW(2)-approximations:");
    for a in &rep2.approximations {
        println!("  {a}   (equivalent to Q: {})", equivalent(a, &q));
    }

    // Intro's ternary triangle: padding the middle positions opens up
    // approximations the graph version does not have.
    let q = parse_cq("Q() :- R(x,u,y), R(y,v,z), R(z,w,x)").unwrap();
    println!("\nQ = {q}");
    let rep = all_approximations(&q, &Acyclic, &ApproxOptions::default());
    for a in &rep.approximations {
        println!("  acyclic approximation: {a}");
    }
}
