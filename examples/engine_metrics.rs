//! Observability and admission control with `cqapx-metrics`: latency
//! histograms per query class, solver/operator internals at `Debug`,
//! per-request trace events, queue-depth shedding, and deadline-aware
//! degradation — the whole metrics tier in one tour.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example engine_metrics
//! ```

use cq_approx::prelude::*;
use cqapx_engine::{EngineConfig, MetricsLevel, ResponseStatus, DEGRADE_MIN_SAMPLES};
use std::time::Duration;

fn main() {
    // Trace is the most expensive tier: histograms + cache counters
    // (Counters), solver nodes and per-operator timings (Debug), and a
    // bounded ring of structured per-request events (Trace). A
    // production engine would usually run at Counters; `None` compiles
    // the whole layer down to one field compare per request.
    let engine = Engine::new(EngineConfig {
        metrics: MetricsLevel::Trace,
        max_queue_depth: Some(4),
        naive_cost_budget: 1e12, // keep the clique on the naive tier
        ..EngineConfig::default()
    });

    let mut edges: Vec<(u32, u32)> = Vec::new();
    for u in 0..14u32 {
        for v in 0..14u32 {
            if u != v && (u + v) % 3 != 0 {
                edges.push((u, v));
            }
        }
    }
    let db = engine.register_database("dense14", Structure::digraph(14, &edges));
    let two_hop = engine.prepare_query("two_hop", parse_cq("Q(x, z) :- E(x, y), E(y, z)").unwrap());
    let clique = engine.prepare_query(
        "k5",
        parse_cq(
            "Q() :- E(a,b), E(a,c), E(a,d), E(a,e), E(b,c), E(b,d), E(b,e), E(c,d), E(c,e), E(d,e)",
        )
        .unwrap(),
    );

    // A cyclic query lands on the decomposed tier, whose bags the
    // materializer joins either binarily or with the multiway (WCOJ)
    // kernel — the Debug tier histograms build time per strategy.
    let c4 = engine.prepare_query(
        "c4",
        parse_cq("Q(a, c) :- E(a,b), E(b,c), E(c,d), E(d,a)").unwrap(),
    );

    // ── Warm traffic: the classes build their own distributions ──────
    for _ in 0..DEGRADE_MIN_SAMPLES {
        engine.execute(&Request::new(two_hop, db));
        engine.execute(&Request::new(clique, db));
        engine.execute(&Request::new(c4, db));
    }

    // ── Admission control: a batch deeper than the queue sheds ───────
    let storm: Vec<Request> = (0..10).map(|_| Request::new(two_hop, db)).collect();
    let responses = engine.execute_batch(&storm);
    let shed = responses
        .iter()
        .filter(|r| r.status == ResponseStatus::Shed)
        .count();
    println!(
        "storm of {} against queue depth 4: {shed} shed",
        storm.len()
    );
    if let Some(r) = responses.iter().find(|r| r.status == ResponseStatus::Shed) {
        println!("  rationale: {}", r.plan_reason());
    }

    // ── Deadline-aware degradation ───────────────────────────────────
    // The measured p99 of the clique's class says a 1µs deadline is
    // hopeless, so the engine serves the approximation's certain
    // answers up front instead of starting a join it would have to
    // abandon.
    let r = engine.execute(&Request {
        query: clique,
        db,
        mode: EvalMode::Exact,
        timeout: Some(Duration::from_micros(1)),
    });
    println!("\nimpossible deadline: status={:?}", r.status);
    println!("  rationale: {}", r.plan_reason());

    // ── The snapshot: one consistent copy of everything measured ─────
    let snap = engine.snapshot();
    println!("\n── per-class latency ──");
    for (class, h) in &snap.class_latency {
        if h.count == 0 {
            continue;
        }
        println!(
            "  {class:<12} n={:<4} p50={}µs p90={}µs p99={}µs max={}µs",
            h.count, h.p50, h.p90, h.p99, h.max
        );
    }
    println!("\n── solver / operators (Debug tier) ──");
    println!(
        "  solver: {} search nodes, {} AC-3 revisions, {} budget exhaustions",
        snap.solver_nodes, snap.solver_revisions, snap.solver_budget_exhaustions
    );
    for (op, us) in &snap.op_micros {
        let rows = snap.op_rows.get(op).copied().unwrap_or(0);
        println!("  {op:<15} {us:>8}µs {rows:>8} rows");
    }
    println!("\n── bag builds by strategy (Debug tier) ──");
    println!(
        "  counters: binary {} · wcoj {}",
        snap.counters.bag_builds_binary, snap.counters.bag_builds_wcoj
    );
    for (strategy, h) in &snap.bag_build_latency {
        if h.count == 0 {
            continue;
        }
        println!(
            "  {strategy:<12} n={:<4} p50={}µs p99={}µs max={}µs (per-response totals)",
            h.count, h.p50, h.p99, h.max
        );
    }

    println!("\n── cache memory (any tier — read from the caches) ──");
    println!(
        "  mat cache     budget={} bytes ({})",
        snap.mat_cache_budget_bytes,
        if snap.mat_cache_budget_bytes == 0 {
            "unbounded; set CQAPX_CACHE_BUDGET, e.g. 64k, to bound it"
        } else {
            "evicting when over"
        }
    );
    for (db, bytes) in &snap.mat_cache_bytes_by_db {
        println!(
            "    {db:<12} resident={bytes:>8}B evictions={} dict={} codes",
            snap.mat_cache_evictions_by_db.get(db).copied().unwrap_or(0),
            snap.dict_size_by_db.get(db).copied().unwrap_or(0),
        );
    }
    println!(
        "  approx cache  resident={}B budget={} evictions={}",
        snap.approx_cache_bytes, snap.approx_cache_budget_bytes, snap.approx_cache_evictions
    );
    println!(
        "  bitmaps       resident={}B builds={} probes={} (CQAPX_BITMAP kernels)",
        snap.bitmap_resident_bytes, snap.bitmap_builds, snap.bitmap_probes
    );
    println!(
        "  packed        builds={} rows={} (CQAPX_PACKED kernels)",
        snap.packed_builds, snap.packed_rows
    );

    println!("\n── trace ring (Trace tier, last few) ──");
    let events = engine.trace_events();
    for ev in events.iter().rev().take(3).rev() {
        println!("  {ev}");
    }

    // ── Epochs: reset, measure clean ─────────────────────────────────
    engine.reset_stats();
    let fresh = engine.snapshot();
    println!(
        "\nafter reset_stats: requests={} recorded classes={}",
        fresh.counters.requests,
        fresh.class_latency.values().filter(|h| h.count > 0).count()
    );

    println!("\n── engine stats ──\n{}", engine.stats());
}
