//! # cq-approx
//!
//! A full implementation of **Barceló, Libkin & Romero, "Efficient
//! Approximations of Conjunctive Queries" (PODS 2012)**: computing the
//! best guaranteed-correct under-approximations of conjunctive queries
//! within tractable classes (acyclic, bounded treewidth, bounded
//! hypertree width), plus everything needed to *use* them — a CQ parser,
//! containment/minimization, naive and Yannakakis evaluation, the
//! digraph/hypergraph toolkits, and the paper's gadget constructions.
//!
//! ## Quick start
//!
//! ```
//! use cq_approx::prelude::*;
//!
//! // A cyclic query: combined complexity |D|^O(|Q|).
//! let q = parse_cq("Q() :- E(x,y), E(y,z), E(z,u), E(x1,y1), E(y1,z1), \
//!                   E(z1,u1), E(x,z1), E(y,u1)").unwrap();
//!
//! // Its unique acyclic approximation: a path query, evaluable in
//! // O(|D| · |Q'|) by Yannakakis.
//! let rep = all_approximations(&q, &TwK(1), &ApproxOptions::default());
//! assert_eq!(rep.approximations.len(), 1);
//! let q_prime = &rep.approximations[0];
//! assert!(contained_in(q_prime, &q));       // sound: only correct answers
//!
//! let plan = AcyclicPlan::compile(q_prime).unwrap();
//! let d = Structure::digraph(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
//! assert!(plan.eval_boolean(&d));
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`structures`] | relational structures, homomorphism engine, cores, quotients |
//! | [`graphs`] | digraphs, oriented paths, balance/levels, coloring, treewidth |
//! | [`hypergraphs`] | GYO acyclicity, join trees, hypertree width |
//! | [`cq`] | CQ AST/parser, tableaux, containment, naive + Yannakakis evaluation |
//! | [`core`] | **the paper's contribution**: approximation algorithms, trichotomy, identification |
//! | [`gadgets`] | the paper's constructions (Prop 4.4, Prop 5.6, Theorem 4.12 appendix) |
//! | [`engine`] | the serving subsystem: catalog, approximation cache, cost-based planner, parallel batches |

#![deny(missing_docs)]
#![warn(clippy::all)]

pub use cqapx_core as core;
pub use cqapx_cq as cq;
pub use cqapx_engine as engine;
pub use cqapx_gadgets as gadgets;
pub use cqapx_graphs as graphs;
pub use cqapx_hypergraphs as hypergraphs;
pub use cqapx_structures as structures;

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use cqapx_core::{
        all_approximations, classify_boolean_graph_query, is_approximation, one_approximation,
        Acyclic, ApproxOptions, BooleanTrichotomy, HtwK, QueryClass, TwK,
    };
    pub use cqapx_cq::{
        contained_in, equivalent, eval::naive::eval_naive, eval::AcyclicPlan, minimize, parse_cq,
        query_from_tableau, tableau_of, ConjunctiveQuery, Evaluator, QueryShape,
    };
    pub use cqapx_engine::{
        Engine, EngineConfig, EngineStats, EvalMode, PlanKind, Request, Response, ResponseStatus,
    };
    pub use cqapx_graphs::Digraph;
    pub use cqapx_structures::{HomProblem, Pointed, Structure, Vocabulary};
}
