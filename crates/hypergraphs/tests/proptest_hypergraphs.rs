//! Property-based tests for the hypergraph algorithms, centred on the
//! paper's Lemma 6.4 closure properties.

use cqapx_hypergraphs::{gyo, htw, Hypergraph};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn hypergraph_strategy(
    max_n: usize,
    max_edges: usize,
    max_arity: usize,
) -> impl Strategy<Value = Hypergraph> {
    (2..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec(
            proptest::collection::btree_set(0..n as u32, 1..=max_arity.min(n)),
            1..=max_edges,
        )
        .prop_map(move |edges| {
            let lists: Vec<Vec<u32>> = edges.into_iter().map(|e| e.into_iter().collect()).collect();
            Hypergraph::from_edges(n, &lists)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// GYO acyclicity coincides with hypertree width 1 (HTW(1) = AC).
    #[test]
    fn gyo_iff_htw1(h in hypergraph_strategy(6, 6, 3)) {
        prop_assert_eq!(gyo::is_acyclic(&h), htw::htw_at_most(&h, 1).is_some());
    }

    /// Join trees produced by GYO validate.
    #[test]
    fn join_trees_validate(h in hypergraph_strategy(7, 6, 3)) {
        if let Some(jt) = gyo::gyo_reduce(&h).join_tree {
            jt.validate(&h).unwrap();
        }
    }

    /// Hypertree decompositions at the exact width validate, and width−1
    /// is infeasible.
    #[test]
    fn htw_witness_and_tightness(h in hypergraph_strategy(6, 5, 3)) {
        let w = htw::hypertree_width(&h);
        if w >= 1 {
            let d = htw::htw_at_most(&h, w).expect("witness at exact width");
            d.validate(&h).unwrap();
            prop_assert!(d.width() <= w);
            if w > 1 {
                prop_assert!(htw::htw_at_most(&h, w - 1).is_none());
            }
        }
    }

    /// Lemma 6.4: closure under edge extension — extending any hyperedge
    /// with fresh vertices never increases the hypertree width.
    #[test]
    fn edge_extension_preserves_width(
        h in hypergraph_strategy(6, 5, 3),
        which in 0usize..5,
        extra in 1usize..3,
    ) {
        prop_assume!(h.edge_count() > 0);
        let i = which % h.edge_count();
        let w = htw::hypertree_width(&h);
        let ext = h.extend_edge(i, extra);
        prop_assert!(htw::hypertree_width(&ext) <= w.max(1));
        // and acyclicity is preserved exactly
        prop_assert_eq!(gyo::is_acyclic(&h), gyo::is_acyclic(&ext));
    }

    /// Lemma 6.4: closure under induced subhypergraphs.
    #[test]
    fn induced_preserves_width(
        h in hypergraph_strategy(6, 5, 3),
        keep_mask in proptest::collection::vec(any::<bool>(), 6),
    ) {
        let keep: BTreeSet<u32> = (0..h.n() as u32)
            .filter(|&v| keep_mask.get(v as usize).copied().unwrap_or(false))
            .collect();
        prop_assume!(!keep.is_empty());
        let (ind, _) = h.induced(&keep);
        if ind.edge_count() > 0 {
            prop_assert!(
                htw::hypertree_width(&ind) <= htw::hypertree_width(&h).max(1),
                "induced subhypergraph width must not grow"
            );
        }
    }

    /// Hypertree width is bounded by the edge count and at least 1 for
    /// nonempty hypergraphs.
    #[test]
    fn width_bounds(h in hypergraph_strategy(6, 5, 3)) {
        let w = htw::hypertree_width(&h);
        if h.edge_count() > 0 {
            prop_assert!(w >= 1);
            prop_assert!(w <= h.edge_count());
        }
    }

    /// The ghw sandwich holds: lower ≤ upper = htw.
    #[test]
    fn ghw_bounds_consistent(h in hypergraph_strategy(5, 4, 3)) {
        let (lo, hi) = htw::ghw_bounds(&h);
        prop_assert!(lo <= hi);
        prop_assert_eq!(hi, htw::hypertree_width(&h));
    }
}
