//! Hypertree width: a det-k-decomp style membership test.
//!
//! A *(generalized) hypertree decomposition* of `H = ⟨V, E⟩` is a tree
//! decomposition `(T, f)` plus an edge-labeling `c : T → 2^E` with
//! `f(u) ⊆ ⋃c(u)`; its width is `max |c(u)|`. Hypertree decompositions
//! additionally satisfy the "special condition"
//! `⋃c(u) ∩ ⋃{f(t) | t ∈ T_u} ⊆ f(u)`. `HTW(H) ≤ k` is decidable in
//! polynomial time for fixed `k` (Gottlob, Leone & Scarcello); we implement
//! their **det-k-decomp** backtracking scheme over edge-components, which
//! explores decompositions in normal form (where the special condition
//! holds by construction: every bag is `(⋃λ ∩ component) ∪ connector`).
//!
//! `HTW(1)` coincides with α-acyclicity; `htw_at_most(h, 1)` delegates to
//! the GYO reduction for speed and cross-checks the two paths in tests.

use crate::gyo;
use crate::hypergraph::{Hypergraph, Vertex};
use std::collections::{BTreeSet, HashMap};

/// One node of a hypertree decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HtdNode {
    /// The bag `f(u)`.
    pub bag: BTreeSet<Vertex>,
    /// The covering hyperedges `c(u)` (indices into the hypergraph).
    pub cover: Vec<usize>,
}

/// A hypertree decomposition (in det-k-decomp normal form).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HypertreeDecomposition {
    /// Decomposition nodes.
    pub nodes: Vec<HtdNode>,
    /// Tree edges between node indices.
    pub tree_edges: Vec<(usize, usize)>,
}

impl HypertreeDecomposition {
    /// The width `max |c(u)|`.
    pub fn width(&self) -> usize {
        self.nodes.iter().map(|n| n.cover.len()).max().unwrap_or(0)
    }

    /// Validates the generalized-hypertree-decomposition conditions:
    /// `(T, f)` is a tree decomposition of `H` and `f(u) ⊆ ⋃c(u)` for all
    /// `u`. (The special condition holds by construction of the search and
    /// is not re-checked.)
    pub fn validate(&self, h: &Hypergraph) -> Result<(), String> {
        let nb = self.nodes.len();
        if nb == 0 {
            return if h.edge_count() == 0 {
                Ok(())
            } else {
                Err("empty decomposition for nonempty hypergraph".into())
            };
        }
        if self.tree_edges.len() + 1 != nb {
            return Err("decomposition is not a tree".into());
        }
        // f(u) ⊆ ∪ c(u)
        for (i, n) in self.nodes.iter().enumerate() {
            let cover: BTreeSet<Vertex> = n
                .cover
                .iter()
                .flat_map(|&e| h.edge(e).iter().copied())
                .collect();
            if !n.bag.is_subset(&cover) {
                return Err(format!("bag {i} not covered by its edge label"));
            }
        }
        // every hyperedge inside some bag
        for (ei, e) in h.edges().iter().enumerate() {
            if !self.nodes.iter().any(|n| e.is_subset(&n.bag)) {
                return Err(format!("hyperedge {ei} not inside any bag"));
            }
        }
        // connectivity of vertex occurrences (in the decomposition tree)
        let mut adj = vec![Vec::new(); nb];
        for &(a, b) in &self.tree_edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        for v in h.covered_vertices() {
            let occ: Vec<usize> = (0..nb)
                .filter(|&i| self.nodes[i].bag.contains(&v))
                .collect();
            if occ.is_empty() {
                return Err(format!("vertex {v} not in any bag"));
            }
            let mut seen = vec![false; nb];
            let mut stack = vec![occ[0]];
            seen[occ[0]] = true;
            let mut reached = 1;
            while let Some(u) = stack.pop() {
                for &w in &adj[u] {
                    if !seen[w] && self.nodes[w].bag.contains(&v) {
                        seen[w] = true;
                        reached += 1;
                        stack.push(w);
                    }
                }
            }
            if reached != occ.len() {
                return Err(format!("vertex {v} occurrences disconnected"));
            }
        }
        Ok(())
    }
}

type EdgeSet = BTreeSet<usize>;

struct Search<'a> {
    h: &'a Hypergraph,
    /// All candidate covers λ with 1 ≤ |λ| ≤ k, precomputed as
    /// (edge indices, union of vertices).
    covers: Vec<(Vec<usize>, BTreeSet<Vertex>)>,
    /// Memo: (component edges, connector) → success subtree root or
    /// known-failure.
    memo: HashMap<(EdgeSet, BTreeSet<Vertex>), Option<Subtree>>,
}

#[derive(Debug, Clone)]
struct Subtree {
    nodes: Vec<HtdNode>,
    edges: Vec<(usize, usize)>,
    root: usize,
}

impl<'a> Search<'a> {
    fn new(h: &'a Hypergraph, k: usize) -> Self {
        // Enumerate subsets of edges of size 1..=k.
        let m = h.edge_count();
        let mut covers = Vec::new();
        let mut stack: Vec<Vec<usize>> = (0..m).map(|i| vec![i]).collect();
        while let Some(set) = stack.pop() {
            let union: BTreeSet<Vertex> = set
                .iter()
                .flat_map(|&e| h.edge(e).iter().copied())
                .collect();
            if set.len() < k {
                for j in (set[set.len() - 1] + 1)..m {
                    let mut next = set.clone();
                    next.push(j);
                    stack.push(next);
                }
            }
            covers.push((set, union));
        }
        // Prefer small covers (finds width-minimal shapes faster).
        covers.sort_by_key(|(s, _)| s.len());
        Search {
            h,
            covers,
            memo: HashMap::new(),
        }
    }

    /// Edge-components of `comp_edges` relative to the bag `chi`: two edges
    /// are connected when they share a vertex outside `chi`.
    fn edge_components(&self, comp_edges: &EdgeSet, chi: &BTreeSet<Vertex>) -> Vec<EdgeSet> {
        let mut remaining: EdgeSet = comp_edges
            .iter()
            .copied()
            .filter(|&e| !self.h.edge(e).is_subset(chi))
            .collect();
        let mut out = Vec::new();
        while let Some(&start) = remaining.iter().next() {
            remaining.remove(&start);
            let mut comp: EdgeSet = [start].into_iter().collect();
            let mut frontier = vec![start];
            while let Some(e) = frontier.pop() {
                let outside: BTreeSet<Vertex> = self
                    .h
                    .edge(e)
                    .iter()
                    .copied()
                    .filter(|v| !chi.contains(v))
                    .collect();
                let adjacent: Vec<usize> = remaining
                    .iter()
                    .copied()
                    .filter(|&f| self.h.edge(f).iter().any(|v| outside.contains(v)))
                    .collect();
                for f in adjacent {
                    remaining.remove(&f);
                    comp.insert(f);
                    frontier.push(f);
                }
            }
            out.push(comp);
        }
        out
    }

    fn decompose(&mut self, comp_edges: &EdgeSet, connector: &BTreeSet<Vertex>) -> Option<Subtree> {
        let key = (comp_edges.clone(), connector.clone());
        if let Some(cached) = self.memo.get(&key) {
            return cached.clone();
        }
        let comp_vertices: BTreeSet<Vertex> = comp_edges
            .iter()
            .flat_map(|&e| self.h.edge(e).iter().copied())
            .collect();
        let mut result: Option<Subtree> = None;

        'covers: for ci in 0..self.covers.len() {
            let (lambda, union) = &self.covers[ci];
            // The connector must be covered.
            if !connector.is_subset(union) {
                continue;
            }
            // Normal-form bag: (∪λ ∩ component vertices) ∪ connector.
            let mut chi: BTreeSet<Vertex> = union.intersection(&comp_vertices).copied().collect();
            chi.extend(connector.iter().copied());
            // Progress: the bag must see into the component.
            if !comp_vertices.is_empty()
                && chi.intersection(&comp_vertices).count()
                    == connector.intersection(&comp_vertices).count()
                && !comp_edges.iter().all(|&e| self.h.edge(e).is_subset(&chi))
            {
                // λ adds nothing beyond the connector but does not finish
                // the component either: no progress.
                continue;
            }
            let lambda = lambda.clone();
            let chi_owned = chi.clone();
            let subcomponents = self.edge_components(comp_edges, &chi_owned);
            // Strict progress: every sub-component must be smaller.
            if subcomponents.iter().any(|c| c.len() >= comp_edges.len()) {
                continue;
            }
            let mut nodes = vec![HtdNode {
                bag: chi_owned.clone(),
                cover: lambda,
            }];
            let mut edges = Vec::new();
            for sub in subcomponents {
                let sub_vertices: BTreeSet<Vertex> = sub
                    .iter()
                    .flat_map(|&e| self.h.edge(e).iter().copied())
                    .collect();
                let sub_connector: BTreeSet<Vertex> =
                    sub_vertices.intersection(&chi_owned).copied().collect();
                match self.decompose(&sub, &sub_connector) {
                    None => continue 'covers,
                    Some(st) => {
                        let off = nodes.len();
                        nodes.extend(st.nodes);
                        edges.extend(st.edges.iter().map(|&(a, b)| (a + off, b + off)));
                        edges.push((0, st.root + off));
                    }
                }
            }
            result = Some(Subtree {
                nodes,
                edges,
                root: 0,
            });
            break;
        }

        self.memo.insert(key, result.clone());
        result
    }
}

/// Decides `htw(H) ≤ k`, returning a witness decomposition.
///
/// `k = 1` delegates to the GYO reduction (`HTW(1)` = α-acyclicity) and
/// materializes the join tree as a decomposition. For `k ≥ 2` this runs the
/// det-k-decomp search: polynomial for fixed `k` (the number of
/// (component, connector) pairs and covers is `O(m^k)`-bounded).
///
/// # Examples
///
/// ```
/// use cqapx_hypergraphs::{htw, Hypergraph};
///
/// let tri = Hypergraph::from_edges(3, &[vec![0, 1], vec![1, 2], vec![2, 0]]);
/// assert!(htw::htw_at_most(&tri, 1).is_none());
/// let d = htw::htw_at_most(&tri, 2).expect("triangle has htw 2");
/// assert!(d.width() <= 2);
/// d.validate(&tri).unwrap();
/// ```
pub fn htw_at_most(h: &Hypergraph, k: usize) -> Option<HypertreeDecomposition> {
    assert!(
        k >= 1,
        "hypertree width is at least 1 for nonempty hypergraphs"
    );
    if h.edge_count() == 0 {
        return Some(HypertreeDecomposition {
            nodes: Vec::new(),
            tree_edges: Vec::new(),
        });
    }
    if k == 1 {
        let r = gyo::gyo_reduce(h);
        let jt = r.join_tree?;
        // Each hyperedge becomes a node with itself as bag and cover.
        let nodes: Vec<HtdNode> = (0..h.edge_count())
            .map(|i| HtdNode {
                bag: h.edge(i).clone(),
                cover: vec![i],
            })
            .collect();
        let mut tree_edges: Vec<(usize, usize)> = jt
            .parent
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|p| (i, p as usize)))
            .collect();
        // Connect forest roots into one tree.
        let roots = jt.roots();
        for w in roots.windows(2) {
            tree_edges.push((w[0], w[1]));
        }
        let d = HypertreeDecomposition { nodes, tree_edges };
        debug_assert!(d.validate(h).is_ok(), "{:?}", d.validate(h));
        return Some(d);
    }

    let mut search = Search::new(h, k);
    let all: EdgeSet = (0..h.edge_count()).collect();
    let components = search.edge_components(&all, &BTreeSet::new());
    let mut nodes = Vec::new();
    let mut tree_edges = Vec::new();
    let mut roots = Vec::new();
    for comp in components {
        let st = search.decompose(&comp, &BTreeSet::new())?;
        let off = nodes.len();
        roots.push(st.root + off);
        nodes.extend(st.nodes);
        tree_edges.extend(st.edges.iter().map(|&(a, b)| (a + off, b + off)));
    }
    for w in roots.windows(2) {
        tree_edges.push((w[0], w[1]));
    }
    let d = HypertreeDecomposition { nodes, tree_edges };
    debug_assert!(d.validate(h).is_ok(), "{:?}", d.validate(h));
    Some(d)
}

/// The exact hypertree width (0 for edge-less hypergraphs).
pub fn hypertree_width(h: &Hypergraph) -> usize {
    if h.edge_count() == 0 {
        return 0;
    }
    for k in 1..=h.edge_count() {
        if htw_at_most(h, k).is_some() {
            return k;
        }
    }
    h.edge_count()
}

/// Bounds on the generalized hypertree width: `ghw ≤ htw ≤ 3·ghw + 1`
/// (Adler, Gottlob & Grohe), so `ghw ∈ [⌈(htw−1)/3⌉, htw]`. Deciding
/// `ghw ≤ k` exactly is NP-complete for every fixed `k ≥ 3` (the paper's
/// reference \[22\]); the approximation algorithms only need a sound class
/// membership test, for which `htw ≤ k ⇒ ghw ≤ k` suffices.
pub fn ghw_bounds(h: &Hypergraph) -> (usize, usize) {
    let htw = hypertree_width(h);
    (
        htw.saturating_sub(1).div_ceil(3).max(usize::from(htw > 0)),
        htw,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acyclic_iff_htw1() {
        let cases = [
            (
                Hypergraph::from_edges(4, &[vec![0, 1], vec![1, 2], vec![2, 3]]),
                true,
            ),
            (
                Hypergraph::from_edges(3, &[vec![0, 1], vec![1, 2], vec![2, 0]]),
                false,
            ),
            (
                Hypergraph::from_edges(3, &[vec![0, 1, 2], vec![0, 1], vec![1, 2], vec![0, 2]]),
                true,
            ),
        ];
        for (h, acyclic) in cases {
            assert_eq!(gyo::is_acyclic(&h), acyclic);
            assert_eq!(htw_at_most(&h, 1).is_some(), acyclic);
        }
    }

    #[test]
    fn triangle_width_2() {
        let tri = Hypergraph::from_edges(3, &[vec![0, 1], vec![1, 2], vec![2, 0]]);
        assert_eq!(hypertree_width(&tri), 2);
    }

    #[test]
    fn ternary_cycle_width_2() {
        // Example 6.6's query hypergraph: 3 ternary edges in a cycle.
        let h = Hypergraph::from_edges(6, &[vec![0, 1, 2], vec![2, 3, 4], vec![4, 5, 0]]);
        assert_eq!(hypertree_width(&h), 2);
        let d = htw_at_most(&h, 2).unwrap();
        d.validate(&h).unwrap();
    }

    #[test]
    fn long_cycle_width_2() {
        // Binary cycle of length 6: htw 2 (two opposite edges cover a bag).
        let edges: Vec<Vec<Vertex>> = (0..6).map(|i| vec![i, (i + 1) % 6]).collect();
        let h = Hypergraph::from_edges(6, &edges);
        assert_eq!(hypertree_width(&h), 2);
    }

    #[test]
    fn grid_2x3_width_2() {
        // 2x3 grid as binary edges: htw(grid) = 2.
        let mut edges = Vec::new();
        let id = |i: u32, j: u32| i * 3 + j;
        for i in 0..2u32 {
            for j in 0..3u32 {
                if j + 1 < 3 {
                    edges.push(vec![id(i, j), id(i, j + 1)]);
                }
                if i + 1 < 2 {
                    edges.push(vec![id(i, j), id(i + 1, j)]);
                }
            }
        }
        let h = Hypergraph::from_edges(6, &edges);
        let d = htw_at_most(&h, 2).expect("2x3 grid has htw 2");
        d.validate(&h).unwrap();
        assert!(htw_at_most(&h, 1).is_none());
    }

    #[test]
    fn closure_under_edge_extension() {
        // Lemma 6.4: extending an edge with fresh vertices preserves htw≤k.
        let tri = Hypergraph::from_edges(3, &[vec![0, 1], vec![1, 2], vec![2, 0]]);
        let ext = tri.extend_edge(0, 3);
        assert_eq!(hypertree_width(&ext), 2);
        let acyclic = Hypergraph::from_edges(3, &[vec![0, 1], vec![1, 2]]);
        let ext = acyclic.extend_edge(1, 2);
        assert!(gyo::is_acyclic(&ext));
    }

    #[test]
    fn closure_under_induced() {
        // Lemma 6.4: induced subhypergraphs preserve htw ≤ k.
        let h = Hypergraph::from_edges(4, &[vec![0, 1, 2], vec![2, 3], vec![3, 0]]);
        let w = hypertree_width(&h);
        let keep: BTreeSet<Vertex> = [0, 2, 3].into_iter().collect();
        let (ind, _) = h.induced(&keep);
        assert!(hypertree_width(&ind) <= w);
    }

    #[test]
    fn ghw_bounds_sane() {
        let tri = Hypergraph::from_edges(3, &[vec![0, 1], vec![1, 2], vec![2, 0]]);
        let (lo, hi) = ghw_bounds(&tri);
        assert!(lo >= 1 && lo <= hi);
        assert_eq!(hi, 2);
    }

    #[test]
    fn empty_hypergraph_decomposition() {
        let h = Hypergraph::new(0);
        let d = htw_at_most(&h, 1).unwrap();
        d.validate(&h).unwrap();
        assert_eq!(hypertree_width(&h), 0);
    }
}
