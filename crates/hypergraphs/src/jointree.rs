//! Join trees: the acyclicity witness Yannakakis' algorithm walks.

use crate::hypergraph::Hypergraph;
use serde::{Deserialize, Serialize};

/// A join tree over the hyperedges `0..n_edges` of a hypergraph: a rooted
/// forest by parent links satisfying the *running intersection property* —
/// for every vertex, the edges containing it form a connected subtree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinTree {
    /// Number of hyperedges covered (tree nodes).
    pub n_edges: usize,
    /// Parent of each hyperedge (`None` for roots).
    pub parent: Vec<Option<u32>>,
}

impl JoinTree {
    /// Roots of the forest.
    pub fn roots(&self) -> Vec<usize> {
        (0..self.n_edges)
            .filter(|&i| self.parent[i].is_none())
            .collect()
    }

    /// Parent links as node indices — the form rooted-tree plan
    /// compilers (`cqapx-cq`'s `eval::ir::compile_tree`) consume.
    pub fn parent_indices(&self) -> Vec<Option<usize>> {
        self.parent.iter().map(|p| p.map(|p| p as usize)).collect()
    }

    /// Children lists.
    pub fn children(&self) -> Vec<Vec<usize>> {
        let mut ch = vec![Vec::new(); self.n_edges];
        for (i, p) in self.parent.iter().enumerate() {
            if let Some(p) = p {
                ch[*p as usize].push(i);
            }
        }
        ch
    }

    /// A bottom-up ordering (children before parents).
    pub fn bottom_up_order(&self) -> Vec<usize> {
        let ch = self.children();
        let mut order = Vec::with_capacity(self.n_edges);
        let mut stack: Vec<(usize, bool)> = self.roots().into_iter().map(|r| (r, false)).collect();
        while let Some((v, expanded)) = stack.pop() {
            if expanded {
                order.push(v);
            } else {
                stack.push((v, true));
                for &c in &ch[v] {
                    stack.push((c, false));
                }
            }
        }
        order
    }

    /// Validates the running intersection property against a hypergraph,
    /// and that the parent links are acyclic.
    pub fn validate(&self, h: &Hypergraph) -> Result<(), String> {
        if self.n_edges != h.edge_count() {
            return Err(format!(
                "join tree covers {} edges, hypergraph has {}",
                self.n_edges,
                h.edge_count()
            ));
        }
        // Acyclicity of parent links.
        for start in 0..self.n_edges {
            let mut seen = vec![false; self.n_edges];
            let mut cur = start;
            loop {
                if seen[cur] {
                    return Err(format!("parent links cycle through edge {cur}"));
                }
                seen[cur] = true;
                match self.parent[cur] {
                    None => break,
                    Some(p) => cur = p as usize,
                }
            }
        }
        // Running intersection: for every vertex, the set of edges
        // containing it must induce a connected subgraph of the forest.
        for v in 0..h.n() as u32 {
            let occ: Vec<usize> = (0..self.n_edges)
                .filter(|&i| h.edge(i).contains(&v))
                .collect();
            if occ.len() <= 1 {
                continue;
            }
            // Union-find style: walk each occurrence's ancestor chain and
            // record the highest occurrence reachable through occurrences.
            // Simpler: build adjacency among occurrences via parent links
            // *within* the occurrence set and count components.
            let mut comp: Vec<usize> = (0..occ.len()).collect();
            fn find(comp: &mut Vec<usize>, i: usize) -> usize {
                if comp[i] != i {
                    let r = find(comp, comp[i]);
                    comp[i] = r;
                }
                comp[i]
            }
            for (ai, &a) in occ.iter().enumerate() {
                if let Some(p) = self.parent[a] {
                    if let Some(bi) = occ.iter().position(|&b| b == p as usize) {
                        let ra = find(&mut comp, ai);
                        let rb = find(&mut comp, bi);
                        comp[ra] = rb;
                    }
                }
            }
            let mut roots: Vec<usize> = (0..occ.len()).map(|i| find(&mut comp, i)).collect();
            roots.sort_unstable();
            roots.dedup();
            if roots.len() != 1 {
                return Err(format!(
                    "vertex {v} occurs in disconnected parts of the join tree"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bottom_up_visits_children_first() {
        // 0 <- 1 <- 2, 0 <- 3
        let jt = JoinTree {
            n_edges: 4,
            parent: vec![None, Some(0), Some(1), Some(0)],
        };
        let order = jt.bottom_up_order();
        let pos = |x: usize| order.iter().position(|&y| y == x).unwrap();
        assert!(pos(2) < pos(1));
        assert!(pos(1) < pos(0));
        assert!(pos(3) < pos(0));
    }

    #[test]
    fn validate_running_intersection() {
        // Edges {0,1},{1,2},{2,3} in a path join tree: valid.
        let h = Hypergraph::from_edges(4, &[vec![0, 1], vec![1, 2], vec![2, 3]]);
        let good = JoinTree {
            n_edges: 3,
            parent: vec![Some(1), None, Some(1)],
        };
        good.validate(&h).unwrap();
        // Star around edge 0 breaks it: vertex 2 occurs in edges 1 and 2,
        // which are siblings under 0 but 0 does not contain 2.
        let bad = JoinTree {
            n_edges: 3,
            parent: vec![None, Some(0), Some(0)],
        };
        assert!(bad.validate(&h).is_err());
    }

    #[test]
    fn validate_rejects_cycles() {
        let h = Hypergraph::from_edges(2, &[vec![0], vec![0]]);
        let bad = JoinTree {
            n_edges: 2,
            parent: vec![Some(1), Some(0)],
        };
        assert!(bad.validate(&h).is_err());
    }
}
