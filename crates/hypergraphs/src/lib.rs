//! Hypergraphs: acyclicity, join trees, and (generalized) hypertree width.
//!
//! The hypergraph-based tractable classes of the paper (Section 6) are:
//!
//! * `AC` — α-acyclic hypergraphs (Yannakakis' class), decided by **GYO
//!   reduction**, with a **join tree** witness;
//! * `HTW(k)` — hypertree width at most `k` (Gottlob, Leone & Scarcello),
//!   with `AC = HTW(1)`; membership is polynomial for fixed `k` (we
//!   implement a det-k-decomp-style search);
//! * `GHTW(k)` — generalized hypertree width; membership is NP-complete for
//!   k ≥ 3 (Gottlob, Miklós & Schwentick), so we expose the sandwich
//!   `ghw ≤ htw ≤ 3·ghw + 1` instead of an exact test.
//!
//! Lemma 6.4 of the paper shows `HTW(k)` and `GHTW(k)` are closed under the
//! two operations that drive the hypergraph-based approximation algorithm:
//! **induced subhypergraphs** and **edge extensions**; both are implemented
//! on [`Hypergraph`].

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod gyo;
pub mod htw;
pub mod hypergraph;
pub mod jointree;

pub use gyo::{gyo_reduce, is_acyclic};
pub use htw::{htw_at_most, HypertreeDecomposition};
pub use hypergraph::Hypergraph;
pub use jointree::JoinTree;
