//! The hypergraph type and the paper's closure operations.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A vertex of a hypergraph.
pub type Vertex = u32;

/// A finite hypergraph `H = ⟨V, E⟩` on vertices `0..n`.
///
/// Hyperedges are kept as sorted sets; duplicates are retained in insertion
/// order only once (set semantics). Empty hyperedges are not allowed.
///
/// # Examples
///
/// ```
/// use cqapx_hypergraphs::Hypergraph;
///
/// // H(Q) for Q() :- R(x,y,z), R(x,v,v), E(v,z): hyperedges
/// // {x,y,z}, {x,v}, {v,z} (the paper's Section 3 example).
/// let h = Hypergraph::from_edges(4, &[vec![0, 1, 2], vec![0, 3], vec![3, 2]]);
/// assert_eq!(h.n(), 4);
/// assert_eq!(h.edge_count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Hypergraph {
    n: usize,
    edges: Vec<BTreeSet<Vertex>>,
}

impl Hypergraph {
    /// An edge-less hypergraph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Hypergraph {
            n,
            edges: Vec::new(),
        }
    }

    /// Builds from an edge list (each edge a list of vertices).
    ///
    /// # Panics
    ///
    /// Panics on empty edges or out-of-range vertices.
    pub fn from_edges(n: usize, edges: &[Vec<Vertex>]) -> Self {
        let mut h = Hypergraph::new(n);
        for e in edges {
            h.add_edge(e);
        }
        h
    }

    /// Adds a hyperedge (idempotent on equal vertex sets).
    pub fn add_edge(&mut self, vertices: &[Vertex]) {
        assert!(!vertices.is_empty(), "hyperedges must be nonempty");
        for &v in vertices {
            assert!((v as usize) < self.n, "vertex {v} out of range");
        }
        let set: BTreeSet<Vertex> = vertices.iter().copied().collect();
        if !self.edges.contains(&set) {
            self.edges.push(set);
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of hyperedges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The hyperedges.
    pub fn edges(&self) -> &[BTreeSet<Vertex>] {
        &self.edges
    }

    /// One hyperedge.
    pub fn edge(&self, i: usize) -> &BTreeSet<Vertex> {
        &self.edges[i]
    }

    /// The **induced subhypergraph** on `V' ⊆ V`:
    /// `⟨V', {e ∩ V' | e ∈ E}⟩` (empty intersections dropped, vertices
    /// renumbered densely). Returns the subhypergraph and the old→new
    /// vertex map.
    ///
    /// One of the two closure operations of the paper's Theorem 6.1 /
    /// Lemma 6.4.
    pub fn induced(&self, keep: &BTreeSet<Vertex>) -> (Hypergraph, Vec<Option<Vertex>>) {
        let mut remap: Vec<Option<Vertex>> = vec![None; self.n];
        for (new, &old) in keep.iter().enumerate() {
            assert!((old as usize) < self.n, "vertex {old} out of range");
            remap[old as usize] = Some(new as Vertex);
        }
        let mut h = Hypergraph::new(keep.len());
        for e in &self.edges {
            let inter: Vec<Vertex> = e.iter().filter_map(|&v| remap[v as usize]).collect();
            if !inter.is_empty() {
                h.add_edge(&inter);
            }
        }
        (h, remap)
    }

    /// The **edge extension** of hyperedge `i` by `extra` fresh vertices:
    /// new vertices are appended to the universe and added to that single
    /// hyperedge. The other closure operation of Lemma 6.4.
    pub fn extend_edge(&self, i: usize, extra: usize) -> Hypergraph {
        assert!(i < self.edges.len(), "edge index out of range");
        let mut h = self.clone();
        let first_new = h.n as Vertex;
        h.n += extra;
        let mut e = h.edges[i].clone();
        for j in 0..extra {
            e.insert(first_new + j as Vertex);
        }
        h.edges[i] = e;
        h
    }

    /// The primal (Gaifman) graph: vertices of `H`, an undirected edge
    /// between every two distinct vertices sharing a hyperedge. Returned as
    /// an edge list; single-vertex hyperedges contribute a loop marker
    /// `(v, v)` so downstream treewidth code can see the vertex is covered.
    pub fn primal_edges(&self) -> Vec<(Vertex, Vertex)> {
        let mut out = BTreeSet::new();
        for e in &self.edges {
            let vs: Vec<Vertex> = e.iter().copied().collect();
            if vs.len() == 1 {
                out.insert((vs[0], vs[0]));
            }
            for (i, &a) in vs.iter().enumerate() {
                for &b in vs.iter().skip(i + 1) {
                    out.insert((a.min(b), a.max(b)));
                }
            }
        }
        out.into_iter().collect()
    }

    /// Vertices that occur in at least one hyperedge.
    pub fn covered_vertices(&self) -> BTreeSet<Vertex> {
        self.edges.iter().flat_map(|e| e.iter().copied()).collect()
    }

    /// Connected components of the sub-hypergraph induced by `vertices`
    /// (two vertices are connected when some hyperedge contains both and
    /// both are in `vertices`). Returns the vertex sets of the components.
    pub fn components_within(&self, vertices: &BTreeSet<Vertex>) -> Vec<BTreeSet<Vertex>> {
        let mut unvisited: BTreeSet<Vertex> = vertices.clone();
        let mut out = Vec::new();
        while let Some(&start) = unvisited.iter().next() {
            let mut comp = BTreeSet::new();
            let mut stack = vec![start];
            unvisited.remove(&start);
            comp.insert(start);
            while let Some(v) = stack.pop() {
                for e in &self.edges {
                    if e.contains(&v) {
                        for &w in e {
                            if unvisited.remove(&w) {
                                comp.insert(w);
                                stack.push(w);
                            }
                        }
                    }
                }
            }
            out.push(comp);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn induced_subhypergraph() {
        // The paper's Section 6 example: H with {a,b,c},{a,b},{b,c},{a,c};
        // the induced subhypergraph on {a,b,c} is H itself.
        let h = Hypergraph::from_edges(3, &[vec![0, 1, 2], vec![0, 1], vec![1, 2], vec![0, 2]]);
        let all: BTreeSet<Vertex> = [0, 1, 2].into_iter().collect();
        let (ind, _) = h.induced(&all);
        assert_eq!(ind.edge_count(), 4);
        // Induced on {a, b}: edges {a,b} (from both {a,b,c} and {a,b}),
        // {b}, {a}.
        let ab: BTreeSet<Vertex> = [0, 1].into_iter().collect();
        let (ind, remap) = h.induced(&ab);
        assert_eq!(ind.n(), 2);
        assert_eq!(ind.edge_count(), 3); // {0,1}, {1}, {0}
        assert_eq!(remap[2], None);
    }

    #[test]
    fn edge_extension() {
        let h = Hypergraph::from_edges(3, &[vec![0, 1], vec![1, 2]]);
        let e = h.extend_edge(0, 2);
        assert_eq!(e.n(), 5);
        assert_eq!(e.edge(0).len(), 4);
        assert!(e.edge(0).contains(&3));
        assert!(e.edge(0).contains(&4));
        assert_eq!(e.edge(1).len(), 2);
    }

    #[test]
    fn primal_graph() {
        let h = Hypergraph::from_edges(4, &[vec![0, 1, 2], vec![2, 3]]);
        let primal = h.primal_edges();
        assert!(primal.contains(&(0, 1)));
        assert!(primal.contains(&(0, 2)));
        assert!(primal.contains(&(1, 2)));
        assert!(primal.contains(&(2, 3)));
        assert_eq!(primal.len(), 4);
    }

    #[test]
    fn components() {
        let h = Hypergraph::from_edges(5, &[vec![0, 1], vec![1, 2], vec![3, 4]]);
        let all: BTreeSet<Vertex> = (0..5).collect();
        let comps = h.components_within(&all);
        assert_eq!(comps.len(), 2);
        // Remove vertex 1: {0}, {2}, {3,4}.
        let without1: BTreeSet<Vertex> = [0, 2, 3, 4].into_iter().collect();
        let comps = h.components_within(&without1);
        assert_eq!(comps.len(), 3);
    }

    #[test]
    fn dedup_edges() {
        let h = Hypergraph::from_edges(2, &[vec![0, 1], vec![1, 0]]);
        assert_eq!(h.edge_count(), 1);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_edge_rejected() {
        let _ = Hypergraph::from_edges(2, &[vec![]]);
    }
}
