//! GYO reduction: α-acyclicity and join trees.
//!
//! The Graham / Yu–Özsoyoğlu reduction repeatedly applies two rules:
//!
//! 1. delete a vertex that occurs in at most one hyperedge (an "ear"
//!    vertex);
//! 2. delete a hyperedge contained in another hyperedge (recording the
//!    containment as a join-tree edge).
//!
//! `H` is **α-acyclic** iff the reduction erases every edge; the recorded
//! containments assemble into a **join tree**, the witness Yannakakis'
//! algorithm evaluates along. Equivalently (the paper's definition), `H`
//! is acyclic iff it has a tree decomposition whose every bag is a
//! hyperedge.

use crate::hypergraph::{Hypergraph, Vertex};
use crate::jointree::JoinTree;
use std::collections::BTreeSet;

/// Outcome of a GYO reduction.
#[derive(Debug, Clone)]
pub struct GyoResult {
    /// `Some(join tree)` when acyclic, `None` otherwise.
    pub join_tree: Option<JoinTree>,
    /// Hyperedge indices that survived reduction (empty iff acyclic).
    pub residual_edges: Vec<usize>,
}

/// Runs the GYO reduction.
pub fn gyo_reduce(h: &Hypergraph) -> GyoResult {
    let m = h.edge_count();
    if m == 0 {
        return GyoResult {
            join_tree: Some(JoinTree {
                n_edges: 0,
                parent: Vec::new(),
            }),
            residual_edges: Vec::new(),
        };
    }
    // Working copies of the edges; alive flags; parent links.
    let mut edges: Vec<BTreeSet<Vertex>> = h.edges().to_vec();
    let mut alive: Vec<bool> = vec![true; m];
    let mut parent: Vec<Option<usize>> = vec![None; m];

    loop {
        let mut changed = false;

        // Rule 1: remove vertices occurring in at most one live edge.
        let mut occurrence: Vec<u32> = vec![0; h.n()];
        for (i, e) in edges.iter().enumerate() {
            if alive[i] {
                for &v in e {
                    occurrence[v as usize] += 1;
                }
            }
        }
        for e in edges
            .iter_mut()
            .enumerate()
            .filter(|(i, _)| alive[*i])
            .map(|(_, e)| e)
        {
            let before = e.len();
            e.retain(|&v| occurrence[v as usize] > 1);
            if e.len() < before {
                changed = true;
            }
        }

        // Rule 2: remove edges contained in another live edge (including
        // edges emptied by rule 1, which are contained in anything).
        for i in 0..m {
            if !alive[i] {
                continue;
            }
            if edges[i].is_empty() {
                // Attach to any other live edge, or none if it is the last.
                alive[i] = false;
                changed = true;
                if let Some(j) = (0..m).find(|&j| alive[j]) {
                    parent[i] = Some(j);
                }
                continue;
            }
            if let Some(j) = (0..m).find(|&j| j != i && alive[j] && edges[i].is_subset(&edges[j])) {
                alive[i] = false;
                parent[i] = Some(j);
                changed = true;
            }
        }

        if !changed {
            break;
        }
    }

    let residual: Vec<usize> = (0..m).filter(|&i| alive[i]).collect();
    if residual.len() <= 1 {
        // Path-compress parents onto original edge indices.
        GyoResult {
            join_tree: Some(JoinTree {
                n_edges: m,
                parent: parent.iter().map(|p| p.map(|x| x as u32)).collect(),
            }),
            residual_edges: Vec::new(),
        }
    } else {
        GyoResult {
            join_tree: None,
            residual_edges: residual,
        }
    }
}

/// `true` when the hypergraph is α-acyclic.
///
/// # Examples
///
/// ```
/// use cqapx_hypergraphs::{gyo, Hypergraph};
///
/// // A triangle of binary edges is cyclic…
/// let tri = Hypergraph::from_edges(3, &[vec![0, 1], vec![1, 2], vec![2, 0]]);
/// assert!(!gyo::is_acyclic(&tri));
///
/// // …but adding the covering 3-edge makes it acyclic (α-acyclicity is
/// // not closed under subhypergraphs — the paper's Section 6 example).
/// let covered = Hypergraph::from_edges(
///     3,
///     &[vec![0, 1], vec![1, 2], vec![2, 0], vec![0, 1, 2]],
/// );
/// assert!(gyo::is_acyclic(&covered));
/// ```
pub fn is_acyclic(h: &Hypergraph) -> bool {
    gyo_reduce(h).join_tree.is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge_acyclic() {
        let h = Hypergraph::from_edges(3, &[vec![0, 1, 2]]);
        assert!(is_acyclic(&h));
    }

    #[test]
    fn path_of_edges_acyclic() {
        let h = Hypergraph::from_edges(4, &[vec![0, 1], vec![1, 2], vec![2, 3]]);
        let r = gyo_reduce(&h);
        let jt = r.join_tree.expect("acyclic");
        jt.validate(&h).unwrap();
    }

    #[test]
    fn triangle_cyclic() {
        let h = Hypergraph::from_edges(3, &[vec![0, 1], vec![1, 2], vec![2, 0]]);
        let r = gyo_reduce(&h);
        assert!(r.join_tree.is_none());
        assert_eq!(r.residual_edges.len(), 3);
    }

    #[test]
    fn covered_triangle_acyclic() {
        let h = Hypergraph::from_edges(3, &[vec![0, 1, 2], vec![0, 1], vec![1, 2], vec![0, 2]]);
        let r = gyo_reduce(&h);
        let jt = r.join_tree.expect("acyclic");
        jt.validate(&h).unwrap();
        // All binary edges hang off the ternary edge 0.
        assert_eq!(jt.parent[1], Some(0));
        assert_eq!(jt.parent[2], Some(0));
        assert_eq!(jt.parent[3], Some(0));
    }

    #[test]
    fn star_query_acyclic() {
        // R(x,y,z), S(x), T(y), U(z)
        let h = Hypergraph::from_edges(3, &[vec![0, 1, 2], vec![0], vec![1], vec![2]]);
        assert!(is_acyclic(&h));
    }

    #[test]
    fn cycle_of_ternary_edges_cyclic() {
        // R(x1,x2,x3), R(x3,x4,x5), R(x5,x6,x1) — Example 6.6's query has a
        // Berge cycle through x1, x3, x5: α-cyclic.
        let h = Hypergraph::from_edges(6, &[vec![0, 1, 2], vec![2, 3, 4], vec![4, 5, 0]]);
        assert!(!is_acyclic(&h));
    }

    #[test]
    fn empty_hypergraph() {
        let h = Hypergraph::new(0);
        assert!(is_acyclic(&h));
    }

    #[test]
    fn duplicate_containment_chain() {
        let h = Hypergraph::from_edges(4, &[vec![0, 1, 2, 3], vec![0, 1], vec![0]]);
        let r = gyo_reduce(&h);
        let jt = r.join_tree.expect("acyclic");
        jt.validate(&h).unwrap();
    }
}
