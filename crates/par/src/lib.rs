//! **cqapx-par** — morsel-driven worker-pool primitives shared by the
//! evaluation kernel (`cqapx-cq`) and the serving engine
//! (`cqapx-engine`).
//!
//! The build environment has no crate registry, so rayon is not
//! available; this crate provides the three primitives the stack needs
//! on plain `std::thread::scope`:
//!
//! * [`ThreadBudget`] — one shared, non-blocking core budget, so
//!   batch-level and intra-query parallelism never oversubscribe the
//!   machine: a worker that wants to fan out [`ThreadBudget::claim`]s
//!   extra workers and runs sequentially when none are left;
//! * [`parallel_map`] — an order-preserving data-parallel map with
//!   **chunked** atomic-index work stealing (workers claim morsel-sized
//!   index ranges with one `fetch_add`, not one lock round-trip per
//!   item);
//! * [`parallel_chunks`] — the morsel loop itself: a contiguous index
//!   space split into fixed-size morsels, each claimed atomically and
//!   processed by one worker, results returned **in morsel order** so
//!   parallel kernels can stitch outputs deterministically.
//!
//! Determinism contract: every primitive returns results in input
//! (index/morsel) order, so a parallel kernel that concatenates them
//! reproduces its sequential output bit for bit. `threads == 1`
//! degrades to a plain loop with no thread, no atomics, no allocation
//! beyond the result vector.

#![deny(missing_docs)]
#![warn(clippy::all)]

use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// The default worker count: the machine's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The thread-count override from the `CQAPX_THREADS` environment
/// variable, when set to a positive integer. CI forces this to `2` so
/// every push exercises the parallel code paths; unset means "decide
/// locally" (engines use [`default_threads`], plain plan evaluation
/// stays sequential).
pub fn env_threads() -> Option<usize> {
    std::env::var("CQAPX_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// A shared, non-blocking budget of worker threads.
///
/// A budget created with `new(t)` holds `t - 1` *extra-worker* permits:
/// the calling thread is always the first worker, and any fan-out —
/// a batch spreading requests over workers, a join probing in parallel
/// morsels — must [`claim`](ThreadBudget::claim) permits for the rest.
/// Claims are try-only: when the budget is exhausted the claim returns
/// zero extras and the caller simply runs sequentially, so nested
/// parallelism (a batch worker whose query fans out internally) shares
/// one core budget instead of multiplying thread counts.
///
/// `new(1)` (or [`sequential`](ThreadBudget::sequential)) has zero
/// capacity: every claim short-circuits on a plain field read — no
/// atomics — which is what makes `threads = 1` compile down to the
/// sequential code path with no overhead.
#[derive(Debug)]
pub struct ThreadBudget {
    /// Total extra-worker permits (threads - 1).
    capacity: usize,
    /// Permits currently unclaimed.
    available: AtomicUsize,
}

impl ThreadBudget {
    /// A budget for `threads` total workers (`threads.max(1) - 1` extra
    /// permits).
    pub fn new(threads: usize) -> Self {
        let capacity = threads.max(1) - 1;
        ThreadBudget {
            capacity,
            available: AtomicUsize::new(capacity),
        }
    }

    /// The zero-capacity budget: every claim yields no extra workers.
    pub fn sequential() -> Self {
        ThreadBudget::new(1)
    }

    /// The process-wide budget derived from `CQAPX_THREADS`: capacity
    /// `n - 1` when the variable is set to `n`, zero otherwise. Plain
    /// (budget-less) plan evaluation runs under this budget, so setting
    /// the variable routes the whole test suite through the parallel
    /// kernels without touching any call site.
    pub fn shared() -> &'static ThreadBudget {
        static SHARED: OnceLock<ThreadBudget> = OnceLock::new();
        SHARED.get_or_init(|| ThreadBudget::new(env_threads().unwrap_or(1)))
    }

    /// Total extra-worker permits the budget was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Permits currently unclaimed (racy snapshot; for tests/stats).
    pub fn available(&self) -> usize {
        if self.capacity == 0 {
            0
        } else {
            self.available.load(Ordering::Relaxed)
        }
    }

    /// Claims up to `want` extra-worker permits, returning a [`Lease`]
    /// holding however many (possibly zero) were available. Never
    /// blocks. Dropping the lease returns the permits.
    pub fn claim(&self, want: usize) -> Lease<'_> {
        if self.capacity == 0 || want == 0 {
            return Lease {
                budget: None,
                extra: 0,
            };
        }
        let mut cur = self.available.load(Ordering::Relaxed);
        loop {
            let take = cur.min(want);
            if take == 0 {
                return Lease {
                    budget: None,
                    extra: 0,
                };
            }
            match self.available.compare_exchange_weak(
                cur,
                cur - take,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    return Lease {
                        budget: Some(self),
                        extra: take,
                    }
                }
                Err(seen) => cur = seen,
            }
        }
    }
}

/// A claim on extra-worker permits; permits return to the budget on
/// drop.
#[derive(Debug)]
pub struct Lease<'a> {
    budget: Option<&'a ThreadBudget>,
    extra: usize,
}

impl Lease<'_> {
    /// Extra workers granted (0 = run sequentially).
    pub fn extra(&self) -> usize {
        self.extra
    }

    /// Total workers the holder may run: the claimed extras plus the
    /// calling thread itself.
    pub fn workers(&self) -> usize {
        self.extra + 1
    }
}

impl Drop for Lease<'_> {
    fn drop(&mut self) {
        if let Some(b) = self.budget {
            b.available.fetch_add(self.extra, Ordering::AcqRel);
        }
    }
}

/// A fixed-length buffer whose slots are written by concurrent workers
/// **at disjoint indices** through raw pointers, so no slot ever needs a
/// lock and no `&mut` aliasing is created.
///
/// # Safety contract
///
/// Callers must guarantee that every index is accessed by at most one
/// thread between synchronization points (here: the `thread::scope`
/// join). The morsel primitives uphold this by construction — an
/// atomic `fetch_add` hands each index range to exactly one worker.
pub struct DisjointWriter<'a, T> {
    base: *mut T,
    len: usize,
    _borrow: PhantomData<&'a mut [T]>,
}

// SAFETY: workers only touch disjoint indices (see the type-level
// contract), and `T: Send` makes moving values in from worker threads
// sound. The scope join synchronizes all writes before the buffer is
// read again.
unsafe impl<T: Send> Sync for DisjointWriter<'_, T> {}

impl<'a, T> DisjointWriter<'a, T> {
    /// Wraps a mutable slice for disjoint-index writes.
    pub fn new(slice: &'a mut [T]) -> Self {
        DisjointWriter {
            base: slice.as_mut_ptr(),
            len: slice.len(),
            _borrow: PhantomData,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when there are no slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Writes `value` into slot `i`, dropping the previous value.
    ///
    /// # Safety
    ///
    /// `i < len`, and no other thread accesses slot `i` concurrently.
    pub unsafe fn write(&self, i: usize, value: T) {
        debug_assert!(i < self.len);
        *self.base.add(i) = value;
    }

    /// Reads a copy of slot `i`.
    ///
    /// # Safety
    ///
    /// `i < len`, and no other thread writes slot `i` concurrently.
    pub unsafe fn read(&self, i: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(i < self.len);
        *self.base.add(i)
    }
}

/// Item storage for [`parallel_map`]: slots taken (moved out) by the
/// single worker that claimed the index. Same disjoint-index contract
/// as [`DisjointWriter`].
struct TakeSlots<T> {
    // Kept alive so the heap buffer outlives all raw accesses; the
    // pointer is snapshotted once because `Vec` moves must not re-read
    // it mid-scope.
    _own: UnsafeCell<Vec<Option<T>>>,
    base: *mut Option<T>,
}

// SAFETY: disjoint-index discipline, see `DisjointWriter`.
unsafe impl<T: Send> Sync for TakeSlots<T> {}

impl<T> TakeSlots<T> {
    fn new(items: Vec<T>) -> Self {
        let mut v: Vec<Option<T>> = items.into_iter().map(Some).collect();
        let base = v.as_mut_ptr();
        TakeSlots {
            _own: UnsafeCell::new(v),
            base,
        }
    }

    /// # Safety
    ///
    /// `i` in bounds and claimed by exactly one thread.
    unsafe fn take(&self, i: usize) -> T {
        (*self.base.add(i)).take().expect("each index claimed once")
    }
}

/// Applies `f` to every item on up to `threads` worker threads,
/// returning results in input order.
///
/// Work distribution is **chunked claiming**: one shared atomic cursor
/// advances in morsel-sized steps (`max(1, n / (threads · 8))` items),
/// so contended workers pay one `fetch_add` per chunk instead of a
/// mutex round-trip per item, while the tail still load-balances.
/// `threads == 1` (or a single item) degrades to a sequential map with
/// no thread overhead.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = (n / (threads * 8)).max(1);
    let slots = TakeSlots::new(items);
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let out = DisjointWriter::new(&mut results);
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                for i in start..end {
                    // SAFETY: the cursor hands [start, end) to this
                    // worker exactly once; i < n.
                    let item = unsafe { slots.take(i) };
                    let r = f(item);
                    unsafe { out.write(i, Some(r)) };
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("worker filled every claimed slot"))
        .collect()
}

/// Splits the index space `0..len` into contiguous morsels of
/// `morsel` indices, runs `f(morsel_index, range)` on up to `workers`
/// threads (each morsel claimed atomically by one worker), and returns
/// the results **in morsel order** — the stitching order that makes a
/// parallel kernel's concatenated output identical to its sequential
/// one.
///
/// `workers <= 1` or a single morsel runs inline on the caller.
pub fn parallel_chunks<R, F>(len: usize, morsel: usize, workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, Range<usize>) -> R + Sync,
{
    let morsel = morsel.max(1);
    let chunks = len.div_ceil(morsel);
    let range_of = |c: usize| (c * morsel)..(((c + 1) * morsel).min(len));
    let workers = workers.clamp(1, chunks.max(1));
    if workers <= 1 || chunks <= 1 {
        return (0..chunks).map(|c| f(c, range_of(c))).collect();
    }
    let mut results: Vec<Option<R>> = (0..chunks).map(|_| None).collect();
    let out = DisjointWriter::new(&mut results);
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let c = next.fetch_add(1, Ordering::Relaxed);
                if c >= chunks {
                    break;
                }
                let r = f(c, range_of(c));
                // SAFETY: morsel c claimed exactly once; c < chunks.
                unsafe { out.write(c, Some(r)) };
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("worker filled every claimed morsel"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), 8, |x: u64| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<u64>>());
    }

    #[test]
    fn single_thread_and_empty() {
        assert_eq!(parallel_map(vec![1, 2, 3], 1, |x| x + 1), vec![2, 3, 4]);
        assert_eq!(parallel_map(Vec::<u32>::new(), 4, |x| x), Vec::<u32>::new());
    }

    #[test]
    fn more_threads_than_items() {
        assert_eq!(parallel_map(vec![5], 16, |x| x * 2), vec![10]);
    }

    /// Regression for the chunked-claiming rewrite: under heavy
    /// contention (many workers, tiny chunks, uneven per-item work) the
    /// results must still come back in input order, each item processed
    /// exactly once.
    #[test]
    fn chunked_claiming_keeps_input_order_under_contention() {
        let n: usize = 10_000;
        let calls = AtomicU64::new(0);
        let out = parallel_map((0..n).collect(), 8, |i: usize| {
            calls.fetch_add(1, Ordering::Relaxed);
            // Uneven work so workers interleave chunk claims.
            let mut acc = i as u64;
            for _ in 0..(i % 97) {
                acc = acc.wrapping_mul(0x9E37_79B9).rotate_left(7);
            }
            (i, acc)
        });
        assert_eq!(calls.load(Ordering::Relaxed), n as u64);
        for (pos, (i, _)) in out.iter().enumerate() {
            assert_eq!(pos, *i, "result out of input order");
        }
    }

    #[test]
    fn chunks_cover_range_in_order() {
        let got = parallel_chunks(23, 5, 4, |c, r| (c, r.start, r.end));
        assert_eq!(
            got,
            vec![(0, 0, 5), (1, 5, 10), (2, 10, 15), (3, 15, 20), (4, 20, 23)]
        );
        // Degenerate cases.
        assert!(parallel_chunks(0, 5, 4, |c, _| c).is_empty());
        assert_eq!(parallel_chunks(3, 8, 4, |_, r| r.len()), vec![3]);
    }

    #[test]
    fn budget_claims_and_returns() {
        let b = ThreadBudget::new(4);
        assert_eq!(b.capacity(), 3);
        let l1 = b.claim(2);
        assert_eq!(l1.extra(), 2);
        assert_eq!(l1.workers(), 3);
        let l2 = b.claim(5);
        assert_eq!(l2.extra(), 1, "only one permit left");
        let l3 = b.claim(1);
        assert_eq!(l3.extra(), 0, "exhausted: sequential fallback");
        drop(l1);
        drop(l2);
        drop(l3);
        assert_eq!(b.available(), 3, "permits return on drop");
    }

    #[test]
    fn sequential_budget_never_grants() {
        let b = ThreadBudget::sequential();
        assert_eq!(b.capacity(), 0);
        assert_eq!(b.claim(8).extra(), 0);
        assert_eq!(ThreadBudget::new(0).capacity(), 0, "0 threads = 1 worker");
    }

    #[test]
    fn budget_is_shared_across_threads() {
        let b = ThreadBudget::new(8);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        let l = b.claim(3);
                        assert!(l.extra() <= 3);
                        std::hint::black_box(&l);
                    }
                });
            }
        });
        assert_eq!(b.available(), 7, "all permits returned after the scope");
    }
}
