//! E12: ablation — exact quotient enumeration vs greedy anytime mode.

use cqapx_bench::workloads;
use cqapx_core::{all_approximations, one_approximation, ApproxOptions, TwK};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    for n in [6usize, 7, 8] {
        let q = workloads::random_cyclic_query(n, 3);
        group.bench_with_input(BenchmarkId::new("exact", n), &q, |b, q| {
            b.iter(|| all_approximations(q, &TwK(1), &ApproxOptions::default()).approximations)
        });
        group.bench_with_input(BenchmarkId::new("greedy", n), &q, |b, q| {
            b.iter(|| one_approximation(q, &TwK(1), 24))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
