//! E11 / Theorem 4.12: gadget verification costs and the exponential
//! growth of the Graph Acyclic Approximation decision procedure.

use cqapx_gadgets::{decision, dp};
use cqapx_graphs::Digraph;
use cqapx_structures::HomProblem;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("dp_gadgets");
    group.sample_size(10);

    group.bench_function("build_big_T", |b| b.iter(|| dp::big_t().g.n()));

    group.bench_function("claim_8_3_unique_hom", |b| {
        let q = dp::q_star().g.to_structure();
        let t1 = dp::t_i(1).g.to_structure();
        b.iter(|| assert_eq!(HomProblem::new(&q, &t1).count(Some(2)), 1))
    });

    group.bench_function("claim_8_9_chooser_table_21", |b| {
        let t = dp::big_t();
        let g = dp::choosers::extended_chooser_21();
        b.iter(|| dp::choosers::pair_table(&g, &t))
    });

    for k in [2usize, 3, 4] {
        group.bench_with_input(
            BenchmarkId::new("graph_acyclic_approximation_C2k", 2 * k),
            &k,
            |b, &k| {
                let cyc = Digraph::cycle(2 * k);
                let k2 = Digraph::from_edges(2, &[(0, 1), (1, 0)]);
                b.iter(|| {
                    assert_eq!(
                        decision::graph_acyclic_approximation(&cyc, &k2, u64::MAX),
                        Some(true)
                    )
                })
            },
        );
    }

    group.bench_function("exact_acyclic_homomorphism_G3_P4", |b| {
        let g3 = cqapx_gadgets::tight::g_k(3);
        let p4 = Digraph::directed_path(4);
        b.iter(|| decision::exact_acyclic_homomorphism(&g3, &p4))
    });
    group.finish();
}

criterion_group!(benches, bench_dp);
criterion_main!(benches);
