//! E3 / Figures 3–5: building and verifying the exponential family of
//! Proposition 4.4 (construction, fold incomparability, core checks).

use cqapx_gadgets::prop44;
use cqapx_structures::{core_ops, HomProblem, Pointed};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_prop44(c: &mut Criterion) {
    let mut group = c.benchmark_group("prop44");
    group.sample_size(10);

    group.bench_function("build_G3", |b| b.iter(|| prop44::g_n(3).0.n()));

    group.bench_function("claim_4_6_incomparable", |b| {
        let dac = prop44::digraph_d_ac().to_structure();
        let dbd = prop44::digraph_d_bd().to_structure();
        b.iter(|| {
            assert!(!HomProblem::new(&dac, &dbd).exists());
            assert!(!HomProblem::new(&dbd, &dac).exists());
        })
    });

    group.bench_function("core_check_D_ac", |b| {
        let dac = Pointed::boolean(prop44::digraph_d_ac().to_structure());
        b.iter(|| assert!(core_ops::is_core(&dac)))
    });

    for n in 1..=2usize {
        group.bench_with_input(BenchmarkId::new("fold_family", n), &n, |b, &n| {
            let words = prop44::all_words(n);
            b.iter(|| {
                let folds: Vec<_> = words
                    .iter()
                    .map(|w| prop44::g_n_s(w).to_structure())
                    .collect();
                for (i, a) in folds.iter().enumerate() {
                    for (j, bb) in folds.iter().enumerate() {
                        if i != j {
                            assert!(!HomProblem::new(a, bb).exists());
                        }
                    }
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_prop44);
criterion_main!(benches);
