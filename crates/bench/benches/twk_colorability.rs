//! E8 / Theorem 5.10, Corollary 5.11: `(k+1)`-colorability tests vs the
//! full TW(k)-approximation decision.

use cqapx_bench::workloads;
use cqapx_core::{is_approximation, trichotomy, ApproxOptions, TwK};
use cqapx_graphs::{coloring, generators};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_twk(c: &mut Criterion) {
    let mut group = c.benchmark_group("twk_colorability");
    group.sample_size(10);
    for (name, g) in [
        ("W5", generators::wheel(5)),
        ("K4", generators::complete_digraph(4)),
        ("W7", generators::wheel(7)),
    ] {
        let q = workloads::graph_query(&g);
        group.bench_function(format!("colorability_3/{name}"), |b| {
            b.iter(|| coloring::is_k_colorable(&g, 3))
        });
        group.bench_function(format!("nontrivial_tw2/{name}"), |b| {
            b.iter(|| trichotomy::has_nontrivial_twk_approximation(&q, 2))
        });
    }
    // Prop 5.12 reduction instance: deciding whether Q^triv_3 is a TW(2)
    // approximation (NP-hard in general).
    group.bench_function("prop512_identify_triangle", |b| {
        let s = cqapx_gadgets::decision::prop_5_12_instance(&[(0, 1), (1, 2), (2, 0)], 3, 2);
        let q = cqapx_cq::query_from_tableau(&cqapx_structures::Pointed::boolean(s));
        let triv3 = cqapx_core::trivial_k_query(2);
        b.iter(|| {
            assert_eq!(
                is_approximation(&q, &triv3, &TwK(2), &ApproxOptions::default()),
                Some(true)
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_twk);
criterion_main!(benches);
