//! E13 hot paths: the serving engine's per-request overhead, the
//! approximation cache's amortization, and parallel batch throughput.

use cqapx_bench::workloads;
use cqapx_engine::{ApproxClassChoice, Engine, EngineConfig, EvalMode, Request};
use cqapx_structures::Structure;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn path_db(n: u32) -> Structure {
    let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    Structure::digraph(n as usize, &edges)
}

fn sandwich_config() -> EngineConfig {
    EngineConfig {
        naive_cost_budget: 0.0, // force every cyclic query onto the sandwich
        approx_class: ApproxClassChoice::TwK(1),
        ..EngineConfig::default()
    }
}

/// First-vs-cached approximation: `cold` builds a fresh engine per
/// iteration (every request recomputes the single-exponential search),
/// `warm` shares one engine (every request after the first is a cache
/// hit). The gap between the two medians is the cache's payoff.
fn bench_cache_amortization(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_cache");
    group.sample_size(10);
    let (_, q2) = workloads::serving_suite().pop().expect("suite nonempty");
    let db = path_db(16);

    group.bench_function("cold_miss_every_time", |b| {
        b.iter(|| {
            let engine = Engine::new(sandwich_config());
            let d = engine.register_database("p", db.clone());
            let q = engine.prepare_query("q2", q2.clone());
            engine.execute(&Request {
                query: q,
                db: d,
                mode: EvalMode::CertainOnly,
                timeout: None,
            })
        })
    });

    let engine = Engine::new(sandwich_config());
    let d = engine.register_database("p", db.clone());
    let q = engine.prepare_query("q2", q2.clone());
    engine.execute(&Request {
        query: q,
        db: d,
        mode: EvalMode::CertainOnly,
        timeout: None,
    }); // prime the cache
    group.bench_function("warm_hit", |b| {
        b.iter(|| {
            engine.execute(&Request {
                query: q,
                db: d,
                mode: EvalMode::CertainOnly,
                timeout: None,
            })
        })
    });
    group.finish();
}

/// Mixed-suite batches at increasing sizes: wall time per batch (the
/// printed median divided by the batch size is per-request latency).
fn bench_batch_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_batch");
    group.sample_size(10);
    let engine = Engine::new(EngineConfig::default());
    let db_a = engine.register_database("path", path_db(24));
    let db_b = engine.register_database("dag", workloads::layered_dag(6, 6, 0.5, 11));
    let ids: Vec<_> = workloads::serving_suite()
        .into_iter()
        .map(|(name, q)| engine.prepare_query(name, q))
        .collect();

    for batch in [16usize, 64, 256] {
        let reqs: Vec<Request> = (0..batch)
            .map(|i| Request::new(ids[i % ids.len()], if i % 2 == 0 { db_a } else { db_b }))
            .collect();
        group.bench_with_input(BenchmarkId::new("mixed_suite", batch), &reqs, |b, reqs| {
            b.iter(|| engine.execute_batch(reqs))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cache_amortization, bench_batch_throughput);
criterion_main!(benches);
