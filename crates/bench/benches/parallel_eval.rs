//! Morsel-parallel evaluation benchmarks: the `exp_eval` parallel
//! workloads (`join_heavy_free`, `cyclic_c6_free`) under explicit
//! thread budgets {1, 2, 4}, plus engine batch throughput under the
//! shared budget (see the `parallel` section of `BENCH_eval.json` for
//! the tracked numbers).

use cqapx_bench::workloads;
use cqapx_cq::eval::{AcyclicPlan, DecomposedPlan};
use cqapx_cq::parse_cq;
use cqapx_engine::{Engine, EngineConfig, Request};
use cqapx_par::ThreadBudget;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_join_heavy_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_eval");
    group.sample_size(10);
    let q = parse_cq("Q(x1, x4) :- E(x1,x2), E(x2,x3), E(x3,x4)").unwrap();
    let db = workloads::random_db(700, 4.0, 13);
    let plan = AcyclicPlan::compile(&q).expect("acyclic");
    for threads in [1usize, 2, 4] {
        let budget = ThreadBudget::new(threads);
        group.bench_function(BenchmarkId::new("join_heavy", threads), |b| {
            b.iter(|| plan.eval_cached_budget(&db, None, &budget).0.len())
        });
    }
    group.finish();
}

fn bench_c6_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_eval");
    group.sample_size(10);
    let q = parse_cq("Q(a, d) :- E(a,b), E(b,c), E(c,d), E(d,e), E(e,f), E(f,a)").unwrap();
    let db = workloads::random_db(300, 6.0, 29);
    let plan = DecomposedPlan::compile(&q, 2).expect("C6 has treewidth 2");
    for threads in [1usize, 2, 4] {
        let budget = ThreadBudget::new(threads);
        group.bench_function(BenchmarkId::new("cyclic_c6", threads), |b| {
            b.iter(|| plan.eval_cached_budget(&db, None, &budget).0.len())
        });
    }
    group.finish();
}

fn bench_batch_shared_budget(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_batch");
    group.sample_size(10);
    for threads in [1usize, 4] {
        let engine = Engine::new(EngineConfig {
            threads,
            ..EngineConfig::default()
        });
        let db = engine.register_database("dag", workloads::layered_dag(9, 40, 0.35, 11));
        let hop3 = engine.prepare_query(
            "hop3",
            parse_cq("Q(x1, x4) :- E(x1,x2), E(x2,x3), E(x3,x4)").unwrap(),
        );
        let hop2 = engine.prepare_query("hop2", parse_cq("Q(x, z) :- E(x, y), E(y, z)").unwrap());
        let reqs: Vec<Request> = (0..16)
            .map(|i| Request::new(if i % 2 == 0 { hop3 } else { hop2 }, db))
            .collect();
        group.bench_function(BenchmarkId::new("batch16", threads), |b| {
            b.iter(|| engine.execute_batch(&reqs).len())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_join_heavy_parallel,
    bench_c6_parallel,
    bench_batch_shared_budget
);
criterion_main!(benches);
