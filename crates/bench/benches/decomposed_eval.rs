//! Bounded-treewidth tier microbenchmarks: `DecomposedPlan`
//! (Yannakakis over tree-decomposition bags on the shared plan IR)
//! against the compiled naive backtracking join on the cyclic
//! workloads of `exp_eval` (see `BENCH_eval.json` for the tracked
//! numbers), plus the warm/cold bag-materialization cache split.

use cqapx_bench::workloads;
use cqapx_cq::eval::{DecomposedPlan, MaterializationCache, NaivePlan};
use cqapx_cq::parse_cq;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_c4_free(c: &mut Criterion) {
    let mut group = c.benchmark_group("decomposed_eval");
    group.sample_size(10);
    let q = parse_cq("Q(x1, x4) :- E(x1,x2), E(x2,x3), E(x3,x4), E(x4,x1)").unwrap();
    let db = workloads::random_db(200, 5.0, 19);
    let naive = NaivePlan::compile(q.clone());
    let plan = DecomposedPlan::compile(&q, 2).expect("C4 has treewidth 2");
    assert_eq!(naive.eval(&db), plan.eval(&db));
    group.bench_function("naive/c4_free", |b| b.iter(|| naive.eval(&db).len()));
    group.bench_function("decomposed/c4_free", |b| b.iter(|| plan.eval(&db).len()));
    group.finish();
}

fn bench_c6_connector_bags(c: &mut Criterion) {
    let mut group = c.benchmark_group("decomposed_eval");
    group.sample_size(10);
    let q = parse_cq("Q(a, d) :- E(a,b), E(b,c), E(c,d), E(d,e), E(e,f), E(f,a)").unwrap();
    let db = workloads::random_db(150, 5.0, 29);
    let naive = NaivePlan::compile(q.clone());
    let plan = DecomposedPlan::compile(&q, 2).expect("C6 has treewidth 2");
    assert_eq!(naive.eval(&db), plan.eval(&db));
    group.bench_function("naive/c6_free", |b| b.iter(|| naive.eval(&db).len()));
    group.bench_function("decomposed/c6_free", |b| b.iter(|| plan.eval(&db).len()));
    group.finish();
}

fn bench_bag_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("decomposed_bag_cache");
    group.sample_size(10);
    let q = parse_cq("Q(x1, x4) :- E(x1,x2), E(x2,x3), E(x3,x4), E(x4,x1)").unwrap();
    let db = workloads::random_db(200, 5.0, 19);
    let plan = DecomposedPlan::compile(&q, 2).expect("acyclic");
    group.bench_function("cold_miss_every_time", |b| {
        b.iter(|| {
            let cache = MaterializationCache::new();
            plan.eval_cached(&db, Some(&cache)).0.len()
        })
    });
    let warm = MaterializationCache::new();
    plan.eval_cached(&db, Some(&warm));
    group.bench_function("warm_hit", |b| {
        b.iter(|| plan.eval_cached(&db, Some(&warm)).0.len())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_c4_free,
    bench_c6_connector_bags,
    bench_bag_cache
);
criterion_main!(benches);
