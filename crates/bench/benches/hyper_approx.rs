//! E10 / Section 6: hypergraph-based approximation costs (Example 6.6
//! recovery, hypertree-width membership checks, repair search).

use cqapx_core::{all_approximations, Acyclic, ApproxOptions, HtwK, QueryClass};
use cqapx_cq::{parse_cq, tableau_of};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_hyper(c: &mut Criterion) {
    let mut group = c.benchmark_group("hyper_approx");
    group.sample_size(10);
    let q66 = parse_cq("Q() :- R(x1,x2,x3), R(x3,x4,x5), R(x5,x6,x1)").unwrap();

    group.bench_function("example_66_acyclic", |b| {
        b.iter(|| {
            let rep = all_approximations(&q66, &Acyclic, &ApproxOptions::default());
            assert_eq!(rep.approximations.len(), 3);
        })
    });

    group.bench_function("example_66_htw2_membership", |b| {
        let t = tableau_of(&q66);
        b.iter(|| assert!(HtwK(2).contains_tableau(&t)))
    });

    let intro = parse_cq("Q() :- R(x,u,y), R(y,v,z), R(z,w,x)").unwrap();
    group.bench_function("intro_ternary_acyclic", |b| {
        b.iter(|| all_approximations(&intro, &Acyclic, &ApproxOptions::default()).approximations)
    });
    group.finish();
}

criterion_group!(benches, bench_hyper);
criterion_main!(benches);
