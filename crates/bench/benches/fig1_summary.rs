//! E1 / Figure 1: time to compute approximations per class, over the
//! paper-derived query suite.

use cqapx_bench::workloads;
use cqapx_core::{all_approximations, Acyclic, ApproxOptions, HtwK, QueryClass, TwK};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_summary");
    group.sample_size(10);
    let opts = ApproxOptions::default();
    for (name, q) in workloads::fig1_suite() {
        let classes: Vec<(&str, Box<dyn QueryClass>)> = vec![
            ("TW1", Box::new(TwK(1))),
            ("TW2", Box::new(TwK(2))),
            ("AC", Box::new(Acyclic)),
            ("HTW2", Box::new(HtwK(2))),
        ];
        for (cname, class) in classes {
            group.bench_function(format!("{name}/{cname}"), |b| {
                b.iter(|| {
                    let rep = all_approximations(&q, class.as_ref(), &opts);
                    assert!(!rep.approximations.is_empty());
                    rep.approximations.len()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
