//! E6 / Proposition 5.6: the tight family — hom checks scale with k, the
//! exhaustive uniqueness search pays Bell(2k+2).

use cqapx_bench::workloads;
use cqapx_core::{all_approximations, ApproxOptions, TwK};
use cqapx_gadgets::tight;
use cqapx_graphs::Digraph;
use cqapx_structures::HomProblem;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_tight(c: &mut Criterion) {
    let mut group = c.benchmark_group("tight");
    group.sample_size(10);
    for k in [3usize, 5, 8] {
        group.bench_with_input(BenchmarkId::new("gk_to_path", k), &k, |b, &k| {
            let g = tight::g_k(k).to_structure();
            let p = Digraph::directed_path(k + 1).to_structure();
            b.iter(|| assert!(HomProblem::new(&g, &p).exists()))
        });
    }
    group.bench_function("g3_exhaustive_unique", |b| {
        let q = workloads::graph_query(&tight::g_k(3));
        b.iter(|| {
            let rep = all_approximations(&q, &TwK(1), &ApproxOptions::default());
            assert_eq!(rep.approximations.len(), 1);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_tight);
criterion_main!(benches);
