//! E5: the motivating speedup — naive evaluation of a cyclic 28-variable
//! query vs Yannakakis on its acyclic approximation, on growing layered
//! DAGs.

use cqapx_bench::workloads;
use cqapx_cq::eval::naive::eval_boolean_naive;
use cqapx_cq::eval::AcyclicPlan;
use cqapx_gadgets::prop44;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_speedup(c: &mut Criterion) {
    let mut group = c.benchmark_group("speedup");
    group.sample_size(10);
    let (d, _) = prop44::digraph_d();
    let q = workloads::graph_query(&d);
    let q_prime = workloads::graph_query(&prop44::digraph_d_ac());
    let plan = AcyclicPlan::compile(&q_prime).expect("acyclic");

    for layers in [6usize, 10] {
        let db = workloads::layered_dag(layers, 6, 0.55, 11);
        group.bench_with_input(BenchmarkId::new("naive_Q", layers), &db, |b, db| {
            b.iter(|| eval_boolean_naive(&q, db))
        });
        group.bench_with_input(
            BenchmarkId::new("yannakakis_Qprime", layers),
            &db,
            |b, db| b.iter(|| plan.eval_boolean(db)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_speedup);
criterion_main!(benches);
