//! E4 / Theorem 5.1: polynomial classification vs exponential
//! approximation — the complexity gap, measured.

use cqapx_bench::workloads;
use cqapx_core::{all_approximations, classify_boolean_graph_query, ApproxOptions, TwK};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_trichotomy(c: &mut Criterion) {
    let mut group = c.benchmark_group("trichotomy");
    group.sample_size(10);
    let suite = [
        ("C3", workloads::cycle_query(3)),
        ("C6", workloads::cycle_query(6)),
        (
            "Q2",
            cqapx_cq::parse_cq(
                "Q() :- E(x,y), E(y,z), E(z,u), E(x1,y1), E(y1,z1), E(z1,u1), E(x,z1), E(y,u1)",
            )
            .unwrap(),
        ),
    ];
    for (name, q) in &suite {
        group.bench_function(format!("classify/{name}"), |b| {
            b.iter(|| classify_boolean_graph_query(q))
        });
        group.bench_function(format!("approximate/{name}"), |b| {
            b.iter(|| all_approximations(q, &TwK(1), &ApproxOptions::default()).approximations)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_trichotomy);
criterion_main!(benches);
