//! Hom-engine microbenchmarks: the refactored solver vs the frozen seed
//! engine on the workloads of `exp_hom` (see `BENCH_hom.json` for the
//! tracked numbers).

use cqapx_bench::{baseline, workloads};
use cqapx_core::{all_approximations_tableaux, ApproxOptions, QueryClass, TwK};
use cqapx_cq::tableau_of;
use cqapx_structures::{core_of, HomProblem, HomSolver, Pointed};
use criterion::{criterion_group, criterion_main, Criterion};

fn cycle_union() -> Pointed {
    let mut g = cqapx_graphs::Digraph::cycle(3).to_structure();
    for k in [6usize, 9, 12] {
        g = g.disjoint_union(&cqapx_graphs::Digraph::cycle(k).to_structure());
    }
    Pointed::boolean(g)
}

fn bench_hom_checks(c: &mut Criterion) {
    let mut group = c.benchmark_group("hom_engine");
    group.sample_size(10);
    let pij = cqapx_gadgets::dp::p_ij(2, 5).to_digraph().to_structure();
    let paths: Vec<_> = (1..=7)
        .map(|i| cqapx_gadgets::dp::p_i(i).to_digraph().to_structure())
        .collect();
    group.bench_function("seed_engine/p25_row", |b| {
        b.iter(|| {
            paths
                .iter()
                .filter(|p| baseline::BaselineHom::new(&pij, p).exists())
                .count()
        })
    });
    group.bench_function("one_shot/p25_row", |b| {
        b.iter(|| {
            paths
                .iter()
                .filter(|p| HomProblem::new(&pij, p).exists())
                .count()
        })
    });
    group.bench_function("compiled/p25_row", |b| {
        b.iter(|| {
            let solver = HomSolver::compile(&pij);
            paths.iter().filter(|p| solver.run(p).exists()).count()
        })
    });
    group.finish();
}

fn bench_core(c: &mut Criterion) {
    let mut group = c.benchmark_group("core");
    group.sample_size(10);
    let p = cycle_union();
    group.bench_function("seed_engine/cycle_union", |b| {
        b.iter(|| baseline::baseline_core_of(&p).structure.universe_size())
    });
    group.bench_function("solver/cycle_union", |b| {
        b.iter(|| core_of(&p).core.structure.universe_size())
    });
    group.finish();
}

fn bench_approx(c: &mut Criterion) {
    let mut group = c.benchmark_group("approx_search");
    group.sample_size(10);
    let t = tableau_of(&workloads::random_cyclic_query(8, 0));
    let in_class = |qt: &Pointed| TwK(1).contains_tableau(qt);
    group.bench_function("seed_engine/random8_tw1", |b| {
        b.iter(|| baseline::baseline_all_approximations_tableaux(&t, &in_class, u64::MAX).len())
    });
    group.bench_function("solver_memo/random8_tw1", |b| {
        b.iter(|| {
            all_approximations_tableaux(&t, &TwK(1), &ApproxOptions::default())
                .0
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_hom_checks, bench_core, bench_approx);
criterion_main!(benches);
