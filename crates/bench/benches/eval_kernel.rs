//! Evaluation-kernel microbenchmarks: the columnar `FlatRelation`
//! pipeline vs the frozen row-based evaluator on the workloads of
//! `exp_eval` (see `BENCH_eval.json` for the tracked numbers), plus the
//! engine-level materialization cache warm/cold split.

use cqapx_bench::{baseline, workloads};
use cqapx_cq::eval::{AcyclicPlan, MaterializationCache};
use cqapx_cq::parse_cq;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_full_reducer(c: &mut Criterion) {
    let mut group = c.benchmark_group("eval_kernel");
    group.sample_size(10);
    let q = parse_cq("Q() :- E(x1,x2), E(x2,x3), E(x3,x4), E(x4,x5), E(x5,x6)").unwrap();
    let db = workloads::layered_dag(7, 24, 0.35, 11);
    let frozen = baseline::BaselineAcyclicPlan::compile(&q).expect("acyclic");
    let plan = AcyclicPlan::compile(&q).expect("acyclic");
    group.bench_function("row_based/bool_path", |b| {
        b.iter(|| frozen.eval_boolean(&db))
    });
    group.bench_function("columnar/bool_path", |b| b.iter(|| plan.eval_boolean(&db)));
    group.finish();
}

fn bench_join_heavy(c: &mut Criterion) {
    let mut group = c.benchmark_group("eval_kernel");
    group.sample_size(10);
    let q = parse_cq("Q(x1, x4) :- E(x1,x2), E(x2,x3), E(x3,x4)").unwrap();
    let db = workloads::random_db(400, 3.5, 13);
    let frozen = baseline::BaselineAcyclicPlan::compile(&q).expect("acyclic");
    let plan = AcyclicPlan::compile(&q).expect("acyclic");
    group.bench_function("row_based/hop3", |b| b.iter(|| frozen.eval(&db).len()));
    group.bench_function("columnar/hop3", |b| b.iter(|| plan.eval(&db).len()));
    group.finish();
}

fn bench_mat_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("mat_cache");
    group.sample_size(10);
    let q = parse_cq("Q(x, z) :- E(x, y), E(y, z)").unwrap();
    let db = workloads::layered_dag(7, 24, 0.35, 11);
    let plan = AcyclicPlan::compile(&q).expect("acyclic");
    group.bench_function("cold_miss_every_time", |b| {
        b.iter(|| {
            let cache = MaterializationCache::new();
            plan.eval_cached(&db, Some(&cache)).0.len()
        })
    });
    let warm = MaterializationCache::new();
    plan.eval_cached(&db, Some(&warm));
    group.bench_function("warm_hit", |b| {
        b.iter(|| plan.eval_cached(&db, Some(&warm)).0.len())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_full_reducer,
    bench_join_heavy,
    bench_mat_cache
);
criterion_main!(benches);
