//! The **frozen pre-refactor homomorphism engine**, kept verbatim (minus
//! docs) as a measurement baseline and differential-test oracle.
//!
//! This is the seed's `cqapx_structures::hom` search loop: per-call
//! target-index construction, per-call source compilation, forward
//! checking seeded from the tuples incident to the last assigned
//! variable. The live engine (`cqapx_structures::solver::HomSolver`)
//! replaced it with cached per-structure indexes, compiled reusable
//! sources and a shared-budget GAC queue; the two must stay
//! *semantically* identical — `tests/hom_differential.rs` checks that on
//! random structures — while `exp_hom` records how far apart they are in
//! time (`BENCH_hom.json`).
//!
//! Do not "improve" this module: its value is being exactly the engine
//! the speedup claims are measured against.

use cqapx_structures::{Element, Pointed, RelId, Structure, Tuple};
use std::collections::HashSet;
use std::ops::ControlFlow;

/// The seed engine's search problem (pre-refactor `HomProblem`).
pub struct BaselineHom<'a> {
    source: &'a Structure,
    target: &'a Structure,
    pins: Vec<(Element, Element)>,
    excluded: Vec<Element>,
    injective: bool,
}

impl<'a> BaselineHom<'a> {
    /// Creates a search problem for homomorphisms `source → target`.
    pub fn new(source: &'a Structure, target: &'a Structure) -> Self {
        assert_eq!(
            source.vocabulary(),
            target.vocabulary(),
            "homomorphisms need a common vocabulary"
        );
        BaselineHom {
            source,
            target,
            pins: Vec::new(),
            excluded: Vec::new(),
            injective: false,
        }
    }

    /// Forces `h(src) = tgt`.
    pub fn pin(mut self, src: Element, tgt: Element) -> Self {
        self.pins.push((src, tgt));
        self
    }

    /// Forces `h(src[i]) = tgt[i]` for every position.
    pub fn pin_tuple(mut self, src: &[Element], tgt: &[Element]) -> Self {
        assert_eq!(src.len(), tgt.len(), "pinned tuples must align");
        self.pins
            .extend(src.iter().copied().zip(tgt.iter().copied()));
        self
    }

    /// Forbids a target element from appearing in the image.
    pub fn exclude_target(mut self, t: Element) -> Self {
        self.excluded.push(t);
        self
    }

    /// Requires injectivity on elements.
    pub fn injective(mut self) -> Self {
        self.injective = true;
        self
    }

    /// Finds one homomorphism (as the image vector), if any.
    pub fn find(&self) -> Option<Vec<Element>> {
        let mut result = None;
        self.solve(|h| {
            result = Some(h.to_vec());
            ControlFlow::Break(())
        });
        result
    }

    /// `true` when a homomorphism exists.
    pub fn exists(&self) -> bool {
        self.find().is_some()
    }

    /// Enumerates all homomorphism maps until the callback breaks.
    pub fn for_each<F: FnMut(&[Element]) -> ControlFlow<()>>(&self, f: F) {
        self.solve(f)
    }

    fn solve<F: FnMut(&[Element]) -> ControlFlow<()>>(&self, f: F) {
        let mut solver = Solver::new(self);
        if solver.feasible {
            solver.trail.push(Vec::new());
            if solver.propagate_all() {
                let mut f = f;
                let _ = solver.search(&mut f);
            }
        }
    }
}

#[derive(Clone)]
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn full(n: usize) -> Self {
        let mut words = vec![!0u64; n.div_ceil(64)];
        if !n.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last = (1u64 << (n % 64)) - 1;
            }
        }
        if n == 0 {
            words.clear();
        }
        BitSet { words }
    }

    fn empty(n: usize) -> Self {
        BitSet {
            words: vec![0u64; n.div_ceil(64)],
        }
    }

    #[inline]
    fn contains(&self, i: Element) -> bool {
        (self.words[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    #[inline]
    fn insert(&mut self, i: Element) {
        self.words[(i / 64) as usize] |= 1 << (i % 64);
    }

    #[inline]
    fn remove(&mut self, i: Element) {
        if let Some(w) = self.words.get_mut((i / 64) as usize) {
            *w &= !(1 << (i % 64));
        }
    }

    fn intersect_with(&mut self, other: &BitSet) {
        for (w, o) in self.words.iter_mut().zip(other.words.iter()) {
            *w &= o;
        }
    }

    fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    fn iter(&self) -> impl Iterator<Item = Element> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros();
                    w &= w - 1;
                    Some(wi as Element * 64 + b)
                }
            })
        })
    }
}

/// Per-call target relation index (the pre-refactor engine rebuilt this
/// for every search — that rebuild is part of what gets measured).
struct TargetRelIndex {
    tuples: Vec<Tuple>,
    by_pos_val: Vec<Vec<Vec<u32>>>,
    tuple_set: HashSet<Tuple>,
}

impl TargetRelIndex {
    fn new(target: &Structure, rel: RelId) -> Self {
        let tuples: Vec<Tuple> = target.tuples(rel).to_vec();
        let arity = target.vocabulary().arity(rel);
        let n = target.universe_size();
        let mut by_pos_val = vec![vec![Vec::new(); n]; arity];
        for (ti, t) in tuples.iter().enumerate() {
            for (p, &v) in t.iter().enumerate() {
                by_pos_val[p][v as usize].push(ti as u32);
            }
        }
        let tuple_set = tuples.iter().cloned().collect();
        TargetRelIndex {
            tuples,
            by_pos_val,
            tuple_set,
        }
    }
}

struct SourceConstraint {
    rel: usize,
    vars: Vec<Element>,
}

struct Solver<'a> {
    problem: &'a BaselineHom<'a>,
    n_source: usize,
    n_target: usize,
    target_idx: Vec<TargetRelIndex>,
    constraints: Vec<SourceConstraint>,
    incident: Vec<Vec<u32>>,
    domains: Vec<BitSet>,
    assignment: Vec<Option<Element>>,
    trail: Vec<Vec<(u32, BitSet)>>,
    feasible: bool,
}

impl<'a> Solver<'a> {
    fn new(problem: &'a BaselineHom<'a>) -> Self {
        let source = problem.source;
        let target = problem.target;
        let n_source = source.universe_size();
        let n_target = target.universe_size();
        let vocab = source.vocabulary();

        let target_idx: Vec<TargetRelIndex> = vocab
            .rel_ids()
            .map(|rel| TargetRelIndex::new(target, rel))
            .collect();

        let mut constraints = Vec::new();
        let mut incident = vec![Vec::new(); n_source];
        for rel in vocab.rel_ids() {
            for t in source.tuples(rel) {
                let ci = constraints.len() as u32;
                let vars: Vec<Element> = t.to_vec();
                let mut seen = Vec::new();
                for &v in &vars {
                    if !seen.contains(&v) {
                        incident[v as usize].push(ci);
                        seen.push(v);
                    }
                }
                constraints.push(SourceConstraint {
                    rel: rel.index(),
                    vars,
                });
            }
        }

        let mut domains = vec![BitSet::full(n_target); n_source];
        let mut feasible = n_target > 0 || n_source == 0;
        if feasible {
            for c in &constraints {
                let idx = &target_idx[c.rel];
                for (p, &v) in c.vars.iter().enumerate() {
                    let mut allowed = BitSet::empty(n_target);
                    for (val, tuples) in idx.by_pos_val[p].iter().enumerate() {
                        if !tuples.is_empty() {
                            allowed.insert(val as Element);
                        }
                    }
                    domains[v as usize].intersect_with(&allowed);
                }
            }
            for &e in &problem.excluded {
                for d in domains.iter_mut() {
                    d.remove(e);
                }
            }
            for &(s, t) in &problem.pins {
                assert!(
                    (s as usize) < n_source,
                    "pinned source element out of range"
                );
                assert!(
                    (t as usize) < n_target,
                    "pinned target element out of range"
                );
                let mut single = BitSet::empty(n_target);
                single.insert(t);
                domains[s as usize].intersect_with(&single);
            }
            if problem.injective && n_source > n_target {
                feasible = false;
            }
            if domains.iter().any(|d| d.is_empty()) && n_source > 0 {
                feasible = false;
            }
        }

        Solver {
            problem,
            n_source,
            n_target,
            target_idx,
            constraints,
            incident,
            domains,
            assignment: vec![None; n_source],
            trail: Vec::new(),
            feasible,
        }
    }

    fn propagate_worklist(&mut self, mut worklist: Vec<u32>) -> bool {
        let mut queued: Vec<bool> = vec![false; self.constraints.len()];
        for &ci in &worklist {
            queued[ci as usize] = true;
        }
        while let Some(ci) = worklist.pop() {
            queued[ci as usize] = false;
            match self.revise_constraint(ci as usize) {
                None => return false,
                Some(shrunk) => {
                    for v in shrunk {
                        for &cj in &self.incident[v as usize] {
                            if cj != ci && !queued[cj as usize] {
                                queued[cj as usize] = true;
                                worklist.push(cj);
                            }
                        }
                    }
                }
            }
        }
        true
    }

    fn propagate(&mut self, var: Element) -> bool {
        let seed = self.incident[var as usize].clone();
        self.propagate_worklist(seed)
    }

    fn propagate_all(&mut self) -> bool {
        let seed: Vec<u32> = (0..self.constraints.len() as u32).collect();
        self.propagate_worklist(seed)
    }

    fn revise_constraint(&mut self, ci: usize) -> Option<Vec<Element>> {
        let (rel, vars) = {
            let c = &self.constraints[ci];
            (c.rel, c.vars.clone())
        };
        let idx = &self.target_idx[rel];

        if vars.iter().all(|&v| self.assignment[v as usize].is_some()) {
            let mapped: Tuple = vars
                .iter()
                .map(|&v| self.assignment[v as usize].unwrap())
                .collect();
            return if idx.tuple_set.contains(&mapped) {
                Some(Vec::new())
            } else {
                None
            };
        }

        let mut best: Option<&Vec<u32>> = None;
        for (p, &v) in vars.iter().enumerate() {
            if let Some(val) = self.assignment[v as usize] {
                let list = &idx.by_pos_val[p][val as usize];
                if best.is_none_or(|b| list.len() < b.len()) {
                    best = Some(list);
                }
            }
        }

        let mut support: Vec<(Element, BitSet)> = Vec::new();
        for &v in &vars {
            if self.assignment[v as usize].is_none() && !support.iter().any(|(u, _)| *u == v) {
                support.push((v, BitSet::empty(self.n_target)));
            }
        }

        let consider = |ti: u32, support: &mut Vec<(Element, BitSet)>, solver: &Self| {
            let t = &idx.tuples[ti as usize];
            for (p, &v) in vars.iter().enumerate() {
                match solver.assignment[v as usize] {
                    Some(val) => {
                        if t[p] != val {
                            return;
                        }
                    }
                    None => {
                        if !solver.domains[v as usize].contains(t[p]) {
                            return;
                        }
                    }
                }
            }
            for (p, &v) in vars.iter().enumerate() {
                for (q, &u) in vars.iter().enumerate().skip(p + 1) {
                    if v == u && t[p] != t[q] {
                        return;
                    }
                }
            }
            for (u, sup) in support.iter_mut() {
                for (p, &v) in vars.iter().enumerate() {
                    if v == *u {
                        sup.insert(t[p]);
                    }
                }
            }
        };

        match best {
            Some(list) => {
                for &ti in list {
                    consider(ti, &mut support, self);
                }
            }
            None => {
                for ti in 0..idx.tuples.len() as u32 {
                    consider(ti, &mut support, self);
                }
            }
        }

        let mut shrunk = Vec::new();
        for (u, sup) in support {
            let old_count = self.domains[u as usize].count();
            let mut new_dom = self.domains[u as usize].clone();
            new_dom.intersect_with(&sup);
            if new_dom.count() < old_count {
                self.trail
                    .last_mut()
                    .expect("propagation happens inside a decision level")
                    .push((u, std::mem::replace(&mut self.domains[u as usize], new_dom)));
                shrunk.push(u);
            }
            if self.domains[u as usize].is_empty() {
                return None;
            }
        }
        Some(shrunk)
    }

    fn select_var(&self) -> Option<Element> {
        let mut best: Option<(usize, usize, Element)> = None;
        for v in 0..self.n_source {
            if self.assignment[v].is_none() {
                let dom = self.domains[v].count();
                let deg = self.incident[v].len();
                let key = (dom, usize::MAX - deg, v as Element);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
        }
        best.map(|(_, _, v)| v)
    }

    fn search<F: FnMut(&[Element]) -> ControlFlow<()>>(&mut self, f: &mut F) -> ControlFlow<()> {
        let var = match self.select_var() {
            Some(v) => v,
            None => {
                let map: Vec<Element> = self
                    .assignment
                    .iter()
                    .map(|a| a.expect("complete assignment"))
                    .collect();
                return f(&map);
            }
        };
        let values: Vec<Element> = self.domains[var as usize].iter().collect();
        for val in values {
            self.trail.push(Vec::new());
            self.assignment[var as usize] = Some(val);
            let mut ok = true;
            if self.problem.injective {
                for u in 0..self.n_source {
                    if u != var as usize
                        && self.assignment[u].is_none()
                        && self.domains[u].contains(val)
                    {
                        let mut nd = self.domains[u].clone();
                        nd.remove(val);
                        self.trail
                            .last_mut()
                            .unwrap()
                            .push((u as u32, std::mem::replace(&mut self.domains[u], nd)));
                        if self.domains[u].is_empty() {
                            ok = false;
                            break;
                        }
                    }
                }
            }
            if ok {
                ok = self.propagate(var);
            }
            if ok {
                if let ControlFlow::Break(()) = self.search(f) {
                    return ControlFlow::Break(());
                }
            }
            self.assignment[var as usize] = None;
            let level = self.trail.pop().expect("matching trail level");
            for (u, dom) in level.into_iter().rev() {
                self.domains[u as usize] = dom;
            }
        }
        ControlFlow::Continue(())
    }
}

/// Pre-refactor pinned hom-existence on pointed structures.
pub fn baseline_hom_exists(a: &Pointed, b: &Pointed) -> bool {
    if a.distinguished().len() != b.distinguished().len() {
        return false;
    }
    BaselineHom::new(&a.structure, &b.structure)
        .pin_tuple(a.distinguished(), b.distinguished())
        .exists()
}

/// Pre-refactor core computation: one fresh search problem per exclusion
/// probe per retract iteration, exactly as the seed's `core_of` drove the
/// seed engine.
pub fn baseline_core_of(p: &Pointed) -> Pointed {
    let mut current = p.restrict_to_adom();
    loop {
        let n = current.structure.universe_size();
        let mut witness: Option<Vec<Element>> = None;
        'probe: for avoid in 0..n as Element {
            if current.distinguished().contains(&avoid) {
                continue;
            }
            let s = &current.structure;
            let mut prob = BaselineHom::new(s, s).exclude_target(avoid);
            for &d in current.distinguished() {
                prob = prob.pin(d, d);
            }
            if let Some(h) = prob.find() {
                witness = Some(h);
                break 'probe;
            }
        }
        match witness {
            None => return current,
            Some(h) => current = current.map_image(&h),
        }
    }
}

/// Pre-refactor core test: one fresh search problem (with its fresh
/// target index) per exclusion probe.
pub fn baseline_is_core(p: &Pointed) -> bool {
    let s = &p.structure;
    let n = s.universe_size();
    for avoid in 0..n as Element {
        if p.distinguished().contains(&avoid) {
            continue;
        }
        let mut prob = BaselineHom::new(s, s).exclude_target(avoid);
        for &d in p.distinguished() {
            prob = prob.pin(d, d);
        }
        if prob.exists() {
            return false;
        }
    }
    true
}

/// Pre-refactor →-minimality filter: the full pairwise matrix, every
/// entry a fresh search problem.
pub fn baseline_minimal_elements(family: &[Pointed]) -> Vec<usize> {
    let n = family.len();
    let mut below = vec![vec![false; n]; n];
    for i in 0..n {
        for j in 0..n {
            if i != j {
                below[i][j] = baseline_hom_exists(&family[i], &family[j]);
            }
        }
    }
    (0..n)
        .filter(|&i| !(0..n).any(|j| j != i && below[j][i] && !below[i][j]))
        .collect()
}

/// Pre-refactor hom-equivalence dedup (first representative wins).
pub fn baseline_dedupe_hom_equivalent(family: &[Pointed]) -> Vec<usize> {
    let mut kept: Vec<usize> = Vec::new();
    'outer: for i in 0..family.len() {
        for &k in &kept {
            if baseline_hom_exists(&family[i], &family[k])
                && baseline_hom_exists(&family[k], &family[i])
            {
                continue 'outer;
            }
        }
        kept.push(i);
    }
    kept
}

/// The pre-refactor exact approximation pipeline for **graph-based**
/// classes (no repair augmentations): enumerate quotient candidates,
/// dedupe up to hom-equivalence, keep →-minimal elements, take cores —
/// each stage driving the seed engine the way the seed `approx` module
/// did.
pub fn baseline_all_approximations_tableaux(
    t: &Pointed,
    in_class: &dyn Fn(&Pointed) -> bool,
    max_partitions: u64,
) -> Vec<Pointed> {
    use cqapx_structures::partition::for_each_partition;
    use cqapx_structures::quotient::quotient_pointed;
    use std::collections::HashSet as StdHashSet;

    let n = t.structure.universe_size();
    // `Structure`'s interior mutability is only its derived index cache,
    // ignored by equality and hashing — the key is logically immutable.
    #[allow(clippy::mutable_key_type)]
    let mut seen: StdHashSet<Pointed> = StdHashSet::new();
    let mut cands: Vec<Pointed> = Vec::new();
    let mut count = 0u64;
    for_each_partition(n, |p| {
        count += 1;
        if count > max_partitions {
            return ControlFlow::Break(());
        }
        let (qt, _) = quotient_pointed(t, p);
        if in_class(&qt) && seen.insert(qt.clone()) {
            cands.push(qt);
        }
        ControlFlow::Continue(())
    });
    let kept = baseline_dedupe_hom_equivalent(&cands);
    let reps: Vec<Pointed> = kept.into_iter().map(|i| cands[i].clone()).collect();
    let minimal = baseline_minimal_elements(&reps);
    minimal
        .into_iter()
        .map(|i| baseline_core_of(&reps[i]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Structure {
        let edges: Vec<(Element, Element)> = (0..n)
            .map(|i| (i as Element, ((i + 1) % n) as Element))
            .collect();
        Structure::digraph(n, &edges)
    }

    #[test]
    fn baseline_engine_sanity() {
        assert!(BaselineHom::new(&cycle(6), &cycle(3)).exists());
        assert!(!BaselineHom::new(&cycle(3), &cycle(6)).exists());
        let h = BaselineHom::new(&cycle(6), &cycle(3)).find().unwrap();
        assert_eq!(h.len(), 6);
    }

    #[test]
    fn baseline_core_sanity() {
        let g = cycle(3).disjoint_union(&cycle(6));
        let core = baseline_core_of(&Pointed::boolean(g));
        assert_eq!(core.structure.universe_size(), 3);
    }
}
