//! The **frozen pre-refactor homomorphism engine**, kept verbatim (minus
//! docs) as a measurement baseline and differential-test oracle.
//!
//! This is the seed's `cqapx_structures::hom` search loop: per-call
//! target-index construction, per-call source compilation, forward
//! checking seeded from the tuples incident to the last assigned
//! variable. The live engine (`cqapx_structures::solver::HomSolver`)
//! replaced it with cached per-structure indexes, compiled reusable
//! sources and a shared-budget GAC queue; the two must stay
//! *semantically* identical — `tests/hom_differential.rs` checks that on
//! random structures — while `exp_hom` records how far apart they are in
//! time (`BENCH_hom.json`).
//!
//! Do not "improve" this module: its value is being exactly the engine
//! the speedup claims are measured against.
//!
//! The second half of the module freezes the **row-based Yannakakis
//! evaluator** ([`BaselineVarRelation`] / [`BaselineAcyclicPlan`]) the
//! same way: it is the pre-columnar evaluation kernel, kept as the
//! differential oracle for `tests/eval_differential.rs` and the
//! reference side of `exp_eval` / `BENCH_eval.json`.

use cqapx_structures::{Element, Pointed, RelId, Structure, Tuple};
use std::collections::HashSet;
use std::ops::ControlFlow;

/// The seed engine's search problem (pre-refactor `HomProblem`).
pub struct BaselineHom<'a> {
    source: &'a Structure,
    target: &'a Structure,
    pins: Vec<(Element, Element)>,
    excluded: Vec<Element>,
    injective: bool,
}

impl<'a> BaselineHom<'a> {
    /// Creates a search problem for homomorphisms `source → target`.
    pub fn new(source: &'a Structure, target: &'a Structure) -> Self {
        assert_eq!(
            source.vocabulary(),
            target.vocabulary(),
            "homomorphisms need a common vocabulary"
        );
        BaselineHom {
            source,
            target,
            pins: Vec::new(),
            excluded: Vec::new(),
            injective: false,
        }
    }

    /// Forces `h(src) = tgt`.
    pub fn pin(mut self, src: Element, tgt: Element) -> Self {
        self.pins.push((src, tgt));
        self
    }

    /// Forces `h(src[i]) = tgt[i]` for every position.
    pub fn pin_tuple(mut self, src: &[Element], tgt: &[Element]) -> Self {
        assert_eq!(src.len(), tgt.len(), "pinned tuples must align");
        self.pins
            .extend(src.iter().copied().zip(tgt.iter().copied()));
        self
    }

    /// Forbids a target element from appearing in the image.
    pub fn exclude_target(mut self, t: Element) -> Self {
        self.excluded.push(t);
        self
    }

    /// Requires injectivity on elements.
    pub fn injective(mut self) -> Self {
        self.injective = true;
        self
    }

    /// Finds one homomorphism (as the image vector), if any.
    pub fn find(&self) -> Option<Vec<Element>> {
        let mut result = None;
        self.solve(|h| {
            result = Some(h.to_vec());
            ControlFlow::Break(())
        });
        result
    }

    /// `true` when a homomorphism exists.
    pub fn exists(&self) -> bool {
        self.find().is_some()
    }

    /// Enumerates all homomorphism maps until the callback breaks.
    pub fn for_each<F: FnMut(&[Element]) -> ControlFlow<()>>(&self, f: F) {
        self.solve(f)
    }

    fn solve<F: FnMut(&[Element]) -> ControlFlow<()>>(&self, f: F) {
        let mut solver = Solver::new(self);
        if solver.feasible {
            solver.trail.push(Vec::new());
            if solver.propagate_all() {
                let mut f = f;
                let _ = solver.search(&mut f);
            }
        }
    }
}

#[derive(Clone)]
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn full(n: usize) -> Self {
        let mut words = vec![!0u64; n.div_ceil(64)];
        if !n.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last = (1u64 << (n % 64)) - 1;
            }
        }
        if n == 0 {
            words.clear();
        }
        BitSet { words }
    }

    fn empty(n: usize) -> Self {
        BitSet {
            words: vec![0u64; n.div_ceil(64)],
        }
    }

    #[inline]
    fn contains(&self, i: Element) -> bool {
        (self.words[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    #[inline]
    fn insert(&mut self, i: Element) {
        self.words[(i / 64) as usize] |= 1 << (i % 64);
    }

    #[inline]
    fn remove(&mut self, i: Element) {
        if let Some(w) = self.words.get_mut((i / 64) as usize) {
            *w &= !(1 << (i % 64));
        }
    }

    fn intersect_with(&mut self, other: &BitSet) {
        for (w, o) in self.words.iter_mut().zip(other.words.iter()) {
            *w &= o;
        }
    }

    fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    fn iter(&self) -> impl Iterator<Item = Element> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros();
                    w &= w - 1;
                    Some(wi as Element * 64 + b)
                }
            })
        })
    }
}

/// Per-call target relation index (the pre-refactor engine rebuilt this
/// for every search — that rebuild is part of what gets measured).
struct TargetRelIndex {
    tuples: Vec<Tuple>,
    by_pos_val: Vec<Vec<Vec<u32>>>,
    tuple_set: HashSet<Tuple>,
}

impl TargetRelIndex {
    fn new(target: &Structure, rel: RelId) -> Self {
        let tuples: Vec<Tuple> = target.tuples(rel).to_vec();
        let arity = target.vocabulary().arity(rel);
        let n = target.universe_size();
        let mut by_pos_val = vec![vec![Vec::new(); n]; arity];
        for (ti, t) in tuples.iter().enumerate() {
            for (p, &v) in t.iter().enumerate() {
                by_pos_val[p][v as usize].push(ti as u32);
            }
        }
        let tuple_set = tuples.iter().cloned().collect();
        TargetRelIndex {
            tuples,
            by_pos_val,
            tuple_set,
        }
    }
}

struct SourceConstraint {
    rel: usize,
    vars: Vec<Element>,
}

struct Solver<'a> {
    problem: &'a BaselineHom<'a>,
    n_source: usize,
    n_target: usize,
    target_idx: Vec<TargetRelIndex>,
    constraints: Vec<SourceConstraint>,
    incident: Vec<Vec<u32>>,
    domains: Vec<BitSet>,
    assignment: Vec<Option<Element>>,
    trail: Vec<Vec<(u32, BitSet)>>,
    feasible: bool,
}

impl<'a> Solver<'a> {
    fn new(problem: &'a BaselineHom<'a>) -> Self {
        let source = problem.source;
        let target = problem.target;
        let n_source = source.universe_size();
        let n_target = target.universe_size();
        let vocab = source.vocabulary();

        let target_idx: Vec<TargetRelIndex> = vocab
            .rel_ids()
            .map(|rel| TargetRelIndex::new(target, rel))
            .collect();

        let mut constraints = Vec::new();
        let mut incident = vec![Vec::new(); n_source];
        for rel in vocab.rel_ids() {
            for t in source.tuples(rel) {
                let ci = constraints.len() as u32;
                let vars: Vec<Element> = t.to_vec();
                let mut seen = Vec::new();
                for &v in &vars {
                    if !seen.contains(&v) {
                        incident[v as usize].push(ci);
                        seen.push(v);
                    }
                }
                constraints.push(SourceConstraint {
                    rel: rel.index(),
                    vars,
                });
            }
        }

        let mut domains = vec![BitSet::full(n_target); n_source];
        let mut feasible = n_target > 0 || n_source == 0;
        if feasible {
            for c in &constraints {
                let idx = &target_idx[c.rel];
                for (p, &v) in c.vars.iter().enumerate() {
                    let mut allowed = BitSet::empty(n_target);
                    for (val, tuples) in idx.by_pos_val[p].iter().enumerate() {
                        if !tuples.is_empty() {
                            allowed.insert(val as Element);
                        }
                    }
                    domains[v as usize].intersect_with(&allowed);
                }
            }
            for &e in &problem.excluded {
                for d in domains.iter_mut() {
                    d.remove(e);
                }
            }
            for &(s, t) in &problem.pins {
                assert!(
                    (s as usize) < n_source,
                    "pinned source element out of range"
                );
                assert!(
                    (t as usize) < n_target,
                    "pinned target element out of range"
                );
                let mut single = BitSet::empty(n_target);
                single.insert(t);
                domains[s as usize].intersect_with(&single);
            }
            if problem.injective && n_source > n_target {
                feasible = false;
            }
            if domains.iter().any(|d| d.is_empty()) && n_source > 0 {
                feasible = false;
            }
        }

        Solver {
            problem,
            n_source,
            n_target,
            target_idx,
            constraints,
            incident,
            domains,
            assignment: vec![None; n_source],
            trail: Vec::new(),
            feasible,
        }
    }

    fn propagate_worklist(&mut self, mut worklist: Vec<u32>) -> bool {
        let mut queued: Vec<bool> = vec![false; self.constraints.len()];
        for &ci in &worklist {
            queued[ci as usize] = true;
        }
        while let Some(ci) = worklist.pop() {
            queued[ci as usize] = false;
            match self.revise_constraint(ci as usize) {
                None => return false,
                Some(shrunk) => {
                    for v in shrunk {
                        for &cj in &self.incident[v as usize] {
                            if cj != ci && !queued[cj as usize] {
                                queued[cj as usize] = true;
                                worklist.push(cj);
                            }
                        }
                    }
                }
            }
        }
        true
    }

    fn propagate(&mut self, var: Element) -> bool {
        let seed = self.incident[var as usize].clone();
        self.propagate_worklist(seed)
    }

    fn propagate_all(&mut self) -> bool {
        let seed: Vec<u32> = (0..self.constraints.len() as u32).collect();
        self.propagate_worklist(seed)
    }

    fn revise_constraint(&mut self, ci: usize) -> Option<Vec<Element>> {
        let (rel, vars) = {
            let c = &self.constraints[ci];
            (c.rel, c.vars.clone())
        };
        let idx = &self.target_idx[rel];

        if vars.iter().all(|&v| self.assignment[v as usize].is_some()) {
            let mapped: Tuple = vars
                .iter()
                .map(|&v| self.assignment[v as usize].unwrap())
                .collect();
            return if idx.tuple_set.contains(&mapped) {
                Some(Vec::new())
            } else {
                None
            };
        }

        let mut best: Option<&Vec<u32>> = None;
        for (p, &v) in vars.iter().enumerate() {
            if let Some(val) = self.assignment[v as usize] {
                let list = &idx.by_pos_val[p][val as usize];
                if best.is_none_or(|b| list.len() < b.len()) {
                    best = Some(list);
                }
            }
        }

        let mut support: Vec<(Element, BitSet)> = Vec::new();
        for &v in &vars {
            if self.assignment[v as usize].is_none() && !support.iter().any(|(u, _)| *u == v) {
                support.push((v, BitSet::empty(self.n_target)));
            }
        }

        let consider = |ti: u32, support: &mut Vec<(Element, BitSet)>, solver: &Self| {
            let t = &idx.tuples[ti as usize];
            for (p, &v) in vars.iter().enumerate() {
                match solver.assignment[v as usize] {
                    Some(val) => {
                        if t[p] != val {
                            return;
                        }
                    }
                    None => {
                        if !solver.domains[v as usize].contains(t[p]) {
                            return;
                        }
                    }
                }
            }
            for (p, &v) in vars.iter().enumerate() {
                for (q, &u) in vars.iter().enumerate().skip(p + 1) {
                    if v == u && t[p] != t[q] {
                        return;
                    }
                }
            }
            for (u, sup) in support.iter_mut() {
                for (p, &v) in vars.iter().enumerate() {
                    if v == *u {
                        sup.insert(t[p]);
                    }
                }
            }
        };

        match best {
            Some(list) => {
                for &ti in list {
                    consider(ti, &mut support, self);
                }
            }
            None => {
                for ti in 0..idx.tuples.len() as u32 {
                    consider(ti, &mut support, self);
                }
            }
        }

        let mut shrunk = Vec::new();
        for (u, sup) in support {
            let old_count = self.domains[u as usize].count();
            let mut new_dom = self.domains[u as usize].clone();
            new_dom.intersect_with(&sup);
            if new_dom.count() < old_count {
                self.trail
                    .last_mut()
                    .expect("propagation happens inside a decision level")
                    .push((u, std::mem::replace(&mut self.domains[u as usize], new_dom)));
                shrunk.push(u);
            }
            if self.domains[u as usize].is_empty() {
                return None;
            }
        }
        Some(shrunk)
    }

    fn select_var(&self) -> Option<Element> {
        let mut best: Option<(usize, usize, Element)> = None;
        for v in 0..self.n_source {
            if self.assignment[v].is_none() {
                let dom = self.domains[v].count();
                let deg = self.incident[v].len();
                let key = (dom, usize::MAX - deg, v as Element);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
        }
        best.map(|(_, _, v)| v)
    }

    fn search<F: FnMut(&[Element]) -> ControlFlow<()>>(&mut self, f: &mut F) -> ControlFlow<()> {
        let var = match self.select_var() {
            Some(v) => v,
            None => {
                let map: Vec<Element> = self
                    .assignment
                    .iter()
                    .map(|a| a.expect("complete assignment"))
                    .collect();
                return f(&map);
            }
        };
        let values: Vec<Element> = self.domains[var as usize].iter().collect();
        for val in values {
            self.trail.push(Vec::new());
            self.assignment[var as usize] = Some(val);
            let mut ok = true;
            if self.problem.injective {
                for u in 0..self.n_source {
                    if u != var as usize
                        && self.assignment[u].is_none()
                        && self.domains[u].contains(val)
                    {
                        let mut nd = self.domains[u].clone();
                        nd.remove(val);
                        self.trail
                            .last_mut()
                            .unwrap()
                            .push((u as u32, std::mem::replace(&mut self.domains[u], nd)));
                        if self.domains[u].is_empty() {
                            ok = false;
                            break;
                        }
                    }
                }
            }
            if ok {
                ok = self.propagate(var);
            }
            if ok {
                if let ControlFlow::Break(()) = self.search(f) {
                    return ControlFlow::Break(());
                }
            }
            self.assignment[var as usize] = None;
            let level = self.trail.pop().expect("matching trail level");
            for (u, dom) in level.into_iter().rev() {
                self.domains[u as usize] = dom;
            }
        }
        ControlFlow::Continue(())
    }
}

/// Pre-refactor pinned hom-existence on pointed structures.
pub fn baseline_hom_exists(a: &Pointed, b: &Pointed) -> bool {
    if a.distinguished().len() != b.distinguished().len() {
        return false;
    }
    BaselineHom::new(&a.structure, &b.structure)
        .pin_tuple(a.distinguished(), b.distinguished())
        .exists()
}

/// Pre-refactor core computation: one fresh search problem per exclusion
/// probe per retract iteration, exactly as the seed's `core_of` drove the
/// seed engine.
pub fn baseline_core_of(p: &Pointed) -> Pointed {
    let mut current = p.restrict_to_adom();
    loop {
        let n = current.structure.universe_size();
        let mut witness: Option<Vec<Element>> = None;
        'probe: for avoid in 0..n as Element {
            if current.distinguished().contains(&avoid) {
                continue;
            }
            let s = &current.structure;
            let mut prob = BaselineHom::new(s, s).exclude_target(avoid);
            for &d in current.distinguished() {
                prob = prob.pin(d, d);
            }
            if let Some(h) = prob.find() {
                witness = Some(h);
                break 'probe;
            }
        }
        match witness {
            None => return current,
            Some(h) => current = current.map_image(&h),
        }
    }
}

/// Pre-refactor core test: one fresh search problem (with its fresh
/// target index) per exclusion probe.
pub fn baseline_is_core(p: &Pointed) -> bool {
    let s = &p.structure;
    let n = s.universe_size();
    for avoid in 0..n as Element {
        if p.distinguished().contains(&avoid) {
            continue;
        }
        let mut prob = BaselineHom::new(s, s).exclude_target(avoid);
        for &d in p.distinguished() {
            prob = prob.pin(d, d);
        }
        if prob.exists() {
            return false;
        }
    }
    true
}

/// Pre-refactor →-minimality filter: the full pairwise matrix, every
/// entry a fresh search problem.
pub fn baseline_minimal_elements(family: &[Pointed]) -> Vec<usize> {
    let n = family.len();
    let mut below = vec![vec![false; n]; n];
    for i in 0..n {
        for j in 0..n {
            if i != j {
                below[i][j] = baseline_hom_exists(&family[i], &family[j]);
            }
        }
    }
    (0..n)
        .filter(|&i| !(0..n).any(|j| j != i && below[j][i] && !below[i][j]))
        .collect()
}

/// Pre-refactor hom-equivalence dedup (first representative wins).
pub fn baseline_dedupe_hom_equivalent(family: &[Pointed]) -> Vec<usize> {
    let mut kept: Vec<usize> = Vec::new();
    'outer: for i in 0..family.len() {
        for &k in &kept {
            if baseline_hom_exists(&family[i], &family[k])
                && baseline_hom_exists(&family[k], &family[i])
            {
                continue 'outer;
            }
        }
        kept.push(i);
    }
    kept
}

/// The pre-refactor exact approximation pipeline for **graph-based**
/// classes (no repair augmentations): enumerate quotient candidates,
/// dedupe up to hom-equivalence, keep →-minimal elements, take cores —
/// each stage driving the seed engine the way the seed `approx` module
/// did.
pub fn baseline_all_approximations_tableaux(
    t: &Pointed,
    in_class: &dyn Fn(&Pointed) -> bool,
    max_partitions: u64,
) -> Vec<Pointed> {
    use cqapx_structures::partition::for_each_partition;
    use cqapx_structures::quotient::quotient_pointed;
    use std::collections::HashSet as StdHashSet;

    let n = t.structure.universe_size();
    // `Structure`'s interior mutability is only its derived index cache,
    // ignored by equality and hashing — the key is logically immutable.
    #[allow(clippy::mutable_key_type)]
    let mut seen: StdHashSet<Pointed> = StdHashSet::new();
    let mut cands: Vec<Pointed> = Vec::new();
    let mut count = 0u64;
    for_each_partition(n, |p| {
        count += 1;
        if count > max_partitions {
            return ControlFlow::Break(());
        }
        let (qt, _) = quotient_pointed(t, p);
        if in_class(&qt) && seen.insert(qt.clone()) {
            cands.push(qt);
        }
        ControlFlow::Continue(())
    });
    let kept = baseline_dedupe_hom_equivalent(&cands);
    let reps: Vec<Pointed> = kept.into_iter().map(|i| cands[i].clone()).collect();
    let minimal = baseline_minimal_elements(&reps);
    minimal
        .into_iter()
        .map(|i| baseline_core_of(&reps[i]))
        .collect()
}

// ======================================================================
// The frozen pre-columnar **row-based Yannakakis evaluator**: the
// `HashSet<Vec<Element>>` relation representation and the clone-heavy
// full reducer exactly as they stood before the flat/columnar join
// kernel replaced them. Differential tests (`tests/eval_differential.rs`)
// hold the new kernel to these answers; `exp_eval` measures the distance
// in time (`BENCH_eval.json`).
//
// Do not "improve" this section either: its value is being exactly the
// evaluator the columnar-kernel speedup claims are measured against.
// ======================================================================

/// The seed's row-set relation: a schema of distinct variables plus a
/// `HashSet` of materialized rows (one `Vec` per row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineVarRelation {
    /// The schema: distinct variables, in a fixed order.
    pub schema: Vec<cqapx_cq::VarId>,
    /// The rows; each row has `schema.len()` values.
    pub rows: HashSet<Vec<Element>>,
}

impl BaselineVarRelation {
    /// An empty relation over a schema.
    pub fn empty(schema: Vec<cqapx_cq::VarId>) -> Self {
        BaselineVarRelation {
            schema,
            rows: HashSet::new(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn positions(&self, vars: &[cqapx_cq::VarId]) -> Vec<usize> {
        vars.iter()
            .map(|v| {
                self.schema
                    .iter()
                    .position(|s| s == v)
                    .expect("variable must be in schema")
            })
            .collect()
    }

    fn key(row: &[Element], positions: &[usize]) -> Vec<Element> {
        positions.iter().map(|&p| row[p]).collect()
    }

    /// Semijoin `self ⋉ other` on their shared variables.
    pub fn semijoin(&mut self, other: &BaselineVarRelation) {
        let shared: Vec<cqapx_cq::VarId> = self
            .schema
            .iter()
            .copied()
            .filter(|v| other.schema.contains(v))
            .collect();
        if shared.is_empty() {
            if other.is_empty() {
                self.rows.clear();
            }
            return;
        }
        let my_pos = self.positions(&shared);
        let their_pos = other.positions(&shared);
        let keys: HashSet<Vec<Element>> = other
            .rows
            .iter()
            .map(|r| Self::key(r, &their_pos))
            .collect();
        self.rows.retain(|r| keys.contains(&Self::key(r, &my_pos)));
    }

    /// Natural join `self ⋈ other` (hash join, build on the smaller side).
    pub fn join(&self, other: &BaselineVarRelation) -> BaselineVarRelation {
        use std::collections::HashMap;
        let shared: Vec<cqapx_cq::VarId> = self
            .schema
            .iter()
            .copied()
            .filter(|v| other.schema.contains(v))
            .collect();
        let extra: Vec<cqapx_cq::VarId> = other
            .schema
            .iter()
            .copied()
            .filter(|v| !self.schema.contains(v))
            .collect();
        let mut schema = self.schema.clone();
        schema.extend_from_slice(&extra);

        let their_shared_pos = other.positions(&shared);
        let their_extra_pos = other.positions(&extra);
        let my_shared_pos = self.positions(&shared);

        let mut rows = HashSet::new();
        if self.rows.len() <= other.rows.len() {
            let mut index: HashMap<Vec<Element>, Vec<&Vec<Element>>> = HashMap::new();
            for r in &self.rows {
                index
                    .entry(Self::key(r, &my_shared_pos))
                    .or_default()
                    .push(r);
            }
            for r in &other.rows {
                if let Some(matches) = index.get(&Self::key(r, &their_shared_pos)) {
                    let ext = Self::key(r, &their_extra_pos);
                    for &mine in matches {
                        let mut row = mine.clone();
                        row.extend_from_slice(&ext);
                        rows.insert(row);
                    }
                }
            }
        } else {
            let mut index: HashMap<Vec<Element>, Vec<Vec<Element>>> = HashMap::new();
            for r in &other.rows {
                index
                    .entry(Self::key(r, &their_shared_pos))
                    .or_default()
                    .push(Self::key(r, &their_extra_pos));
            }
            for r in &self.rows {
                if let Some(matches) = index.get(&Self::key(r, &my_shared_pos)) {
                    for ext in matches {
                        let mut row = r.clone();
                        row.extend_from_slice(ext);
                        rows.insert(row);
                    }
                }
            }
        }
        BaselineVarRelation { schema, rows }
    }

    /// Projection onto a sub-schema (O(vars²) duplicate scan, as seeded).
    pub fn project(&self, vars: &[cqapx_cq::VarId]) -> BaselineVarRelation {
        let positions = self.positions(vars);
        let mut seen = Vec::new();
        let mut schema = Vec::new();
        let mut keep_positions = Vec::new();
        for (&v, &p) in vars.iter().zip(positions.iter()) {
            if !seen.contains(&v) {
                seen.push(v);
                schema.push(v);
                keep_positions.push(p);
            }
        }
        let rows = self
            .rows
            .iter()
            .map(|r| Self::key(r, &keep_positions))
            .collect();
        BaselineVarRelation { schema, rows }
    }

    /// Reads the rows out in the order of an explicit head.
    pub fn rows_in_head_order(
        &self,
        head: &[cqapx_cq::VarId],
    ) -> std::collections::BTreeSet<Vec<Element>> {
        let positions = self.positions(head);
        self.rows.iter().map(|r| Self::key(r, &positions)).collect()
    }
}

#[derive(Debug, Clone)]
struct BaselineGroup {
    vars: Vec<cqapx_cq::VarId>,
    atoms: Vec<usize>,
}

/// The seed's compiled Yannakakis plan: materialize one row-set relation
/// per hyperedge, full-reduce with per-edge relation clones, then join
/// bottom-up with projection — the evaluator the columnar kernel
/// replaced.
#[derive(Debug, Clone)]
pub struct BaselineAcyclicPlan {
    query: cqapx_cq::ConjunctiveQuery,
    groups: Vec<BaselineGroup>,
    join_tree: cqapx_hypergraphs::JoinTree,
}

impl BaselineAcyclicPlan {
    /// Compiles a plan; fails (with `None`) when the query is cyclic.
    pub fn compile(query: &cqapx_cq::ConjunctiveQuery) -> Option<BaselineAcyclicPlan> {
        let mut groups: Vec<BaselineGroup> = Vec::new();
        for (ai, atom) in query.atoms().iter().enumerate() {
            let mut vars: Vec<cqapx_cq::VarId> = atom.args.clone();
            vars.sort_unstable();
            vars.dedup();
            match groups.iter_mut().find(|g| g.vars == vars) {
                Some(g) => g.atoms.push(ai),
                None => groups.push(BaselineGroup {
                    vars,
                    atoms: vec![ai],
                }),
            }
        }
        let mut h = cqapx_hypergraphs::Hypergraph::new(query.var_count());
        for g in &groups {
            h.add_edge(&g.vars);
        }
        let join_tree = cqapx_hypergraphs::gyo::gyo_reduce(&h).join_tree?;
        Some(BaselineAcyclicPlan {
            query: query.clone(),
            groups,
            join_tree,
        })
    }

    fn materialize(&self, gi: usize, d: &Structure) -> BaselineVarRelation {
        let g = &self.groups[gi];
        let mut rel: Option<BaselineVarRelation> = None;
        for &ai in &g.atoms {
            let atom = &self.query.atoms()[ai];
            let mut rows = HashSet::new();
            'tuples: for t in d.tuples(atom.rel) {
                let mut binding: Vec<Option<Element>> = vec![None; self.query.var_count()];
                for (&v, &val) in atom.args.iter().zip(t.iter()) {
                    match binding[v as usize] {
                        None => binding[v as usize] = Some(val),
                        Some(prev) if prev == val => {}
                        Some(_) => continue 'tuples,
                    }
                }
                let row: Vec<Element> = g
                    .vars
                    .iter()
                    .map(|&v| binding[v as usize].expect("group var bound"))
                    .collect();
                rows.insert(row);
            }
            let atom_rel = BaselineVarRelation {
                schema: g.vars.clone(),
                rows,
            };
            rel = Some(match rel {
                None => atom_rel,
                Some(mut acc) => {
                    acc.rows.retain(|r| atom_rel.rows.contains(r));
                    acc
                }
            });
        }
        rel.expect("groups are nonempty")
    }

    fn full_reduce(&self, rels: &mut [BaselineVarRelation]) -> bool {
        let order = self.join_tree.bottom_up_order();
        for &u in &order {
            if let Some(p) = self.join_tree.parent[u] {
                let child = rels[u].clone();
                rels[p as usize].semijoin(&child);
            }
            if rels[u].is_empty() {
                return false;
            }
        }
        for &u in order.iter().rev() {
            if let Some(p) = self.join_tree.parent[u] {
                let parent = rels[p as usize].clone();
                rels[u].semijoin(&parent);
                if rels[u].is_empty() {
                    return false;
                }
            }
        }
        true
    }

    /// Boolean evaluation: `Q(D) ≠ ∅`.
    pub fn eval_boolean(&self, d: &Structure) -> bool {
        let mut rels: Vec<BaselineVarRelation> = (0..self.groups.len())
            .map(|gi| self.materialize(gi, d))
            .collect();
        self.full_reduce(&mut rels)
    }

    /// Full evaluation: the set of answer tuples in head order.
    pub fn eval(&self, d: &Structure) -> std::collections::BTreeSet<Vec<Element>> {
        use std::collections::BTreeSet;
        let mut rels: Vec<BaselineVarRelation> = (0..self.groups.len())
            .map(|gi| self.materialize(gi, d))
            .collect();
        if !self.full_reduce(&mut rels) {
            return BTreeSet::new();
        }
        if self.query.is_boolean() {
            let mut out = BTreeSet::new();
            out.insert(Vec::new());
            return out;
        }
        let free: BTreeSet<cqapx_cq::VarId> = self.query.free_vars().iter().copied().collect();
        let children = self.join_tree.children();
        let order = self.join_tree.bottom_up_order();
        let mut partial: Vec<Option<BaselineVarRelation>> = vec![None; self.groups.len()];
        for &u in &order {
            let mut acc = rels[u].clone();
            for &c in &children[u] {
                let child = partial[c].take().expect("children processed first");
                acc = acc.join(&child);
            }
            let keep: Vec<cqapx_cq::VarId> = acc
                .schema
                .iter()
                .copied()
                .filter(|v| {
                    free.contains(v)
                        || self.join_tree.parent[u]
                            .map(|p| self.groups[p as usize].vars.contains(v))
                            .unwrap_or(false)
                })
                .collect();
            partial[u] = Some(acc.project(&keep));
        }
        let mut result: Option<BaselineVarRelation> = None;
        for r in self.join_tree.roots() {
            let rel = partial[r].take().expect("root processed");
            result = Some(match result {
                None => rel,
                Some(acc) => acc.join(&rel),
            });
        }
        let result = result.expect("at least one root");
        result.rows_in_head_order(self.query.free_vars())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Structure {
        let edges: Vec<(Element, Element)> = (0..n)
            .map(|i| (i as Element, ((i + 1) % n) as Element))
            .collect();
        Structure::digraph(n, &edges)
    }

    #[test]
    fn baseline_engine_sanity() {
        assert!(BaselineHom::new(&cycle(6), &cycle(3)).exists());
        assert!(!BaselineHom::new(&cycle(3), &cycle(6)).exists());
        let h = BaselineHom::new(&cycle(6), &cycle(3)).find().unwrap();
        assert_eq!(h.len(), 6);
    }

    #[test]
    fn baseline_core_sanity() {
        let g = cycle(3).disjoint_union(&cycle(6));
        let core = baseline_core_of(&Pointed::boolean(g));
        assert_eq!(core.structure.universe_size(), 3);
    }

    #[test]
    fn baseline_yannakakis_sanity() {
        let q = cqapx_cq::parse_cq("Q(x, w) :- E(x, y), E(y, z), E(z, w)").unwrap();
        let plan = BaselineAcyclicPlan::compile(&q).unwrap();
        let d = Structure::digraph(4, &[(0, 1), (1, 2), (2, 3)]);
        let answers = plan.eval(&d);
        assert_eq!(answers.len(), 1);
        assert!(answers.contains(&vec![0, 3]));
        assert!(plan.eval_boolean(&d));
        let cyclic = cqapx_cq::parse_cq("Q() :- E(x,y), E(y,z), E(z,x)").unwrap();
        assert!(BaselineAcyclicPlan::compile(&cyclic).is_none());
    }
}
