//! The experiment report harness: regenerates each table/figure of the
//! paper as a printed experiment.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p cqapx-bench --bin report              # everything
//! cargo run --release -p cqapx-bench --bin report -- fig1 dp   # selected
//! ```
//!
//! Experiment ids: fig1 fig2 prop44 trichotomy speedup tight nonboolean
//! twk strong hyper dp ablation engine hom eval
//!
//! The `engine` experiment additionally writes `BENCH_engine.json`
//! (queries/sec, cache hit rate) and the `hom` experiment writes
//! `BENCH_hom.json` (new vs pre-refactor hom engine) for machine-readable
//! perf tracking; `eval` writes `BENCH_eval.json` (columnar join kernel
//! vs the frozen row-based evaluator, materialization-cache hit rate).

use cqapx_bench as bench;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = [
        "fig1",
        "fig2",
        "prop44",
        "trichotomy",
        "speedup",
        "tight",
        "nonboolean",
        "twk",
        "strong",
        "hyper",
        "dp",
        "ablation",
        "engine",
        "hom",
        "eval",
    ];
    let selected: Vec<&str> = if args.is_empty() {
        all.to_vec()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    for id in selected {
        let output = match id {
            "fig1" => bench::exp_fig1(),
            "fig2" => bench::exp_fig2(),
            "prop44" => bench::exp_prop44(3),
            "trichotomy" => bench::exp_trichotomy(),
            "speedup" => bench::exp_speedup(),
            "tight" => bench::exp_tight(),
            "nonboolean" => bench::exp_nonboolean(),
            "twk" => bench::exp_twk(),
            "strong" => bench::exp_strong(),
            "hyper" => bench::exp_hyper(),
            "dp" => bench::exp_dp(),
            "ablation" => bench::exp_ablation(),
            "engine" => bench::exp_engine(),
            "hom" => bench::exp_hom(),
            "eval" => bench::exp_eval(),
            other => {
                eprintln!("unknown experiment id {other}; known: {all:?}");
                std::process::exit(2);
            }
        };
        println!("{}", "=".repeat(72));
        println!("{output}");
    }
}
