//! Workloads and experiment drivers regenerating every table and figure
//! of the paper.
//!
//! Each `exp_*` function is one experiment from the index in `DESIGN.md`
//! (E1–E12); the `report` binary prints them in paper-shaped tables, and
//! the Criterion benches in `benches/` measure the hot paths. The paper
//! is a theory paper: its "figures" are constructions and its single
//! table (Figure 1) summarizes existence/size/time guarantees — so the
//! experiments validate shapes (who exists, what size, which growth), not
//! absolute wall-clock numbers.

pub mod baseline;
pub mod experiments;
pub mod workloads;

pub use experiments::*;
