//! Workload generators: query suites and database families.

use cqapx_cq::{parse_cq, query_from_tableau, ConjunctiveQuery};
use cqapx_graphs::{generators, Digraph};
use cqapx_structures::{Element, Pointed, Structure, StructureBuilder, Vocabulary};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The Boolean graph query whose tableau is the given digraph.
pub fn graph_query(g: &Digraph) -> ConjunctiveQuery {
    query_from_tableau(&Pointed::boolean(g.to_structure()))
}

/// The oriented-cycle query `C_k` (Boolean).
pub fn cycle_query(k: usize) -> ConjunctiveQuery {
    graph_query(&Digraph::cycle(k))
}

/// A named suite of cyclic queries exercising all three trichotomy
/// classes and both vocabulary styles, used by the Figure 1 experiment.
pub fn fig1_suite() -> Vec<(&'static str, ConjunctiveQuery)> {
    vec![
        ("triangle C3", cycle_query(3)),
        ("directed C4", cycle_query(4)),
        ("directed C6", cycle_query(6)),
        (
            "intro Q2 (balanced)",
            parse_cq(
                "Q() :- E(x,y), E(y,z), E(z,u), E(x1,y1), E(y1,z1), E(z1,u1), E(x,z1), E(y,u1)",
            )
            .unwrap(),
        ),
        ("tight G3", graph_query(&cqapx_gadgets::tight::g_k(3))),
        (
            "ternary cycle (Ex 6.6)",
            parse_cq("Q() :- R(x1,x2,x3), R(x3,x4,x5), R(x5,x6,x1)").unwrap(),
        ),
        (
            "ternary triangle (intro)",
            parse_cq("Q() :- R(x,u,y), R(y,v,z), R(z,w,x)").unwrap(),
        ),
        (
            "free-variable triangle",
            parse_cq("Q(x, y) :- E(x,y), E(y,z), E(z,x)").unwrap(),
        ),
    ]
}

/// A layered random DAG database: `layers` layers of `width` nodes with
/// forward edges of probability `p` between consecutive layers. Dense in
/// long paths, free of directed cycles — adversarial for backtracking
/// cycle queries, trivial for their acyclic approximations.
pub fn layered_dag(layers: usize, width: usize, p: f64, seed: u64) -> Structure {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = layers * width;
    let mut g = Digraph::new(n);
    let id = |l: usize, i: usize| (l * width + i) as Element;
    for l in 0..layers - 1 {
        for i in 0..width {
            for j in 0..width {
                if rng.gen_bool(p) {
                    g.add_edge(id(l, i), id(l + 1, j));
                }
            }
        }
    }
    g.to_structure()
}

/// A random digraph database (Erdős–Rényi, expected out-degree `d`).
pub fn random_db(n: usize, expected_degree: f64, seed: u64) -> Structure {
    generators::random_digraph(n, expected_degree / n as f64, seed).to_structure()
}

/// A random database over a single `arity`-ary relation with `tuples`
/// uniform tuples over `n` constants.
pub fn random_relation_db(n: usize, arity: usize, tuples: usize, seed: u64) -> Structure {
    let mut rng = StdRng::seed_from_u64(seed);
    let vocab = Vocabulary::single(arity);
    let r = vocab.rel("R").expect("single relation");
    let mut b = StructureBuilder::new(vocab, n);
    for _ in 0..tuples {
        let t: Vec<Element> = (0..arity).map(|_| rng.gen_range(0..n as Element)).collect();
        b.add(r, &t);
    }
    b.finish()
}

/// Two independent random edge relations `E` and `F` over `n` nodes,
/// with a handful of planted reversed overlaps (`E(x,y)` alongside
/// `E(y,x)` or `F(y,x)`) so reversed-atom intersection queries have
/// nonempty answers. Atoms like `E(y, x)` under a head-fixed variable
/// order materialize scans that arrive genuinely out of row order —
/// the canonicalizing-sort- and intersection-bound shape the packed
/// code-word kernels target.
pub fn two_rel_reversed_db(n: usize, edges: usize, seed: u64) -> Structure {
    let mut rng = StdRng::seed_from_u64(seed);
    let vocab = Vocabulary::new(vec![("E", 2), ("F", 2)]);
    let (e, f) = (
        vocab.rel("E").expect("E declared"),
        vocab.rel("F").expect("F declared"),
    );
    let mut b = StructureBuilder::new(vocab, n);
    let mut es = Vec::with_capacity(edges);
    for _ in 0..edges {
        let (x, y) = (
            rng.gen_range(0..n as Element),
            rng.gen_range(0..n as Element),
        );
        es.push((x, y));
        b.add(e, &[x, y]);
        b.add(
            f,
            &[
                rng.gen_range(0..n as Element),
                rng.gen_range(0..n as Element),
            ],
        );
    }
    for i in 0..60 {
        let (x, y) = es[i * 37 % es.len()];
        b.add(f, &[y, x]); // reversed overlap of F with E
        let (x2, y2) = es[(i * 53 + 11) % es.len()];
        b.add(e, &[y2, x2]); // mutual E pair
    }
    b.finish()
}

/// The query mix for the engine-serving benchmarks: acyclic shapes the
/// planner sends to Yannakakis, cheap cyclic shapes it evaluates
/// naively, and an expensive cyclic shape (the introduction's `Q2`) that
/// exercises the approximation sandwich and its cache.
pub fn serving_suite() -> Vec<(&'static str, ConjunctiveQuery)> {
    vec![
        (
            "two_hop (acyclic)",
            parse_cq("Q(x, z) :- E(x, y), E(y, z)").unwrap(),
        ),
        (
            "triangle_members (cyclic)",
            parse_cq("Q(x) :- E(x, y), E(y, z), E(z, x)").unwrap(),
        ),
        (
            "c4 (cyclic)",
            parse_cq("Q() :- E(a,b), E(b,c), E(c,d), E(d,a)").unwrap(),
        ),
        (
            "intro Q2 (expensive)",
            parse_cq(
                "Q() :- E(x,y), E(y,z), E(z,u), E(x1,y1), E(y1,z1), E(z1,u1), E(x,z1), E(y,u1)",
            )
            .unwrap(),
        ),
    ]
}

/// A random cyclic Boolean graph query with `n` variables whose tableau
/// is connected (resampled until cyclic).
pub fn random_cyclic_query(n: usize, seed: u64) -> ConjunctiveQuery {
    let mut seed = seed;
    loop {
        let g = generators::random_digraph(n, 2.2 / n as f64, seed);
        let s = g.to_structure();
        if !s.is_relations_empty() {
            let (s, _) = s.restrict_to_adom();
            let q = query_from_tableau(&Pointed::boolean(s));
            if !cqapx_cq::classes::is_acyclic_query(&q) && q.var_count() >= 4 {
                return q;
            }
        }
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_suite_is_cyclic() {
        for (name, q) in fig1_suite() {
            assert!(
                !cqapx_cq::classes::is_acyclic_query(&q) || cqapx_cq::treewidth_of_query(&q) > 1,
                "{name} should be outside TW(1) or AC"
            );
        }
    }

    #[test]
    fn layered_dag_has_no_cycles() {
        let d = layered_dag(4, 5, 0.5, 7);
        let g = Digraph::from_structure(&d);
        // no directed cycle: topological by layers
        assert!(g
            .edges()
            .all(|(u, v)| (u as usize) / 5 < (v as usize) / 5 + 1));
    }

    #[test]
    fn random_queries_are_cyclic() {
        for seed in 0..5 {
            let q = random_cyclic_query(7, seed);
            assert!(!cqapx_cq::classes::is_acyclic_query(&q));
        }
    }
}
