//! Differential property tests for the bounded-treewidth tier: the
//! `DecomposedPlan` (Yannakakis over tree-decomposition bags on the
//! shared plan IR) against the compiled naive evaluator and the frozen
//! seed-engine backtracking search (`cqapx_bench::baseline::BaselineHom`),
//! on random **cyclic** queries over random digraphs.
//!
//! Query families: oriented cycles `C₃..C₆` (the connector-bag cases),
//! wheels (treewidth 3), the `K₄` clique, double triangles, and random
//! digraph queries — each with random edge orientations and random
//! heads. Every plan is compiled at the query's exact treewidth; full
//! evaluation, Boolean evaluation, and cached evaluation (cold and
//! warm) must all agree with both references.

use cqapx_bench::baseline::BaselineHom;
use cqapx_cq::eval::{DecomposedPlan, MaterializationCache, NaivePlan};
use cqapx_cq::{parse_cq, tableau_of, treewidth_of_query, ConjunctiveQuery};
use cqapx_structures::{Element, Structure};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::ops::ControlFlow;

/// Frozen-baseline evaluation: enumerate tableau→database homomorphisms
/// with the seed engine and read answers off the distinguished
/// variables.
fn frozen_eval(q: &ConjunctiveQuery, d: &Structure) -> BTreeSet<Vec<Element>> {
    let t = tableau_of(q);
    let mut out = BTreeSet::new();
    BaselineHom::new(&t.structure, d).for_each(|h| {
        out.insert(
            t.distinguished()
                .iter()
                .map(|&v| h[v as usize])
                .collect::<Vec<Element>>(),
        );
        ControlFlow::Continue(())
    });
    out
}

/// Builds a query string from directed atom pairs and a head bitmask
/// over the variables that occur.
fn build_query(edges: &[(u32, u32)], flips: u32, head_bits: u32) -> ConjunctiveQuery {
    let mut used: BTreeSet<u32> = BTreeSet::new();
    let atoms: Vec<String> = edges
        .iter()
        .enumerate()
        .map(|(i, &(a, b))| {
            let (a, b) = if flips >> (i % 32) & 1 == 1 {
                (b, a)
            } else {
                (a, b)
            };
            used.insert(a);
            used.insert(b);
            format!("E(x{a}, x{b})")
        })
        .collect();
    let head: Vec<String> = used
        .iter()
        .filter(|&&v| head_bits >> (v % 32) & 1 == 1)
        .map(|v| format!("x{v}"))
        .collect();
    let text = format!("Q({}) :- {}", head.join(", "), atoms.join(", "));
    parse_cq(&text).expect("generated query must parse")
}

/// The template family: cycles, wheels, K4, double triangles — the
/// shapes with treewidth 2 and 3 the decomposed tier exists for.
fn template_query() -> impl Strategy<Value = ConjunctiveQuery> {
    (0..4u8, 3..=6usize, any::<u32>(), any::<u32>()).prop_map(|(kind, size, flips, head_bits)| {
        let mut edges: Vec<(u32, u32)> = Vec::new();
        match kind {
            0 => {
                // Oriented cycle C_size (tw 2; C6 exercises connector bags).
                for i in 0..size {
                    edges.push((i as u32, ((i + 1) % size) as u32));
                }
            }
            1 => {
                // Wheel: hub 0, rim 1..=m (tw 3).
                let m = size.clamp(3, 5);
                for i in 1..=m {
                    edges.push((0, i as u32));
                    edges.push((i as u32, (i % m + 1) as u32));
                }
            }
            2 => {
                // K4 (tw 3).
                for a in 0..4u32 {
                    for b in (a + 1)..4 {
                        edges.push((a, b));
                    }
                }
            }
            _ => {
                // Two triangles sharing vertex 0 (tw 2, articulation).
                edges.extend([(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)]);
            }
        }
        build_query(&edges, flips, head_bits)
    })
}

/// Random digraph queries over up to `max_vars` variables, loops
/// allowed; any treewidth (the plan compiles at the exact width).
fn random_query(max_vars: usize) -> impl Strategy<Value = ConjunctiveQuery> {
    (3..=max_vars).prop_flat_map(|n| {
        (
            proptest::collection::vec((0..n as u32, 0..n as u32), 2..=2 * n),
            any::<u32>(),
        )
            .prop_map(|(edges, head_bits)| build_query(&edges, 0, head_bits))
    })
}

/// A random digraph database.
fn digraph(max_n: usize) -> impl Strategy<Value = Structure> {
    (2..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=(3 * n))
            .prop_map(move |edges| Structure::digraph(n, &edges))
    })
}

/// The differential check: decomposed ≡ naive ≡ frozen baseline, plus
/// cold-cache ≡ warm-cache ≡ uncached.
fn check(q: &ConjunctiveQuery, d: &Structure) {
    let tw = treewidth_of_query(q);
    let plan = DecomposedPlan::compile(q, tw).expect("compiles at the exact treewidth");
    prop_assert!(plan.width() <= tw, "width above requested bound on {}", q);
    let naive = NaivePlan::compile(q.clone());
    let expected = naive.eval(d);
    prop_assert_eq!(
        &frozen_eval(q, d),
        &expected,
        "frozen baseline disagrees with naive on {}",
        q
    );
    prop_assert_eq!(&plan.eval(d), &expected, "decomposed disagrees on {}", q);
    prop_assert_eq!(
        plan.eval_boolean(d),
        !expected.is_empty(),
        "boolean disagrees on {}",
        q
    );
    // Cold, then warm, through one cache: same answers, and the warm
    // run adopts every materialization.
    let cache = MaterializationCache::new();
    let (cold, s_cold) = plan.eval_cached(d, Some(&cache));
    let (warm, s_warm) = plan.eval_cached(d, Some(&cache));
    prop_assert_eq!(&cold, &expected, "cold cached run disagrees on {}", q);
    prop_assert_eq!(&warm, &expected, "warm cached run disagrees on {}", q);
    prop_assert!(s_cold.misses > 0, "cold run must materialize on {}", q);
    prop_assert_eq!(
        s_warm.misses,
        0,
        "warm run must not re-materialize on {}",
        q
    );
    // Boolean through the warm cache too.
    let (b, _) = plan.eval_boolean_cached(d, Some(&cache));
    prop_assert_eq!(b, !expected.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cycles, wheels, cliques and double triangles with random
    /// orientations and heads.
    #[test]
    fn decomposed_agrees_on_templates(q in template_query(), d in digraph(7)) {
        check(&q, &d);
    }

    /// Random digraph queries (any treewidth, loops and duplicate
    /// atoms included).
    #[test]
    fn decomposed_agrees_on_random_queries(q in random_query(6), d in digraph(7)) {
        check(&q, &d);
    }
}
