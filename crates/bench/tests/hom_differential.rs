//! Differential property tests: the refactored hom engine
//! (`HomSolver` + cached indexes + memoized order) against the frozen
//! seed engine (`cqapx_bench::baseline`) on random structures.
//!
//! The refactor must change *time*, never *answers*: existence verdicts,
//! witness validity under pins/exclusions/injectivity, core idempotence,
//! and the memoized hom-order must all agree with the pre-refactor
//! engine.

use cqapx_bench::baseline;
use cqapx_core::HomOrderMemo;
use cqapx_structures::{
    core_of, hom_exists, is_core, order, Element, HomProblem, HomSolver, Homomorphism, Pointed,
    Structure,
};
use proptest::prelude::*;

/// A random small digraph with an active universe.
fn digraph_structure(max_n: usize) -> impl Strategy<Value = Structure> {
    (2..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 1..=(2 * n))
            .prop_map(move |edges| {
                let s = Structure::digraph(n, &edges);
                let (s, _) = s.restrict_to_adom();
                s
            })
            .prop_filter("needs at least one tuple", |s| !s.is_relations_empty())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Existence verdicts agree with the seed engine, and every witness
    /// the new engine returns verifies.
    #[test]
    fn existence_and_witnesses_agree(
        a in digraph_structure(5),
        b in digraph_structure(5),
    ) {
        let old = baseline::BaselineHom::new(&a, &b).exists();
        let new = HomProblem::new(&a, &b).find();
        prop_assert_eq!(old, new.is_some());
        if let Some(h) = new {
            prop_assert!(h.verify(&a, &b));
        }
        // And through the compiled-solver API.
        let solver = HomSolver::compile(&a);
        prop_assert_eq!(old, solver.run(&b).exists());
    }

    /// Pins, exclusions and injectivity agree with the seed engine.
    #[test]
    fn constrained_searches_agree(
        a in digraph_structure(4),
        b in digraph_structure(5),
        pin_seed in 0..16u32,
        excl_seed in 0..16u32,
    ) {
        let ps = (pin_seed as usize) % a.universe_size();
        let pt = (pin_seed as usize / 4) % b.universe_size();
        let ex = (excl_seed as usize) % b.universe_size();

        let old = baseline::BaselineHom::new(&a, &b)
            .pin(ps as Element, pt as Element)
            .exclude_target(ex as Element)
            .exists();
        let new = HomProblem::new(&a, &b)
            .pin(ps as Element, pt as Element)
            .exclude_target(ex as Element)
            .find();
        prop_assert_eq!(old, new.is_some());
        if let Some(h) = new {
            prop_assert!(h.verify(&a, &b));
            prop_assert_eq!(h.apply(ps as Element), pt as Element);
            prop_assert!(!h.map.contains(&(ex as Element)));
        }

        let old_inj = baseline::BaselineHom::new(&a, &b).injective().exists();
        let new_inj = HomProblem::new(&a, &b).injective().find();
        prop_assert_eq!(old_inj, new_inj.is_some());
        if let Some(h) = new_inj {
            prop_assert!(h.verify(&a, &b));
            prop_assert!(!h.is_non_injective());
        }
    }

    /// `core_of` agrees with the seed core (same size, hom-equivalent),
    /// is idempotent, and its result is certified by both engines.
    #[test]
    fn cores_agree_and_are_idempotent(s in digraph_structure(6)) {
        let p = Pointed::boolean(s);
        let old_core = baseline::baseline_core_of(&p);
        let r = core_of(&p);
        prop_assert_eq!(
            old_core.structure.universe_size(),
            r.core.structure.universe_size()
        );
        prop_assert!(hom_exists(&r.core, &old_core));
        prop_assert!(hom_exists(&old_core, &r.core));
        // Retraction witness is a real homomorphism onto the core.
        let h = Homomorphism { map: r.retraction.clone() };
        prop_assert!(h.verify(&p.structure, &r.core.structure));
        // Idempotence + certification by both engines.
        let r2 = core_of(&r.core);
        prop_assert_eq!(r2.iterations, 0);
        prop_assert!(is_core(&r.core));
        prop_assert!(baseline::baseline_is_core(&r.core));
    }

    /// The iso-keyed order memo agrees with direct hom checks (old and
    /// new engines) in both directions, including after interning many
    /// structures.
    #[test]
    fn order_memo_agrees_with_direct_checks(
        a in digraph_structure(5),
        b in digraph_structure(5),
        c in digraph_structure(4),
    ) {
        let (pa, pb, pc) = (
            Pointed::boolean(a),
            Pointed::boolean(b),
            Pointed::boolean(c),
        );
        let mut memo = HomOrderMemo::new();
        for (x, y) in [(&pa, &pb), (&pb, &pa), (&pa, &pc), (&pc, &pb), (&pb, &pb)] {
            let expected = baseline::baseline_hom_exists(x, y);
            prop_assert_eq!(expected, hom_exists(x, y));
            prop_assert_eq!(expected, memo.hom_between(x, y), "memo disagrees");
            // Asking twice hits the verdict cache and must not flip.
            prop_assert_eq!(expected, memo.hom_between(x, y));
        }
    }

    /// The order functions (matrix-backed) agree with the seed engine's
    /// pairwise filters on small families.
    #[test]
    fn order_filters_agree(
        a in digraph_structure(4),
        b in digraph_structure(4),
        c in digraph_structure(4),
    ) {
        let family = vec![
            Pointed::boolean(a),
            Pointed::boolean(b),
            Pointed::boolean(c),
        ];
        prop_assert_eq!(
            baseline::baseline_minimal_elements(&family),
            order::minimal_elements(&family)
        );
        prop_assert_eq!(
            baseline::baseline_dedupe_hom_equivalent(&family),
            order::dedupe_hom_equivalent(&family)
        );
    }
}
