//! Differential property tests for the worst-case-optimal bag
//! materializer: the multiway (generic-join) kernel against the
//! left-deep binary pipeline and the compiled naive evaluator, on
//! random cyclic queries over random and skewed (power-law) digraphs.
//!
//! For every generated pair the two forced strategies must produce
//! **byte-identical** bag relations (same schema, same rows in the same
//! canonical order), identical answers cold and warm through a
//! [`MaterializationCache`], identical answers under thread budgets
//! {1, 2, 8}, and identical cache hit/miss accounting — the strategy is
//! cache-invisible by design.

use cqapx_cq::eval::{
    env_bag_strategy, DecomposedPlan, MatCacheStats, MatStrategy, MaterializationCache, NaivePlan,
};
use cqapx_cq::{parse_cq, treewidth_of_query, ConjunctiveQuery};
use cqapx_par::ThreadBudget;
use cqapx_structures::Structure;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Builds a query string from directed atom pairs and a head bitmask
/// over the variables that occur.
fn build_query(edges: &[(u32, u32)], flips: u32, head_bits: u32) -> ConjunctiveQuery {
    let mut used: BTreeSet<u32> = BTreeSet::new();
    let atoms: Vec<String> = edges
        .iter()
        .enumerate()
        .map(|(i, &(a, b))| {
            let (a, b) = if flips >> (i % 32) & 1 == 1 {
                (b, a)
            } else {
                (a, b)
            };
            used.insert(a);
            used.insert(b);
            format!("E(x{a}, x{b})")
        })
        .collect();
    let head: Vec<String> = used
        .iter()
        .filter(|&&v| head_bits >> (v % 32) & 1 == 1)
        .map(|v| format!("x{v}"))
        .collect();
    let text = format!("Q({}) :- {}", head.join(", "), atoms.join(", "));
    parse_cq(&text).expect("generated query must parse")
}

/// Cyclic template family — the shapes whose bags hold several atom
/// groups and so actually exercise the multiway kernel: oriented cycles
/// C₃..C₆ (connector bags), `K₄`, and double triangles.
fn cyclic_query() -> impl Strategy<Value = ConjunctiveQuery> {
    (0..3u8, 3..=6usize, any::<u32>(), any::<u32>()).prop_map(|(kind, size, flips, head_bits)| {
        let mut edges: Vec<(u32, u32)> = Vec::new();
        match kind {
            0 => {
                for i in 0..size {
                    edges.push((i as u32, ((i + 1) % size) as u32));
                }
            }
            1 => {
                for a in 0..4u32 {
                    for b in (a + 1)..4 {
                        edges.push((a, b));
                    }
                }
            }
            _ => {
                edges.extend([(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)]);
            }
        }
        build_query(&edges, flips, head_bits)
    })
}

/// Random digraph queries over up to `max_vars` variables (loops and
/// duplicate atoms allowed, any treewidth).
fn random_query(max_vars: usize) -> impl Strategy<Value = ConjunctiveQuery> {
    (3..=max_vars).prop_flat_map(|n| {
        (
            proptest::collection::vec((0..n as u32, 0..n as u32), 3..=2 * n),
            any::<u32>(),
        )
            .prop_map(|(edges, head_bits)| build_query(&edges, 0, head_bits))
    })
}

/// A uniform random digraph database.
fn digraph(max_n: usize) -> impl Strategy<Value = Structure> {
    (2..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=(3 * n))
            .prop_map(move |edges| Structure::digraph(n, &edges))
    })
}

fn lcg(s: &mut u64) -> u64 {
    *s = s
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *s >> 33
}

/// A skewed digraph: endpoints drawn with quadratic (power-law-ish)
/// bias toward low ids, so a few hubs concentrate most of the edges —
/// the regime where binary intermediates blow up and the multiway
/// kernel's per-value intersection pays off.
fn skewed_digraph(n: usize, edges: usize, seed: u64) -> Structure {
    let mut s = seed | 1;
    let pick = |s: &mut u64| -> u32 {
        let r = (lcg(s) % 1_048_576) as f64 / 1_048_576.0;
        ((r * r * n as f64) as usize).min(n - 1) as u32
    };
    let es: Vec<(u32, u32)> = (0..edges).map(|_| (pick(&mut s), pick(&mut s))).collect();
    Structure::digraph(n, &es)
}

fn skewed_db(max_n: usize) -> impl Strategy<Value = Structure> {
    (4..=max_n, any::<u64>()).prop_map(|(n, seed)| skewed_digraph(n, 4 * n, seed))
}

/// The differential check: forced-binary ≡ forced-wcoj ≡ naive, with
/// byte-identical bag relations, identical cold/warm cache accounting,
/// and budget-independent answers.
fn check(q: &ConjunctiveQuery, d: &Structure) {
    let tw = treewidth_of_query(q);
    let base = DecomposedPlan::compile(q, tw).expect("compiles at the exact treewidth");
    let expected = NaivePlan::compile(q.clone()).eval(d);
    let binary = base.clone().with_bag_strategy(MatStrategy::Binary);
    let wcoj = base.clone().with_bag_strategy(MatStrategy::Wcoj);

    // Byte identity of every multi-part bag build under both forced
    // strategies: same schema, same rows, same canonical order.
    let budget = ThreadBudget::sequential();
    for (sb, sw) in binary
        .ir()
        .materialize_sources()
        .zip(wcoj.ir().materialize_sources())
    {
        if sb.parts.len() < 2 {
            continue;
        }
        let mut st_b = MatCacheStats::default();
        let mut st_w = MatCacheStats::default();
        let rb = sb.materialize(d, None, &mut st_b, &budget);
        let rw = sw.materialize(d, None, &mut st_w, &budget);
        prop_assert_eq!(rb.schema(), rw.schema(), "bag schemas differ on {}", q);
        prop_assert_eq!(rb.len(), rw.len(), "bag cardinalities differ on {}", q);
        for i in 0..rb.len() {
            prop_assert_eq!(rb.row(i), rw.row(i), "bag row {} differs on {}", i, q);
        }
        // Strategy attribution (only meaningful when no env override
        // preempts the per-source field).
        if env_bag_strategy() == MatStrategy::Auto {
            prop_assert_eq!(
                st_b.wcoj_bag_builds,
                0,
                "binary build ran the kernel on {}",
                q
            );
            prop_assert_eq!(
                st_w.binary_bag_builds,
                0,
                "wcoj build joined binarily on {}",
                q
            );
            prop_assert!(
                st_w.wcoj_bag_builds > 0,
                "wcoj build not attributed on {}",
                q
            );
        }
    }

    // Answers: uncached, then cold + warm through one cache per
    // strategy, across thread budgets {1, 2, 8}. The cold hit/miss
    // accounting must be identical across strategies (the strategy is
    // cache-invisible), and warm runs must not re-materialize.
    let mut cold_accounting: Vec<(u32, u32)> = Vec::new();
    for plan in [&binary, &wcoj] {
        prop_assert_eq!(&plan.eval(d), &expected, "uncached eval disagrees on {}", q);
        let cache = MaterializationCache::new();
        for (i, t) in [1usize, 2, 8].into_iter().enumerate() {
            let (ans, stats) = plan.eval_cached_budget(d, Some(&cache), &ThreadBudget::new(t));
            prop_assert_eq!(
                &ans,
                &expected,
                "cached eval (budget {}) disagrees on {}",
                t,
                q
            );
            if i == 0 {
                prop_assert!(stats.misses > 0, "cold run must materialize on {}", q);
                cold_accounting.push((stats.hits, stats.misses));
            } else {
                prop_assert_eq!(stats.misses, 0, "warm run re-materialized on {}", q);
            }
        }
    }
    prop_assert_eq!(
        cold_accounting[0],
        cold_accounting[1],
        "cache accounting differs between strategies on {}",
        q
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Cyclic templates (cycles, K4, double triangles) over uniform
    /// random digraphs.
    #[test]
    fn wcoj_agrees_on_cyclic_templates(q in cyclic_query(), d in digraph(8)) {
        check(&q, &d);
    }

    /// Cyclic templates over skewed (hub-heavy) digraphs — the
    /// workloads the kernel exists for.
    #[test]
    fn wcoj_agrees_on_skewed_databases(q in cyclic_query(), d in skewed_db(24)) {
        check(&q, &d);
    }

    /// Random digraph queries (any treewidth, loops and duplicate
    /// atoms) over uniform and skewed databases.
    #[test]
    fn wcoj_agrees_on_random_queries(q in random_query(6), d in digraph(8)) {
        check(&q, &d);
    }

    /// Random queries crossed with skewed databases.
    #[test]
    fn wcoj_agrees_on_random_queries_skewed(q in random_query(5), d in skewed_db(16)) {
        check(&q, &d);
    }
}
