//! Differential property tests for the morsel-driven parallel
//! execution layer: evaluation under thread budgets {1, 2, 8} must
//! produce **identical** answer relations — and, thanks to
//! single-flight materialization, identical cache accounting — as the
//! sequential path, for `AcyclicPlan`, `DecomposedPlan`, and the
//! `NaivePlan` ground truth, on random digraph queries, cold and warm
//! cache, plus engine batches whose `EngineStats` must not depend on
//! the thread count.

use cqapx_cq::eval::{AcyclicPlan, DecomposedPlan, MaterializationCache, NaivePlan};
use cqapx_cq::{parse_cq, treewidth_of_query, ConjunctiveQuery};
use cqapx_engine::{
    Engine, EngineConfig, EvalMode, MetricsLevel, Request, ResponseStatus, DEGRADE_MIN_SAMPLES,
};
use cqapx_par::ThreadBudget;
use cqapx_structures::Structure;
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::time::Duration;

/// Thread budgets every differential case runs under. 1 is the
/// sequential compile target; 2 and 8 exercise under- and
/// over-subscription of the actual machine.
const BUDGETS: [usize; 3] = [1, 2, 8];

/// A random **acyclic** conjunctive query (random forest + reversed
/// twins, duplicates, loops, random head) — the same family the
/// columnar-kernel differential tests use.
fn acyclic_query(max_vars: usize) -> impl Strategy<Value = ConjunctiveQuery> {
    let n = 2..=max_vars;
    n.prop_flat_map(|n| {
        let parents = proptest::collection::vec((0..n as u32, any::<bool>(), 0..4u8), n - 1);
        let loops = proptest::collection::vec(0..n as u32, 0..=2);
        let head = proptest::collection::vec(0..n as u32, 0..=3);
        (parents, loops, head).prop_map(move |(parents, loops, head)| {
            let mut atoms: Vec<String> = Vec::new();
            let mut used = vec![false; n];
            for (i, &(p, flip, kind)) in parents.iter().enumerate() {
                let (a, b) = ((i + 1) as u32, p.min(i as u32));
                if kind == 3 {
                    continue;
                }
                used[a as usize] = true;
                used[b as usize] = true;
                let (a, b) = if flip { (b, a) } else { (a, b) };
                atoms.push(format!("E(x{a}, x{b})"));
                if kind == 1 {
                    atoms.push(format!("E(x{b}, x{a})"));
                }
                if kind == 2 {
                    atoms.push(format!("E(x{a}, x{b})"));
                }
            }
            for &v in &loops {
                used[v as usize] = true;
                atoms.push(format!("E(x{v}, x{v})"));
            }
            if atoms.is_empty() {
                used[0] = true;
                used[1] = true;
                atoms.push("E(x0, x1)".to_string());
            }
            let head: Vec<String> = head
                .into_iter()
                .filter(|&v| used[v as usize])
                .map(|v| format!("x{v}"))
                .collect();
            let text = format!("Q({}) :- {}", head.join(", "), atoms.join(", "));
            parse_cq(&text).expect("generated query must parse")
        })
    })
}

/// Random **cyclic** template queries (oriented cycles, wheels, K4,
/// double triangles) with random orientations and heads — the shapes
/// the decomposed tier serves.
fn cyclic_query() -> impl Strategy<Value = ConjunctiveQuery> {
    (0..4u8, 3..=6usize, any::<u32>(), any::<u32>()).prop_map(|(kind, size, flips, head_bits)| {
        let mut edges: Vec<(u32, u32)> = Vec::new();
        match kind {
            0 => {
                for i in 0..size {
                    edges.push((i as u32, ((i + 1) % size) as u32));
                }
            }
            1 => {
                let m = size.clamp(3, 5);
                for i in 1..=m {
                    edges.push((0, i as u32));
                    edges.push((i as u32, (i % m + 1) as u32));
                }
            }
            2 => {
                for a in 0..4u32 {
                    for b in (a + 1)..4 {
                        edges.push((a, b));
                    }
                }
            }
            _ => {
                edges.extend([(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)]);
            }
        }
        let mut used: BTreeSet<u32> = BTreeSet::new();
        let atoms: Vec<String> = edges
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| {
                let (a, b) = if flips >> (i % 32) & 1 == 1 {
                    (b, a)
                } else {
                    (a, b)
                };
                used.insert(a);
                used.insert(b);
                format!("E(x{a}, x{b})")
            })
            .collect();
        let head: Vec<String> = used
            .iter()
            .filter(|&&v| head_bits >> (v % 32) & 1 == 1)
            .map(|v| format!("x{v}"))
            .collect();
        let text = format!("Q({}) :- {}", head.join(", "), atoms.join(", "));
        parse_cq(&text).expect("generated query must parse")
    })
}

/// A random digraph database.
fn digraph(max_n: usize) -> impl Strategy<Value = Structure> {
    (2..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=(3 * n))
            .prop_map(move |edges| Structure::digraph(n, &edges))
    })
}

/// Runs one plan under every budget, cold and warm, against the
/// sequential reference, checking answers and cache accounting.
fn check_budgets<F>(eval: F, expected: &BTreeSet<Vec<u32>>, label: &str)
where
    F: Fn(
        Option<&MaterializationCache>,
        &ThreadBudget,
    ) -> (BTreeSet<Vec<u32>>, cqapx_cq::eval::MatCacheStats),
{
    let seq_budget = ThreadBudget::new(1);
    let seq_cache = MaterializationCache::new();
    let (seq_cold, sc) = eval(Some(&seq_cache), &seq_budget);
    let (seq_warm, sw) = eval(Some(&seq_cache), &seq_budget);
    assert_eq!(
        &seq_cold, expected,
        "sequential cold run disagrees on {label}"
    );
    assert_eq!(
        &seq_warm, expected,
        "sequential warm run disagrees on {label}"
    );
    assert_eq!(sw.misses, 0, "warm run re-materialized on {label}");
    for threads in BUDGETS {
        let budget = ThreadBudget::new(threads);
        let cache = MaterializationCache::new();
        let (cold, c) = eval(Some(&cache), &budget);
        let (warm, w) = eval(Some(&cache), &budget);
        assert_eq!(
            &cold, expected,
            "cold run at {threads} threads disagrees on {label}"
        );
        assert_eq!(
            &warm, expected,
            "warm run at {threads} threads disagrees on {label}"
        );
        assert_eq!(
            (c.hits, c.misses),
            (sc.hits, sc.misses),
            "cold cache accounting at {threads} threads differs on {label}"
        );
        assert_eq!(
            (w.hits, w.misses),
            (sw.hits, sw.misses),
            "warm cache accounting at {threads} threads differs on {label}"
        );
        // Uncached evaluation too (exercises the no-cache kernels).
        let (uncached, _) = eval(None, &budget);
        assert_eq!(
            &uncached, expected,
            "uncached run at {threads} threads on {label}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `AcyclicPlan` under budgets {1, 2, 8} ≡ sequential ≡ naive.
    #[test]
    fn acyclic_parallel_equals_sequential(
        q in acyclic_query(6),
        d in digraph(7),
    ) {
        let plan = AcyclicPlan::compile(&q).expect("forest queries are acyclic");
        let expected = NaivePlan::compile(q.clone()).eval(&d);
        check_budgets(
            |cache, budget| plan.eval_cached_budget(&d, cache, budget),
            &expected,
            &q.to_string(),
        );
        for threads in BUDGETS {
            let (b, _) =
                plan.eval_boolean_cached_budget(&d, None, &ThreadBudget::new(threads));
            prop_assert_eq!(b, !expected.is_empty(), "boolean at {} threads", threads);
        }
    }

    /// `DecomposedPlan` under budgets {1, 2, 8} ≡ sequential ≡ naive.
    #[test]
    fn decomposed_parallel_equals_sequential(
        q in cyclic_query(),
        d in digraph(7),
    ) {
        let plan = DecomposedPlan::compile(&q, treewidth_of_query(&q))
            .expect("templates compile at their exact treewidth");
        let expected = NaivePlan::compile(q.clone()).eval(&d);
        check_budgets(
            |cache, budget| plan.eval_cached_budget(&d, cache, budget),
            &expected,
            &q.to_string(),
        );
        for threads in BUDGETS {
            let (b, _) =
                plan.eval_boolean_cached_budget(&d, None, &ThreadBudget::new(threads));
            prop_assert_eq!(b, !expected.is_empty(), "boolean at {} threads", threads);
        }
    }

    /// Engine batches: answers and `EngineStats` materialization
    /// accounting must be identical whether the engine runs on 1 thread
    /// or oversubscribes 8 — single-flight makes the (miss, hit, …)
    /// totals schedule-independent. The queries avoid repeated
    /// variables so planner estimates (which may peek cached
    /// cardinalities) cannot depend on materialization order either.
    #[test]
    fn engine_batch_stats_identical_across_thread_counts(
        d in digraph(8),
        dup in 2..4usize,
    ) {
        let queries = [
            "Q(x, z) :- E(x, y), E(y, z)",
            "Q() :- E(x,y), E(y,z), E(z,x)",
            "Q(a) :- E(a,b), E(b,c), E(c,d), E(d,a)",
        ];
        let mut outcomes = Vec::new();
        for threads in [1usize, 8] {
            let e = Engine::new(EngineConfig {
                threads,
                ..EngineConfig::default()
            });
            let db = e.register_database("d", d.clone());
            let reqs: Vec<Request> = queries
                .iter()
                .enumerate()
                .flat_map(|(i, q)| {
                    let qid = e.prepare_query(format!("q{i}"), parse_cq(q).unwrap());
                    (0..dup).map(move |_| Request::new(qid, db))
                })
                .collect();
            let responses = e.execute_batch(&reqs);
            let stats = e.stats();
            outcomes.push((
                responses
                    .iter()
                    .map(|r| r.answers.clone())
                    .collect::<Vec<_>>(),
                stats.mat_hits,
                stats.mat_misses,
                stats.plan_yannakakis,
                stats.plan_decomposed,
            ));
        }
        let (a, b) = (outcomes.remove(0), outcomes.remove(0));
        prop_assert_eq!(&a.0, &b.0, "batch answers differ between thread budgets");
        prop_assert_eq!(
            (a.1, a.2),
            (b.1, b.2),
            "mat-cache accounting differs between thread budgets"
        );
        prop_assert_eq!((a.3, a.4), (b.3, b.4), "plan tiers differ");
    }

    /// Metrics accounting under budgets {1, 2, 8}: per-class and
    /// per-database histogram *counts* (latencies obviously vary) and
    /// cache-outcome counters must not depend on the thread budget —
    /// every request is recorded exactly once, whatever schedules it.
    #[test]
    fn engine_metrics_accounting_identical_across_thread_counts(
        d in digraph(8),
        dup in 2..4usize,
    ) {
        let queries = [
            "Q(x, z) :- E(x, y), E(y, z)",
            "Q() :- E(x,y), E(y,z), E(z,x)",
            "Q(a) :- E(a,b), E(b,c), E(c,d), E(d,a)",
        ];
        let mut outcomes = Vec::new();
        for threads in BUDGETS {
            let e = Engine::new(EngineConfig {
                threads,
                metrics: MetricsLevel::Counters,
                ..EngineConfig::default()
            });
            let db = e.register_database("d", d.clone());
            let reqs: Vec<Request> = queries
                .iter()
                .enumerate()
                .flat_map(|(i, q)| {
                    let qid = e.prepare_query(format!("q{i}"), parse_cq(q).unwrap());
                    (0..dup).map(move |_| Request::new(qid, db))
                })
                .collect();
            e.execute_batch(&reqs);
            let snap = e.snapshot();
            let class_counts: Vec<(String, u64)> = snap
                .class_latency
                .iter()
                .map(|(k, h)| (k.clone(), h.count))
                .collect();
            let db_counts: Vec<(String, u64)> = snap
                .db_latency
                .iter()
                .map(|(k, h)| (k.clone(), h.count))
                .collect();
            outcomes.push((
                class_counts,
                db_counts,
                snap.approx_cache_by_db,
                snap.mat_cache_by_db,
            ));
        }
        let reference = outcomes.remove(0);
        for (i, o) in outcomes.into_iter().enumerate() {
            prop_assert_eq!(
                &reference.0, &o.0,
                "class histogram counts differ at budget {}", BUDGETS[i + 1]
            );
            prop_assert_eq!(
                &reference.1, &o.1,
                "db histogram counts differ at budget {}", BUDGETS[i + 1]
            );
            prop_assert_eq!(
                &reference.2, &o.2,
                "approx-cache counters differ at budget {}", BUDGETS[i + 1]
            );
            prop_assert_eq!(
                &reference.3, &o.3,
                "mat-cache counters differ at budget {}", BUDGETS[i + 1]
            );
        }
    }

    /// Admission control and degradation stay sound: a batch deeper
    /// than `max_queue_depth` sheds exactly its tail with empty answer
    /// sets, and every response — complete, shed, degraded, or timed
    /// out — returns a subset of the exact answers.
    #[test]
    fn shed_and_degraded_responses_stay_sound(
        d in digraph(7),
        limit in 1..4usize,
    ) {
        let e = Engine::new(EngineConfig {
            metrics: MetricsLevel::Counters,
            max_queue_depth: Some(limit),
            ..EngineConfig::default()
        });
        let db = e.register_database("d", d.clone());
        let text =
            "Q() :- E(a,b), E(a,c), E(a,d), E(a,e), E(b,c), E(b,d), E(b,e), E(c,d), E(c,e), E(d,e)";
        let query = parse_cq(text).unwrap();
        let exact = NaivePlan::compile(query.clone()).eval(&d);
        let q = e.prepare_query("k5", query);

        let batch: Vec<Request> = (0..6).map(|_| Request::new(q, db)).collect();
        let responses = e.execute_batch(&batch);
        prop_assert_eq!(responses.len(), 6);
        let shed = 6usize.saturating_sub(limit);
        for (i, r) in responses.iter().enumerate() {
            if i < limit.min(6) {
                prop_assert_ne!(r.status, ResponseStatus::Shed, "head request {} shed", i);
            } else {
                prop_assert_eq!(r.status, ResponseStatus::Shed, "tail request {} not shed", i);
                prop_assert!(r.answers.is_empty());
            }
            for a in &r.answers {
                prop_assert!(exact.contains(a), "unsound answer in {:?}", r.status);
            }
        }
        prop_assert_eq!(e.stats().shed, shed as u64);

        // Warm the naive-class histogram, then demand an impossible
        // deadline: whatever the engine does — degrade up front, time
        // out mid-join, or finish a trivially small case — the answers
        // must stay inside the exact set.
        for _ in 0..DEGRADE_MIN_SAMPLES {
            e.execute(&Request::new(q, db));
        }
        let r = e.execute(&Request {
            query: q,
            db,
            mode: EvalMode::Exact,
            timeout: Some(Duration::from_nanos(1)),
        });
        for a in &r.answers {
            prop_assert!(exact.contains(a), "unsound answer in {:?}", r.status);
        }
        if r.status == ResponseStatus::Degraded {
            prop_assert_eq!(e.stats().degraded, 1);
        }
    }
}
