//! Differential property tests: the columnar join kernel
//! (`FlatRelation`-based `AcyclicPlan`) against the frozen row-based
//! evaluator (`cqapx_bench::baseline::BaselineAcyclicPlan`) and the
//! compiled naive evaluator, on random acyclic queries over random
//! digraphs.
//!
//! The kernel swap must change *time*, never *answers*: full evaluation,
//! Boolean evaluation, and cached evaluation (cold and warm, through a
//! `MaterializationCache`) must all agree with the pre-columnar
//! pipeline.

use cqapx_bench::baseline::BaselineAcyclicPlan;
use cqapx_cq::eval::{AcyclicPlan, MaterializationCache, NaivePlan};
use cqapx_cq::{parse_cq, ConjunctiveQuery};
use cqapx_structures::Structure;
use proptest::prelude::*;

/// A random **acyclic** conjunctive query: its query graph is a random
/// forest over up to `max_vars` variables (binary edges of a forest form
/// a GYO-acyclic hypergraph), spiced with the shapes that exercise the
/// kernel's corners — reversed duplicate atoms (same hyperedge,
/// intersected), loops `E(x, x)` (repeated-variable binders, ear-subsumed
/// hyperedges), and a random head (possibly empty: Boolean).
fn acyclic_query(max_vars: usize) -> impl Strategy<Value = ConjunctiveQuery> {
    let n = 2..=max_vars;
    n.prop_flat_map(|n| {
        let parents = proptest::collection::vec((0..n as u32, any::<bool>(), 0..4u8), n - 1);
        let loops = proptest::collection::vec(0..n as u32, 0..=2);
        let head = proptest::collection::vec(0..n as u32, 0..=3);
        (parents, loops, head).prop_map(move |(parents, loops, head)| {
            let mut atoms: Vec<String> = Vec::new();
            let mut used = vec![false; n];
            for (i, &(p, flip, kind)) in parents.iter().enumerate() {
                let (a, b) = ((i + 1) as u32, p.min(i as u32));
                if kind == 3 {
                    continue; // drop this edge: the forest may be disconnected
                }
                used[a as usize] = true;
                used[b as usize] = true;
                let (a, b) = if flip { (b, a) } else { (a, b) };
                atoms.push(format!("E(x{a}, x{b})"));
                if kind == 1 {
                    atoms.push(format!("E(x{b}, x{a})")); // reversed twin
                }
                if kind == 2 {
                    atoms.push(format!("E(x{a}, x{b})")); // exact duplicate
                }
            }
            for &v in &loops {
                // Loops on fresh variables make disconnected components.
                used[v as usize] = true;
                atoms.push(format!("E(x{v}, x{v})"));
            }
            if atoms.is_empty() {
                used[0] = true;
                used[1] = true;
                atoms.push("E(x0, x1)".to_string());
            }
            let head: Vec<String> = head
                .into_iter()
                .filter(|&v| used[v as usize])
                .map(|v| format!("x{v}"))
                .collect();
            let text = format!("Q({}) :- {}", head.join(", "), atoms.join(", "));
            parse_cq(&text).expect("generated query must parse")
        })
    })
}

/// A random digraph database.
fn digraph(max_n: usize) -> impl Strategy<Value = Structure> {
    (2..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=(3 * n))
            .prop_map(move |edges| Structure::digraph(n, &edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Full and Boolean evaluation agree with the frozen row-based
    /// evaluator and with the naive backtracking join.
    #[test]
    fn kernel_agrees_with_frozen_baseline(
        q in acyclic_query(6),
        d in digraph(7),
    ) {
        let baseline = BaselineAcyclicPlan::compile(&q)
            .expect("forest-shaped queries are acyclic");
        let plan = AcyclicPlan::compile(&q).expect("same acyclicity verdict");
        let expected = baseline.eval(&d);
        prop_assert_eq!(&plan.eval(&d), &expected, "eval disagrees on {}", q);
        prop_assert_eq!(
            plan.eval_boolean(&d),
            baseline.eval_boolean(&d),
            "eval_boolean disagrees on {}",
            q
        );
        // The naive evaluator triangulates both.
        let naive = NaivePlan::compile(q.clone());
        prop_assert_eq!(&naive.eval(&d), &expected, "naive disagrees on {}", q);
    }

    /// Evaluating through a materialization cache — cold, then warm —
    /// changes nothing about the answers, and the warm run never
    /// re-materializes.
    #[test]
    fn cached_eval_is_transparent(
        q in acyclic_query(6),
        d in digraph(7),
    ) {
        let plan = AcyclicPlan::compile(&q).expect("acyclic");
        let uncached = plan.eval(&d);
        let cache = MaterializationCache::new();
        let (cold, s_cold) = plan.eval_cached(&d, Some(&cache));
        let (warm, s_warm) = plan.eval_cached(&d, Some(&cache));
        prop_assert_eq!(&cold, &uncached, "cold cached run disagrees on {}", q);
        prop_assert_eq!(&warm, &uncached, "warm cached run disagrees on {}", q);
        prop_assert!(s_cold.misses > 0, "cold run must materialize");
        prop_assert_eq!(s_warm.misses, 0, "warm run must not re-materialize");
        prop_assert_eq!(s_warm.hits, s_cold.hits + s_cold.misses);
        // Boolean path through the same (already warm) cache.
        let (b, _) = plan.eval_boolean_cached(&d, Some(&cache));
        prop_assert_eq!(b, !uncached.is_empty());
    }
}
