//! Differential property tests for the packed code-word kernels
//! (`CQAPX_PACKED`): evaluation with the packed radix kernels forced
//! **on** must produce identical answers — and identical cache
//! accounting — as the comparison-sort/hash path with them forced
//! **off**, with the naive backtracking evaluator as ground truth, on
//! random acyclic queries and cyclic templates over uniform and
//! Zipf-skewed digraphs, cold and warm cache, under thread budgets
//! {1, 2, 8}. Engine batches must report identical `EngineStats`
//! under both settings, and `sort_dedup` must be **byte-identical**
//! between the radix and comparison sorts on binder-materialized
//! relations.
//!
//! The knob is process-global, so every case serializes on a
//! file-local lock and restores `Auto` before releasing it.

use cqapx_cq::eval::{
    set_packed_mode, AcyclicPlan, AtomBinder, DecomposedPlan, FlatRelation, MatCacheStats,
    MatStrategy, MaterializationCache, NaivePlan, PackedMode,
};
use cqapx_cq::{parse_cq, treewidth_of_query, ConjunctiveQuery};
use cqapx_engine::{Engine, EngineConfig, Request};
use cqapx_par::ThreadBudget;
use cqapx_structures::Structure;
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::{Mutex, MutexGuard};

/// Serializes cases across this binary's tests: the packed knob is
/// process-global and must not leak between concurrently running tests.
fn knob_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const BUDGETS: [usize; 3] = [1, 2, 8];

/// A random **acyclic** conjunctive query (random forest + reversed
/// twins, duplicates, loops, random head) — the same family the other
/// differential suites use.
fn acyclic_query(max_vars: usize) -> impl Strategy<Value = ConjunctiveQuery> {
    let n = 2..=max_vars;
    n.prop_flat_map(|n| {
        let parents = proptest::collection::vec((0..n as u32, any::<bool>(), 0..4u8), n - 1);
        let loops = proptest::collection::vec(0..n as u32, 0..=2);
        let head = proptest::collection::vec(0..n as u32, 0..=3);
        (parents, loops, head).prop_map(move |(parents, loops, head)| {
            let mut atoms: Vec<String> = Vec::new();
            let mut used = vec![false; n];
            for (i, &(p, flip, kind)) in parents.iter().enumerate() {
                let (a, b) = ((i + 1) as u32, p.min(i as u32));
                if kind == 3 {
                    continue;
                }
                used[a as usize] = true;
                used[b as usize] = true;
                let (a, b) = if flip { (b, a) } else { (a, b) };
                atoms.push(format!("E(x{a}, x{b})"));
                if kind == 1 {
                    atoms.push(format!("E(x{b}, x{a})"));
                }
                if kind == 2 {
                    atoms.push(format!("E(x{a}, x{b})"));
                }
            }
            for &v in &loops {
                used[v as usize] = true;
                atoms.push(format!("E(x{v}, x{v})"));
            }
            if atoms.is_empty() {
                used[0] = true;
                used[1] = true;
                atoms.push("E(x0, x1)".to_string());
            }
            let head: Vec<String> = head
                .into_iter()
                .filter(|&v| used[v as usize])
                .map(|v| format!("x{v}"))
                .collect();
            let text = format!("Q({}) :- {}", head.join(", "), atoms.join(", "));
            parse_cq(&text).expect("generated query must parse")
        })
    })
}

/// Cyclic template queries (oriented cycles, wheels, K4, double
/// triangles) with random orientations and heads.
fn cyclic_query() -> impl Strategy<Value = ConjunctiveQuery> {
    (0..4u8, 3..=6usize, any::<u32>(), any::<u32>()).prop_map(|(kind, size, flips, head_bits)| {
        let mut edges: Vec<(u32, u32)> = Vec::new();
        match kind {
            0 => {
                for i in 0..size {
                    edges.push((i as u32, ((i + 1) % size) as u32));
                }
            }
            1 => {
                let m = size.clamp(3, 5);
                for i in 1..=m {
                    edges.push((0, i as u32));
                    edges.push((i as u32, (i % m + 1) as u32));
                }
            }
            2 => {
                for a in 0..4u32 {
                    for b in (a + 1)..4 {
                        edges.push((a, b));
                    }
                }
            }
            _ => {
                edges.extend([(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)]);
            }
        }
        let mut used: BTreeSet<u32> = BTreeSet::new();
        let atoms: Vec<String> = edges
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| {
                let (a, b) = if flips >> (i % 32) & 1 == 1 {
                    (b, a)
                } else {
                    (a, b)
                };
                used.insert(a);
                used.insert(b);
                format!("E(x{a}, x{b})")
            })
            .collect();
        let head: Vec<String> = used
            .iter()
            .filter(|&&v| head_bits >> (v % 32) & 1 == 1)
            .map(|v| format!("x{v}"))
            .collect();
        let text = format!("Q({}) :- {}", head.join(", "), atoms.join(", "));
        parse_cq(&text).expect("generated query must parse")
    })
}

/// A random digraph, uniform or Zipf-skewed: under skew every endpoint
/// `v` collapses to `v²/n`, concentrating edges on low codes — heavy
/// key-duplication is where the stable radix order must still match
/// the hashed probe order exactly.
fn digraph(max_n: usize) -> impl Strategy<Value = Structure> {
    (2..=max_n, any::<bool>()).prop_flat_map(move |(n, skew)| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=(4 * n)).prop_map(
            move |mut edges| {
                if skew {
                    for (a, b) in &mut edges {
                        *a = *a * *a / n as u32;
                        *b = *b * *b / n as u32;
                    }
                }
                Structure::digraph(n, &edges)
            },
        )
    })
}

/// Runs one plan under the packed kernels forced on and forced off —
/// each across thread budgets {1, 2, 8}, cold, warm, and uncached —
/// asserting every run reproduces `expected` and that the cache
/// accounting is mode-independent. Caller must hold [`knob_lock`].
fn check_modes<F>(eval: F, expected: &BTreeSet<Vec<u32>>, label: &str)
where
    F: Fn(Option<&MaterializationCache>, &ThreadBudget) -> (BTreeSet<Vec<u32>>, MatCacheStats),
{
    let mut per_mode: Vec<Vec<(u32, u32, u32, u32)>> = Vec::new();
    for mode in [PackedMode::On, PackedMode::Off] {
        set_packed_mode(mode);
        let mut accounting = Vec::new();
        for threads in BUDGETS {
            let budget = ThreadBudget::new(threads);
            let cache = MaterializationCache::new();
            let (cold, sc) = eval(Some(&cache), &budget);
            let (warm, sw) = eval(Some(&cache), &budget);
            assert_eq!(
                &cold, expected,
                "cold {mode:?} run at {threads} threads disagrees on {label}"
            );
            assert_eq!(
                &warm, expected,
                "warm {mode:?} run at {threads} threads disagrees on {label}"
            );
            assert_eq!(sw.misses, 0, "warm {mode:?} run re-materialized on {label}");
            let (uncached, _) = eval(None, &budget);
            assert_eq!(
                &uncached, expected,
                "uncached {mode:?} run at {threads} threads disagrees on {label}"
            );
            accounting.push((sc.hits, sc.misses, sw.hits, sw.misses));
        }
        per_mode.push(accounting);
    }
    set_packed_mode(PackedMode::Auto);
    assert_eq!(
        per_mode[0], per_mode[1],
        "cache accounting must not depend on the packed mode ({label})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `AcyclicPlan`: packed ≡ unpacked ≡ naive, full and Boolean —
    /// the radix dedup runs on every canonicalizing sort, the packed
    /// index on every eligible two-column key.
    #[test]
    fn acyclic_packed_equals_unpacked(
        q in acyclic_query(6),
        d in digraph(9),
    ) {
        let _g = knob_lock();
        let plan = AcyclicPlan::compile(&q).expect("forest queries are acyclic");
        let expected = NaivePlan::compile(q.clone()).eval(&d);
        check_modes(
            |cache, budget| plan.eval_cached_budget(&d, cache, budget),
            &expected,
            &q.to_string(),
        );
        for mode in [PackedMode::On, PackedMode::Off] {
            set_packed_mode(mode);
            for threads in BUDGETS {
                let (b, _) =
                    plan.eval_boolean_cached_budget(&d, None, &ThreadBudget::new(threads));
                prop_assert_eq!(
                    b,
                    !expected.is_empty(),
                    "boolean {:?} at {} threads on {}", mode, threads, q
                );
            }
        }
        set_packed_mode(PackedMode::Auto);
    }

    /// `DecomposedPlan` (cyclic tier, WCOJ bags forced): packed ≡
    /// unpacked ≡ naive — bag parts, cross-bag interfaces, and the
    /// final projection must not move a byte under the knob.
    #[test]
    fn cyclic_packed_equals_unpacked(
        q in cyclic_query(),
        d in digraph(9),
    ) {
        let _g = knob_lock();
        let plan = DecomposedPlan::compile(&q, treewidth_of_query(&q))
            .expect("templates compile at their exact treewidth")
            .with_bag_strategy(MatStrategy::Wcoj);
        let expected = NaivePlan::compile(q.clone()).eval(&d);
        check_modes(
            |cache, budget| plan.eval_cached_budget(&d, cache, budget),
            &expected,
            &q.to_string(),
        );
        for mode in [PackedMode::On, PackedMode::Off] {
            set_packed_mode(mode);
            for threads in BUDGETS {
                let (b, _) =
                    plan.eval_boolean_cached_budget(&d, None, &ThreadBudget::new(threads));
                prop_assert_eq!(
                    b,
                    !expected.is_empty(),
                    "boolean {:?} at {} threads on {}", mode, threads, q
                );
            }
        }
        set_packed_mode(PackedMode::Auto);
    }

    /// `sort_dedup` on binder-materialized relations must be
    /// **byte-identical** — same rows in the same buffer order, same
    /// width bound — between the radix path (`on`) and the comparison
    /// sort (`off`). The fixture unions a straight and a reversed scan
    /// of the edge relation, so the input is unsorted and
    /// duplicate-heavy.
    #[test]
    fn sort_dedup_radix_is_byte_identical(
        d in digraph(9),
    ) {
        let _g = knob_lock();
        let q = parse_cq("Q(x, y) :- E(x, y), E(y, x)").unwrap();
        let atoms = q.atoms();
        let mut schema: Vec<_> = atoms[0].args.clone();
        schema.sort_unstable();
        schema.dedup();
        let mut base = FlatRelation::empty(schema.clone());
        AtomBinder::compile(&atoms[0], &schema).materialize_into(&d, &mut base);
        let mut reversed = FlatRelation::empty(schema.clone());
        AtomBinder::compile(&atoms[1], &schema).materialize_into(&d, &mut reversed);
        base.union_rows(&reversed);
        base.union_rows(&reversed);
        prop_assume!(!base.is_empty());

        let mut radix = base.clone();
        set_packed_mode(PackedMode::On);
        radix.sort_dedup();
        let mut cmp = base;
        set_packed_mode(PackedMode::Off);
        cmp.sort_dedup();
        set_packed_mode(PackedMode::Auto);

        prop_assert_eq!(radix.len(), cmp.len(), "row counts differ");
        prop_assert_eq!(radix.domain_width(), cmp.domain_width(), "width differs");
        let radix_rows: Vec<Vec<u32>> = radix.iter_rows().map(|r| r.to_vec()).collect();
        let cmp_rows: Vec<Vec<u32>> = cmp.iter_rows().map(|r| r.to_vec()).collect();
        prop_assert_eq!(radix_rows, cmp_rows, "buffer order differs");
    }

    /// Engine batches: answers and `EngineStats` — cache outcomes and
    /// plan-tier counts — must be identical under `CQAPX_PACKED=on`
    /// and `=off`. The packed counters live outside `EngineStats`, so
    /// the two runs must be indistinguishable there.
    #[test]
    fn engine_stats_identical_across_packed_modes(
        d in digraph(8),
        dup in 2..4usize,
    ) {
        let _g = knob_lock();
        let queries = [
            "Q(x, z) :- E(x, y), E(y, z)",
            "Q() :- E(x, y), E(y, z), E(z, w)",
            "Q() :- E(x,y), E(y,z), E(z,x)",
            "Q(a) :- E(a,b), E(b,c), E(c,d), E(d,a)",
        ];
        let mut outcomes = Vec::new();
        for mode in [PackedMode::On, PackedMode::Off] {
            set_packed_mode(mode);
            let e = Engine::new(EngineConfig::default());
            let db = e.register_database("d", d.clone());
            let reqs: Vec<Request> = queries
                .iter()
                .enumerate()
                .flat_map(|(i, q)| {
                    let qid = e.prepare_query(format!("q{i}"), parse_cq(q).unwrap());
                    (0..dup).map(move |_| Request::new(qid, db))
                })
                .collect();
            let responses = e.execute_batch(&reqs);
            let stats = e.stats();
            outcomes.push((
                responses
                    .iter()
                    .map(|r| r.answers.clone())
                    .collect::<Vec<_>>(),
                stats.mat_hits,
                stats.mat_misses,
                stats.plan_yannakakis,
                stats.plan_decomposed,
                stats.plan_naive,
            ));
        }
        set_packed_mode(PackedMode::Auto);
        let (on, off) = (outcomes.remove(0), outcomes.remove(0));
        prop_assert_eq!(&on.0, &off.0, "batch answers differ between packed modes");
        prop_assert_eq!(
            (on.1, on.2),
            (off.1, off.2),
            "mat-cache accounting differs between packed modes"
        );
        prop_assert_eq!(
            (on.3, on.4, on.5),
            (off.3, off.4, off.5),
            "plan tiers differ between packed modes"
        );
    }
}
