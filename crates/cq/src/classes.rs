//! The graph `G(Q)` and hypergraph `H(Q)` of a query, and membership in
//! the paper's tractable classes.
//!
//! * `G(Q)` — nodes are the variables; every atom `R(x₁,…,x_n)` contributes
//!   the clique on its arguments. Graph-based classes: `TW(k)`.
//! * `H(Q)` — nodes are the variables; every atom contributes the
//!   hyperedge of its argument *set*. Hypergraph-based classes: `AC`
//!   (α-acyclic), `HTW(k)`, `GHTW(k)`.
//!
//! For queries over graphs, `AC = TW(1)`; in general the graph-based and
//! hypergraph-based notions are incomparable (Flum, Frick & Grohe).

use crate::ast::ConjunctiveQuery;
use cqapx_graphs::{treewidth, treewidth_at_most, UGraph};
use cqapx_hypergraphs::{gyo, htw, Hypergraph};
use cqapx_structures::Element;

/// The graph `G(Q)`: variables as nodes, co-occurrence edges.
///
/// Self-loops are *not* recorded (a loop atom `E(x,x)` contributes no
/// clique edge); this matches tree decompositions of the query hypergraph,
/// under which `E(x,x)` is acyclic.
pub fn query_graph(q: &ConjunctiveQuery) -> UGraph {
    let mut g = UGraph::new(q.var_count());
    for a in q.atoms() {
        for (i, &x) in a.args.iter().enumerate() {
            for &y in a.args.iter().skip(i + 1) {
                if x != y {
                    g.add_edge(x, y);
                }
            }
        }
    }
    g
}

/// The hypergraph `H(Q)`: variables as nodes, one hyperedge per atom's
/// variable set.
pub fn hypergraph_of(q: &ConjunctiveQuery) -> Hypergraph {
    let mut h = Hypergraph::new(q.var_count());
    for a in q.atoms() {
        let vars: Vec<Element> = a.args.clone();
        h.add_edge(&vars);
    }
    h
}

/// The treewidth of `Q` (treewidth of `G(Q)`, equivalently of `H(Q)`).
pub fn treewidth_of_query(q: &ConjunctiveQuery) -> usize {
    treewidth(&query_graph(q))
}

/// `Q ∈ TW(k)`: the query graph has treewidth at most `k`.
///
/// # Examples
///
/// ```
/// use cqapx_cq::{classes, parse_cq};
///
/// let tri = parse_cq("Q() :- E(x,y), E(y,z), E(z,x)").unwrap();
/// assert!(!classes::is_tw_at_most(&tri, 1));
/// assert!(classes::is_tw_at_most(&tri, 2));
/// ```
pub fn is_tw_at_most(q: &ConjunctiveQuery, k: usize) -> bool {
    treewidth_at_most(&query_graph(q), k).is_some()
}

/// `Q ∈ AC`: the query hypergraph is α-acyclic.
///
/// For queries over graphs this coincides with `TW(1)` (the paper,
/// Section 3): a graph query is acyclic iff its tableau has no oriented
/// cycle of length ≥ 3 once loops are set aside.
pub fn is_acyclic_query(q: &ConjunctiveQuery) -> bool {
    gyo::is_acyclic(&hypergraph_of(q))
}

/// `Q ∈ HTW(k)`: the query hypergraph has hypertree width at most `k`.
pub fn is_htw_at_most(q: &ConjunctiveQuery, k: usize) -> bool {
    htw::htw_at_most(&hypergraph_of(q), k).is_some()
}

/// The hypertree width of `H(Q)`.
pub fn hypertree_width_of_query(q: &ConjunctiveQuery) -> usize {
    htw::hypertree_width(&hypergraph_of(q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_cq;

    #[test]
    fn triangle_classes() {
        let q = parse_cq("Q() :- E(x,y), E(y,z), E(z,x)").unwrap();
        assert_eq!(treewidth_of_query(&q), 2);
        assert!(!is_acyclic_query(&q));
        assert!(!is_tw_at_most(&q, 1));
        assert_eq!(hypertree_width_of_query(&q), 2);
    }

    #[test]
    fn path_query_acyclic() {
        let q = parse_cq("Q(x) :- E(x,y), E(y,z), E(z,w)").unwrap();
        assert!(is_acyclic_query(&q));
        assert!(is_tw_at_most(&q, 1));
        assert_eq!(treewidth_of_query(&q), 1);
    }

    #[test]
    fn loop_atom_is_acyclic() {
        // E(x,x): hypergraph is one hyperedge {x} — acyclic, tw 0.
        let q = parse_cq("Q() :- E(x, x)").unwrap();
        assert!(is_acyclic_query(&q));
        assert_eq!(treewidth_of_query(&q), 0);
        // K2 with a loop (the paper's acyclic approximation of the
        // triangle with free variables, §5.1.2) is acyclic too.
        let q = parse_cq("Q(x,y) :- E(x,y), E(y,x), E(x,x)").unwrap();
        assert!(is_acyclic_query(&q));
        assert!(is_tw_at_most(&q, 1));
    }

    #[test]
    fn acyclic_but_high_treewidth() {
        // One big atom: acyclic (single hyperedge) but G(Q) is K5 (tw 4).
        let q = parse_cq("Q() :- R(a, b, c, d, e)").unwrap();
        assert!(is_acyclic_query(&q));
        assert_eq!(treewidth_of_query(&q), 4);
    }

    #[test]
    fn bounded_treewidth_but_cyclic() {
        // A long binary cycle: tw 2, but α-cyclic.
        let q = parse_cq("Q() :- E(a,b), E(b,c), E(c,d), E(d,e), E(e,a)").unwrap();
        assert!(!is_acyclic_query(&q));
        assert!(is_tw_at_most(&q, 2));
    }

    #[test]
    fn section3_example_hypergraph() {
        // Body R(x,y,z), R(x,v,v), E(v,z): hyperedges {x,y,z}, {x,v}, {v,z}.
        let q = parse_cq("Q() :- R(x,y,z), R(x,v,v), E(v,z)").unwrap();
        let h = hypergraph_of(&q);
        assert_eq!(h.edge_count(), 3);
        assert_eq!(h.edge(0).len(), 3);
        assert_eq!(h.edge(1).len(), 2);
    }

    #[test]
    fn example_66_query_classes() {
        let q = parse_cq("Q() :- R(x1,x2,x3), R(x3,x4,x5), R(x5,x6,x1)").unwrap();
        assert!(!is_acyclic_query(&q));
        assert!(is_htw_at_most(&q, 2));
        let q1 = parse_cq("Q() :- R(x, y, x)").unwrap();
        assert!(is_acyclic_query(&q1));
    }
}
