//! Containment, equivalence and minimization of conjunctive queries.
//!
//! Chandra–Merlin: `Q ⊆ Q'` iff `(T_{Q'}, x̄') → (T_Q, x̄)`. Both
//! containment and evaluation are NP-complete in combined complexity —
//! the very motivation for the paper's approximations. Minimization takes
//! the core of the tableau: the unique (up to renaming) equivalent query
//! with the fewest atoms.

use crate::ast::ConjunctiveQuery;
use crate::tableau::{query_from_tableau, tableau_of};
use cqapx_structures::{core_of, hom_exists, HomSolver, Pointed};

/// `Q ⊆ Q'`: every answer of `Q` is an answer of `Q'` on every database.
///
/// # Examples
///
/// ```
/// use cqapx_cq::{contained_in, parse_cq};
///
/// // A 6-cycle "contains" a triangle pattern: Q6 ⊆ Q3? The tableau of Q3
/// // must map into the tableau of Q6 — it does not; but Q3 ⊆ Q6 holds
/// // because C6 → C3.
/// let q3 = parse_cq("Q() :- E(x,y), E(y,z), E(z,x)").unwrap();
/// let q6 = parse_cq("Q() :- E(a,b), E(b,c), E(c,d), E(d,e), E(e,f), E(f,a)").unwrap();
/// assert!(contained_in(&q3, &q6));
/// assert!(!contained_in(&q6, &q3));
/// ```
pub fn contained_in(q: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> bool {
    if q.vocabulary() != q2.vocabulary() || q.arity() != q2.arity() {
        return false;
    }
    hom_exists(&tableau_of(q2), &tableau_of(q))
}

/// The pinned hom check `(T_{Q'}, x̄') → (T_Q, x̄)` against prebuilt
/// tableaux, with `solver` compiled from `t2`'s structure.
fn tableau_contained(solver: &HomSolver, t2: &Pointed, t: &Pointed) -> bool {
    solver
        .run(&t.structure)
        .pin_tuple(t2.distinguished(), t.distinguished())
        .exists()
}

/// `Q ≡ Q'`: containment both ways.
///
/// Builds each tableau (and compiles each hom-solver source) once for
/// both directions, rather than twice via [`contained_in`].
pub fn equivalent(q: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> bool {
    if q.vocabulary() != q2.vocabulary() || q.arity() != q2.arity() {
        return false;
    }
    let (t, t2) = (tableau_of(q), tableau_of(q2));
    let s2 = HomSolver::compile(&t2.structure);
    if !tableau_contained(&s2, &t2, &t) {
        return false;
    }
    let s = HomSolver::compile(&t.structure);
    tableau_contained(&s, &t, &t2)
}

/// `Q ⊂ Q'`: strict containment.
pub fn strictly_contained_in(q: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> bool {
    if q.vocabulary() != q2.vocabulary() || q.arity() != q2.arity() {
        return false;
    }
    let (t, t2) = (tableau_of(q), tableau_of(q2));
    let s2 = HomSolver::compile(&t2.structure);
    if !tableau_contained(&s2, &t2, &t) {
        return false;
    }
    let s = HomSolver::compile(&t.structure);
    !tableau_contained(&s, &t, &t2)
}

/// The minimized (core) query equivalent to `Q`.
///
/// # Examples
///
/// ```
/// use cqapx_cq::{minimize, parse_cq, equivalent};
///
/// let q = parse_cq("Q() :- E(x,y), E(y,z), E(z,x), E(a,b), E(b,c), E(c,d), E(d,e), E(e,f), E(f,a)").unwrap();
/// let m = minimize(&q);
/// assert_eq!(m.atom_count(), 3); // the 6-cycle folds onto the triangle
/// assert!(equivalent(&q, &m));
/// ```
pub fn minimize(q: &ConjunctiveQuery) -> ConjunctiveQuery {
    let t = tableau_of(q);
    let r = core_of(&t);
    query_from_tableau(&r.core)
}

/// `true` when `Q` is already minimized (its tableau is a core).
pub fn is_minimized(q: &ConjunctiveQuery) -> bool {
    cqapx_structures::is_core(&tableau_of(q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_cq;

    #[test]
    fn reflexive_containment() {
        let q = parse_cq("Q(x) :- E(x, y)").unwrap();
        assert!(contained_in(&q, &q));
        assert!(equivalent(&q, &q));
    }

    #[test]
    fn path_queries() {
        // Longer path pattern is contained in shorter one (more constraints
        // on the same head? no): Q_k(x) = "x starts a path of length k".
        let q1 = parse_cq("Q(x) :- E(x, y)").unwrap();
        let q2 = parse_cq("Q(x) :- E(x, y), E(y, z)").unwrap();
        // Q2 ⊆ Q1: any x starting a 2-path starts a 1-path.
        assert!(contained_in(&q2, &q1));
        assert!(!contained_in(&q1, &q2));
        assert!(strictly_contained_in(&q2, &q1));
    }

    #[test]
    fn boolean_vs_free_incomparable() {
        let qb = parse_cq("Q() :- E(x, y)").unwrap();
        let qf = parse_cq("Q(x) :- E(x, y)").unwrap();
        assert!(!contained_in(&qb, &qf));
        assert!(!contained_in(&qf, &qb));
    }

    #[test]
    fn minimize_removes_redundancy() {
        // E(x,y), E(x,z): z can fold onto y.
        let q = parse_cq("Q(x) :- E(x, y), E(x, z)").unwrap();
        let m = minimize(&q);
        assert_eq!(m.atom_count(), 1);
        assert!(equivalent(&q, &m));
        assert!(is_minimized(&m));
        assert!(!is_minimized(&q));
    }

    #[test]
    fn free_variables_block_minimization() {
        let q = parse_cq("Q(y, z) :- E(x, y), E(x, z)").unwrap();
        // y and z are pinned: cannot fold.
        assert!(is_minimized(&q));
        assert_eq!(minimize(&q).atom_count(), 2);
    }

    #[test]
    fn trivial_query_contained_in_everything_boolean() {
        // Q_trivial() :- E(x, x) is contained in every Boolean graph CQ.
        let trivial = parse_cq("Q() :- E(x, x)").unwrap();
        for body in [
            "Q() :- E(x, y)",
            "Q() :- E(x, y), E(y, z), E(z, x)",
            "Q() :- E(x, y), E(y, x)",
        ] {
            let q = parse_cq(body).unwrap();
            assert!(contained_in(&trivial, &q), "trivial ⊆ {body}");
        }
    }

    #[test]
    fn intro_example_q2_contains_p4() {
        // Paper introduction: Q2 has the nontrivial acyclic approximation
        // Q2'():-P4(x',x,y,z,u). Check at least containment Q2' ⊆ Q2.
        let q2 = parse_cq(
            "Q() :- E(x,y), E(y,z), E(z,u), E(x1,y1), E(y1,z1), E(z1,u1), E(x,z1), E(y,u1)",
        )
        .unwrap();
        let p4 = parse_cq("Q() :- E(a,b), E(b,c), E(c,d), E(d,e)").unwrap();
        assert!(contained_in(&p4, &q2));
        assert!(!equivalent(&p4, &q2));
    }
}
