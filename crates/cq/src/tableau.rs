//! Tableaux: the query ↔ structure correspondence.
//!
//! The tableau of `Q(x̄)` is `(T_Q, x̄)`: the body of `Q` viewed as a
//! database whose elements are the variables, with the free variables
//! distinguished. The correspondence is lossless (up to variable names),
//! so the approximation algorithms work entirely on tableaux and convert
//! back to queries at the end.

use crate::ast::{Atom, ConjunctiveQuery, VarId};
use cqapx_structures::{Pointed, Structure, StructureBuilder};

/// The tableau `(T_Q, x̄)` of a query.
///
/// Elements of the structure are the query variables (same indices);
/// element names are the variable names.
///
/// # Examples
///
/// ```
/// use cqapx_cq::{parse_cq, tableau_of};
///
/// let q = parse_cq("Q(x) :- E(x, y), E(y, x)").unwrap();
/// let t = tableau_of(&q);
/// assert_eq!(t.structure.universe_size(), 2);
/// assert_eq!(t.distinguished(), &[0]);
/// ```
pub fn tableau_of(q: &ConjunctiveQuery) -> Pointed {
    let mut b = StructureBuilder::new(q.vocabulary().clone(), q.var_count());
    for a in q.atoms() {
        b.add(a.rel, &a.args);
    }
    let mut s = b.finish();
    s.set_names(q.var_names().to_vec());
    Pointed::new(s, q.free_vars().to_vec())
}

/// The canonical query of a tableau: each tuple becomes an atom; element
/// names become variable names (falling back to `v{i}`).
///
/// Inverse of [`tableau_of`] up to atom order and duplicate atoms.
///
/// # Panics
///
/// Panics when the structure has no tuples (queries need a nonempty body)
/// or when its universe is not active.
pub fn query_from_tableau(t: &Pointed) -> ConjunctiveQuery {
    let s: &Structure = &t.structure;
    assert!(
        !s.is_relations_empty(),
        "a tableau must have at least one tuple"
    );
    assert!(
        s.universe_is_active(),
        "tableau universes must be active (every variable in some atom)"
    );
    let var_names: Vec<String> = match s.names() {
        Some(names) => names.to_vec(),
        None => s.elements().map(|e| format!("x{e}")).collect(),
    };
    let mut atoms = Vec::new();
    for rel in s.vocabulary().rel_ids() {
        for tuple in s.tuples(rel) {
            atoms.push(Atom {
                rel,
                args: tuple.iter().map(|&x| x as VarId).collect(),
            });
        }
    }
    ConjunctiveQuery::new(
        s.vocabulary().clone(),
        var_names,
        t.distinguished().to_vec(),
        atoms,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_cq;

    #[test]
    fn roundtrip() {
        let q = parse_cq("Q(x, z) :- E(x, y), E(y, z), E(z, x)").unwrap();
        let t = tableau_of(&q);
        let q2 = query_from_tableau(&t);
        assert_eq!(q, q2);
    }

    #[test]
    fn duplicate_atoms_collapse() {
        let q = parse_cq("Q() :- E(x, y), E(x, y)").unwrap();
        let t = tableau_of(&q);
        assert_eq!(t.structure.total_tuples(), 1);
        let q2 = query_from_tableau(&t);
        assert_eq!(q2.atom_count(), 1);
    }

    #[test]
    fn boolean_tableau() {
        let q = parse_cq("Q() :- R(x, y, x)").unwrap();
        let t = tableau_of(&q);
        assert!(t.is_boolean());
        let r = q.vocabulary().rel("R").unwrap();
        assert!(t.structure.contains(r, &[0, 1, 0]));
    }

    #[test]
    fn names_preserved() {
        let q = parse_cq("Q(alpha) :- E(alpha, beta)").unwrap();
        let t = tableau_of(&q);
        assert_eq!(t.structure.element_name(0), "alpha");
        let q2 = query_from_tableau(&t);
        assert_eq!(q2.var_name(1), "beta");
    }
}
