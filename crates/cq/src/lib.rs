//! Conjunctive queries: representation, parsing, tableaux, containment,
//! minimization, and evaluation (naive and Yannakakis).
//!
//! A conjunctive query over a vocabulary `σ` is a formula
//! `Q(x̄) = ∃ȳ ⋀ⱼ R_{iⱼ}(x̄_{iⱼ})`, written in rule notation
//! `Q(x̄) :- R₁(…), …, R_m(…)`. Key facts from Chandra & Merlin used
//! throughout the paper and this crate:
//!
//! * `ā ∈ Q(D)` iff `(T_Q, x̄) → (D, ā)` — evaluation is homomorphism
//!   search from the **tableau**;
//! * `Q ⊆ Q'` iff `(T_{Q'}, x̄') → (T_Q, x̄)` — containment is the dual
//!   homomorphism;
//! * every CQ has a unique **minimized** equivalent whose tableau is the
//!   core of `T_Q`.
//!
//! Evaluation:
//!
//! * [`eval::naive`] — backtracking join (works for every CQ; combined
//!   complexity `|D|^O(|Q|)`);
//! * [`eval::yannakakis`] — the `O(|D|·|Q|)`-flavored algorithm for
//!   **acyclic** CQs (semijoin full reducer over a join tree, then
//!   bottom-up joins with projection). This is the payoff the paper's
//!   approximations buy: replace `Q` by an acyclic `Q' ⊆ Q` and evaluate
//!   `Q'` with Yannakakis.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod ast;
pub mod classes;
pub mod containment;
pub mod eval;
pub mod parser;
pub mod shape;
pub mod tableau;

pub use ast::{Atom, ConjunctiveQuery, VarId};
pub use classes::{hypergraph_of, query_graph, treewidth_of_query};
pub use containment::{contained_in, equivalent, is_minimized, minimize, strictly_contained_in};
pub use eval::{Evaluator, NaiveEvaluator};
pub use parser::{parse_cq, parse_cq_with_vocab};
pub use shape::QueryShape;
pub use tableau::{query_from_tableau, tableau_of};
