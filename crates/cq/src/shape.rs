//! Plan-relevant query metadata, computed once per prepared query.
//!
//! A [`QueryShape`] gathers everything a cost-based planner wants to know
//! about a CQ *before* seeing any database: size measures, per-atom
//! materialization keys, and membership in the cheap-to-evaluate classes. The class
//! checks are the expensive part (treewidth is exponential in the width),
//! so the shape is meant to be computed at prepare time and cached
//! alongside the query.

use crate::ast::ConjunctiveQuery;
use crate::classes::{is_acyclic_query, treewidth_of_query};
use crate::eval::flat::MatKey;
use cqapx_structures::RelId;

/// Static, database-independent facts about a query that drive planning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryShape {
    /// Number of variables `|Q|` (the paper's size measure).
    pub var_count: usize,
    /// Number of body atoms `m`.
    pub atom_count: usize,
    /// Head arity (0 for Boolean queries).
    pub arity: usize,
    /// `m − 1`, the join count.
    pub join_count: usize,
    /// Largest atom arity occurring in the body.
    pub max_atom_arity: usize,
    /// `Q ∈ AC`: an acyclic query evaluates in `O(|D|·|Q|)` via
    /// Yannakakis — the planner's first choice.
    pub acyclic: bool,
    /// Treewidth of `G(Q)`; small width keeps even the naive join cheap
    /// (`|D|^(tw+1)`-flavored instead of `|D|^|Q|`).
    pub treewidth: usize,
    /// Per body atom: its relation and its materialization-cache key
    /// (the atom taken as its own hyperedge). Lets the planner read
    /// **real** cached cardinalities — repeated-variable filtering
    /// included — where a materialization exists, instead of raw
    /// relation statistics.
    pub atom_keys: Vec<(RelId, MatKey)>,
}

impl QueryShape {
    /// Computes the shape of a query. Cost: one GYO pass plus one exact
    /// treewidth computation on `G(Q)` — intended for prepare time, not
    /// per request.
    pub fn of(q: &ConjunctiveQuery) -> QueryShape {
        let max_atom_arity = q.atoms().iter().map(|a| a.args.len()).max().unwrap_or(0);
        let atom_keys = q
            .atoms()
            .iter()
            .map(|a| (a.rel, MatKey::of_atom(a)))
            .collect();
        QueryShape {
            var_count: q.var_count(),
            atom_count: q.atom_count(),
            arity: q.arity(),
            join_count: q.join_count(),
            max_atom_arity,
            acyclic: is_acyclic_query(q),
            treewidth: treewidth_of_query(q),
            atom_keys,
        }
    }

    /// A crude upper bound on the exponent of naive evaluation,
    /// `|D|^O(exponent)`: the number of variables.
    pub fn naive_exponent(&self) -> usize {
        self.var_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_cq;

    #[test]
    fn shape_of_triangle() {
        let q = parse_cq("Q() :- E(x,y), E(y,z), E(z,x)").unwrap();
        let s = QueryShape::of(&q);
        assert_eq!(s.var_count, 3);
        assert_eq!(s.atom_count, 3);
        assert_eq!(s.arity, 0);
        assert_eq!(s.join_count, 2);
        assert_eq!(s.max_atom_arity, 2);
        assert!(!s.acyclic);
        assert_eq!(s.treewidth, 2);
        assert_eq!(s.atom_keys.len(), 3);
        assert!(s.atom_keys.iter().all(|(r, _)| *r == s.atom_keys[0].0));
    }

    #[test]
    fn shape_of_path() {
        let q = parse_cq("Q(x, z) :- E(x, y), E(y, z)").unwrap();
        let s = QueryShape::of(&q);
        assert!(s.acyclic);
        assert_eq!(s.treewidth, 1);
        assert_eq!(s.arity, 2);
    }
}
