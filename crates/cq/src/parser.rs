//! A parser for rule-notation conjunctive queries.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! query  := head ":-" body
//! head   := name "(" vars? ")"
//! body   := atom ("," atom)*
//! atom   := name "(" vars ")"
//! vars   := var ("," var)*
//! var    := [A-Za-z_][A-Za-z0-9_']*
//! ```
//!
//! The vocabulary is inferred from the body (relation names with their
//! arities) unless one is supplied via [`parse_cq_with_vocab`].

use crate::ast::{Atom, ConjunctiveQuery, VarId};
use cqapx_structures::Vocabulary;
use std::collections::HashMap;
use std::fmt;

/// A parse error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        message: message.into(),
    })
}

struct Lexer<'a> {
    input: &'a str,
    pos: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Ident(String),
    LParen,
    RParen,
    Comma,
    Implies,
    End,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Lexer { input, pos: 0 }
    }

    fn next_token(&mut self) -> Result<Token, ParseError> {
        let bytes = self.input.as_bytes();
        while self.pos < bytes.len() && bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
        if self.pos >= bytes.len() {
            return Ok(Token::End);
        }
        let c = bytes[self.pos];
        match c {
            b'(' => {
                self.pos += 1;
                Ok(Token::LParen)
            }
            b')' => {
                self.pos += 1;
                Ok(Token::RParen)
            }
            b',' => {
                self.pos += 1;
                Ok(Token::Comma)
            }
            b':' => {
                if self.input[self.pos..].starts_with(":-") {
                    self.pos += 2;
                    Ok(Token::Implies)
                } else {
                    err(format!("expected ':-' at byte {}", self.pos))
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = self.pos;
                while self.pos < bytes.len()
                    && (bytes[self.pos].is_ascii_alphanumeric()
                        || bytes[self.pos] == b'_'
                        || bytes[self.pos] == b'\'')
                {
                    self.pos += 1;
                }
                Ok(Token::Ident(self.input[start..self.pos].to_string()))
            }
            other => err(format!(
                "unexpected character {:?} at byte {}",
                other as char, self.pos
            )),
        }
    }
}

struct RawAtom {
    name: String,
    args: Vec<String>,
}

fn parse_raw(input: &str) -> Result<(Vec<String>, Vec<RawAtom>), ParseError> {
    let mut lx = Lexer::new(input);
    // Head.
    let head = parse_atom(&mut lx)?;
    match lx.next_token()? {
        Token::Implies => {}
        other => return err(format!("expected ':-' after head, found {other:?}")),
    }
    // Body.
    let mut atoms = Vec::new();
    loop {
        atoms.push(parse_atom(&mut lx)?);
        match lx.next_token()? {
            Token::Comma => continue,
            Token::End => break,
            other => return err(format!("expected ',' or end of input, found {other:?}")),
        }
    }
    Ok((head.args, atoms))
}

fn parse_atom(lx: &mut Lexer<'_>) -> Result<RawAtom, ParseError> {
    let name = match lx.next_token()? {
        Token::Ident(s) => s,
        other => return err(format!("expected a relation name, found {other:?}")),
    };
    match lx.next_token()? {
        Token::LParen => {}
        other => return err(format!("expected '(' after {name}, found {other:?}")),
    }
    let mut args = Vec::new();
    // Allow empty head Q().
    let save = lx.pos;
    match lx.next_token()? {
        Token::RParen => return Ok(RawAtom { name, args }),
        _ => lx.pos = save,
    }
    loop {
        match lx.next_token()? {
            Token::Ident(s) => args.push(s),
            other => return err(format!("expected a variable, found {other:?}")),
        }
        match lx.next_token()? {
            Token::Comma => continue,
            Token::RParen => break,
            other => return err(format!("expected ',' or ')', found {other:?}")),
        }
    }
    Ok(RawAtom { name, args })
}

/// Parses a rule-notation CQ, inferring the vocabulary from the body.
///
/// # Examples
///
/// ```
/// use cqapx_cq::parse_cq;
///
/// let q = parse_cq("Q() :- E(x, y), E(y, z), E(z, x)").unwrap();
/// assert!(q.is_boolean());
/// assert_eq!(q.atom_count(), 3);
/// assert_eq!(q.vocabulary().to_string(), "{E/2}");
/// ```
pub fn parse_cq(input: &str) -> Result<ConjunctiveQuery, ParseError> {
    let (head, raw) = parse_raw(input)?;
    // Infer vocabulary.
    let mut rels: Vec<(String, usize)> = Vec::new();
    for a in &raw {
        match rels.iter().find(|(n, _)| *n == a.name) {
            Some((_, arity)) => {
                if *arity != a.args.len() {
                    return err(format!(
                        "relation {} used with arities {} and {}",
                        a.name,
                        arity,
                        a.args.len()
                    ));
                }
            }
            None => rels.push((a.name.clone(), a.args.len())),
        }
    }
    let vocab = Vocabulary::new(rels);
    assemble(vocab, head, raw)
}

/// Parses against a fixed vocabulary (arities checked).
pub fn parse_cq_with_vocab(
    input: &str,
    vocab: &Vocabulary,
) -> Result<ConjunctiveQuery, ParseError> {
    let (head, raw) = parse_raw(input)?;
    for a in &raw {
        match vocab.rel(&a.name) {
            None => return err(format!("unknown relation {}", a.name)),
            Some(r) => {
                if vocab.arity(r) != a.args.len() {
                    return err(format!(
                        "relation {} has arity {}, used with {} arguments",
                        a.name,
                        vocab.arity(r),
                        a.args.len()
                    ));
                }
            }
        }
    }
    assemble(vocab.clone(), head, raw)
}

fn assemble(
    vocab: Vocabulary,
    head: Vec<String>,
    raw: Vec<RawAtom>,
) -> Result<ConjunctiveQuery, ParseError> {
    let mut var_ids: HashMap<String, VarId> = HashMap::new();
    let mut var_names: Vec<String> = Vec::new();
    let mut intern = |name: &str, var_ids: &mut HashMap<String, VarId>| -> VarId {
        *var_ids.entry(name.to_string()).or_insert_with(|| {
            let id = var_names.len() as VarId;
            var_names.push(name.to_string());
            id
        })
    };
    let mut atoms = Vec::with_capacity(raw.len());
    for a in &raw {
        let rel = vocab.rel(&a.name).expect("checked above");
        let args = a.args.iter().map(|s| intern(s, &mut var_ids)).collect();
        atoms.push(Atom { rel, args });
    }
    // Head variables must occur in the body (safety).
    let mut free = Vec::with_capacity(head.len());
    for h in &head {
        match var_ids.get(h) {
            Some(&v) => free.push(v),
            None => {
                return err(format!(
                    "head variable {h} does not occur in the body (unsafe query)"
                ))
            }
        }
    }
    if raw.is_empty() {
        return err("query body is empty");
    }
    Ok(ConjunctiveQuery::new(vocab, var_names, free, atoms))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_triangle() {
        let q = parse_cq("Q() :- E(x,y), E(y,z), E(z,x)").unwrap();
        assert_eq!(q.var_count(), 3);
        assert_eq!(q.atom_count(), 3);
        assert!(q.is_boolean());
    }

    #[test]
    fn parse_with_free_vars() {
        let q = parse_cq("Q(x, y) :- E(x, y), E(y, z)").unwrap();
        assert_eq!(q.free_vars(), &[0, 1]);
        assert_eq!(q.to_string(), "Q(x, y) :- E(x, y), E(y, z)");
    }

    #[test]
    fn parse_higher_arity() {
        let q = parse_cq("Q() :- R(x, u, y), R(y, v, z), R(z, w, x)").unwrap();
        assert_eq!(q.vocabulary().max_arity(), 3);
        assert_eq!(q.var_count(), 6);
    }

    #[test]
    fn parse_repeated_variables() {
        let q = parse_cq("Q(x) :- R(x, x, y)").unwrap();
        assert_eq!(q.atoms()[0].args, vec![0, 0, 1]);
    }

    #[test]
    fn unsafe_head_rejected() {
        assert!(parse_cq("Q(w) :- E(x, y)").is_err());
    }

    #[test]
    fn arity_conflict_rejected() {
        assert!(parse_cq("Q() :- R(x, y), R(x, y, z)").is_err());
    }

    #[test]
    fn vocab_mismatch_rejected() {
        let vocab = Vocabulary::graphs();
        assert!(parse_cq_with_vocab("Q() :- F(x, y)", &vocab).is_err());
        assert!(parse_cq_with_vocab("Q() :- E(x, y, z)", &vocab).is_err());
        assert!(parse_cq_with_vocab("Q() :- E(x, y)", &vocab).is_ok());
    }

    #[test]
    fn garbage_rejected() {
        assert!(parse_cq("Q() :-").is_err());
        assert!(parse_cq("Q()").is_err());
        assert!(parse_cq("Q() :- E(x,").is_err());
        assert!(parse_cq("Q() :- E(x y)").is_err());
        assert!(parse_cq("42").is_err());
    }

    #[test]
    fn primed_variables() {
        let q = parse_cq("Q() :- E(x, x'), E(x', x'')").unwrap();
        assert_eq!(q.var_count(), 3);
        assert_eq!(q.var_name(1), "x'");
    }

    #[test]
    fn whitespace_insensitive() {
        let a = parse_cq("Q(x):-E(x,y)").unwrap();
        let b = parse_cq("  Q( x )  :-  E( x , y )  ").unwrap();
        assert_eq!(a, b);
    }
}
