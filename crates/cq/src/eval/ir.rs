//! The unified physical plan IR: one explicit operator set over
//! [`FlatRelation`] buffers, shared by every compiled evaluation
//! strategy.
//!
//! A [`PlanIr`] is a straight-line program over numbered relation
//! *slots*. The operators are the classical physical algebra:
//!
//! | operator             | effect                                                |
//! |----------------------|-------------------------------------------------------|
//! | [`Op::Materialize`]  | scan/adopt a [`MatSource`] into a slot (cache-aware); multi-part bags join binarily or via the worst-case-optimal multiway kernel per the source's [`MatStrategy`] |
//! | [`Op::Semijoin`]     | in-place `target ⋉ source` on aligned key columns     |
//! | [`Op::AssertNonempty`] | abort with the empty answer when a slot ran dry     |
//! | [`Op::Join`]         | natural hash join of two slots into a third           |
//! | [`Op::Project`]      | hash-distinct projection onto a variable list         |
//! | [`Op::Dedup`]        | in-place sort + duplicate elimination                 |
//! | [`Op::Union`]        | append a same-variable slot (column-remapped)         |
//!
//! Both `AcyclicPlan` (Yannakakis over a GYO join tree) and
//! `DecomposedPlan` (Yannakakis over the bags of a tree decomposition)
//! compile to this IR through [`compile_tree`]; evaluation is a single
//! interpreter loop, so cache adoption, statistics, and kernel
//! improvements land in one place.
//!
//! [`compile_tree`] takes per-node [`NodeSpec`]s — a relation source
//! plus a *connectivity label* — and a rooted tree. For join trees the
//! label **is** the node's schema and the semijoin sweeps alone decide
//! Boolean answers (classical Yannakakis). For tree decompositions the
//! label is the bag, which may strictly contain the schema of the
//! atoms materialized in it; the sweeps are then only a sound prefilter
//! and the bottom-up join phase decides everything (the compiler
//! detects which case it is in — see [`PlanIr::reduction_decides`]).

use crate::ast::{Atom, VarId};
use crate::eval::flat::{
    bitmap_mode, note_bitmap_build, note_bitmap_probe, AtomBinder, BitmapMode, FlatRelation,
    MatCacheStats, MatKey, MaterializationCache,
};
use cqapx_par::{parallel_map, ThreadBudget};
use cqapx_structures::{DomainBitmap, Structure};
use std::collections::BTreeSet;

/// Index of a relation slot in a [`PlanIr`] program.
pub type Slot = usize;

/// One operator's share of a profiled run: wall time and the row count
/// of its primary output slot after execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpProfile {
    /// Operator kind (`"materialize"`, `"semijoin"`, …).
    pub op: &'static str,
    /// Wall-clock microseconds spent in the operator.
    pub micros: u64,
    /// Rows in the operator's output slot when it finished.
    pub rows: usize,
}

/// A per-operator execution profile of one [`PlanIr`] run, collected
/// only when the caller asks for it (the `Debug` metrics level): the
/// hot path pays a single `Option` branch per operator. Entries appear
/// in execution order; an aborted run (emptiness assertion fired)
/// profiles the prefix that ran.
#[derive(Debug, Clone, Default)]
pub struct EvalProfile {
    /// Per-operator timings/row counts, in execution order.
    pub ops: Vec<OpProfile>,
}

impl EvalProfile {
    /// Total microseconds across operators.
    pub fn total_micros(&self) -> u64 {
        self.ops.iter().map(|o| o.micros).sum()
    }

    /// Sums `micros` and `rows` per operator kind, in kind order.
    pub fn by_op(&self) -> Vec<(&'static str, u64, usize)> {
        let mut agg: Vec<(&'static str, u64, usize)> = Vec::new();
        for o in &self.ops {
            match agg.iter_mut().find(|(k, _, _)| *k == o.op) {
                Some((_, us, rows)) => {
                    *us += o.micros;
                    *rows += o.rows;
                }
                None => agg.push((o.op, o.micros, o.rows)),
            }
        }
        agg.sort_unstable_by_key(|&(k, _, _)| k);
        agg
    }
}

/// How a multi-part [`MatSource`] joins its parts into the bag relation.
/// Either path produces the identical canonical relation (sorted rows,
/// sorted schema) under the identical [`MatKey`], so the choice is
/// invisible to the cache and to every consumer — it is purely a build
/// cost decision.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum MatStrategy {
    /// Decide per build from the parts' exact cardinalities: an
    /// AGM-style multiway bound against the estimated left-deep binary
    /// intermediates (see [`resolve_bag_strategy`]).
    #[default]
    Auto,
    /// Left-deep binary hash joins, then canonicalize onto the schema.
    Binary,
    /// Worst-case-optimal multiway intersection (generic join /
    /// leapfrog): never materializes an intermediate larger than the
    /// output.
    Wcoj,
}

impl MatStrategy {
    /// Lower-case label, as accepted by `CQAPX_BAG_STRATEGY` and used
    /// for metrics labels.
    pub fn name(self) -> &'static str {
        match self {
            MatStrategy::Auto => "auto",
            MatStrategy::Binary => "binary",
            MatStrategy::Wcoj => "wcoj",
        }
    }
}

impl std::fmt::Display for MatStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The process-wide `CQAPX_BAG_STRATEGY` override (mirroring
/// `CQAPX_THREADS`): `binary` or `wcoj` force that build path for every
/// multi-part bag; anything else (or unset) leaves the decision to the
/// plan / the per-build cost model. Read once and cached.
pub fn env_bag_strategy() -> MatStrategy {
    static STRATEGY: std::sync::OnceLock<MatStrategy> = std::sync::OnceLock::new();
    *STRATEGY.get_or_init(
        || match std::env::var("CQAPX_BAG_STRATEGY").ok().as_deref() {
            Some("binary") => MatStrategy::Binary,
            Some("wcoj") => MatStrategy::Wcoj,
            _ => MatStrategy::Auto,
        },
    )
}

/// The cost-model half of [`MatStrategy::Auto`]: picks binary vs
/// multiway for one bag from its parts' `(cardinality, schema)` pairs
/// under a uniform-independence model over an active domain of `adom`
/// elements. The binary cost is the sum of the estimated left-deep
/// intermediate sizes plus one more pass over the final result (the
/// canonicalizing sort); the multiway cost is the total input size plus
/// the final result (worst-case-optimal enumeration never touches an
/// intermediate bigger than the output, and emits in canonical order).
/// This is the cardinality-only prior the planner's mirrored
/// [`BagSummary`](crate::eval::DecomposedPlan) annotation uses; the
/// build itself refines it with observed column degrees
/// ([`resolve_bag_strategy_observed`]).
pub fn resolve_bag_strategy(parts: &[(usize, &[VarId])], adom: usize) -> MatStrategy {
    strategy_from_model(parts, None, adom)
}

/// Skew-corrected variant of [`resolve_bag_strategy`] for the runtime,
/// which has the part relations in hand: `max_degrees[i][j]` is the
/// maximum frequency of any single value in column `j` of part `i`
/// (see [`FlatRelation::max_degrees`]). The per-row match estimate for
/// a join becomes the geometric mean of the average degree (the uniform
/// model) and the heavy-hitter degree, so hub-concentrated relations —
/// where a few values carry most of the tuples and binary intermediates
/// explode — push the decision multiway. The correction only ever
/// raises the estimate (the max degree bounds the average from above),
/// so key-like joins keep the uniform verdict.
pub fn resolve_bag_strategy_observed(
    parts: &[(usize, &[VarId])],
    max_degrees: &[Vec<usize>],
    adom: usize,
) -> MatStrategy {
    strategy_from_model(parts, Some(max_degrees), adom)
}

fn strategy_from_model(
    parts: &[(usize, &[VarId])],
    max_degrees: Option<&[Vec<usize>]>,
    adom: usize,
) -> MatStrategy {
    if parts.len() < 2 || parts.iter().any(|(_, s)| s.is_empty()) {
        return MatStrategy::Binary;
    }
    let adom = adom.max(1) as f64;
    let mut acc_vars: BTreeSet<VarId> = parts[0].1.iter().copied().collect();
    let mut acc_est = parts[0].0 as f64;
    let mut binary = 0.0;
    for (i, &(card, schema)) in parts.iter().enumerate().skip(1) {
        let shared: Vec<usize> = (0..schema.len())
            .filter(|&j| acc_vars.contains(&schema[j]))
            .collect();
        let avg = card as f64 / adom.powi(shared.len() as i32);
        let matches = match max_degrees {
            Some(md) if !shared.is_empty() => {
                // A composite join key's degree is at most the least
                // loaded of its columns' heavy hitters.
                let cap = shared
                    .iter()
                    .map(|&j| md[i][j].max(1))
                    .min()
                    .unwrap_or(card) as f64;
                (avg * cap).sqrt().min(card as f64)
            }
            _ => avg,
        };
        acc_est *= matches;
        acc_vars.extend(schema.iter().copied());
        binary += acc_est;
    }
    binary += acc_est; // the canonicalizing sort of the final result
    let inputs: f64 = parts.iter().map(|&(c, _)| c as f64).sum();
    if binary > inputs + acc_est {
        MatStrategy::Wcoj
    } else {
        MatStrategy::Binary
    }
}

/// One sub-hyperedge of a [`MatSource`]: the atoms sharing one variable
/// set, compiled to binders, with its own cache identity.
#[derive(Debug, Clone)]
pub struct MatPart {
    /// Sorted distinct variables of the sub-hyperedge.
    pub schema: Vec<VarId>,
    /// Cache identity of this sub-hyperedge alone.
    pub key: MatKey,
    /// Compiled binders, one per atom with this variable set.
    pub binders: Vec<AtomBinder>,
}

/// The relation source of one plan node: a group of sub-hyperedges whose
/// natural join (then canonicalized onto `schema`) is the node relation.
///
/// * join-tree nodes have exactly one part whose schema equals the
///   source schema — the hyperedge itself;
/// * tree-decomposition bags join every covering atom group — the bag
///   materialization;
/// * a node with **no** parts materializes to the 0-ary "true" relation
///   (a connector bag none of whose atoms it covers).
///
/// Sources (and, on a miss, their individual parts) go through the
/// per-database [`MaterializationCache`] keyed by [`MatKey`], so a bag
/// is cached exactly like a hyperedge and either can adopt the other's
/// entry when the keys coincide.
#[derive(Debug, Clone)]
pub struct MatSource {
    /// Sorted distinct variables of the whole source (the union of the
    /// part schemas).
    pub schema: Vec<VarId>,
    /// Cache identity of the joined source.
    pub key: MatKey,
    /// The sub-hyperedges joined to form the relation.
    pub parts: Vec<MatPart>,
    /// How the parts are joined (cache-invisible; see [`MatStrategy`]).
    pub strategy: MatStrategy,
}

impl MatSource {
    /// Compiles a source from atom groups (each group: the atoms sharing
    /// one variable set) over the union of their variables.
    pub fn from_groups(groups: &[Vec<&Atom>]) -> MatSource {
        let mut schema: Vec<VarId> = groups
            .iter()
            .flat_map(|g| g.iter().flat_map(|a| a.args.iter().copied()))
            .collect();
        schema.sort_unstable();
        schema.dedup();
        let all: Vec<&Atom> = groups.iter().flat_map(|g| g.iter().copied()).collect();
        let parts = groups
            .iter()
            .map(|g| {
                let mut vars: Vec<VarId> = g.iter().flat_map(|a| a.args.iter().copied()).collect();
                vars.sort_unstable();
                vars.dedup();
                MatPart {
                    key: MatKey::of_group(g, &vars),
                    binders: g.iter().map(|a| AtomBinder::compile(a, &vars)).collect(),
                    schema: vars,
                }
            })
            .collect();
        MatSource {
            key: MatKey::of_group(&all, &schema),
            schema,
            parts,
            strategy: MatStrategy::Auto,
        }
    }

    /// Materializes the source against `d`, adopting from / inserting
    /// into `cache` when given. Multi-part sources are cached at both
    /// levels: the joined source under its own key and, on a source
    /// miss, each part under its key (so single-atom parts are shared
    /// with the plans that use them as whole hyperedges). The part
    /// joins and canonicalization run under `budget`.
    pub fn materialize(
        &self,
        d: &Structure,
        cache: Option<&MaterializationCache>,
        stats: &mut MatCacheStats,
        budget: &ThreadBudget,
    ) -> FlatRelation {
        if self.parts.is_empty() {
            return FlatRelation::unit();
        }
        match cache {
            None => self.materialize_fresh(d, None, stats, budget),
            Some(c) => {
                let mut inner = MatCacheStats::default();
                let (rel, hit) = c.get_or_materialize(&self.key, || {
                    self.materialize_fresh(d, Some(c), &mut inner, budget)
                });
                if hit {
                    stats.hits += 1;
                } else {
                    stats.misses += 1;
                }
                stats.add(inner);
                rel.relabel(self.schema.clone())
            }
        }
    }

    /// Scans and joins the parts (no lookup of the source key itself).
    fn materialize_fresh(
        &self,
        d: &Structure,
        cache: Option<&MaterializationCache>,
        stats: &mut MatCacheStats,
        budget: &ThreadBudget,
    ) -> FlatRelation {
        // One scratch buffer serves every atom scan of the whole build.
        let mut scratch = FlatRelation::empty(Vec::new());
        if self.parts.len() == 1 && self.parts[0].schema == self.schema {
            // The source *is* its single part; its key equals the part
            // key, so the caller's lookup already covered it.
            return self.parts[0].materialize_fresh(d, budget, &mut scratch);
        }
        let mut rels: Vec<FlatRelation> = Vec::with_capacity(self.parts.len());
        for part in &self.parts {
            rels.push(match cache {
                None => part.materialize_fresh(d, budget, &mut scratch),
                Some(c) => {
                    let (rel, hit) = c.get_or_materialize(&part.key, || {
                        part.materialize_fresh(d, budget, &mut scratch)
                    });
                    if hit {
                        stats.hits += 1;
                    } else {
                        stats.misses += 1;
                    }
                    rel.relabel(part.schema.clone())
                }
            });
        }
        let strategy = self.resolve_strategy(&rels, d);
        let t0 = std::time::Instant::now();
        let out = match strategy {
            MatStrategy::Wcoj => {
                let parts: Vec<&FlatRelation> = rels.iter().collect();
                crate::eval::flat::multiway_join(&parts, &self.schema, budget)
            }
            _ => {
                let mut acc: Option<FlatRelation> = None;
                for rel in rels {
                    acc = Some(match acc {
                        None => rel,
                        Some(a) => a.join_budget(&rel, budget),
                    });
                }
                // Canonicalize onto the sorted source schema (column
                // order and row order), so cache entries are
                // label-independent.
                acc.expect("nonempty parts")
                    .project_budget(&self.schema, budget)
            }
        };
        let us = t0.elapsed().as_micros() as u64;
        if strategy == MatStrategy::Wcoj {
            stats.wcoj_bag_builds += 1;
            stats.wcoj_bag_us += us;
        } else {
            stats.binary_bag_builds += 1;
            stats.binary_bag_us += us;
        }
        out
    }

    /// The build path actually taken, given the parts' materialized
    /// relations: the env override when it forces a path, else the
    /// compiled [`MatSource::strategy`], else the skew-corrected cost
    /// model over exact part cardinalities and observed column degrees.
    /// Multiway needs two or more parts, all with nonempty schemas;
    /// everything else joins binarily.
    fn resolve_strategy(&self, rels: &[FlatRelation], d: &Structure) -> MatStrategy {
        if self.parts.len() < 2 || self.parts.iter().any(|p| p.schema.is_empty()) {
            return MatStrategy::Binary;
        }
        let forced = match env_bag_strategy() {
            MatStrategy::Auto => self.strategy,
            f => f,
        };
        match forced {
            MatStrategy::Auto => {
                let parts: Vec<(usize, &[VarId])> = rels
                    .iter()
                    .zip(&self.parts)
                    .map(|(r, p)| (r.len(), p.schema.as_slice()))
                    .collect();
                let degrees: Vec<Vec<usize>> = rels.iter().map(|r| r.max_degrees()).collect();
                resolve_bag_strategy_observed(&parts, &degrees, d.universe_size())
            }
            s => s,
        }
    }
}

impl MatPart {
    /// Scans the part's atoms and intersects them (they share a schema).
    /// `scratch` buffers the second and later atom scans — cleared and
    /// refilled, so one allocation serves an entire bag build.
    fn materialize_fresh(
        &self,
        d: &Structure,
        budget: &ThreadBudget,
        scratch: &mut FlatRelation,
    ) -> FlatRelation {
        let mut acc = FlatRelation::empty(self.schema.clone());
        self.binders[0].materialize_into(d, &mut acc);
        acc.sort_dedup_budget(budget);
        for binder in &self.binders[1..] {
            scratch.reset(self.schema.clone());
            binder.materialize_into(d, scratch);
            scratch.sort_dedup_budget(budget);
            acc.intersect_sorted(scratch);
        }
        // Word images are build-local scratch: drop before the
        // relation can land in a cache (see `WordsCell`).
        acc.drop_word_image();
        acc
    }
}

/// One instruction of a [`PlanIr`] program.
#[derive(Debug, Clone)]
pub enum Op {
    /// Materialize (or adopt from the cache) a source into `dst`.
    Materialize {
        /// Destination slot.
        dst: Slot,
        /// What to materialize.
        source: MatSource,
    },
    /// In-place semijoin `target ⋉ source` on aligned key columns.
    Semijoin {
        /// Slot filtered in place.
        target: Slot,
        /// Slot probed for matches.
        source: Slot,
        /// Key column positions in the target's schema.
        target_pos: Vec<usize>,
        /// Key column positions in the source's schema.
        source_pos: Vec<usize>,
    },
    /// Abort the program (empty answer) when the slot has no rows.
    AssertNonempty {
        /// Slot checked.
        slot: Slot,
    },
    /// Natural join `left ⋈ right` into `dst` (operands are kept).
    Join {
        /// Destination slot.
        dst: Slot,
        /// Left operand slot.
        left: Slot,
        /// Right operand slot.
        right: Slot,
    },
    /// Projection of `src` onto `vars` into `dst` (sorted, deduplicated).
    Project {
        /// Destination slot.
        dst: Slot,
        /// Source slot.
        src: Slot,
        /// Variables kept (must occur in the source schema).
        vars: Vec<VarId>,
    },
    /// In-place sort + duplicate elimination of a slot.
    Dedup {
        /// Slot canonicalized.
        slot: Slot,
    },
    /// Append the rows of `src` to `dst` (same variable set, columns
    /// remapped by name). Follow with [`Op::Dedup`] to restore set
    /// semantics.
    Union {
        /// Destination slot (grows).
        dst: Slot,
        /// Source slot (kept).
        src: Slot,
    },
}

/// A compiled physical plan: a straight-line operator program over
/// relation slots, with a designated output slot.
#[derive(Debug, Clone)]
pub struct PlanIr {
    /// Number of relation slots the program uses.
    slots: usize,
    /// The instructions, executed in order.
    ops: Vec<Op>,
    /// Length of the materialize-and-reduce prefix (see
    /// [`PlanIr::reduction_decides`]).
    bool_len: usize,
    /// `true` when surviving the reduction prefix alone proves the
    /// answer nonempty (labels equal schemas: a genuine join tree, where
    /// the full reducer establishes global consistency). When `false`
    /// (decomposition bags with connector-only variables), Boolean
    /// evaluation must run the join phase too.
    reduction_decides: bool,
    /// Slot holding the final relation after a full run.
    output: Slot,
    /// Memoized [`PlanIr::dependency_stages`] (the labels depend only
    /// on the immutable op list): computed on the first budgeted run,
    /// a field read afterwards. Clones carry the computed value along.
    stages_memo: std::sync::OnceLock<Vec<usize>>,
}

/// Disjoint `(&mut xs[a], &xs[b])` access for `a ≠ b`: the borrow split
/// in-place semijoins need to filter one slot against another without
/// cloning either relation.
fn pair_mut<T>(xs: &mut [T], a: usize, b: usize) -> (&mut T, &T) {
    debug_assert_ne!(a, b, "semijoin target and source must differ");
    if a < b {
        let (lo, hi) = xs.split_at_mut(b);
        (&mut lo[a], &hi[0])
    } else {
        let (lo, hi) = xs.split_at_mut(a);
        (&mut hi[0], &lo[b])
    }
}

impl PlanIr {
    /// Number of operators in the program.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Whether the reduction prefix alone decides Boolean answers.
    pub fn reduction_decides(&self) -> bool {
        self.reduction_decides
    }

    /// Overrides the bag-build strategy of every materialization source
    /// in the program (tests and benches force a path this way; plans
    /// compile with [`MatStrategy::Auto`]).
    pub fn set_bag_strategy(&mut self, strategy: MatStrategy) {
        for op in &mut self.ops {
            if let Op::Materialize { source, .. } = op {
                source.strategy = strategy;
            }
        }
    }

    /// The materialization sources of the program, in op order.
    pub fn materialize_sources(&self) -> impl Iterator<Item = &MatSource> {
        self.ops.iter().filter_map(|op| match op {
            Op::Materialize { source, .. } => Some(source),
            _ => None,
        })
    }

    /// The dependency stage of every operator: `stage[i]` is the length
    /// of the longest chain of slot conflicts (read-after-write,
    /// write-after-read, write-after-write) ending at op `i`, with every
    /// [`Op::AssertNonempty`] also acting as a control barrier for the
    /// ops behind it (they must not run if the program aborts). Ops that
    /// share a stage are mutually independent and may execute
    /// concurrently; stage 0 is exactly the leading block of independent
    /// [`Op::Materialize`] ops in a [`compile_tree`] program.
    pub fn dependency_stages(&self) -> Vec<usize> {
        // Per slot: the stage of its last writer / last reader so far.
        let mut last_write: Vec<Option<usize>> = vec![None; self.slots];
        let mut last_read: Vec<Option<usize>> = vec![None; self.slots];
        let mut barrier: Option<usize> = None;
        let mut stages = Vec::with_capacity(self.ops.len());
        for op in &self.ops {
            let (reads, writes): (Vec<Slot>, Vec<Slot>) = match op {
                Op::Materialize { dst, .. } => (vec![], vec![*dst]),
                Op::Semijoin { target, source, .. } => (vec![*source, *target], vec![*target]),
                Op::AssertNonempty { slot } => (vec![*slot], vec![]),
                Op::Join { dst, left, right } => (vec![*left, *right], vec![*dst]),
                Op::Project { dst, src, .. } => (vec![*src], vec![*dst]),
                Op::Dedup { slot } => (vec![*slot], vec![*slot]),
                Op::Union { dst, src } => (vec![*src, *dst], vec![*dst]),
            };
            let mut stage = barrier.map(|b| b + 1).unwrap_or(0);
            for &r in &reads {
                if let Some(w) = last_write[r] {
                    stage = stage.max(w + 1);
                }
            }
            for &w in &writes {
                for dep in [last_write[w], last_read[w]].into_iter().flatten() {
                    stage = stage.max(dep + 1);
                }
            }
            for &r in &reads {
                last_read[r] = Some(last_read[r].unwrap_or(0).max(stage));
            }
            for &w in &writes {
                last_write[w] = Some(stage);
            }
            if matches!(op, Op::AssertNonempty { .. }) {
                barrier = Some(barrier.unwrap_or(0).max(stage));
            }
            stages.push(stage);
        }
        stages
    }

    /// Executes `ops[start..len]`. Returns `false` when an
    /// [`Op::AssertNonempty`] fired (the answer is empty).
    ///
    /// Execution is sequential in op order, with one scheduling upgrade
    /// when `budget` grants extra workers: a contiguous run of
    /// [`Op::Materialize`] ops that share a dependency stage (mutually
    /// independent by construction — distinct destination slots, no slot
    /// reads) is fanned out over claimed workers, one source per worker,
    /// results written back in op order. Under the cache's single-flight
    /// guarantee the per-run hit/miss totals equal the sequential run's.
    #[allow(clippy::too_many_arguments)]
    fn exec(
        &self,
        start: usize,
        len: usize,
        slots: &mut [Option<FlatRelation>],
        d: &Structure,
        cache: Option<&MaterializationCache>,
        stats: &mut MatCacheStats,
        budget: &ThreadBudget,
        mut profile: Option<&mut EvalProfile>,
    ) -> bool {
        fn rel(s: &Option<FlatRelation>) -> &FlatRelation {
            s.as_ref().expect("slot written before use")
        }
        /// Metrics label of one op, specialized when the operator
        /// would dispatch a packed code-word kernel (`CQAPX_PACKED`)
        /// against the current slot contents — computed **before** the
        /// op runs, so eligibility is judged on the same relations the
        /// dispatch itself sees. Labels only; the kernels are
        /// byte-identical either way.
        fn op_label(op: &Op, slots: &[Option<FlatRelation>]) -> &'static str {
            match op {
                Op::Materialize { .. } => "materialize",
                Op::Semijoin {
                    source, source_pos, ..
                } => match &slots[*source] {
                    Some(s) if FlatRelation::packed_semijoin_would_dispatch(s, source_pos) => {
                        "semijoin(packed)"
                    }
                    _ => "semijoin",
                },
                Op::AssertNonempty { .. } => "assert_nonempty",
                Op::Join { left, right, .. } => match (&slots[*left], &slots[*right]) {
                    (Some(l), Some(r)) if l.packed_join_would_dispatch(r) => "join(packed)",
                    _ => "join",
                },
                Op::Project { src, vars, .. } => match &slots[*src] {
                    Some(s) if s.packed_project_would_dispatch(vars) => "project(packed)",
                    _ => "project",
                },
                Op::Dedup { slot } => match &slots[*slot] {
                    Some(s) if s.packed_dedup_would_dispatch() => "dedup(packed)",
                    _ => "dedup",
                },
                Op::Union { .. } => "union",
            }
        }
        /// The slot whose row count describes the op's output.
        fn out_slot(op: &Op) -> Slot {
            match op {
                Op::Materialize { dst, .. } => *dst,
                Op::Semijoin { target, .. } => *target,
                Op::AssertNonempty { slot } => *slot,
                Op::Join { dst, .. } => *dst,
                Op::Project { dst, .. } => *dst,
                Op::Dedup { slot } => *slot,
                Op::Union { dst, .. } => *dst,
            }
        }
        // Stage labels are only needed to group materializations; skip
        // the analysis entirely on the sequential path, and memoize it
        // across runs (the labels depend only on the immutable ops).
        let stages: Option<&[usize]> = if budget.capacity() > 0 {
            Some(
                self.stages_memo
                    .get_or_init(|| self.dependency_stages())
                    .as_slice(),
            )
        } else {
            None
        };
        let mut pc = start;
        while pc < len {
            // A contiguous same-stage block of materializations fans
            // out over the budget's workers.
            if let (Op::Materialize { .. }, Some(stages)) = (&self.ops[pc], &stages) {
                let mut end = pc;
                while end < len
                    && stages[end] == stages[pc]
                    && matches!(self.ops[end], Op::Materialize { .. })
                {
                    end += 1;
                }
                if end - pc >= 2 {
                    let lease = budget.claim(end - pc - 1);
                    if lease.extra() > 0 {
                        let timed = profile.is_some();
                        let group: Vec<(Slot, &MatSource)> = self.ops[pc..end]
                            .iter()
                            .map(|op| match op {
                                Op::Materialize { dst, source } => (*dst, source),
                                _ => unreachable!("group holds only materializations"),
                            })
                            .collect();
                        let results = parallel_map(group, lease.workers(), |(dst, source)| {
                            let t0 = timed.then(std::time::Instant::now);
                            let mut s = MatCacheStats::default();
                            let r = source.materialize(d, cache, &mut s, budget);
                            let us = t0.map_or(0, |t| t.elapsed().as_micros() as u64);
                            (dst, r, s, us)
                        });
                        for (dst, r, s, us) in results {
                            if let Some(p) = profile.as_deref_mut() {
                                p.ops.push(OpProfile {
                                    op: "materialize",
                                    micros: us,
                                    rows: r.len(),
                                });
                            }
                            slots[dst] = Some(r);
                            stats.add(s);
                        }
                        pc = end;
                        continue;
                    }
                }
            }
            let t0 = profile.is_some().then(std::time::Instant::now);
            let label = profile.is_some().then(|| op_label(&self.ops[pc], slots));
            match &self.ops[pc] {
                Op::Materialize { dst, source } => {
                    slots[*dst] = Some(source.materialize(d, cache, stats, budget));
                }
                Op::Semijoin {
                    target,
                    source,
                    target_pos,
                    source_pos,
                } => {
                    let (t, s) = pair_mut(slots, *target, *source);
                    t.as_mut()
                        .expect("slot written before use")
                        .semijoin_on_budget(target_pos, rel(s), source_pos, budget);
                }
                Op::AssertNonempty { slot } => {
                    if rel(&slots[*slot]).is_empty() {
                        if let Some(p) = profile.as_deref_mut() {
                            p.ops.push(OpProfile {
                                op: "assert_nonempty",
                                micros: t0.map_or(0, |t| t.elapsed().as_micros() as u64),
                                rows: 0,
                            });
                        }
                        return false;
                    }
                }
                Op::Join { dst, left, right } => {
                    let out = rel(&slots[*left]).join_budget(rel(&slots[*right]), budget);
                    slots[*dst] = Some(out);
                }
                Op::Project { dst, src, vars } => {
                    // Every Project in a compiled tree reads a
                    // duplicate-free slot (materializations are
                    // canonical; joins of duplicate-free inputs are
                    // duplicate-free), so a keep-list equal to the full
                    // schema is the identity, and otherwise the
                    // hash-distinct projection suffices: downstream
                    // operators probe hashes and the answer collector
                    // orders, so the canonical sort would buy nothing.
                    let source = rel(&slots[*src]);
                    let out = if vars == source.schema() {
                        source.clone()
                    } else {
                        source.project_distinct(vars)
                    };
                    slots[*dst] = Some(out);
                }
                Op::Dedup { slot } => {
                    slots[*slot]
                        .as_mut()
                        .expect("slot written before use")
                        .sort_dedup_budget(budget);
                }
                Op::Union { dst, src } => {
                    let (t, s) = pair_mut(slots, *dst, *src);
                    t.as_mut()
                        .expect("slot written before use")
                        .union_rows(rel(s));
                }
            }
            if let Some(p) = profile.as_deref_mut() {
                p.ops.push(OpProfile {
                    op: label.expect("label computed when profiling"),
                    micros: t0.map_or(0, |t| t.elapsed().as_micros() as u64),
                    rows: slots[out_slot(&self.ops[pc])]
                        .as_ref()
                        .map_or(0, |r| r.len()),
                });
            }
            pc += 1;
        }
        true
    }

    /// Runs the full program under the process-wide shared thread
    /// budget. `None` means the answer is empty (an emptiness assertion
    /// fired); otherwise the output relation.
    pub fn run(
        &self,
        d: &Structure,
        cache: Option<&MaterializationCache>,
    ) -> (Option<FlatRelation>, MatCacheStats) {
        self.run_budget(d, cache, ThreadBudget::shared())
    }

    /// [`PlanIr::run`] under an explicit thread budget.
    pub fn run_budget(
        &self,
        d: &Structure,
        cache: Option<&MaterializationCache>,
        budget: &ThreadBudget,
    ) -> (Option<FlatRelation>, MatCacheStats) {
        self.run_budget_profiled(d, cache, budget, None)
    }

    /// [`PlanIr::run_budget`], optionally collecting a per-operator
    /// [`EvalProfile`] (pass `None` on the hot path: the only cost is
    /// one branch per operator).
    pub fn run_budget_profiled(
        &self,
        d: &Structure,
        cache: Option<&MaterializationCache>,
        budget: &ThreadBudget,
        profile: Option<&mut EvalProfile>,
    ) -> (Option<FlatRelation>, MatCacheStats) {
        let mut stats = MatCacheStats::default();
        let mut slots: Vec<Option<FlatRelation>> = vec![None; self.slots];
        if !self.exec(
            0,
            self.ops.len(),
            &mut slots,
            d,
            cache,
            &mut stats,
            budget,
            profile,
        ) {
            return (None, stats);
        }
        (slots[self.output].take(), stats)
    }

    /// Decides whether the answer is nonempty, running only as much of
    /// the program as the plan shape requires (shared thread budget).
    pub fn run_boolean(
        &self,
        d: &Structure,
        cache: Option<&MaterializationCache>,
    ) -> (bool, MatCacheStats) {
        self.run_boolean_budget(d, cache, ThreadBudget::shared())
    }

    /// [`PlanIr::run_boolean`] under an explicit thread budget.
    pub fn run_boolean_budget(
        &self,
        d: &Structure,
        cache: Option<&MaterializationCache>,
        budget: &ThreadBudget,
    ) -> (bool, MatCacheStats) {
        self.run_boolean_budget_profiled(d, cache, budget, None)
    }

    /// [`PlanIr::run_boolean_budget`], optionally collecting a
    /// per-operator [`EvalProfile`].
    pub fn run_boolean_budget_profiled(
        &self,
        d: &Structure,
        cache: Option<&MaterializationCache>,
        budget: &ThreadBudget,
        mut profile: Option<&mut EvalProfile>,
    ) -> (bool, MatCacheStats) {
        if self.reduction_decides {
            let mut stats = MatCacheStats::default();
            let mut slots: Vec<Option<FlatRelation>> = vec![None; self.slots];
            // Materialize first (parallel fan-out and cache accounting
            // identical to the full run), then decide the sweep path.
            let mat_len = self
                .ops
                .iter()
                .take_while(|op| matches!(op, Op::Materialize { .. }))
                .count()
                .min(self.bool_len);
            let alive = self.exec(
                0,
                mat_len,
                &mut slots,
                d,
                cache,
                &mut stats,
                budget,
                profile.as_deref_mut(),
            );
            debug_assert!(alive, "materializations assert nothing");
            if let Some(alive) = self.bitmap_bool_sweep(mat_len, &slots, profile.as_deref_mut()) {
                return (alive, stats);
            }
            let alive = self.exec(
                mat_len,
                self.bool_len,
                &mut slots,
                d,
                cache,
                &mut stats,
                budget,
                profile,
            );
            return (alive, stats);
        }
        let (out, stats) = self.run_budget_profiled(d, cache, budget, profile);
        (out.is_some_and(|r| !r.is_empty()), stats)
    }

    /// The full-reducer sweep `ops[mat_len..bool_len]` collapsed onto
    /// existence bitmaps and per-slot **live-row masks**: each semijoin
    /// tests the target's live rows against the source's live-value
    /// bitmap and clears misses in the mask; each emptiness assertion
    /// reads a popcount. No key index is built and no row is compacted
    /// — for `reduction_decides` plans the Boolean answer is exactly
    /// "did every mask stay nonempty", which is the bitmap-intersection
    /// collapse of the sweep.
    ///
    /// Exactness: a live mask *is* the survivor set the in-place
    /// semijoin would have compacted (same membership predicate per
    /// row, applied to the same live rows in the same op order), so
    /// the outcome — and every profiled row count — is identical to
    /// the kernel path. Slots are never mutated.
    ///
    /// Returns `None` (before emitting any profile entry) when bitmaps
    /// are off or any sweep op is ineligible — a multi-column key, or
    /// a source without a dense bound; the caller then runs the same
    /// ops through the semijoin kernel.
    fn bitmap_bool_sweep(
        &self,
        mat_len: usize,
        slots: &[Option<FlatRelation>],
        mut profile: Option<&mut EvalProfile>,
    ) -> Option<bool> {
        if bitmap_mode() == BitmapMode::Off {
            return None;
        }
        let sweep = &self.ops[mat_len..self.bool_len];
        let rel = |s: Slot| slots[s].as_ref().expect("slot written before use");
        // Validate every op up front — warming the source bitmaps from
        // the relation caches — so an ineligible sweep falls back
        // before any profile entry or counter moves.
        for op in sweep {
            match op {
                Op::AssertNonempty { .. } => {}
                Op::Semijoin {
                    source,
                    target_pos,
                    source_pos,
                    ..
                } => {
                    if target_pos.len() > 1
                        || (target_pos.len() == 1
                            && rel(*source).column_bitmap(source_pos[0]).is_none())
                    {
                        return None;
                    }
                }
                _ => return None,
            }
        }
        /// Live rows of one slot: a row-indexed bitset plus popcount.
        /// `dirty` marks slots whose mask has cleared bits, i.e. whose
        /// cached column bitmaps no longer describe the live rows.
        struct Mask {
            words: Vec<u64>,
            live: usize,
            dirty: bool,
        }
        let mut masks: Vec<Option<Mask>> = (0..self.slots).map(|_| None).collect();
        fn ensure(masks: &mut [Option<Mask>], rows: usize, s: Slot) {
            if masks[s].is_none() {
                let mut words = vec![u64::MAX; rows.div_ceil(64)];
                if !rows.is_multiple_of(64) {
                    *words.last_mut().expect("rows > 0") = (1u64 << (rows % 64)) - 1;
                }
                masks[s] = Some(Mask {
                    words,
                    live: rows,
                    dirty: false,
                });
            }
        }
        for op in sweep {
            let t0 = profile.is_some().then(std::time::Instant::now);
            match op {
                Op::AssertNonempty { slot } => {
                    ensure(&mut masks, rel(*slot).len(), *slot);
                    let live = masks[*slot].as_ref().expect("ensured").live;
                    if let Some(p) = profile.as_deref_mut() {
                        p.ops.push(OpProfile {
                            op: "assert_nonempty",
                            micros: t0.map_or(0, |t| t.elapsed().as_micros() as u64),
                            rows: live,
                        });
                    }
                    if live == 0 {
                        return Some(false);
                    }
                }
                Op::Semijoin {
                    target,
                    source,
                    target_pos,
                    source_pos,
                } => {
                    ensure(&mut masks, rel(*source).len(), *source);
                    ensure(&mut masks, rel(*target).len(), *target);
                    if target_pos.is_empty() {
                        // Cartesian degenerate case: the target dies
                        // iff the source has no live row.
                        if masks[*source].as_ref().expect("ensured").live == 0 {
                            let m = masks[*target].as_mut().expect("ensured");
                            m.words.fill(0);
                            m.live = 0;
                            m.dirty = true;
                        }
                    } else {
                        note_bitmap_probe();
                        let srel = rel(*source);
                        let scol = source_pos[0];
                        let smask = masks[*source].as_ref().expect("ensured");
                        // The source's live-value bitmap: the cached
                        // column bitmap while every source row is
                        // live, a one-pass rebuild over the live rows
                        // once the sweep has filtered it.
                        let rebuilt;
                        let cached;
                        let sbm: &DomainBitmap = if smask.dirty {
                            let mut bm = DomainBitmap::new(srel.domain_width());
                            for (wi, &w) in smask.words.iter().enumerate() {
                                let mut bits = w;
                                while bits != 0 {
                                    let i = (wi << 6) + bits.trailing_zeros() as usize;
                                    bm.set(srel.row(i)[scol]);
                                    bits &= bits - 1;
                                }
                            }
                            note_bitmap_build();
                            rebuilt = bm;
                            &rebuilt
                        } else {
                            cached = srel
                                .column_bitmap(scol)
                                .expect("validated before the sweep");
                            &cached
                        };
                        let trel = rel(*target);
                        let tcol = target_pos[0];
                        // Word-wise collapse: the target's cached column
                        // bitmap covers every row (dead ones included),
                        // so if it is a subset of the source's live
                        // values, no live row can miss — the op is a
                        // subset test over two word tables and the row
                        // scan never runs. On fully-reducing data the
                        // entire sweep settles in these tests.
                        let covered = trel
                            .column_bitmap(tcol)
                            .is_some_and(|tbm| tbm.subset_of(sbm));
                        let m = masks[*target].as_mut().expect("ensured");
                        if covered {
                            if let Some(p) = profile.as_deref_mut() {
                                p.ops.push(OpProfile {
                                    op: "semijoin",
                                    micros: t0.map_or(0, |t| t.elapsed().as_micros() as u64),
                                    rows: m.live,
                                });
                            }
                            continue;
                        }
                        let mut live = 0usize;
                        for (wi, w) in m.words.iter_mut().enumerate() {
                            let mut keep = 0u64;
                            let mut bits = *w;
                            while bits != 0 {
                                let b = bits & bits.wrapping_neg();
                                let i = (wi << 6) + b.trailing_zeros() as usize;
                                let hit = sbm.contains(trel.row(i)[tcol]) as u64;
                                keep |= b & hit.wrapping_neg();
                                bits ^= b;
                            }
                            *w = keep;
                            live += keep.count_ones() as usize;
                        }
                        if live != m.live {
                            m.dirty = true;
                        }
                        m.live = live;
                    }
                    if let Some(p) = profile.as_deref_mut() {
                        p.ops.push(OpProfile {
                            op: "semijoin",
                            micros: t0.map_or(0, |t| t.elapsed().as_micros() as u64),
                            rows: masks[*target].as_ref().expect("ensured").live,
                        });
                    }
                }
                _ => unreachable!("validated before the sweep"),
            }
        }
        Some(true)
    }
}

/// One node of the tree a plan is compiled from.
#[derive(Debug, Clone)]
pub struct NodeSpec {
    /// The node's relation source.
    pub source: MatSource,
    /// Sorted connectivity label: the variable set guaranteed to satisfy
    /// the running-intersection property over the tree. Equals
    /// `source.schema` for join-tree nodes; the whole bag for
    /// tree-decomposition nodes.
    pub label: Vec<VarId>,
}

/// Compiles the Yannakakis pipeline over a rooted tree (or forest) of
/// nodes into a [`PlanIr`] program:
///
/// 1. materialize every node source;
/// 2. full reducer — semijoins leaves→root then root→leaves on the
///    columns the adjacent *schemas* share, with emptiness assertions;
/// 3. unless the query is Boolean and the reduction decides it:
///    bottom-up joins, each node projected onto its free variables plus
///    the variables its parent's *label* retains, roots combined by
///    (cartesian) join.
///
/// `parent`/`order` describe the rooted tree (children before parents
/// in `order`); `free` lists the query's free variables.
pub fn compile_tree(
    nodes: &[NodeSpec],
    parent: &[Option<usize>],
    order: &[usize],
    free: &[VarId],
) -> PlanIr {
    let n = nodes.len();
    assert_eq!(parent.len(), n);
    assert_eq!(order.len(), n);
    let reduction_decides = nodes.iter().all(|s| s.label == s.source.schema);
    let free_set: BTreeSet<VarId> = free.iter().copied().collect();

    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (u, p) in parent.iter().enumerate() {
        if let Some(p) = p {
            children[*p].push(u);
        }
    }

    let mut ops: Vec<Op> = Vec::new();
    let mut slots = n; // slots 0..n hold the node relations

    for (u, spec) in nodes.iter().enumerate() {
        ops.push(Op::Materialize {
            dst: u,
            source: spec.source.clone(),
        });
    }

    // Shared *schema* column positions of the edge above `u`, for the
    // semijoin sweeps (both schemas are sorted: one merge walk).
    let edge_pos: Vec<Option<(Vec<usize>, Vec<usize>)>> = (0..n)
        .map(|u| {
            parent[u].map(|p| {
                let (cs, ps) = (&nodes[u].source.schema, &nodes[p].source.schema);
                let (mut child_pos, mut parent_pos) = (Vec::new(), Vec::new());
                let (mut i, mut j) = (0, 0);
                while i < cs.len() && j < ps.len() {
                    match cs[i].cmp(&ps[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            child_pos.push(i);
                            parent_pos.push(j);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                (child_pos, parent_pos)
            })
        })
        .collect();

    // Full reducer: leaves → root …
    for &u in order {
        if let Some(p) = parent[u] {
            let (child_pos, parent_pos) = edge_pos[u].as_ref().expect("non-root has an edge");
            ops.push(Op::Semijoin {
                target: p,
                source: u,
                target_pos: parent_pos.clone(),
                source_pos: child_pos.clone(),
            });
        }
        ops.push(Op::AssertNonempty { slot: u });
    }
    // … then root → leaves.
    for &u in order.iter().rev() {
        if parent[u].is_some() {
            let (child_pos, parent_pos) = edge_pos[u].as_ref().expect("non-root has an edge");
            ops.push(Op::Semijoin {
                target: u,
                source: parent[u].unwrap(),
                target_pos: child_pos.clone(),
                source_pos: parent_pos.clone(),
            });
            ops.push(Op::AssertNonempty { slot: u });
        }
    }
    let bool_len = ops.len();

    if free.is_empty() && reduction_decides {
        // Boolean join tree: the prefix is the whole program. The output
        // slot is unused by Boolean callers; point it at the last node
        // in `order` (the root of the last-compiled tree).
        return PlanIr {
            slots,
            ops,
            bool_len,
            reduction_decides,
            output: *order.last().expect("at least one node"),
            stages_memo: std::sync::OnceLock::new(),
        };
    }

    // Bottom-up joins with projection. `partial[u]` is the slot holding
    // the projected join of `u`'s subtree; its schema is tracked
    // statically so projections list exact variables.
    let mut partial: Vec<Option<(Slot, Vec<VarId>)>> = vec![None; n];
    for &u in order {
        let mut cur: Slot = u;
        let mut schema: Vec<VarId> = nodes[u].source.schema.clone();
        for &c in &children[u] {
            let (cslot, cschema) = partial[c].take().expect("children processed first");
            let dst = slots;
            slots += 1;
            ops.push(Op::Join {
                dst,
                left: cur,
                right: cslot,
            });
            for v in cschema {
                if !schema.contains(&v) {
                    schema.push(v);
                }
            }
            cur = dst;
        }
        // Keep free variables plus variables the parent's label retains.
        let keep: Vec<VarId> = schema
            .iter()
            .copied()
            .filter(|v| {
                free_set.contains(v)
                    || parent[u]
                        .map(|p| nodes[p].label.binary_search(v).is_ok())
                        .unwrap_or(false)
            })
            .collect();
        let dst = slots;
        slots += 1;
        ops.push(Op::Project {
            dst,
            src: cur,
            vars: keep.clone(),
        });
        partial[u] = Some((dst, keep));
    }

    // Combine the roots (cartesian join across components).
    let roots: Vec<usize> = (0..n).filter(|&u| parent[u].is_none()).collect();
    let mut out: Option<Slot> = None;
    for r in roots {
        let (rslot, _) = partial[r].take().expect("root processed");
        out = Some(match out {
            None => rslot,
            Some(acc) => {
                let dst = slots;
                slots += 1;
                ops.push(Op::Join {
                    dst,
                    left: acc,
                    right: rslot,
                });
                dst
            }
        });
    }

    PlanIr {
        slots,
        ops,
        bool_len,
        reduction_decides,
        output: out.expect("at least one root"),
        stages_memo: std::sync::OnceLock::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_cq;

    fn source_of(q: &str) -> MatSource {
        let q = parse_cq(q).unwrap();
        let groups: Vec<Vec<&Atom>> = q.atoms().iter().map(|a| vec![a]).collect();
        MatSource::from_groups(&groups)
    }

    #[test]
    fn source_from_groups_unions_schemas() {
        let s = source_of("Q() :- E(x, y), E(y, z)");
        assert_eq!(s.schema, vec![0, 1, 2]);
        assert_eq!(s.parts.len(), 2);
        assert_eq!(s.parts[0].schema, vec![0, 1]);
        assert_eq!(s.parts[1].schema, vec![1, 2]);
    }

    #[test]
    fn empty_source_materializes_true() {
        let src = MatSource {
            schema: vec![],
            key: MatKey::of_group(&[], &[]),
            parts: vec![],
            strategy: MatStrategy::Auto,
        };
        let d = Structure::digraph(2, &[]);
        let mut stats = MatCacheStats::default();
        let r = src.materialize(&d, None, &mut stats, ThreadBudget::shared());
        assert_eq!(r.len(), 1);
        assert_eq!(r.arity(), 0);
        assert_eq!(stats, MatCacheStats::default());
    }

    #[test]
    fn multipart_source_joins_and_caches_both_levels() {
        let src = source_of("Q() :- E(x, y), E(y, z)");
        let d = Structure::digraph(4, &[(0, 1), (1, 2), (2, 3)]);
        let cache = MaterializationCache::new();
        let mut stats = MatCacheStats::default();
        let r = src.materialize(&d, Some(&cache), &mut stats, ThreadBudget::shared());
        assert_eq!(r.schema(), &[0, 1, 2]);
        assert_eq!(r.len(), 2); // 0-1-2 and 1-2-3
                                // Cold: source miss + two part misses, all inserted.
        assert_eq!((stats.hits, stats.misses), (1, 2)); // parts share the E(x,y)-shape key!
        assert_eq!(cache.len(), 2); // the part shape + the joined source
                                    // Warm: a single source-level hit.
        let mut warm = MatCacheStats::default();
        let r2 = src.materialize(&d, Some(&cache), &mut warm, ThreadBudget::shared());
        assert_eq!((warm.hits, warm.misses), (1, 0));
        assert_eq!(
            r.rows_in_head_order(&[0, 1, 2]),
            r2.rows_in_head_order(&[0, 1, 2])
        );
    }

    #[test]
    fn forced_strategies_build_identical_relations() {
        // Triangle bag over a pseudo-random digraph: binary and multiway
        // builds must agree byte-for-byte (schema and sorted rows), and
        // the stats must attribute the build to the forced path.
        let q = parse_cq("Q() :- E(x,y), E(y,z), E(z,x)").unwrap();
        let groups: Vec<Vec<&Atom>> = q.atoms().iter().map(|a| vec![a]).collect();
        let mut binary = MatSource::from_groups(&groups);
        binary.strategy = MatStrategy::Binary;
        let mut wcoj = binary.clone();
        wcoj.strategy = MatStrategy::Wcoj;
        let edges: Vec<(u32, u32)> = (0..120u32)
            .flat_map(|u| {
                [
                    (u, (u * 7 + 3) % 120),
                    (u, (u + 1) % 120),
                    ((u * 5) % 120, u),
                ]
            })
            .filter(|&(a, b)| a != b)
            .collect();
        let d = Structure::digraph(120, &edges);
        let mut sb = MatCacheStats::default();
        let rb = binary.materialize(&d, None, &mut sb, ThreadBudget::shared());
        let mut sw = MatCacheStats::default();
        let rw = wcoj.materialize(&d, None, &mut sw, ThreadBudget::shared());
        assert_eq!(rb.schema(), rw.schema());
        assert_eq!(rb.len(), rw.len());
        assert!(
            rb.iter_rows().eq(rw.iter_rows()),
            "builds must be byte-identical"
        );
        // Build attribution follows the forced strategy — unless the
        // process-wide env override preempts the per-source field.
        if env_bag_strategy() == MatStrategy::Auto {
            assert_eq!((sb.binary_bag_builds, sb.wcoj_bag_builds), (1, 0));
            assert_eq!((sw.binary_bag_builds, sw.wcoj_bag_builds), (0, 1));
        }
    }

    #[test]
    fn auto_strategy_picks_multiway_when_intermediates_blow_up() {
        // Two large parts over a small shared prefix: the estimated
        // binary intermediate dwarfs input + output, so Auto goes
        // multiway; a tiny instance stays binary.
        let big: Vec<(usize, &[VarId])> = vec![(1770, &[0, 1]), (1770, &[1, 2])];
        assert_eq!(resolve_bag_strategy(&big, 300), MatStrategy::Wcoj);
        let tiny: Vec<(usize, &[VarId])> = vec![(3, &[0, 1]), (3, &[1, 2])];
        assert_eq!(resolve_bag_strategy(&tiny, 4), MatStrategy::Binary);
        // Degenerate shapes never go multiway.
        let single: Vec<(usize, &[VarId])> = vec![(1770, &[0, 1])];
        assert_eq!(resolve_bag_strategy(&single, 300), MatStrategy::Binary);
        let nullary: Vec<(usize, &[VarId])> = vec![(10, &[0, 1]), (1, &[])];
        assert_eq!(resolve_bag_strategy(&nullary, 300), MatStrategy::Binary);
    }

    #[test]
    fn observed_degrees_flip_the_uniform_prior_on_skew() {
        // A triangle bag over a hub-and-spoke graph: three edge parts of
        // ~4.5k tuples over a ~2.6k domain look harmless to the uniform
        // model (average degree < 2, estimated intermediate below the
        // input size), but the observed heavy-hitter degree of ~220
        // reveals the 2-hop blow-up through the hubs, so the
        // skew-corrected runtime model goes multiway.
        let tri: Vec<(usize, &[VarId])> = vec![(4560, &[0, 1]), (4560, &[1, 2]), (4560, &[0, 2])];
        assert_eq!(resolve_bag_strategy(&tri, 2646), MatStrategy::Binary);
        let hubs = vec![vec![220, 220], vec![220, 220], vec![220, 220]];
        assert_eq!(
            resolve_bag_strategy_observed(&tri, &hubs, 2646),
            MatStrategy::Wcoj
        );
        // Key-like joins (every value unique on the join column) keep
        // the binary verdict: at most one match per probe, so the
        // intermediates never grow past the inputs.
        let keyed: Vec<(usize, &[VarId])> = vec![(300, &[0, 1]), (300, &[1, 2])];
        let unique = vec![vec![1, 1], vec![1, 1]];
        assert_eq!(
            resolve_bag_strategy_observed(&keyed, &unique, 300),
            MatStrategy::Binary
        );
    }

    #[test]
    fn ops_union_dedup_project_roundtrip() {
        // A hand-built program: materialize E forwards and reversed
        // (over the same two variables), union them, dedup, project to
        // column 0.
        let q = parse_cq("Q() :- E(x, y), E(y, x)").unwrap();
        let fwd = MatSource::from_groups(&[vec![&q.atoms()[0]]]);
        let rev = MatSource::from_groups(&[vec![&q.atoms()[1]]]);
        let ir = PlanIr {
            slots: 3,
            ops: vec![
                Op::Materialize {
                    dst: 0,
                    source: fwd,
                },
                Op::Materialize {
                    dst: 1,
                    source: rev,
                },
                Op::Union { dst: 0, src: 1 },
                Op::Dedup { slot: 0 },
                Op::AssertNonempty { slot: 0 },
                Op::Project {
                    dst: 2,
                    src: 0,
                    vars: vec![0],
                },
            ],
            bool_len: 5,
            reduction_decides: true,
            output: 2,
            stages_memo: std::sync::OnceLock::new(),
        };
        let d = Structure::digraph(3, &[(0, 1), (1, 0), (1, 2)]);
        let (out, _) = ir.run(&d, None);
        let out = out.unwrap();
        // Union of E and E-reversed, projected to the first column:
        // sources {0, 1} ∪ targets {1, 0, 2} = {0, 1, 2}.
        assert_eq!(out.len(), 3);
        let (b, _) = ir.run_boolean(&d, None);
        assert!(b);
        // Empty database: the assertion aborts both runs.
        let empty = Structure::digraph(3, &[]);
        assert!(ir.run(&empty, None).0.is_none());
        assert!(!ir.run_boolean(&empty, None).0);
    }

    #[test]
    fn dependency_stages_group_independent_materializations() {
        use crate::eval::yannakakis::AcyclicPlan;
        let q = parse_cq("Q(x1, x4) :- E(x1,x2), E(x2,x3), E(x3,x4)").unwrap();
        let plan = AcyclicPlan::compile(&q).unwrap();
        let stages = plan.ir().dependency_stages();
        // The three hyperedge materializations are mutually independent:
        // all stage 0. Everything downstream conflicts with them.
        assert!(
            stages[..3].iter().all(|&s| s == 0),
            "materializations must share stage 0: {stages:?}"
        );
        assert!(
            stages[3..].iter().all(|&s| s > 0),
            "reducer/join ops depend on the materializations: {stages:?}"
        );
    }

    #[test]
    fn assertion_is_a_control_barrier_in_stages() {
        // Materialize, assert, then materialize again: the second
        // materialization must not share a stage with the first even
        // though their slots are disjoint — the assert may abort first.
        let q = parse_cq("Q() :- E(x, y), E(y, z)").unwrap();
        let e = MatSource::from_groups(&[vec![&q.atoms()[0]]]);
        let e2 = MatSource::from_groups(&[vec![&q.atoms()[1]]]);
        let ir = PlanIr {
            slots: 2,
            ops: vec![
                Op::Materialize { dst: 0, source: e },
                Op::AssertNonempty { slot: 0 },
                Op::Materialize { dst: 1, source: e2 },
            ],
            bool_len: 3,
            reduction_decides: true,
            output: 1,
            stages_memo: std::sync::OnceLock::new(),
        };
        let stages = ir.dependency_stages();
        assert_eq!(stages[0], 0);
        assert!(
            stages[2] > stages[1],
            "post-assert op must stage after the barrier: {stages:?}"
        );
    }

    #[test]
    fn budgeted_run_matches_sequential_run_and_accounting() {
        use crate::eval::yannakakis::AcyclicPlan;
        let q = parse_cq("Q(x1, x4) :- E(x1,x2), E(x2,x3), E(x3,x4)").unwrap();
        let plan = AcyclicPlan::compile(&q).unwrap();
        let edges: Vec<(u32, u32)> = (0..300u32)
            .flat_map(|u| {
                [(u, (u + 1) % 300), (u, (u * 7 + 3) % 300)]
                    .into_iter()
                    .filter(|&(a, b)| a != b)
            })
            .collect();
        let d = Structure::digraph(300, &edges);
        let seq_cache = MaterializationCache::new();
        let (r1, s1) = plan
            .ir()
            .run_budget(&d, Some(&seq_cache), &ThreadBudget::sequential());
        let par_cache = MaterializationCache::new();
        let (r2, s2) = plan
            .ir()
            .run_budget(&d, Some(&par_cache), &ThreadBudget::new(4));
        let (r1, r2) = (r1.unwrap(), r2.unwrap());
        assert_eq!(
            r1.rows_in_head_order(&[0, 3]),
            r2.rows_in_head_order(&[0, 3]),
            "parallel run must produce identical answers"
        );
        assert_eq!(
            (s1.hits, s1.misses),
            (s2.hits, s2.misses),
            "single-flight keeps the cache accounting identical"
        );
    }

    #[test]
    fn profiled_run_records_every_op_and_matches_unprofiled() {
        use crate::eval::yannakakis::AcyclicPlan;
        let q = parse_cq("Q(x1, x4) :- E(x1,x2), E(x2,x3), E(x3,x4)").unwrap();
        let plan = AcyclicPlan::compile(&q).unwrap();
        let d = Structure::digraph(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let (plain, _) = plan.ir().run_budget(&d, None, ThreadBudget::shared());
        let mut profile = EvalProfile::default();
        let (profiled, _) =
            plan.ir()
                .run_budget_profiled(&d, None, ThreadBudget::shared(), Some(&mut profile));
        assert_eq!(
            plain.unwrap().rows_in_head_order(&[0, 3]),
            profiled.unwrap().rows_in_head_order(&[0, 3]),
            "profiling must not change answers"
        );
        // A completed run profiles every instruction.
        assert_eq!(profile.ops.len(), plan.ir().op_count());
        assert!(profile.ops.iter().any(|o| o.op == "materialize"));
        assert!(profile.ops.iter().any(|o| o.op == "semijoin"));
        let agg = profile.by_op();
        assert_eq!(agg.iter().map(|&(k, _, _)| k).collect::<Vec<_>>(), {
            let mut kinds: Vec<&str> = profile.ops.iter().map(|o| o.op).collect();
            kinds.sort_unstable();
            kinds.dedup();
            kinds
        });
        // An aborted run profiles the prefix, ending at the assertion.
        let empty = Structure::digraph(5, &[]);
        let mut aborted = EvalProfile::default();
        let (none, _) =
            plan.ir()
                .run_budget_profiled(&empty, None, ThreadBudget::shared(), Some(&mut aborted));
        assert!(none.is_none());
        assert!(aborted.ops.len() < plan.ir().op_count());
        assert_eq!(aborted.ops.last().unwrap().op, "assert_nonempty");
    }

    #[test]
    fn join_and_semijoin_ops() {
        let q = parse_cq("Q() :- E(x, y), E(y, z)").unwrap();
        let e = MatSource::from_groups(&[vec![&q.atoms()[0]]]);
        let e2 = MatSource::from_groups(&[vec![&q.atoms()[1]]]);
        let ir = PlanIr {
            slots: 3,
            ops: vec![
                Op::Materialize { dst: 0, source: e },
                Op::Materialize { dst: 1, source: e2 },
                // Keep only edges with an outgoing continuation …
                Op::Semijoin {
                    target: 0,
                    source: 1,
                    target_pos: vec![1],
                    source_pos: vec![0],
                },
                // … then build the 2-hop join.
                Op::Join {
                    dst: 2,
                    left: 0,
                    right: 1,
                },
            ],
            bool_len: 4,
            reduction_decides: true,
            output: 2,
            stages_memo: std::sync::OnceLock::new(),
        };
        let d = Structure::digraph(4, &[(0, 1), (1, 2), (3, 3)]);
        let (out, _) = ir.run(&d, None);
        let out = out.unwrap();
        assert_eq!(out.schema(), &[0, 1, 2]);
        // Paths: 0→1→2 and 3→3→3.
        assert_eq!(out.len(), 2);
    }
}
