//! The unified physical plan IR: one explicit operator set over
//! [`FlatRelation`] buffers, shared by every compiled evaluation
//! strategy.
//!
//! A [`PlanIr`] is a straight-line program over numbered relation
//! *slots*. The operators are the classical physical algebra:
//!
//! | operator             | effect                                                |
//! |----------------------|-------------------------------------------------------|
//! | [`Op::Materialize`]  | scan/adopt a [`MatSource`] into a slot (cache-aware)  |
//! | [`Op::Semijoin`]     | in-place `target ⋉ source` on aligned key columns     |
//! | [`Op::AssertNonempty`] | abort with the empty answer when a slot ran dry     |
//! | [`Op::Join`]         | natural hash join of two slots into a third           |
//! | [`Op::Project`]      | projection (+ sort/dedup) onto a variable list        |
//! | [`Op::Dedup`]        | in-place sort + duplicate elimination                 |
//! | [`Op::Union`]        | append a same-variable slot (column-remapped)         |
//!
//! Both `AcyclicPlan` (Yannakakis over a GYO join tree) and
//! `DecomposedPlan` (Yannakakis over the bags of a tree decomposition)
//! compile to this IR through [`compile_tree`]; evaluation is a single
//! interpreter loop, so cache adoption, statistics, and kernel
//! improvements land in one place.
//!
//! [`compile_tree`] takes per-node [`NodeSpec`]s — a relation source
//! plus a *connectivity label* — and a rooted tree. For join trees the
//! label **is** the node's schema and the semijoin sweeps alone decide
//! Boolean answers (classical Yannakakis). For tree decompositions the
//! label is the bag, which may strictly contain the schema of the
//! atoms materialized in it; the sweeps are then only a sound prefilter
//! and the bottom-up join phase decides everything (the compiler
//! detects which case it is in — see [`PlanIr::reduction_decides`]).

use crate::ast::{Atom, VarId};
use crate::eval::flat::{AtomBinder, FlatRelation, MatCacheStats, MatKey, MaterializationCache};
use cqapx_structures::Structure;
use std::collections::BTreeSet;

/// Index of a relation slot in a [`PlanIr`] program.
pub type Slot = usize;

/// One sub-hyperedge of a [`MatSource`]: the atoms sharing one variable
/// set, compiled to binders, with its own cache identity.
#[derive(Debug, Clone)]
pub struct MatPart {
    /// Sorted distinct variables of the sub-hyperedge.
    pub schema: Vec<VarId>,
    /// Cache identity of this sub-hyperedge alone.
    pub key: MatKey,
    /// Compiled binders, one per atom with this variable set.
    pub binders: Vec<AtomBinder>,
}

/// The relation source of one plan node: a group of sub-hyperedges whose
/// natural join (then canonicalized onto `schema`) is the node relation.
///
/// * join-tree nodes have exactly one part whose schema equals the
///   source schema — the hyperedge itself;
/// * tree-decomposition bags join every covering atom group — the bag
///   materialization;
/// * a node with **no** parts materializes to the 0-ary "true" relation
///   (a connector bag none of whose atoms it covers).
///
/// Sources (and, on a miss, their individual parts) go through the
/// per-database [`MaterializationCache`] keyed by [`MatKey`], so a bag
/// is cached exactly like a hyperedge and either can adopt the other's
/// entry when the keys coincide.
#[derive(Debug, Clone)]
pub struct MatSource {
    /// Sorted distinct variables of the whole source (the union of the
    /// part schemas).
    pub schema: Vec<VarId>,
    /// Cache identity of the joined source.
    pub key: MatKey,
    /// The sub-hyperedges joined to form the relation.
    pub parts: Vec<MatPart>,
}

impl MatSource {
    /// Compiles a source from atom groups (each group: the atoms sharing
    /// one variable set) over the union of their variables.
    pub fn from_groups(groups: &[Vec<&Atom>]) -> MatSource {
        let mut schema: Vec<VarId> = groups
            .iter()
            .flat_map(|g| g.iter().flat_map(|a| a.args.iter().copied()))
            .collect();
        schema.sort_unstable();
        schema.dedup();
        let all: Vec<&Atom> = groups.iter().flat_map(|g| g.iter().copied()).collect();
        let parts = groups
            .iter()
            .map(|g| {
                let mut vars: Vec<VarId> = g.iter().flat_map(|a| a.args.iter().copied()).collect();
                vars.sort_unstable();
                vars.dedup();
                MatPart {
                    key: MatKey::of_group(g, &vars),
                    binders: g.iter().map(|a| AtomBinder::compile(a, &vars)).collect(),
                    schema: vars,
                }
            })
            .collect();
        MatSource {
            key: MatKey::of_group(&all, &schema),
            schema,
            parts,
        }
    }

    /// Materializes the source against `d`, adopting from / inserting
    /// into `cache` when given. Multi-part sources are cached at both
    /// levels: the joined source under its own key and, on a source
    /// miss, each part under its key (so single-atom parts are shared
    /// with the plans that use them as whole hyperedges).
    pub fn materialize(
        &self,
        d: &Structure,
        cache: Option<&MaterializationCache>,
        stats: &mut MatCacheStats,
    ) -> FlatRelation {
        if self.parts.is_empty() {
            return FlatRelation::unit();
        }
        match cache {
            None => self.materialize_fresh(d, None, stats),
            Some(c) => {
                let mut inner = MatCacheStats::default();
                let (rel, hit) = c.get_or_materialize(&self.key, || {
                    self.materialize_fresh(d, Some(c), &mut inner)
                });
                if hit {
                    stats.hits += 1;
                } else {
                    stats.misses += 1;
                }
                stats.add(inner);
                rel.relabel(self.schema.clone())
            }
        }
    }

    /// Scans and joins the parts (no lookup of the source key itself).
    fn materialize_fresh(
        &self,
        d: &Structure,
        cache: Option<&MaterializationCache>,
        stats: &mut MatCacheStats,
    ) -> FlatRelation {
        if self.parts.len() == 1 && self.parts[0].schema == self.schema {
            // The source *is* its single part; its key equals the part
            // key, so the caller's lookup already covered it.
            return self.parts[0].materialize_fresh(d);
        }
        let mut acc: Option<FlatRelation> = None;
        for part in &self.parts {
            let rel = match cache {
                None => part.materialize_fresh(d),
                Some(c) => {
                    let (rel, hit) = c.get_or_materialize(&part.key, || part.materialize_fresh(d));
                    if hit {
                        stats.hits += 1;
                    } else {
                        stats.misses += 1;
                    }
                    rel.relabel(part.schema.clone())
                }
            };
            acc = Some(match acc {
                None => rel,
                Some(a) => a.join(&rel),
            });
        }
        // Canonicalize onto the sorted source schema (column order and
        // row order), so cache entries are label-independent.
        acc.expect("nonempty parts").project(&self.schema)
    }
}

impl MatPart {
    /// Scans the part's atoms and intersects them (they share a schema).
    fn materialize_fresh(&self, d: &Structure) -> FlatRelation {
        let mut acc: Option<FlatRelation> = None;
        for binder in &self.binders {
            let mut rel = FlatRelation::empty(self.schema.clone());
            binder.materialize_into(d, &mut rel);
            rel.sort_dedup();
            acc = Some(match acc {
                None => rel,
                Some(mut a) => {
                    a.intersect_sorted(&rel);
                    a
                }
            });
        }
        acc.expect("parts have at least one binder")
    }
}

/// One instruction of a [`PlanIr`] program.
#[derive(Debug, Clone)]
pub enum Op {
    /// Materialize (or adopt from the cache) a source into `dst`.
    Materialize {
        /// Destination slot.
        dst: Slot,
        /// What to materialize.
        source: MatSource,
    },
    /// In-place semijoin `target ⋉ source` on aligned key columns.
    Semijoin {
        /// Slot filtered in place.
        target: Slot,
        /// Slot probed for matches.
        source: Slot,
        /// Key column positions in the target's schema.
        target_pos: Vec<usize>,
        /// Key column positions in the source's schema.
        source_pos: Vec<usize>,
    },
    /// Abort the program (empty answer) when the slot has no rows.
    AssertNonempty {
        /// Slot checked.
        slot: Slot,
    },
    /// Natural join `left ⋈ right` into `dst` (operands are kept).
    Join {
        /// Destination slot.
        dst: Slot,
        /// Left operand slot.
        left: Slot,
        /// Right operand slot.
        right: Slot,
    },
    /// Projection of `src` onto `vars` into `dst` (sorted, deduplicated).
    Project {
        /// Destination slot.
        dst: Slot,
        /// Source slot.
        src: Slot,
        /// Variables kept (must occur in the source schema).
        vars: Vec<VarId>,
    },
    /// In-place sort + duplicate elimination of a slot.
    Dedup {
        /// Slot canonicalized.
        slot: Slot,
    },
    /// Append the rows of `src` to `dst` (same variable set, columns
    /// remapped by name). Follow with [`Op::Dedup`] to restore set
    /// semantics.
    Union {
        /// Destination slot (grows).
        dst: Slot,
        /// Source slot (kept).
        src: Slot,
    },
}

/// A compiled physical plan: a straight-line operator program over
/// relation slots, with a designated output slot.
#[derive(Debug, Clone)]
pub struct PlanIr {
    /// Number of relation slots the program uses.
    slots: usize,
    /// The instructions, executed in order.
    ops: Vec<Op>,
    /// Length of the materialize-and-reduce prefix (see
    /// [`PlanIr::reduction_decides`]).
    bool_len: usize,
    /// `true` when surviving the reduction prefix alone proves the
    /// answer nonempty (labels equal schemas: a genuine join tree, where
    /// the full reducer establishes global consistency). When `false`
    /// (decomposition bags with connector-only variables), Boolean
    /// evaluation must run the join phase too.
    reduction_decides: bool,
    /// Slot holding the final relation after a full run.
    output: Slot,
}

/// Disjoint `(&mut xs[a], &xs[b])` access for `a ≠ b`: the borrow split
/// in-place semijoins need to filter one slot against another without
/// cloning either relation.
fn pair_mut<T>(xs: &mut [T], a: usize, b: usize) -> (&mut T, &T) {
    debug_assert_ne!(a, b, "semijoin target and source must differ");
    if a < b {
        let (lo, hi) = xs.split_at_mut(b);
        (&mut lo[a], &hi[0])
    } else {
        let (lo, hi) = xs.split_at_mut(a);
        (&mut hi[0], &lo[b])
    }
}

impl PlanIr {
    /// Number of operators in the program.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Whether the reduction prefix alone decides Boolean answers.
    pub fn reduction_decides(&self) -> bool {
        self.reduction_decides
    }

    /// Executes `ops[..len]`. Returns `false` when an
    /// [`Op::AssertNonempty`] fired (the answer is empty).
    fn exec(
        &self,
        len: usize,
        slots: &mut [Option<FlatRelation>],
        d: &Structure,
        cache: Option<&MaterializationCache>,
        stats: &mut MatCacheStats,
    ) -> bool {
        fn rel(s: &Option<FlatRelation>) -> &FlatRelation {
            s.as_ref().expect("slot written before use")
        }
        for op in &self.ops[..len] {
            match op {
                Op::Materialize { dst, source } => {
                    slots[*dst] = Some(source.materialize(d, cache, stats));
                }
                Op::Semijoin {
                    target,
                    source,
                    target_pos,
                    source_pos,
                } => {
                    let (t, s) = pair_mut(slots, *target, *source);
                    t.as_mut().expect("slot written before use").semijoin_on(
                        target_pos,
                        rel(s),
                        source_pos,
                    );
                }
                Op::AssertNonempty { slot } => {
                    if rel(&slots[*slot]).is_empty() {
                        return false;
                    }
                }
                Op::Join { dst, left, right } => {
                    let out = rel(&slots[*left]).join(rel(&slots[*right]));
                    slots[*dst] = Some(out);
                }
                Op::Project { dst, src, vars } => {
                    let out = rel(&slots[*src]).project(vars);
                    slots[*dst] = Some(out);
                }
                Op::Dedup { slot } => {
                    slots[*slot]
                        .as_mut()
                        .expect("slot written before use")
                        .sort_dedup();
                }
                Op::Union { dst, src } => {
                    let (t, s) = pair_mut(slots, *dst, *src);
                    t.as_mut()
                        .expect("slot written before use")
                        .union_rows(rel(s));
                }
            }
        }
        true
    }

    /// Runs the full program. `None` means the answer is empty (an
    /// emptiness assertion fired); otherwise the output relation.
    pub fn run(
        &self,
        d: &Structure,
        cache: Option<&MaterializationCache>,
    ) -> (Option<FlatRelation>, MatCacheStats) {
        let mut stats = MatCacheStats::default();
        let mut slots: Vec<Option<FlatRelation>> = vec![None; self.slots];
        if !self.exec(self.ops.len(), &mut slots, d, cache, &mut stats) {
            return (None, stats);
        }
        (slots[self.output].take(), stats)
    }

    /// Decides whether the answer is nonempty, running only as much of
    /// the program as the plan shape requires.
    pub fn run_boolean(
        &self,
        d: &Structure,
        cache: Option<&MaterializationCache>,
    ) -> (bool, MatCacheStats) {
        if self.reduction_decides {
            let mut stats = MatCacheStats::default();
            let mut slots: Vec<Option<FlatRelation>> = vec![None; self.slots];
            let alive = self.exec(self.bool_len, &mut slots, d, cache, &mut stats);
            return (alive, stats);
        }
        let (out, stats) = self.run(d, cache);
        (out.is_some_and(|r| !r.is_empty()), stats)
    }
}

/// One node of the tree a plan is compiled from.
#[derive(Debug, Clone)]
pub struct NodeSpec {
    /// The node's relation source.
    pub source: MatSource,
    /// Sorted connectivity label: the variable set guaranteed to satisfy
    /// the running-intersection property over the tree. Equals
    /// `source.schema` for join-tree nodes; the whole bag for
    /// tree-decomposition nodes.
    pub label: Vec<VarId>,
}

/// Compiles the Yannakakis pipeline over a rooted tree (or forest) of
/// nodes into a [`PlanIr`] program:
///
/// 1. materialize every node source;
/// 2. full reducer — semijoins leaves→root then root→leaves on the
///    columns the adjacent *schemas* share, with emptiness assertions;
/// 3. unless the query is Boolean and the reduction decides it:
///    bottom-up joins, each node projected onto its free variables plus
///    the variables its parent's *label* retains, roots combined by
///    (cartesian) join.
///
/// `parent`/`order` describe the rooted tree (children before parents
/// in `order`); `free` lists the query's free variables.
pub fn compile_tree(
    nodes: &[NodeSpec],
    parent: &[Option<usize>],
    order: &[usize],
    free: &[VarId],
) -> PlanIr {
    let n = nodes.len();
    assert_eq!(parent.len(), n);
    assert_eq!(order.len(), n);
    let reduction_decides = nodes.iter().all(|s| s.label == s.source.schema);
    let free_set: BTreeSet<VarId> = free.iter().copied().collect();

    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (u, p) in parent.iter().enumerate() {
        if let Some(p) = p {
            children[*p].push(u);
        }
    }

    let mut ops: Vec<Op> = Vec::new();
    let mut slots = n; // slots 0..n hold the node relations

    for (u, spec) in nodes.iter().enumerate() {
        ops.push(Op::Materialize {
            dst: u,
            source: spec.source.clone(),
        });
    }

    // Shared *schema* column positions of the edge above `u`, for the
    // semijoin sweeps (both schemas are sorted: one merge walk).
    let edge_pos: Vec<Option<(Vec<usize>, Vec<usize>)>> = (0..n)
        .map(|u| {
            parent[u].map(|p| {
                let (cs, ps) = (&nodes[u].source.schema, &nodes[p].source.schema);
                let (mut child_pos, mut parent_pos) = (Vec::new(), Vec::new());
                let (mut i, mut j) = (0, 0);
                while i < cs.len() && j < ps.len() {
                    match cs[i].cmp(&ps[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            child_pos.push(i);
                            parent_pos.push(j);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                (child_pos, parent_pos)
            })
        })
        .collect();

    // Full reducer: leaves → root …
    for &u in order {
        if let Some(p) = parent[u] {
            let (child_pos, parent_pos) = edge_pos[u].as_ref().expect("non-root has an edge");
            ops.push(Op::Semijoin {
                target: p,
                source: u,
                target_pos: parent_pos.clone(),
                source_pos: child_pos.clone(),
            });
        }
        ops.push(Op::AssertNonempty { slot: u });
    }
    // … then root → leaves.
    for &u in order.iter().rev() {
        if parent[u].is_some() {
            let (child_pos, parent_pos) = edge_pos[u].as_ref().expect("non-root has an edge");
            ops.push(Op::Semijoin {
                target: u,
                source: parent[u].unwrap(),
                target_pos: child_pos.clone(),
                source_pos: parent_pos.clone(),
            });
            ops.push(Op::AssertNonempty { slot: u });
        }
    }
    let bool_len = ops.len();

    if free.is_empty() && reduction_decides {
        // Boolean join tree: the prefix is the whole program. The output
        // slot is unused by Boolean callers; point it at the last node
        // in `order` (the root of the last-compiled tree).
        return PlanIr {
            slots,
            ops,
            bool_len,
            reduction_decides,
            output: *order.last().expect("at least one node"),
        };
    }

    // Bottom-up joins with projection. `partial[u]` is the slot holding
    // the projected join of `u`'s subtree; its schema is tracked
    // statically so projections list exact variables.
    let mut partial: Vec<Option<(Slot, Vec<VarId>)>> = vec![None; n];
    for &u in order {
        let mut cur: Slot = u;
        let mut schema: Vec<VarId> = nodes[u].source.schema.clone();
        for &c in &children[u] {
            let (cslot, cschema) = partial[c].take().expect("children processed first");
            let dst = slots;
            slots += 1;
            ops.push(Op::Join {
                dst,
                left: cur,
                right: cslot,
            });
            for v in cschema {
                if !schema.contains(&v) {
                    schema.push(v);
                }
            }
            cur = dst;
        }
        // Keep free variables plus variables the parent's label retains.
        let keep: Vec<VarId> = schema
            .iter()
            .copied()
            .filter(|v| {
                free_set.contains(v)
                    || parent[u]
                        .map(|p| nodes[p].label.binary_search(v).is_ok())
                        .unwrap_or(false)
            })
            .collect();
        let dst = slots;
        slots += 1;
        ops.push(Op::Project {
            dst,
            src: cur,
            vars: keep.clone(),
        });
        partial[u] = Some((dst, keep));
    }

    // Combine the roots (cartesian join across components).
    let roots: Vec<usize> = (0..n).filter(|&u| parent[u].is_none()).collect();
    let mut out: Option<Slot> = None;
    for r in roots {
        let (rslot, _) = partial[r].take().expect("root processed");
        out = Some(match out {
            None => rslot,
            Some(acc) => {
                let dst = slots;
                slots += 1;
                ops.push(Op::Join {
                    dst,
                    left: acc,
                    right: rslot,
                });
                dst
            }
        });
    }

    PlanIr {
        slots,
        ops,
        bool_len,
        reduction_decides,
        output: out.expect("at least one root"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_cq;

    fn source_of(q: &str) -> MatSource {
        let q = parse_cq(q).unwrap();
        let groups: Vec<Vec<&Atom>> = q.atoms().iter().map(|a| vec![a]).collect();
        MatSource::from_groups(&groups)
    }

    #[test]
    fn source_from_groups_unions_schemas() {
        let s = source_of("Q() :- E(x, y), E(y, z)");
        assert_eq!(s.schema, vec![0, 1, 2]);
        assert_eq!(s.parts.len(), 2);
        assert_eq!(s.parts[0].schema, vec![0, 1]);
        assert_eq!(s.parts[1].schema, vec![1, 2]);
    }

    #[test]
    fn empty_source_materializes_true() {
        let src = MatSource {
            schema: vec![],
            key: MatKey::of_group(&[], &[]),
            parts: vec![],
        };
        let d = Structure::digraph(2, &[]);
        let mut stats = MatCacheStats::default();
        let r = src.materialize(&d, None, &mut stats);
        assert_eq!(r.len(), 1);
        assert_eq!(r.arity(), 0);
        assert_eq!(stats, MatCacheStats::default());
    }

    #[test]
    fn multipart_source_joins_and_caches_both_levels() {
        let src = source_of("Q() :- E(x, y), E(y, z)");
        let d = Structure::digraph(4, &[(0, 1), (1, 2), (2, 3)]);
        let cache = MaterializationCache::new();
        let mut stats = MatCacheStats::default();
        let r = src.materialize(&d, Some(&cache), &mut stats);
        assert_eq!(r.schema(), &[0, 1, 2]);
        assert_eq!(r.len(), 2); // 0-1-2 and 1-2-3
                                // Cold: source miss + two part misses, all inserted.
        assert_eq!((stats.hits, stats.misses), (1, 2)); // parts share the E(x,y)-shape key!
        assert_eq!(cache.len(), 2); // the part shape + the joined source
                                    // Warm: a single source-level hit.
        let mut warm = MatCacheStats::default();
        let r2 = src.materialize(&d, Some(&cache), &mut warm);
        assert_eq!((warm.hits, warm.misses), (1, 0));
        assert_eq!(
            r.rows_in_head_order(&[0, 1, 2]),
            r2.rows_in_head_order(&[0, 1, 2])
        );
    }

    #[test]
    fn ops_union_dedup_project_roundtrip() {
        // A hand-built program: materialize E forwards and reversed
        // (over the same two variables), union them, dedup, project to
        // column 0.
        let q = parse_cq("Q() :- E(x, y), E(y, x)").unwrap();
        let fwd = MatSource::from_groups(&[vec![&q.atoms()[0]]]);
        let rev = MatSource::from_groups(&[vec![&q.atoms()[1]]]);
        let ir = PlanIr {
            slots: 3,
            ops: vec![
                Op::Materialize {
                    dst: 0,
                    source: fwd,
                },
                Op::Materialize {
                    dst: 1,
                    source: rev,
                },
                Op::Union { dst: 0, src: 1 },
                Op::Dedup { slot: 0 },
                Op::AssertNonempty { slot: 0 },
                Op::Project {
                    dst: 2,
                    src: 0,
                    vars: vec![0],
                },
            ],
            bool_len: 5,
            reduction_decides: true,
            output: 2,
        };
        let d = Structure::digraph(3, &[(0, 1), (1, 0), (1, 2)]);
        let (out, _) = ir.run(&d, None);
        let out = out.unwrap();
        // Union of E and E-reversed, projected to the first column:
        // sources {0, 1} ∪ targets {1, 0, 2} = {0, 1, 2}.
        assert_eq!(out.len(), 3);
        let (b, _) = ir.run_boolean(&d, None);
        assert!(b);
        // Empty database: the assertion aborts both runs.
        let empty = Structure::digraph(3, &[]);
        assert!(ir.run(&empty, None).0.is_none());
        assert!(!ir.run_boolean(&empty, None).0);
    }

    #[test]
    fn join_and_semijoin_ops() {
        let q = parse_cq("Q() :- E(x, y), E(y, z)").unwrap();
        let e = MatSource::from_groups(&[vec![&q.atoms()[0]]]);
        let e2 = MatSource::from_groups(&[vec![&q.atoms()[1]]]);
        let ir = PlanIr {
            slots: 3,
            ops: vec![
                Op::Materialize { dst: 0, source: e },
                Op::Materialize { dst: 1, source: e2 },
                // Keep only edges with an outgoing continuation …
                Op::Semijoin {
                    target: 0,
                    source: 1,
                    target_pos: vec![1],
                    source_pos: vec![0],
                },
                // … then build the 2-hop join.
                Op::Join {
                    dst: 2,
                    left: 0,
                    right: 1,
                },
            ],
            bool_len: 4,
            reduction_decides: true,
            output: 2,
        };
        let d = Structure::digraph(4, &[(0, 1), (1, 2), (3, 3)]);
        let (out, _) = ir.run(&d, None);
        let out = out.unwrap();
        assert_eq!(out.schema(), &[0, 1, 2]);
        // Paths: 0→1→2 and 3→3→3.
        assert_eq!(out.len(), 2);
    }
}
