//! The unified physical plan IR: one explicit operator set over
//! [`FlatRelation`] buffers, shared by every compiled evaluation
//! strategy.
//!
//! A [`PlanIr`] is a straight-line program over numbered relation
//! *slots*. The operators are the classical physical algebra:
//!
//! | operator             | effect                                                |
//! |----------------------|-------------------------------------------------------|
//! | [`Op::Materialize`]  | scan/adopt a [`MatSource`] into a slot (cache-aware)  |
//! | [`Op::Semijoin`]     | in-place `target ⋉ source` on aligned key columns     |
//! | [`Op::AssertNonempty`] | abort with the empty answer when a slot ran dry     |
//! | [`Op::Join`]         | natural hash join of two slots into a third           |
//! | [`Op::Project`]      | projection (+ sort/dedup) onto a variable list        |
//! | [`Op::Dedup`]        | in-place sort + duplicate elimination                 |
//! | [`Op::Union`]        | append a same-variable slot (column-remapped)         |
//!
//! Both `AcyclicPlan` (Yannakakis over a GYO join tree) and
//! `DecomposedPlan` (Yannakakis over the bags of a tree decomposition)
//! compile to this IR through [`compile_tree`]; evaluation is a single
//! interpreter loop, so cache adoption, statistics, and kernel
//! improvements land in one place.
//!
//! [`compile_tree`] takes per-node [`NodeSpec`]s — a relation source
//! plus a *connectivity label* — and a rooted tree. For join trees the
//! label **is** the node's schema and the semijoin sweeps alone decide
//! Boolean answers (classical Yannakakis). For tree decompositions the
//! label is the bag, which may strictly contain the schema of the
//! atoms materialized in it; the sweeps are then only a sound prefilter
//! and the bottom-up join phase decides everything (the compiler
//! detects which case it is in — see [`PlanIr::reduction_decides`]).

use crate::ast::{Atom, VarId};
use crate::eval::flat::{AtomBinder, FlatRelation, MatCacheStats, MatKey, MaterializationCache};
use cqapx_par::{parallel_map, ThreadBudget};
use cqapx_structures::Structure;
use std::collections::BTreeSet;

/// Index of a relation slot in a [`PlanIr`] program.
pub type Slot = usize;

/// One operator's share of a profiled run: wall time and the row count
/// of its primary output slot after execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpProfile {
    /// Operator kind (`"materialize"`, `"semijoin"`, …).
    pub op: &'static str,
    /// Wall-clock microseconds spent in the operator.
    pub micros: u64,
    /// Rows in the operator's output slot when it finished.
    pub rows: usize,
}

/// A per-operator execution profile of one [`PlanIr`] run, collected
/// only when the caller asks for it (the `Debug` metrics level): the
/// hot path pays a single `Option` branch per operator. Entries appear
/// in execution order; an aborted run (emptiness assertion fired)
/// profiles the prefix that ran.
#[derive(Debug, Clone, Default)]
pub struct EvalProfile {
    /// Per-operator timings/row counts, in execution order.
    pub ops: Vec<OpProfile>,
}

impl EvalProfile {
    /// Total microseconds across operators.
    pub fn total_micros(&self) -> u64 {
        self.ops.iter().map(|o| o.micros).sum()
    }

    /// Sums `micros` and `rows` per operator kind, in kind order.
    pub fn by_op(&self) -> Vec<(&'static str, u64, usize)> {
        let mut agg: Vec<(&'static str, u64, usize)> = Vec::new();
        for o in &self.ops {
            match agg.iter_mut().find(|(k, _, _)| *k == o.op) {
                Some((_, us, rows)) => {
                    *us += o.micros;
                    *rows += o.rows;
                }
                None => agg.push((o.op, o.micros, o.rows)),
            }
        }
        agg.sort_unstable_by_key(|&(k, _, _)| k);
        agg
    }
}

/// One sub-hyperedge of a [`MatSource`]: the atoms sharing one variable
/// set, compiled to binders, with its own cache identity.
#[derive(Debug, Clone)]
pub struct MatPart {
    /// Sorted distinct variables of the sub-hyperedge.
    pub schema: Vec<VarId>,
    /// Cache identity of this sub-hyperedge alone.
    pub key: MatKey,
    /// Compiled binders, one per atom with this variable set.
    pub binders: Vec<AtomBinder>,
}

/// The relation source of one plan node: a group of sub-hyperedges whose
/// natural join (then canonicalized onto `schema`) is the node relation.
///
/// * join-tree nodes have exactly one part whose schema equals the
///   source schema — the hyperedge itself;
/// * tree-decomposition bags join every covering atom group — the bag
///   materialization;
/// * a node with **no** parts materializes to the 0-ary "true" relation
///   (a connector bag none of whose atoms it covers).
///
/// Sources (and, on a miss, their individual parts) go through the
/// per-database [`MaterializationCache`] keyed by [`MatKey`], so a bag
/// is cached exactly like a hyperedge and either can adopt the other's
/// entry when the keys coincide.
#[derive(Debug, Clone)]
pub struct MatSource {
    /// Sorted distinct variables of the whole source (the union of the
    /// part schemas).
    pub schema: Vec<VarId>,
    /// Cache identity of the joined source.
    pub key: MatKey,
    /// The sub-hyperedges joined to form the relation.
    pub parts: Vec<MatPart>,
}

impl MatSource {
    /// Compiles a source from atom groups (each group: the atoms sharing
    /// one variable set) over the union of their variables.
    pub fn from_groups(groups: &[Vec<&Atom>]) -> MatSource {
        let mut schema: Vec<VarId> = groups
            .iter()
            .flat_map(|g| g.iter().flat_map(|a| a.args.iter().copied()))
            .collect();
        schema.sort_unstable();
        schema.dedup();
        let all: Vec<&Atom> = groups.iter().flat_map(|g| g.iter().copied()).collect();
        let parts = groups
            .iter()
            .map(|g| {
                let mut vars: Vec<VarId> = g.iter().flat_map(|a| a.args.iter().copied()).collect();
                vars.sort_unstable();
                vars.dedup();
                MatPart {
                    key: MatKey::of_group(g, &vars),
                    binders: g.iter().map(|a| AtomBinder::compile(a, &vars)).collect(),
                    schema: vars,
                }
            })
            .collect();
        MatSource {
            key: MatKey::of_group(&all, &schema),
            schema,
            parts,
        }
    }

    /// Materializes the source against `d`, adopting from / inserting
    /// into `cache` when given. Multi-part sources are cached at both
    /// levels: the joined source under its own key and, on a source
    /// miss, each part under its key (so single-atom parts are shared
    /// with the plans that use them as whole hyperedges). The part
    /// joins and canonicalization run under `budget`.
    pub fn materialize(
        &self,
        d: &Structure,
        cache: Option<&MaterializationCache>,
        stats: &mut MatCacheStats,
        budget: &ThreadBudget,
    ) -> FlatRelation {
        if self.parts.is_empty() {
            return FlatRelation::unit();
        }
        match cache {
            None => self.materialize_fresh(d, None, stats, budget),
            Some(c) => {
                let mut inner = MatCacheStats::default();
                let (rel, hit) = c.get_or_materialize(&self.key, || {
                    self.materialize_fresh(d, Some(c), &mut inner, budget)
                });
                if hit {
                    stats.hits += 1;
                } else {
                    stats.misses += 1;
                }
                stats.add(inner);
                rel.relabel(self.schema.clone())
            }
        }
    }

    /// Scans and joins the parts (no lookup of the source key itself).
    fn materialize_fresh(
        &self,
        d: &Structure,
        cache: Option<&MaterializationCache>,
        stats: &mut MatCacheStats,
        budget: &ThreadBudget,
    ) -> FlatRelation {
        if self.parts.len() == 1 && self.parts[0].schema == self.schema {
            // The source *is* its single part; its key equals the part
            // key, so the caller's lookup already covered it.
            return self.parts[0].materialize_fresh(d, budget);
        }
        let mut acc: Option<FlatRelation> = None;
        for part in &self.parts {
            let rel = match cache {
                None => part.materialize_fresh(d, budget),
                Some(c) => {
                    let (rel, hit) =
                        c.get_or_materialize(&part.key, || part.materialize_fresh(d, budget));
                    if hit {
                        stats.hits += 1;
                    } else {
                        stats.misses += 1;
                    }
                    rel.relabel(part.schema.clone())
                }
            };
            acc = Some(match acc {
                None => rel,
                Some(a) => a.join_budget(&rel, budget),
            });
        }
        // Canonicalize onto the sorted source schema (column order and
        // row order), so cache entries are label-independent.
        acc.expect("nonempty parts")
            .project_budget(&self.schema, budget)
    }
}

impl MatPart {
    /// Scans the part's atoms and intersects them (they share a schema).
    fn materialize_fresh(&self, d: &Structure, budget: &ThreadBudget) -> FlatRelation {
        let mut acc: Option<FlatRelation> = None;
        for binder in &self.binders {
            let mut rel = FlatRelation::empty(self.schema.clone());
            binder.materialize_into(d, &mut rel);
            rel.sort_dedup_budget(budget);
            acc = Some(match acc {
                None => rel,
                Some(mut a) => {
                    a.intersect_sorted(&rel);
                    a
                }
            });
        }
        acc.expect("parts have at least one binder")
    }
}

/// One instruction of a [`PlanIr`] program.
#[derive(Debug, Clone)]
pub enum Op {
    /// Materialize (or adopt from the cache) a source into `dst`.
    Materialize {
        /// Destination slot.
        dst: Slot,
        /// What to materialize.
        source: MatSource,
    },
    /// In-place semijoin `target ⋉ source` on aligned key columns.
    Semijoin {
        /// Slot filtered in place.
        target: Slot,
        /// Slot probed for matches.
        source: Slot,
        /// Key column positions in the target's schema.
        target_pos: Vec<usize>,
        /// Key column positions in the source's schema.
        source_pos: Vec<usize>,
    },
    /// Abort the program (empty answer) when the slot has no rows.
    AssertNonempty {
        /// Slot checked.
        slot: Slot,
    },
    /// Natural join `left ⋈ right` into `dst` (operands are kept).
    Join {
        /// Destination slot.
        dst: Slot,
        /// Left operand slot.
        left: Slot,
        /// Right operand slot.
        right: Slot,
    },
    /// Projection of `src` onto `vars` into `dst` (sorted, deduplicated).
    Project {
        /// Destination slot.
        dst: Slot,
        /// Source slot.
        src: Slot,
        /// Variables kept (must occur in the source schema).
        vars: Vec<VarId>,
    },
    /// In-place sort + duplicate elimination of a slot.
    Dedup {
        /// Slot canonicalized.
        slot: Slot,
    },
    /// Append the rows of `src` to `dst` (same variable set, columns
    /// remapped by name). Follow with [`Op::Dedup`] to restore set
    /// semantics.
    Union {
        /// Destination slot (grows).
        dst: Slot,
        /// Source slot (kept).
        src: Slot,
    },
}

/// A compiled physical plan: a straight-line operator program over
/// relation slots, with a designated output slot.
#[derive(Debug, Clone)]
pub struct PlanIr {
    /// Number of relation slots the program uses.
    slots: usize,
    /// The instructions, executed in order.
    ops: Vec<Op>,
    /// Length of the materialize-and-reduce prefix (see
    /// [`PlanIr::reduction_decides`]).
    bool_len: usize,
    /// `true` when surviving the reduction prefix alone proves the
    /// answer nonempty (labels equal schemas: a genuine join tree, where
    /// the full reducer establishes global consistency). When `false`
    /// (decomposition bags with connector-only variables), Boolean
    /// evaluation must run the join phase too.
    reduction_decides: bool,
    /// Slot holding the final relation after a full run.
    output: Slot,
    /// Memoized [`PlanIr::dependency_stages`] (the labels depend only
    /// on the immutable op list): computed on the first budgeted run,
    /// a field read afterwards. Clones carry the computed value along.
    stages_memo: std::sync::OnceLock<Vec<usize>>,
}

/// Disjoint `(&mut xs[a], &xs[b])` access for `a ≠ b`: the borrow split
/// in-place semijoins need to filter one slot against another without
/// cloning either relation.
fn pair_mut<T>(xs: &mut [T], a: usize, b: usize) -> (&mut T, &T) {
    debug_assert_ne!(a, b, "semijoin target and source must differ");
    if a < b {
        let (lo, hi) = xs.split_at_mut(b);
        (&mut lo[a], &hi[0])
    } else {
        let (lo, hi) = xs.split_at_mut(a);
        (&mut hi[0], &lo[b])
    }
}

impl PlanIr {
    /// Number of operators in the program.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Whether the reduction prefix alone decides Boolean answers.
    pub fn reduction_decides(&self) -> bool {
        self.reduction_decides
    }

    /// The dependency stage of every operator: `stage[i]` is the length
    /// of the longest chain of slot conflicts (read-after-write,
    /// write-after-read, write-after-write) ending at op `i`, with every
    /// [`Op::AssertNonempty`] also acting as a control barrier for the
    /// ops behind it (they must not run if the program aborts). Ops that
    /// share a stage are mutually independent and may execute
    /// concurrently; stage 0 is exactly the leading block of independent
    /// [`Op::Materialize`] ops in a [`compile_tree`] program.
    pub fn dependency_stages(&self) -> Vec<usize> {
        // Per slot: the stage of its last writer / last reader so far.
        let mut last_write: Vec<Option<usize>> = vec![None; self.slots];
        let mut last_read: Vec<Option<usize>> = vec![None; self.slots];
        let mut barrier: Option<usize> = None;
        let mut stages = Vec::with_capacity(self.ops.len());
        for op in &self.ops {
            let (reads, writes): (Vec<Slot>, Vec<Slot>) = match op {
                Op::Materialize { dst, .. } => (vec![], vec![*dst]),
                Op::Semijoin { target, source, .. } => (vec![*source, *target], vec![*target]),
                Op::AssertNonempty { slot } => (vec![*slot], vec![]),
                Op::Join { dst, left, right } => (vec![*left, *right], vec![*dst]),
                Op::Project { dst, src, .. } => (vec![*src], vec![*dst]),
                Op::Dedup { slot } => (vec![*slot], vec![*slot]),
                Op::Union { dst, src } => (vec![*src, *dst], vec![*dst]),
            };
            let mut stage = barrier.map(|b| b + 1).unwrap_or(0);
            for &r in &reads {
                if let Some(w) = last_write[r] {
                    stage = stage.max(w + 1);
                }
            }
            for &w in &writes {
                for dep in [last_write[w], last_read[w]].into_iter().flatten() {
                    stage = stage.max(dep + 1);
                }
            }
            for &r in &reads {
                last_read[r] = Some(last_read[r].unwrap_or(0).max(stage));
            }
            for &w in &writes {
                last_write[w] = Some(stage);
            }
            if matches!(op, Op::AssertNonempty { .. }) {
                barrier = Some(barrier.unwrap_or(0).max(stage));
            }
            stages.push(stage);
        }
        stages
    }

    /// Executes `ops[..len]`. Returns `false` when an
    /// [`Op::AssertNonempty`] fired (the answer is empty).
    ///
    /// Execution is sequential in op order, with one scheduling upgrade
    /// when `budget` grants extra workers: a contiguous run of
    /// [`Op::Materialize`] ops that share a dependency stage (mutually
    /// independent by construction — distinct destination slots, no slot
    /// reads) is fanned out over claimed workers, one source per worker,
    /// results written back in op order. Under the cache's single-flight
    /// guarantee the per-run hit/miss totals equal the sequential run's.
    #[allow(clippy::too_many_arguments)]
    fn exec(
        &self,
        len: usize,
        slots: &mut [Option<FlatRelation>],
        d: &Structure,
        cache: Option<&MaterializationCache>,
        stats: &mut MatCacheStats,
        budget: &ThreadBudget,
        mut profile: Option<&mut EvalProfile>,
    ) -> bool {
        fn rel(s: &Option<FlatRelation>) -> &FlatRelation {
            s.as_ref().expect("slot written before use")
        }
        fn op_label(op: &Op) -> &'static str {
            match op {
                Op::Materialize { .. } => "materialize",
                Op::Semijoin { .. } => "semijoin",
                Op::AssertNonempty { .. } => "assert_nonempty",
                Op::Join { .. } => "join",
                Op::Project { .. } => "project",
                Op::Dedup { .. } => "dedup",
                Op::Union { .. } => "union",
            }
        }
        /// The slot whose row count describes the op's output.
        fn out_slot(op: &Op) -> Slot {
            match op {
                Op::Materialize { dst, .. } => *dst,
                Op::Semijoin { target, .. } => *target,
                Op::AssertNonempty { slot } => *slot,
                Op::Join { dst, .. } => *dst,
                Op::Project { dst, .. } => *dst,
                Op::Dedup { slot } => *slot,
                Op::Union { dst, .. } => *dst,
            }
        }
        // Stage labels are only needed to group materializations; skip
        // the analysis entirely on the sequential path, and memoize it
        // across runs (the labels depend only on the immutable ops).
        let stages: Option<&[usize]> = if budget.capacity() > 0 {
            Some(
                self.stages_memo
                    .get_or_init(|| self.dependency_stages())
                    .as_slice(),
            )
        } else {
            None
        };
        let mut pc = 0usize;
        while pc < len {
            // A contiguous same-stage block of materializations fans
            // out over the budget's workers.
            if let (Op::Materialize { .. }, Some(stages)) = (&self.ops[pc], &stages) {
                let mut end = pc;
                while end < len
                    && stages[end] == stages[pc]
                    && matches!(self.ops[end], Op::Materialize { .. })
                {
                    end += 1;
                }
                if end - pc >= 2 {
                    let lease = budget.claim(end - pc - 1);
                    if lease.extra() > 0 {
                        let timed = profile.is_some();
                        let group: Vec<(Slot, &MatSource)> = self.ops[pc..end]
                            .iter()
                            .map(|op| match op {
                                Op::Materialize { dst, source } => (*dst, source),
                                _ => unreachable!("group holds only materializations"),
                            })
                            .collect();
                        let results = parallel_map(group, lease.workers(), |(dst, source)| {
                            let t0 = timed.then(std::time::Instant::now);
                            let mut s = MatCacheStats::default();
                            let r = source.materialize(d, cache, &mut s, budget);
                            let us = t0.map_or(0, |t| t.elapsed().as_micros() as u64);
                            (dst, r, s, us)
                        });
                        for (dst, r, s, us) in results {
                            if let Some(p) = profile.as_deref_mut() {
                                p.ops.push(OpProfile {
                                    op: "materialize",
                                    micros: us,
                                    rows: r.len(),
                                });
                            }
                            slots[dst] = Some(r);
                            stats.add(s);
                        }
                        pc = end;
                        continue;
                    }
                }
            }
            let t0 = profile.is_some().then(std::time::Instant::now);
            match &self.ops[pc] {
                Op::Materialize { dst, source } => {
                    slots[*dst] = Some(source.materialize(d, cache, stats, budget));
                }
                Op::Semijoin {
                    target,
                    source,
                    target_pos,
                    source_pos,
                } => {
                    let (t, s) = pair_mut(slots, *target, *source);
                    t.as_mut()
                        .expect("slot written before use")
                        .semijoin_on_budget(target_pos, rel(s), source_pos, budget);
                }
                Op::AssertNonempty { slot } => {
                    if rel(&slots[*slot]).is_empty() {
                        if let Some(p) = profile.as_deref_mut() {
                            p.ops.push(OpProfile {
                                op: "assert_nonempty",
                                micros: t0.map_or(0, |t| t.elapsed().as_micros() as u64),
                                rows: 0,
                            });
                        }
                        return false;
                    }
                }
                Op::Join { dst, left, right } => {
                    let out = rel(&slots[*left]).join_budget(rel(&slots[*right]), budget);
                    slots[*dst] = Some(out);
                }
                Op::Project { dst, src, vars } => {
                    let out = rel(&slots[*src]).project_budget(vars, budget);
                    slots[*dst] = Some(out);
                }
                Op::Dedup { slot } => {
                    slots[*slot]
                        .as_mut()
                        .expect("slot written before use")
                        .sort_dedup_budget(budget);
                }
                Op::Union { dst, src } => {
                    let (t, s) = pair_mut(slots, *dst, *src);
                    t.as_mut()
                        .expect("slot written before use")
                        .union_rows(rel(s));
                }
            }
            if let Some(p) = profile.as_deref_mut() {
                p.ops.push(OpProfile {
                    op: op_label(&self.ops[pc]),
                    micros: t0.map_or(0, |t| t.elapsed().as_micros() as u64),
                    rows: slots[out_slot(&self.ops[pc])]
                        .as_ref()
                        .map_or(0, |r| r.len()),
                });
            }
            pc += 1;
        }
        true
    }

    /// Runs the full program under the process-wide shared thread
    /// budget. `None` means the answer is empty (an emptiness assertion
    /// fired); otherwise the output relation.
    pub fn run(
        &self,
        d: &Structure,
        cache: Option<&MaterializationCache>,
    ) -> (Option<FlatRelation>, MatCacheStats) {
        self.run_budget(d, cache, ThreadBudget::shared())
    }

    /// [`PlanIr::run`] under an explicit thread budget.
    pub fn run_budget(
        &self,
        d: &Structure,
        cache: Option<&MaterializationCache>,
        budget: &ThreadBudget,
    ) -> (Option<FlatRelation>, MatCacheStats) {
        self.run_budget_profiled(d, cache, budget, None)
    }

    /// [`PlanIr::run_budget`], optionally collecting a per-operator
    /// [`EvalProfile`] (pass `None` on the hot path: the only cost is
    /// one branch per operator).
    pub fn run_budget_profiled(
        &self,
        d: &Structure,
        cache: Option<&MaterializationCache>,
        budget: &ThreadBudget,
        profile: Option<&mut EvalProfile>,
    ) -> (Option<FlatRelation>, MatCacheStats) {
        let mut stats = MatCacheStats::default();
        let mut slots: Vec<Option<FlatRelation>> = vec![None; self.slots];
        if !self.exec(
            self.ops.len(),
            &mut slots,
            d,
            cache,
            &mut stats,
            budget,
            profile,
        ) {
            return (None, stats);
        }
        (slots[self.output].take(), stats)
    }

    /// Decides whether the answer is nonempty, running only as much of
    /// the program as the plan shape requires (shared thread budget).
    pub fn run_boolean(
        &self,
        d: &Structure,
        cache: Option<&MaterializationCache>,
    ) -> (bool, MatCacheStats) {
        self.run_boolean_budget(d, cache, ThreadBudget::shared())
    }

    /// [`PlanIr::run_boolean`] under an explicit thread budget.
    pub fn run_boolean_budget(
        &self,
        d: &Structure,
        cache: Option<&MaterializationCache>,
        budget: &ThreadBudget,
    ) -> (bool, MatCacheStats) {
        self.run_boolean_budget_profiled(d, cache, budget, None)
    }

    /// [`PlanIr::run_boolean_budget`], optionally collecting a
    /// per-operator [`EvalProfile`].
    pub fn run_boolean_budget_profiled(
        &self,
        d: &Structure,
        cache: Option<&MaterializationCache>,
        budget: &ThreadBudget,
        profile: Option<&mut EvalProfile>,
    ) -> (bool, MatCacheStats) {
        if self.reduction_decides {
            let mut stats = MatCacheStats::default();
            let mut slots: Vec<Option<FlatRelation>> = vec![None; self.slots];
            let alive = self.exec(
                self.bool_len,
                &mut slots,
                d,
                cache,
                &mut stats,
                budget,
                profile,
            );
            return (alive, stats);
        }
        let (out, stats) = self.run_budget_profiled(d, cache, budget, profile);
        (out.is_some_and(|r| !r.is_empty()), stats)
    }
}

/// One node of the tree a plan is compiled from.
#[derive(Debug, Clone)]
pub struct NodeSpec {
    /// The node's relation source.
    pub source: MatSource,
    /// Sorted connectivity label: the variable set guaranteed to satisfy
    /// the running-intersection property over the tree. Equals
    /// `source.schema` for join-tree nodes; the whole bag for
    /// tree-decomposition nodes.
    pub label: Vec<VarId>,
}

/// Compiles the Yannakakis pipeline over a rooted tree (or forest) of
/// nodes into a [`PlanIr`] program:
///
/// 1. materialize every node source;
/// 2. full reducer — semijoins leaves→root then root→leaves on the
///    columns the adjacent *schemas* share, with emptiness assertions;
/// 3. unless the query is Boolean and the reduction decides it:
///    bottom-up joins, each node projected onto its free variables plus
///    the variables its parent's *label* retains, roots combined by
///    (cartesian) join.
///
/// `parent`/`order` describe the rooted tree (children before parents
/// in `order`); `free` lists the query's free variables.
pub fn compile_tree(
    nodes: &[NodeSpec],
    parent: &[Option<usize>],
    order: &[usize],
    free: &[VarId],
) -> PlanIr {
    let n = nodes.len();
    assert_eq!(parent.len(), n);
    assert_eq!(order.len(), n);
    let reduction_decides = nodes.iter().all(|s| s.label == s.source.schema);
    let free_set: BTreeSet<VarId> = free.iter().copied().collect();

    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (u, p) in parent.iter().enumerate() {
        if let Some(p) = p {
            children[*p].push(u);
        }
    }

    let mut ops: Vec<Op> = Vec::new();
    let mut slots = n; // slots 0..n hold the node relations

    for (u, spec) in nodes.iter().enumerate() {
        ops.push(Op::Materialize {
            dst: u,
            source: spec.source.clone(),
        });
    }

    // Shared *schema* column positions of the edge above `u`, for the
    // semijoin sweeps (both schemas are sorted: one merge walk).
    let edge_pos: Vec<Option<(Vec<usize>, Vec<usize>)>> = (0..n)
        .map(|u| {
            parent[u].map(|p| {
                let (cs, ps) = (&nodes[u].source.schema, &nodes[p].source.schema);
                let (mut child_pos, mut parent_pos) = (Vec::new(), Vec::new());
                let (mut i, mut j) = (0, 0);
                while i < cs.len() && j < ps.len() {
                    match cs[i].cmp(&ps[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            child_pos.push(i);
                            parent_pos.push(j);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                (child_pos, parent_pos)
            })
        })
        .collect();

    // Full reducer: leaves → root …
    for &u in order {
        if let Some(p) = parent[u] {
            let (child_pos, parent_pos) = edge_pos[u].as_ref().expect("non-root has an edge");
            ops.push(Op::Semijoin {
                target: p,
                source: u,
                target_pos: parent_pos.clone(),
                source_pos: child_pos.clone(),
            });
        }
        ops.push(Op::AssertNonempty { slot: u });
    }
    // … then root → leaves.
    for &u in order.iter().rev() {
        if parent[u].is_some() {
            let (child_pos, parent_pos) = edge_pos[u].as_ref().expect("non-root has an edge");
            ops.push(Op::Semijoin {
                target: u,
                source: parent[u].unwrap(),
                target_pos: child_pos.clone(),
                source_pos: parent_pos.clone(),
            });
            ops.push(Op::AssertNonempty { slot: u });
        }
    }
    let bool_len = ops.len();

    if free.is_empty() && reduction_decides {
        // Boolean join tree: the prefix is the whole program. The output
        // slot is unused by Boolean callers; point it at the last node
        // in `order` (the root of the last-compiled tree).
        return PlanIr {
            slots,
            ops,
            bool_len,
            reduction_decides,
            output: *order.last().expect("at least one node"),
            stages_memo: std::sync::OnceLock::new(),
        };
    }

    // Bottom-up joins with projection. `partial[u]` is the slot holding
    // the projected join of `u`'s subtree; its schema is tracked
    // statically so projections list exact variables.
    let mut partial: Vec<Option<(Slot, Vec<VarId>)>> = vec![None; n];
    for &u in order {
        let mut cur: Slot = u;
        let mut schema: Vec<VarId> = nodes[u].source.schema.clone();
        for &c in &children[u] {
            let (cslot, cschema) = partial[c].take().expect("children processed first");
            let dst = slots;
            slots += 1;
            ops.push(Op::Join {
                dst,
                left: cur,
                right: cslot,
            });
            for v in cschema {
                if !schema.contains(&v) {
                    schema.push(v);
                }
            }
            cur = dst;
        }
        // Keep free variables plus variables the parent's label retains.
        let keep: Vec<VarId> = schema
            .iter()
            .copied()
            .filter(|v| {
                free_set.contains(v)
                    || parent[u]
                        .map(|p| nodes[p].label.binary_search(v).is_ok())
                        .unwrap_or(false)
            })
            .collect();
        let dst = slots;
        slots += 1;
        ops.push(Op::Project {
            dst,
            src: cur,
            vars: keep.clone(),
        });
        partial[u] = Some((dst, keep));
    }

    // Combine the roots (cartesian join across components).
    let roots: Vec<usize> = (0..n).filter(|&u| parent[u].is_none()).collect();
    let mut out: Option<Slot> = None;
    for r in roots {
        let (rslot, _) = partial[r].take().expect("root processed");
        out = Some(match out {
            None => rslot,
            Some(acc) => {
                let dst = slots;
                slots += 1;
                ops.push(Op::Join {
                    dst,
                    left: acc,
                    right: rslot,
                });
                dst
            }
        });
    }

    PlanIr {
        slots,
        ops,
        bool_len,
        reduction_decides,
        output: out.expect("at least one root"),
        stages_memo: std::sync::OnceLock::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_cq;

    fn source_of(q: &str) -> MatSource {
        let q = parse_cq(q).unwrap();
        let groups: Vec<Vec<&Atom>> = q.atoms().iter().map(|a| vec![a]).collect();
        MatSource::from_groups(&groups)
    }

    #[test]
    fn source_from_groups_unions_schemas() {
        let s = source_of("Q() :- E(x, y), E(y, z)");
        assert_eq!(s.schema, vec![0, 1, 2]);
        assert_eq!(s.parts.len(), 2);
        assert_eq!(s.parts[0].schema, vec![0, 1]);
        assert_eq!(s.parts[1].schema, vec![1, 2]);
    }

    #[test]
    fn empty_source_materializes_true() {
        let src = MatSource {
            schema: vec![],
            key: MatKey::of_group(&[], &[]),
            parts: vec![],
        };
        let d = Structure::digraph(2, &[]);
        let mut stats = MatCacheStats::default();
        let r = src.materialize(&d, None, &mut stats, ThreadBudget::shared());
        assert_eq!(r.len(), 1);
        assert_eq!(r.arity(), 0);
        assert_eq!(stats, MatCacheStats::default());
    }

    #[test]
    fn multipart_source_joins_and_caches_both_levels() {
        let src = source_of("Q() :- E(x, y), E(y, z)");
        let d = Structure::digraph(4, &[(0, 1), (1, 2), (2, 3)]);
        let cache = MaterializationCache::new();
        let mut stats = MatCacheStats::default();
        let r = src.materialize(&d, Some(&cache), &mut stats, ThreadBudget::shared());
        assert_eq!(r.schema(), &[0, 1, 2]);
        assert_eq!(r.len(), 2); // 0-1-2 and 1-2-3
                                // Cold: source miss + two part misses, all inserted.
        assert_eq!((stats.hits, stats.misses), (1, 2)); // parts share the E(x,y)-shape key!
        assert_eq!(cache.len(), 2); // the part shape + the joined source
                                    // Warm: a single source-level hit.
        let mut warm = MatCacheStats::default();
        let r2 = src.materialize(&d, Some(&cache), &mut warm, ThreadBudget::shared());
        assert_eq!((warm.hits, warm.misses), (1, 0));
        assert_eq!(
            r.rows_in_head_order(&[0, 1, 2]),
            r2.rows_in_head_order(&[0, 1, 2])
        );
    }

    #[test]
    fn ops_union_dedup_project_roundtrip() {
        // A hand-built program: materialize E forwards and reversed
        // (over the same two variables), union them, dedup, project to
        // column 0.
        let q = parse_cq("Q() :- E(x, y), E(y, x)").unwrap();
        let fwd = MatSource::from_groups(&[vec![&q.atoms()[0]]]);
        let rev = MatSource::from_groups(&[vec![&q.atoms()[1]]]);
        let ir = PlanIr {
            slots: 3,
            ops: vec![
                Op::Materialize {
                    dst: 0,
                    source: fwd,
                },
                Op::Materialize {
                    dst: 1,
                    source: rev,
                },
                Op::Union { dst: 0, src: 1 },
                Op::Dedup { slot: 0 },
                Op::AssertNonempty { slot: 0 },
                Op::Project {
                    dst: 2,
                    src: 0,
                    vars: vec![0],
                },
            ],
            bool_len: 5,
            reduction_decides: true,
            output: 2,
            stages_memo: std::sync::OnceLock::new(),
        };
        let d = Structure::digraph(3, &[(0, 1), (1, 0), (1, 2)]);
        let (out, _) = ir.run(&d, None);
        let out = out.unwrap();
        // Union of E and E-reversed, projected to the first column:
        // sources {0, 1} ∪ targets {1, 0, 2} = {0, 1, 2}.
        assert_eq!(out.len(), 3);
        let (b, _) = ir.run_boolean(&d, None);
        assert!(b);
        // Empty database: the assertion aborts both runs.
        let empty = Structure::digraph(3, &[]);
        assert!(ir.run(&empty, None).0.is_none());
        assert!(!ir.run_boolean(&empty, None).0);
    }

    #[test]
    fn dependency_stages_group_independent_materializations() {
        use crate::eval::yannakakis::AcyclicPlan;
        let q = parse_cq("Q(x1, x4) :- E(x1,x2), E(x2,x3), E(x3,x4)").unwrap();
        let plan = AcyclicPlan::compile(&q).unwrap();
        let stages = plan.ir().dependency_stages();
        // The three hyperedge materializations are mutually independent:
        // all stage 0. Everything downstream conflicts with them.
        assert!(
            stages[..3].iter().all(|&s| s == 0),
            "materializations must share stage 0: {stages:?}"
        );
        assert!(
            stages[3..].iter().all(|&s| s > 0),
            "reducer/join ops depend on the materializations: {stages:?}"
        );
    }

    #[test]
    fn assertion_is_a_control_barrier_in_stages() {
        // Materialize, assert, then materialize again: the second
        // materialization must not share a stage with the first even
        // though their slots are disjoint — the assert may abort first.
        let q = parse_cq("Q() :- E(x, y), E(y, z)").unwrap();
        let e = MatSource::from_groups(&[vec![&q.atoms()[0]]]);
        let e2 = MatSource::from_groups(&[vec![&q.atoms()[1]]]);
        let ir = PlanIr {
            slots: 2,
            ops: vec![
                Op::Materialize { dst: 0, source: e },
                Op::AssertNonempty { slot: 0 },
                Op::Materialize { dst: 1, source: e2 },
            ],
            bool_len: 3,
            reduction_decides: true,
            output: 1,
            stages_memo: std::sync::OnceLock::new(),
        };
        let stages = ir.dependency_stages();
        assert_eq!(stages[0], 0);
        assert!(
            stages[2] > stages[1],
            "post-assert op must stage after the barrier: {stages:?}"
        );
    }

    #[test]
    fn budgeted_run_matches_sequential_run_and_accounting() {
        use crate::eval::yannakakis::AcyclicPlan;
        let q = parse_cq("Q(x1, x4) :- E(x1,x2), E(x2,x3), E(x3,x4)").unwrap();
        let plan = AcyclicPlan::compile(&q).unwrap();
        let edges: Vec<(u32, u32)> = (0..300u32)
            .flat_map(|u| {
                [(u, (u + 1) % 300), (u, (u * 7 + 3) % 300)]
                    .into_iter()
                    .filter(|&(a, b)| a != b)
            })
            .collect();
        let d = Structure::digraph(300, &edges);
        let seq_cache = MaterializationCache::new();
        let (r1, s1) = plan
            .ir()
            .run_budget(&d, Some(&seq_cache), &ThreadBudget::sequential());
        let par_cache = MaterializationCache::new();
        let (r2, s2) = plan
            .ir()
            .run_budget(&d, Some(&par_cache), &ThreadBudget::new(4));
        let (r1, r2) = (r1.unwrap(), r2.unwrap());
        assert_eq!(
            r1.rows_in_head_order(&[0, 3]),
            r2.rows_in_head_order(&[0, 3]),
            "parallel run must produce identical answers"
        );
        assert_eq!(
            (s1.hits, s1.misses),
            (s2.hits, s2.misses),
            "single-flight keeps the cache accounting identical"
        );
    }

    #[test]
    fn profiled_run_records_every_op_and_matches_unprofiled() {
        use crate::eval::yannakakis::AcyclicPlan;
        let q = parse_cq("Q(x1, x4) :- E(x1,x2), E(x2,x3), E(x3,x4)").unwrap();
        let plan = AcyclicPlan::compile(&q).unwrap();
        let d = Structure::digraph(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let (plain, _) = plan.ir().run_budget(&d, None, ThreadBudget::shared());
        let mut profile = EvalProfile::default();
        let (profiled, _) =
            plan.ir()
                .run_budget_profiled(&d, None, ThreadBudget::shared(), Some(&mut profile));
        assert_eq!(
            plain.unwrap().rows_in_head_order(&[0, 3]),
            profiled.unwrap().rows_in_head_order(&[0, 3]),
            "profiling must not change answers"
        );
        // A completed run profiles every instruction.
        assert_eq!(profile.ops.len(), plan.ir().op_count());
        assert!(profile.ops.iter().any(|o| o.op == "materialize"));
        assert!(profile.ops.iter().any(|o| o.op == "semijoin"));
        let agg = profile.by_op();
        assert_eq!(agg.iter().map(|&(k, _, _)| k).collect::<Vec<_>>(), {
            let mut kinds: Vec<&str> = profile.ops.iter().map(|o| o.op).collect();
            kinds.sort_unstable();
            kinds.dedup();
            kinds
        });
        // An aborted run profiles the prefix, ending at the assertion.
        let empty = Structure::digraph(5, &[]);
        let mut aborted = EvalProfile::default();
        let (none, _) =
            plan.ir()
                .run_budget_profiled(&empty, None, ThreadBudget::shared(), Some(&mut aborted));
        assert!(none.is_none());
        assert!(aborted.ops.len() < plan.ir().op_count());
        assert_eq!(aborted.ops.last().unwrap().op, "assert_nonempty");
    }

    #[test]
    fn join_and_semijoin_ops() {
        let q = parse_cq("Q() :- E(x, y), E(y, z)").unwrap();
        let e = MatSource::from_groups(&[vec![&q.atoms()[0]]]);
        let e2 = MatSource::from_groups(&[vec![&q.atoms()[1]]]);
        let ir = PlanIr {
            slots: 3,
            ops: vec![
                Op::Materialize { dst: 0, source: e },
                Op::Materialize { dst: 1, source: e2 },
                // Keep only edges with an outgoing continuation …
                Op::Semijoin {
                    target: 0,
                    source: 1,
                    target_pos: vec![1],
                    source_pos: vec![0],
                },
                // … then build the 2-hop join.
                Op::Join {
                    dst: 2,
                    left: 0,
                    right: 1,
                },
            ],
            bool_len: 4,
            reduction_decides: true,
            output: 2,
            stages_memo: std::sync::OnceLock::new(),
        };
        let d = Structure::digraph(4, &[(0, 1), (1, 2), (3, 3)]);
        let (out, _) = ir.run(&d, None);
        let out = out.unwrap();
        assert_eq!(out.schema(), &[0, 1, 2]);
        // Paths: 0→1→2 and 3→3→3.
        assert_eq!(out.len(), 2);
    }
}
