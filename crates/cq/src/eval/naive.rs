//! Naive CQ evaluation: backtracking join (homomorphism search from the
//! tableau into the database).
//!
//! Works for every CQ; combined complexity `|D|^O(|Q|)` in the worst case
//! — this is the baseline the paper's approximations beat. [`NaivePlan`]
//! compiles the tableau side once (a [`HomSolver`] with its constraints
//! and incidence lists) so that repeated evaluations — a served query hit
//! by many requests, a membership probe per candidate answer — pay only
//! for the search; the database side rides on the per-structure index
//! cache. The free functions are one-shot sugar over it.

use crate::ast::ConjunctiveQuery;
use crate::eval::flat::FlatRelation;
use crate::tableau::tableau_of;
use cqapx_structures::{Element, HomSearchStats, HomSolver, Pointed, SearchBudget, Structure};
use std::collections::BTreeSet;
use std::ops::ControlFlow;

/// A compiled naive evaluator: the query's tableau with its hom-solver
/// compiled once, reusable against any number of databases.
///
/// # Examples
///
/// ```
/// use cqapx_cq::{eval::NaivePlan, parse_cq};
/// use cqapx_structures::Structure;
///
/// let plan = NaivePlan::compile(parse_cq("Q(x) :- E(x, y), E(y, x)").unwrap());
/// let d = Structure::digraph(3, &[(0, 1), (1, 0), (1, 2)]);
/// assert_eq!(plan.eval(&d).len(), 2); // x ∈ {0, 1}
/// ```
#[derive(Debug, Clone)]
pub struct NaivePlan {
    query: ConjunctiveQuery,
    tableau: Pointed,
    solver: HomSolver,
}

impl NaivePlan {
    /// Compiles the tableau of `q` for repeated evaluation.
    pub fn compile(query: ConjunctiveQuery) -> NaivePlan {
        let tableau = tableau_of(&query);
        let solver = HomSolver::compile(&tableau.structure);
        NaivePlan {
            query,
            tableau,
            solver,
        }
    }

    /// The compiled query.
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    /// The query's tableau `(T_Q, x̄)`.
    pub fn tableau(&self) -> &Pointed {
        &self.tableau
    }

    /// Streams answers of `Q(D)` to `f` (head-ordered tuples, possibly
    /// with repetitions — one per homomorphism) until `f` breaks or the
    /// optional shared budget runs dry. Returns the search statistics;
    /// answers seen before exhaustion are sound.
    pub fn for_each_answer<F: FnMut(&[Element]) -> ControlFlow<()>>(
        &self,
        d: &Structure,
        budget: Option<&SearchBudget>,
        mut f: F,
    ) -> HomSearchStats {
        let mut run = self.solver.run(d);
        if let Some(b) = budget {
            run = run.budget(b);
        }
        let mut answer: Vec<Element> = Vec::with_capacity(self.tableau.arity());
        run.for_each(|h| {
            answer.clear();
            answer.extend(self.tableau.distinguished().iter().map(|&v| h.apply(v)));
            f(&answer)
        })
    }

    /// Evaluates `Q(D)`: the set of answer tuples. Answers accumulate in
    /// a flat row buffer (contiguous, deduplicated by sorting) instead
    /// of a per-answer `Vec` insert into a tree. The search emits one
    /// tuple per homomorphism — possibly far more than there are
    /// distinct answers — so the buffer re-dedups whenever it doubles,
    /// keeping peak memory proportional to the answer set.
    pub fn eval(&self, d: &Structure) -> BTreeSet<Vec<Element>> {
        // The sorts stay explicitly sequential: naive evaluation is
        // dominated by the backtracking search, and the engine's
        // "one thread pool" invariant must not leak worker claims
        // through this strategy's incidental buffer maintenance.
        let seq = cqapx_par::ThreadBudget::sequential();
        let arity = self.query.arity();
        let mut flat = FlatRelation::empty((0..arity as u32).collect());
        let mut dedup_at = 1024usize;
        self.for_each_answer(d, None, |a| {
            flat.push_row(a);
            if flat.len() >= dedup_at {
                flat.sort_dedup_budget(&seq);
                dedup_at = (flat.len() * 2).max(1024);
            }
            ControlFlow::Continue(())
        });
        flat.sort_dedup_budget(&seq);
        flat.iter_rows().map(|r| r.to_vec()).collect()
    }

    /// Decides `Q(D) ≠ ∅`.
    pub fn eval_boolean(&self, d: &Structure) -> bool {
        self.solver.run(d).exists()
    }

    /// Membership check `ā ∈ Q(D)` without materializing the answer set.
    /// Answers mentioning elements outside `D`'s universe are simply not
    /// answers (`false`), not an error.
    pub fn contains_answer(&self, d: &Structure, answer: &[Element]) -> bool {
        assert_eq!(answer.len(), self.query.arity(), "answer arity mismatch");
        if answer.iter().any(|&a| (a as usize) >= d.universe_size()) {
            return false;
        }
        self.solver
            .run(d)
            .pin_tuple(self.tableau.distinguished(), answer)
            .exists()
    }
}

/// Evaluates `Q(D)`: the set of answer tuples.
///
/// # Examples
///
/// ```
/// use cqapx_cq::{eval::eval_naive, parse_cq};
/// use cqapx_structures::Structure;
///
/// let q = parse_cq("Q(x) :- E(x, y), E(y, x)").unwrap();
/// let d = Structure::digraph(3, &[(0, 1), (1, 0), (1, 2)]);
/// let answers = eval_naive(&q, &d);
/// assert_eq!(answers.len(), 2); // x ∈ {0, 1}
/// ```
pub fn eval_naive(q: &ConjunctiveQuery, d: &Structure) -> BTreeSet<Vec<Element>> {
    NaivePlan::compile(q.clone()).eval(d)
}

/// Evaluates a Boolean query (also usable for non-Boolean queries:
/// "is the answer nonempty?").
pub fn eval_boolean_naive(q: &ConjunctiveQuery, d: &Structure) -> bool {
    NaivePlan::compile(q.clone()).eval_boolean(d)
}

/// Membership check `ā ∈ Q(D)` without materializing the answer set.
pub fn contains_answer(q: &ConjunctiveQuery, d: &Structure, answer: &[Element]) -> bool {
    NaivePlan::compile(q.clone()).contains_answer(d, answer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_cq;

    #[test]
    fn triangle_detection() {
        let q = parse_cq("Q() :- E(x,y), E(y,z), E(z,x)").unwrap();
        let with = Structure::digraph(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let without = Structure::digraph(4, &[(0, 1), (1, 2), (2, 3)]);
        assert!(eval_boolean_naive(&q, &with));
        assert!(!eval_boolean_naive(&q, &without));
    }

    #[test]
    fn path_endpoints() {
        let q = parse_cq("Q(x, z) :- E(x, y), E(y, z)").unwrap();
        let d = Structure::digraph(4, &[(0, 1), (1, 2), (2, 3)]);
        let ans = eval_naive(&q, &d);
        assert_eq!(ans, [vec![0, 2], vec![1, 3]].into_iter().collect());
        assert!(contains_answer(&q, &d, &[0, 2]));
        assert!(!contains_answer(&q, &d, &[0, 3]));
    }

    #[test]
    fn repeated_head_vars() {
        let q = parse_cq("Q(x, x) :- E(x, y)").unwrap();
        let d = Structure::digraph(2, &[(0, 1)]);
        let ans = eval_naive(&q, &d);
        assert_eq!(ans, [vec![0, 0]].into_iter().collect());
    }

    #[test]
    fn empty_database() {
        let q = parse_cq("Q(x) :- E(x, y)").unwrap();
        let d = Structure::digraph(3, &[]);
        assert!(eval_naive(&q, &d).is_empty());
        assert!(!eval_boolean_naive(&q, &d));
    }

    #[test]
    fn plan_reused_across_databases() {
        let plan = NaivePlan::compile(parse_cq("Q(x, z) :- E(x, y), E(y, z)").unwrap());
        let d1 = Structure::digraph(3, &[(0, 1), (1, 2)]);
        let d2 = Structure::digraph(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(plan.eval(&d1).len(), 1);
        assert_eq!(plan.eval(&d2).len(), 2);
        assert!(plan.eval_boolean(&d2));
        assert!(plan.contains_answer(&d2, &[1, 3]));
        assert!(!plan.contains_answer(&d1, &[1, 3]));
    }

    #[test]
    fn budgeted_answers_are_sound() {
        let plan = NaivePlan::compile(parse_cq("Q(x) :- E(x,y), E(y,z), E(z,x)").unwrap());
        let d = Structure::digraph(4, &[(0, 1), (1, 2), (2, 0), (3, 3)]);
        let full = plan.eval(&d);
        let budget = SearchBudget::new(2);
        let mut partial: Vec<Vec<Element>> = Vec::new();
        let stats = plan.for_each_answer(&d, Some(&budget), |a| {
            partial.push(a.to_vec());
            ControlFlow::Continue(())
        });
        for a in &partial {
            assert!(full.contains(a));
        }
        assert!(stats.budget_exhausted || partial.len() >= full.len());
    }
}
