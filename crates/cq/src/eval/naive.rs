//! Naive CQ evaluation: backtracking join (homomorphism search from the
//! tableau into the database).
//!
//! Works for every CQ; combined complexity `|D|^O(|Q|)` in the worst case
//! — this is the baseline the paper's approximations beat.

use crate::ast::ConjunctiveQuery;
use crate::tableau::tableau_of;
use cqapx_structures::{Element, HomProblem, Structure};
use std::collections::BTreeSet;
use std::ops::ControlFlow;

/// Evaluates `Q(D)`: the set of answer tuples.
///
/// # Examples
///
/// ```
/// use cqapx_cq::{eval::eval_naive, parse_cq};
/// use cqapx_structures::Structure;
///
/// let q = parse_cq("Q(x) :- E(x, y), E(y, x)").unwrap();
/// let d = Structure::digraph(3, &[(0, 1), (1, 0), (1, 2)]);
/// let answers = eval_naive(&q, &d);
/// assert_eq!(answers.len(), 2); // x ∈ {0, 1}
/// ```
pub fn eval_naive(q: &ConjunctiveQuery, d: &Structure) -> BTreeSet<Vec<Element>> {
    let t = tableau_of(q);
    let mut answers = BTreeSet::new();
    HomProblem::new(&t.structure, d).for_each(|h| {
        let a: Vec<Element> = t.distinguished().iter().map(|&v| h.apply(v)).collect();
        answers.insert(a);
        ControlFlow::Continue(())
    });
    answers
}

/// Evaluates a Boolean query (also usable for non-Boolean queries:
/// "is the answer nonempty?").
pub fn eval_boolean_naive(q: &ConjunctiveQuery, d: &Structure) -> bool {
    let t = tableau_of(q);
    HomProblem::new(&t.structure, d).exists()
}

/// Membership check `ā ∈ Q(D)` without materializing the answer set.
pub fn contains_answer(q: &ConjunctiveQuery, d: &Structure, answer: &[Element]) -> bool {
    assert_eq!(answer.len(), q.arity(), "answer arity mismatch");
    let t = tableau_of(q);
    HomProblem::new(&t.structure, d)
        .pin_tuple(t.distinguished(), answer)
        .exists()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_cq;

    #[test]
    fn triangle_detection() {
        let q = parse_cq("Q() :- E(x,y), E(y,z), E(z,x)").unwrap();
        let with = Structure::digraph(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let without = Structure::digraph(4, &[(0, 1), (1, 2), (2, 3)]);
        assert!(eval_boolean_naive(&q, &with));
        assert!(!eval_boolean_naive(&q, &without));
    }

    #[test]
    fn path_endpoints() {
        let q = parse_cq("Q(x, z) :- E(x, y), E(y, z)").unwrap();
        let d = Structure::digraph(4, &[(0, 1), (1, 2), (2, 3)]);
        let ans = eval_naive(&q, &d);
        assert_eq!(ans, [vec![0, 2], vec![1, 3]].into_iter().collect());
        assert!(contains_answer(&q, &d, &[0, 2]));
        assert!(!contains_answer(&q, &d, &[0, 3]));
    }

    #[test]
    fn repeated_head_vars() {
        let q = parse_cq("Q(x, x) :- E(x, y)").unwrap();
        let d = Structure::digraph(2, &[(0, 1)]);
        let ans = eval_naive(&q, &d);
        assert_eq!(ans, [vec![0, 0]].into_iter().collect());
    }

    #[test]
    fn empty_database() {
        let q = parse_cq("Q(x) :- E(x, y)").unwrap();
        let d = Structure::digraph(3, &[]);
        assert!(eval_naive(&q, &d).is_empty());
        assert!(!eval_boolean_naive(&q, &d));
    }
}
