//! Yannakakis' algorithm for acyclic conjunctive queries, on the
//! columnar join kernel.
//!
//! For acyclic `Q`, `ā ∈ Q(D)` is decidable in time `O(|D| · |Q|)`
//! (Yannakakis, VLDB'81) — the tractable class the paper's acyclic
//! approximations target. The pipeline:
//!
//! 1. group atoms by variable set and **materialize** one
//!    [`FlatRelation`] per distinct hyperedge of `H(Q)` (intersecting
//!    the atoms that share a variable set, honoring repeated variables
//!    like `R(x, x, y)`) — or adopt it from a per-database
//!    [`MaterializationCache`] and skip the scan entirely;
//! 2. build a **join tree** via GYO reduction;
//! 3. run the **full reducer**: in-place semijoins leaves→root, then
//!    root→leaves, over column positions precomputed at compile time;
//! 4. Boolean queries finish here (nonempty after reduction ⇔ true);
//!    queries with free variables run bottom-up **joins with projection**
//!    onto (free ∪ connector) variables, so intermediate results stay
//!    output-bounded.
//!
//! Everything shape-dependent — atom binders, hyperedge cache keys, the
//! traversal order, the shared-column positions of every tree edge — is
//! computed once in [`AcyclicPlan::compile`]; evaluation only touches
//! flat row buffers.

use crate::ast::{Atom, ConjunctiveQuery, VarId};
use crate::eval::flat::{AtomBinder, FlatRelation, MatCacheStats, MatKey, MaterializationCache};
use cqapx_hypergraphs::{gyo, Hypergraph, JoinTree};
use cqapx_structures::{Element, Structure};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// Error: the query is not acyclic, so no join tree exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotAcyclic;

impl fmt::Display for NotAcyclic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query is not acyclic: no join tree exists")
    }
}

impl std::error::Error for NotAcyclic {}

/// A compiled evaluation plan for an acyclic CQ.
///
/// # Examples
///
/// ```
/// use cqapx_cq::{eval::AcyclicPlan, parse_cq};
/// use cqapx_structures::Structure;
///
/// let q = parse_cq("Q(x, w) :- E(x, y), E(y, z), E(z, w)").unwrap();
/// let plan = AcyclicPlan::compile(&q).unwrap();
/// let d = Structure::digraph(4, &[(0, 1), (1, 2), (2, 3)]);
/// let answers = plan.eval(&d);
/// assert_eq!(answers.len(), 1);
/// assert!(answers.contains(&vec![0, 3]));
/// ```
#[derive(Debug, Clone)]
pub struct AcyclicPlan {
    query: ConjunctiveQuery,
    /// Distinct variable sets (hyperedges) with their compiled binders.
    groups: Vec<Group>,
    join_tree: JoinTree,
    /// Bottom-up traversal order (children before parents), precomputed.
    order: Vec<usize>,
    /// Children lists of the join tree, precomputed.
    children: Vec<Vec<usize>>,
    /// For each non-root node `u`: the column positions of the variables
    /// shared with its parent, in `u`'s schema and the parent's schema.
    edges: Vec<Option<EdgeSpec>>,
}

#[derive(Debug, Clone)]
struct Group {
    /// Sorted distinct variables of the hyperedge.
    vars: Vec<VarId>,
    /// Compiled binders, one per query atom with this variable set.
    binders: Vec<AtomBinder>,
    /// The hyperedge's identity in a [`MaterializationCache`].
    mat_key: MatKey,
}

/// Shared-variable column positions of one join-tree edge.
#[derive(Debug, Clone)]
struct EdgeSpec {
    /// Positions of the shared variables in the child's schema.
    child_pos: Vec<usize>,
    /// Positions of the shared variables in the parent's schema.
    parent_pos: Vec<usize>,
}

/// Disjoint `(&mut xs[a], &xs[b])` access for `a ≠ b`: the borrow split
/// the full reducer needs to semijoin one tree node against another
/// without cloning either relation.
fn pair_mut<T>(xs: &mut [T], a: usize, b: usize) -> (&mut T, &T) {
    debug_assert_ne!(a, b, "semijoin target and source must differ");
    if a < b {
        let (lo, hi) = xs.split_at_mut(b);
        (&mut lo[a], &hi[0])
    } else {
        let (lo, hi) = xs.split_at_mut(a);
        (&mut hi[0], &lo[b])
    }
}

impl AcyclicPlan {
    /// Compiles a plan; fails when the query hypergraph is cyclic.
    pub fn compile(query: &ConjunctiveQuery) -> Result<AcyclicPlan, NotAcyclic> {
        // Group atoms by variable set, preserving first-occurrence order so
        // that group indices equal hyperedge indices of `Hypergraph` (which
        // deduplicates in insertion order too).
        let mut grouped: Vec<(Vec<VarId>, Vec<usize>)> = Vec::new();
        for (ai, atom) in query.atoms().iter().enumerate() {
            let mut vars: Vec<VarId> = atom.args.clone();
            vars.sort_unstable();
            vars.dedup();
            match grouped.iter_mut().find(|(v, _)| *v == vars) {
                Some((_, atoms)) => atoms.push(ai),
                None => grouped.push((vars, vec![ai])),
            }
        }
        let mut h = Hypergraph::new(query.var_count());
        for (vars, _) in &grouped {
            h.add_edge(vars);
        }
        debug_assert_eq!(h.edge_count(), grouped.len());
        let join_tree = gyo::gyo_reduce(&h).join_tree.ok_or(NotAcyclic)?;

        let groups: Vec<Group> = grouped
            .into_iter()
            .map(|(vars, atoms)| {
                let atom_refs: Vec<&Atom> = atoms.iter().map(|&ai| &query.atoms()[ai]).collect();
                Group {
                    mat_key: MatKey::of_group(&atom_refs, &vars),
                    binders: atom_refs
                        .iter()
                        .map(|a| AtomBinder::compile(a, &vars))
                        .collect(),
                    vars,
                }
            })
            .collect();

        // Precompute the shared-column positions of every tree edge: both
        // endpoint schemas are sorted, so one merge walk finds the shared
        // variables and their positions on each side.
        let edges: Vec<Option<EdgeSpec>> = (0..groups.len())
            .map(|u| {
                join_tree.parent[u].map(|p| {
                    let (cv, pv) = (&groups[u].vars, &groups[p as usize].vars);
                    let mut spec = EdgeSpec {
                        child_pos: Vec::new(),
                        parent_pos: Vec::new(),
                    };
                    let (mut i, mut j) = (0, 0);
                    while i < cv.len() && j < pv.len() {
                        match cv[i].cmp(&pv[j]) {
                            std::cmp::Ordering::Less => i += 1,
                            std::cmp::Ordering::Greater => j += 1,
                            std::cmp::Ordering::Equal => {
                                spec.child_pos.push(i);
                                spec.parent_pos.push(j);
                                i += 1;
                                j += 1;
                            }
                        }
                    }
                    spec
                })
            })
            .collect();

        Ok(AcyclicPlan {
            query: query.clone(),
            order: join_tree.bottom_up_order(),
            children: join_tree.children(),
            edges,
            groups,
            join_tree,
        })
    }

    /// The underlying query.
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    /// Materializes the relation of one hyperedge against a database.
    fn materialize(&self, gi: usize, d: &Structure) -> FlatRelation {
        let g = &self.groups[gi];
        let mut rel: Option<FlatRelation> = None;
        for binder in &g.binders {
            let mut atom_rel = FlatRelation::empty(g.vars.clone());
            binder.materialize_into(d, &mut atom_rel);
            atom_rel.sort_dedup();
            rel = Some(match rel {
                None => atom_rel,
                Some(mut acc) => {
                    // Same schema: sorted-merge intersection.
                    acc.intersect_sorted(&atom_rel);
                    acc
                }
            });
        }
        rel.expect("groups are nonempty")
    }

    /// Materializes every hyperedge, going through `cache` when given:
    /// hits adopt the cached buffer (one memcpy, no scan), misses
    /// materialize and insert under the hyperedge's canonical key.
    fn materialize_all(
        &self,
        d: &Structure,
        cache: Option<&MaterializationCache>,
    ) -> (Vec<FlatRelation>, MatCacheStats) {
        let mut stats = MatCacheStats::default();
        let rels = (0..self.groups.len())
            .map(|gi| match cache {
                None => self.materialize(gi, d),
                Some(cache) => {
                    let (rel, hit) = cache
                        .get_or_materialize(&self.groups[gi].mat_key, || self.materialize(gi, d));
                    if hit {
                        stats.hits += 1;
                    } else {
                        stats.misses += 1;
                    }
                    adopt(&rel, &self.groups[gi].vars)
                }
            })
            .collect();
        (rels, stats)
    }

    /// Runs the semijoin full reducer in place. Returns `false` when some
    /// relation became empty (the query answer is empty).
    fn full_reduce(&self, rels: &mut [FlatRelation]) -> bool {
        // Leaves → root.
        for &u in &self.order {
            if let Some(p) = self.join_tree.parent[u] {
                let spec = self.edges[u].as_ref().expect("non-root has an edge spec");
                let (target, source) = pair_mut(rels, p as usize, u);
                target.semijoin_on(&spec.parent_pos, source, &spec.child_pos);
            }
            if rels[u].is_empty() {
                return false;
            }
        }
        // Root → leaves.
        for &u in self.order.iter().rev() {
            if let Some(p) = self.join_tree.parent[u] {
                let spec = self.edges[u].as_ref().expect("non-root has an edge spec");
                let (target, source) = pair_mut(rels, u, p as usize);
                target.semijoin_on(&spec.child_pos, source, &spec.parent_pos);
                if target.is_empty() {
                    return false;
                }
            }
        }
        true
    }

    /// Boolean evaluation: `Q(D) ≠ ∅`.
    pub fn eval_boolean(&self, d: &Structure) -> bool {
        self.eval_boolean_cached(d, None).0
    }

    /// Boolean evaluation through an optional per-database
    /// materialization cache; also reports the cache outcome.
    pub fn eval_boolean_cached(
        &self,
        d: &Structure,
        cache: Option<&MaterializationCache>,
    ) -> (bool, MatCacheStats) {
        let (mut rels, stats) = self.materialize_all(d, cache);
        (self.full_reduce(&mut rels), stats)
    }

    /// Full evaluation: the set of answer tuples in head order.
    pub fn eval(&self, d: &Structure) -> BTreeSet<Vec<Element>> {
        self.eval_cached(d, None).0
    }

    /// Full evaluation through an optional per-database materialization
    /// cache; also reports the cache outcome.
    pub fn eval_cached(
        &self,
        d: &Structure,
        cache: Option<&MaterializationCache>,
    ) -> (BTreeSet<Vec<Element>>, MatCacheStats) {
        let (mut rels, stats) = self.materialize_all(d, cache);
        if !self.full_reduce(&mut rels) {
            return (BTreeSet::new(), stats);
        }
        if self.query.is_boolean() {
            // Nonempty after full reduction: the single empty tuple.
            let mut out = BTreeSet::new();
            out.insert(Vec::new());
            return (out, stats);
        }
        let free: BTreeSet<VarId> = self.query.free_vars().iter().copied().collect();
        // Bottom-up joins with projection onto (free ∪ connector) vars.
        let mut partial: Vec<Option<FlatRelation>> = vec![None; self.groups.len()];
        for &u in &self.order {
            let mut acc = rels[u].clone();
            for &c in &self.children[u] {
                let child = partial[c].take().expect("children processed first");
                acc = acc.join(&child);
            }
            // Keep free variables plus variables shared with the parent.
            let keep: Vec<VarId> = acc
                .schema()
                .iter()
                .copied()
                .filter(|v| {
                    free.contains(v)
                        || self.join_tree.parent[u]
                            .map(|p| self.groups[p as usize].vars.binary_search(v).is_ok())
                            .unwrap_or(false)
                })
                .collect();
            partial[u] = Some(acc.project(&keep));
        }
        // Combine the roots (cartesian product across components).
        let mut result: Option<FlatRelation> = None;
        for r in self.join_tree.roots() {
            let rel = partial[r].take().expect("root processed");
            result = Some(match result {
                None => rel,
                Some(acc) => acc.join(&rel),
            });
        }
        let result = result.expect("at least one root");
        (result.rows_in_head_order(self.query.free_vars()), stats)
    }
}

/// Adopts a cached materialization into a plan's variable space: same
/// buffer content, this plan's column labels.
fn adopt(cached: &Arc<FlatRelation>, vars: &[VarId]) -> FlatRelation {
    cached.relabel(vars.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::naive::{eval_boolean_naive, eval_naive};
    use crate::parser::parse_cq;

    fn check_agrees(q: &str, d: &Structure) {
        let q = parse_cq(q).unwrap();
        let plan = AcyclicPlan::compile(&q).unwrap();
        assert_eq!(
            plan.eval(d),
            eval_naive(&q, d),
            "Yannakakis must agree with naive on {q}"
        );
        assert_eq!(plan.eval_boolean(d), eval_boolean_naive(&q, d));
        // And through a fresh cache, twice (cold then warm).
        let cache = MaterializationCache::new();
        let (cold, s1) = plan.eval_cached(d, Some(&cache));
        let (warm, s2) = plan.eval_cached(d, Some(&cache));
        assert_eq!(cold, eval_naive(&q, d), "cold cache run on {q}");
        assert_eq!(warm, cold, "warm cache run on {q}");
        // The cold run materializes at least once (same-key hyperedges
        // within one query may already hit); the warm run only hits.
        assert!(s1.misses > 0);
        assert_eq!(s2.misses, 0);
        assert_eq!(s2.hits, s1.hits + s1.misses);
    }

    #[test]
    fn cyclic_query_rejected() {
        let q = parse_cq("Q() :- E(x,y), E(y,z), E(z,x)").unwrap();
        assert!(AcyclicPlan::compile(&q).is_err());
    }

    #[test]
    fn path_queries_agree() {
        let d = Structure::digraph(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (1, 4), (4, 5), (5, 0)]);
        check_agrees("Q(x, w) :- E(x, y), E(y, z), E(z, w)", &d);
        check_agrees("Q() :- E(x, y), E(y, z)", &d);
        check_agrees("Q(y) :- E(x, y), E(y, z)", &d);
    }

    #[test]
    fn star_query() {
        let d = Structure::digraph(5, &[(0, 1), (0, 2), (0, 3), (3, 0)]);
        check_agrees("Q(x) :- E(x, a), E(x, b), E(b, x)", &d);
    }

    #[test]
    fn repeated_variable_atoms() {
        let d = Structure::digraph(3, &[(0, 0), (0, 1), (1, 2)]);
        check_agrees("Q(x) :- E(x, x), E(x, y)", &d);
    }

    #[test]
    fn multiple_atoms_same_varset() {
        // E(x,y) and E(y,x) share the variable set {x,y}: intersected.
        let d = Structure::digraph(4, &[(0, 1), (1, 0), (2, 3)]);
        check_agrees("Q(x) :- E(x, y), E(y, x)", &d);
    }

    #[test]
    fn disconnected_query() {
        let d = Structure::digraph(4, &[(0, 1), (2, 3)]);
        check_agrees("Q(x, u) :- E(x, y), E(u, v)", &d);
        check_agrees("Q() :- E(x, y), E(u, v)", &d);
    }

    #[test]
    fn higher_arity_acyclic() {
        use cqapx_structures::{StructureBuilder, Vocabulary};
        let v = Vocabulary::new(vec![("R", 3), ("S", 2)]);
        let r = v.rel("R").unwrap();
        let s = v.rel("S").unwrap();
        let mut b = StructureBuilder::new(v.clone(), 5);
        b.add(r, &[0, 1, 2])
            .add(r, &[1, 2, 3])
            .add(s, &[2, 4])
            .add(s, &[0, 1]);
        let d = b.finish();
        let q = crate::parser::parse_cq_with_vocab("Q(a, c) :- R(a, b, c), S(c, d)", &v).unwrap();
        let plan = AcyclicPlan::compile(&q).unwrap();
        assert_eq!(plan.eval(&d), eval_naive(&q, &d));
    }

    #[test]
    fn boolean_empty_answer() {
        let q = parse_cq("Q() :- E(x, y), E(y, z)").unwrap();
        let plan = AcyclicPlan::compile(&q).unwrap();
        let d = Structure::digraph(2, &[(0, 1)]);
        assert!(!plan.eval_boolean(&d));
        assert!(plan.eval(&d).is_empty());
    }

    #[test]
    fn full_reducer_prunes_dangling() {
        // Classic: path query where early matches dangle.
        let q = parse_cq("Q(a, d) :- E(a, b), E(b, c), E(c, d)").unwrap();
        let plan = AcyclicPlan::compile(&q).unwrap();
        // A long "comb" with dead ends.
        let d = Structure::digraph(7, &[(0, 1), (1, 2), (2, 3), (0, 4), (4, 5), (1, 6)]);
        assert_eq!(plan.eval(&d), eval_naive(&q, &d));
    }

    #[test]
    fn cache_shared_across_plans() {
        // Two different prepared queries over the same hyperedge shape
        // share the materialization.
        let d = Structure::digraph(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let p1 = AcyclicPlan::compile(&parse_cq("Q(x, z) :- E(x, y), E(y, z)").unwrap()).unwrap();
        let p2 = AcyclicPlan::compile(&parse_cq("Q(a) :- E(a, b)").unwrap()).unwrap();
        let cache = MaterializationCache::new();
        let (a1, s1) = p1.eval_cached(&d, Some(&cache));
        let (a2, s2) = p2.eval_cached(&d, Some(&cache));
        assert_eq!(a1.len(), 3);
        assert_eq!(a2.len(), 4);
        assert_eq!(s1.misses, 1); // E(x,y) and E(y,z) are one hyperedge key
        assert_eq!(s1.hits, 1);
        assert_eq!(s2.hits, 1); // p2's only hyperedge reuses p1's entry
        assert_eq!(s2.misses, 0);
    }
}
