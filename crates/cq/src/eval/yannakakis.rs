//! Yannakakis' algorithm for acyclic conjunctive queries.
//!
//! For acyclic `Q`, `ā ∈ Q(D)` is decidable in time `O(|D| · |Q|)`
//! (Yannakakis, VLDB'81) — the tractable class the paper's acyclic
//! approximations target. The pipeline:
//!
//! 1. group atoms by variable set and **materialize** one relation per
//!    distinct hyperedge of `H(Q)` (intersecting the atoms that share a
//!    variable set, honoring repeated variables like `R(x, x, y)`);
//! 2. build a **join tree** via GYO reduction;
//! 3. run the **full reducer**: semijoins leaves→root, then root→leaves;
//! 4. Boolean queries finish here (nonempty after reduction ⇔ true);
//!    queries with free variables run bottom-up **joins with projection**
//!    onto (free ∪ connector) variables, so intermediate results stay
//!    output-bounded.

use crate::ast::{ConjunctiveQuery, VarId};
use crate::eval::relation::VarRelation;
use cqapx_hypergraphs::{gyo, Hypergraph, JoinTree};
use cqapx_structures::{Element, Structure};
use std::collections::BTreeSet;
use std::fmt;

/// Error: the query is not acyclic, so no join tree exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotAcyclic;

impl fmt::Display for NotAcyclic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query is not acyclic: no join tree exists")
    }
}

impl std::error::Error for NotAcyclic {}

/// A compiled evaluation plan for an acyclic CQ.
///
/// # Examples
///
/// ```
/// use cqapx_cq::{eval::AcyclicPlan, parse_cq};
/// use cqapx_structures::Structure;
///
/// let q = parse_cq("Q(x, w) :- E(x, y), E(y, z), E(z, w)").unwrap();
/// let plan = AcyclicPlan::compile(&q).unwrap();
/// let d = Structure::digraph(4, &[(0, 1), (1, 2), (2, 3)]);
/// let answers = plan.eval(&d);
/// assert_eq!(answers.len(), 1);
/// assert!(answers.contains(&vec![0, 3]));
/// ```
#[derive(Debug, Clone)]
pub struct AcyclicPlan {
    query: ConjunctiveQuery,
    /// Distinct variable sets (hyperedges), each with the atoms using it.
    groups: Vec<Group>,
    join_tree: JoinTree,
}

#[derive(Debug, Clone)]
struct Group {
    /// Sorted distinct variables of the hyperedge.
    vars: Vec<VarId>,
    /// Indices of the query atoms whose variable set equals `vars`.
    atoms: Vec<usize>,
}

/// Disjoint `(&mut xs[a], &xs[b])` access for `a ≠ b`: the borrow split
/// the full reducer needs to semijoin one tree node against another
/// without cloning either relation.
fn pair_mut<T>(xs: &mut [T], a: usize, b: usize) -> (&mut T, &T) {
    debug_assert_ne!(a, b, "semijoin target and source must differ");
    if a < b {
        let (lo, hi) = xs.split_at_mut(b);
        (&mut lo[a], &hi[0])
    } else {
        let (lo, hi) = xs.split_at_mut(a);
        (&mut hi[0], &lo[b])
    }
}

impl AcyclicPlan {
    /// Compiles a plan; fails when the query hypergraph is cyclic.
    pub fn compile(query: &ConjunctiveQuery) -> Result<AcyclicPlan, NotAcyclic> {
        // Group atoms by variable set, preserving first-occurrence order so
        // that group indices equal hyperedge indices of `Hypergraph` (which
        // deduplicates in insertion order too).
        let mut groups: Vec<Group> = Vec::new();
        for (ai, atom) in query.atoms().iter().enumerate() {
            let mut vars: Vec<VarId> = atom.args.clone();
            vars.sort_unstable();
            vars.dedup();
            match groups.iter_mut().find(|g| g.vars == vars) {
                Some(g) => g.atoms.push(ai),
                None => groups.push(Group {
                    vars,
                    atoms: vec![ai],
                }),
            }
        }
        let mut h = Hypergraph::new(query.var_count());
        for g in &groups {
            h.add_edge(&g.vars);
        }
        debug_assert_eq!(h.edge_count(), groups.len());
        let join_tree = gyo::gyo_reduce(&h).join_tree.ok_or(NotAcyclic)?;
        Ok(AcyclicPlan {
            query: query.clone(),
            groups,
            join_tree,
        })
    }

    /// The underlying query.
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    /// Materializes the relation of one hyperedge against a database.
    fn materialize(&self, gi: usize, d: &Structure) -> VarRelation {
        let g = &self.groups[gi];
        let mut rel: Option<VarRelation> = None;
        for &ai in &g.atoms {
            let atom = &self.query.atoms()[ai];
            let mut rows = std::collections::HashSet::new();
            'tuples: for t in d.tuples(atom.rel) {
                // Bind variables left to right; reject inconsistent
                // repetitions (e.g. R(x, x, y) against (1, 2, 3)).
                let mut binding: Vec<Option<Element>> = vec![None; self.query.var_count()];
                for (&v, &val) in atom.args.iter().zip(t.iter()) {
                    match binding[v as usize] {
                        None => binding[v as usize] = Some(val),
                        Some(prev) if prev == val => {}
                        Some(_) => continue 'tuples,
                    }
                }
                let row: Vec<Element> = g
                    .vars
                    .iter()
                    .map(|&v| binding[v as usize].expect("group var bound"))
                    .collect();
                rows.insert(row);
            }
            let atom_rel = VarRelation {
                schema: g.vars.clone(),
                rows,
            };
            rel = Some(match rel {
                None => atom_rel,
                Some(mut acc) => {
                    // Same schema: plain intersection.
                    acc.rows.retain(|r| atom_rel.rows.contains(r));
                    acc
                }
            });
        }
        rel.expect("groups are nonempty")
    }

    /// Runs the semijoin full reducer in place. Returns `false` when some
    /// relation became empty (the query answer is empty).
    fn full_reduce(&self, rels: &mut [VarRelation]) -> bool {
        let order = self.join_tree.bottom_up_order();
        // Leaves → root.
        for &u in &order {
            if let Some(p) = self.join_tree.parent[u] {
                let (target, source) = pair_mut(rels, p as usize, u);
                target.semijoin(source);
            }
            if rels[u].is_empty() {
                return false;
            }
        }
        // Root → leaves.
        for &u in order.iter().rev() {
            if let Some(p) = self.join_tree.parent[u] {
                let (target, source) = pair_mut(rels, u, p as usize);
                target.semijoin(source);
                if target.is_empty() {
                    return false;
                }
            }
        }
        true
    }

    /// Boolean evaluation: `Q(D) ≠ ∅`.
    pub fn eval_boolean(&self, d: &Structure) -> bool {
        let mut rels: Vec<VarRelation> = (0..self.groups.len())
            .map(|gi| self.materialize(gi, d))
            .collect();
        self.full_reduce(&mut rels)
    }

    /// Full evaluation: the set of answer tuples in head order.
    pub fn eval(&self, d: &Structure) -> BTreeSet<Vec<Element>> {
        let mut rels: Vec<VarRelation> = (0..self.groups.len())
            .map(|gi| self.materialize(gi, d))
            .collect();
        if !self.full_reduce(&mut rels) {
            return BTreeSet::new();
        }
        if self.query.is_boolean() {
            // Nonempty after full reduction: the single empty tuple.
            let mut out = BTreeSet::new();
            out.insert(Vec::new());
            return out;
        }
        let free: BTreeSet<VarId> = self.query.free_vars().iter().copied().collect();
        // Bottom-up joins with projection onto (free ∪ connector) vars.
        let children = self.join_tree.children();
        let order = self.join_tree.bottom_up_order();
        let mut partial: Vec<Option<VarRelation>> = vec![None; self.groups.len()];
        for &u in &order {
            let mut acc = rels[u].clone();
            for &c in &children[u] {
                let child = partial[c].take().expect("children processed first");
                acc = acc.join(&child);
            }
            // Keep free variables plus variables shared with the parent.
            let keep: Vec<VarId> = acc
                .schema
                .iter()
                .copied()
                .filter(|v| {
                    free.contains(v)
                        || self.join_tree.parent[u]
                            .map(|p| self.groups[p as usize].vars.contains(v))
                            .unwrap_or(false)
                })
                .collect();
            partial[u] = Some(acc.project(&keep));
        }
        // Combine the roots (cartesian product across components).
        let mut result: Option<VarRelation> = None;
        for r in self.join_tree.roots() {
            let rel = partial[r].take().expect("root processed");
            result = Some(match result {
                None => rel,
                Some(acc) => acc.join(&rel),
            });
        }
        let result = result.expect("at least one root");
        result.rows_in_head_order(self.query.free_vars())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::naive::{eval_boolean_naive, eval_naive};
    use crate::parser::parse_cq;

    fn check_agrees(q: &str, d: &Structure) {
        let q = parse_cq(q).unwrap();
        let plan = AcyclicPlan::compile(&q).unwrap();
        assert_eq!(
            plan.eval(d),
            eval_naive(&q, d),
            "Yannakakis must agree with naive on {q}"
        );
        assert_eq!(plan.eval_boolean(d), eval_boolean_naive(&q, d));
    }

    #[test]
    fn cyclic_query_rejected() {
        let q = parse_cq("Q() :- E(x,y), E(y,z), E(z,x)").unwrap();
        assert!(AcyclicPlan::compile(&q).is_err());
    }

    #[test]
    fn path_queries_agree() {
        let d = Structure::digraph(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (1, 4), (4, 5), (5, 0)]);
        check_agrees("Q(x, w) :- E(x, y), E(y, z), E(z, w)", &d);
        check_agrees("Q() :- E(x, y), E(y, z)", &d);
        check_agrees("Q(y) :- E(x, y), E(y, z)", &d);
    }

    #[test]
    fn star_query() {
        let d = Structure::digraph(5, &[(0, 1), (0, 2), (0, 3), (3, 0)]);
        check_agrees("Q(x) :- E(x, a), E(x, b), E(b, x)", &d);
    }

    #[test]
    fn repeated_variable_atoms() {
        let d = Structure::digraph(3, &[(0, 0), (0, 1), (1, 2)]);
        check_agrees("Q(x) :- E(x, x), E(x, y)", &d);
    }

    #[test]
    fn multiple_atoms_same_varset() {
        // E(x,y) and E(y,x) share the variable set {x,y}: intersected.
        let d = Structure::digraph(4, &[(0, 1), (1, 0), (2, 3)]);
        check_agrees("Q(x) :- E(x, y), E(y, x)", &d);
    }

    #[test]
    fn disconnected_query() {
        let d = Structure::digraph(4, &[(0, 1), (2, 3)]);
        check_agrees("Q(x, u) :- E(x, y), E(u, v)", &d);
        check_agrees("Q() :- E(x, y), E(u, v)", &d);
    }

    #[test]
    fn higher_arity_acyclic() {
        use cqapx_structures::{StructureBuilder, Vocabulary};
        let v = Vocabulary::new(vec![("R", 3), ("S", 2)]);
        let r = v.rel("R").unwrap();
        let s = v.rel("S").unwrap();
        let mut b = StructureBuilder::new(v.clone(), 5);
        b.add(r, &[0, 1, 2])
            .add(r, &[1, 2, 3])
            .add(s, &[2, 4])
            .add(s, &[0, 1]);
        let d = b.finish();
        let q = crate::parser::parse_cq_with_vocab("Q(a, c) :- R(a, b, c), S(c, d)", &v).unwrap();
        let plan = AcyclicPlan::compile(&q).unwrap();
        assert_eq!(plan.eval(&d), eval_naive(&q, &d));
    }

    #[test]
    fn boolean_empty_answer() {
        let q = parse_cq("Q() :- E(x, y), E(y, z)").unwrap();
        let plan = AcyclicPlan::compile(&q).unwrap();
        let d = Structure::digraph(2, &[(0, 1)]);
        assert!(!plan.eval_boolean(&d));
        assert!(plan.eval(&d).is_empty());
    }

    #[test]
    fn full_reducer_prunes_dangling() {
        // Classic: path query where early matches dangle.
        let q = parse_cq("Q(a, d) :- E(a, b), E(b, c), E(c, d)").unwrap();
        let plan = AcyclicPlan::compile(&q).unwrap();
        // A long "comb" with dead ends.
        let d = Structure::digraph(7, &[(0, 1), (1, 2), (2, 3), (0, 4), (4, 5), (1, 6)]);
        assert_eq!(plan.eval(&d), eval_naive(&q, &d));
    }
}
