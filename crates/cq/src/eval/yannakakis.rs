//! Yannakakis' algorithm for acyclic conjunctive queries, compiled to
//! the shared plan IR over the columnar join kernel.
//!
//! For acyclic `Q`, `ā ∈ Q(D)` is decidable in time `O(|D| · |Q|)`
//! (Yannakakis, VLDB'81) — the tractable class the paper's acyclic
//! approximations target. Compilation:
//!
//! 1. group atoms by variable set — one hyperedge of `H(Q)` per group,
//!    each a single-part [`MatSource`] with its cache key;
//! 2. build a **join tree** via GYO reduction;
//! 3. hand the tree to [`compile_tree`], which emits the IR program:
//!    materializations, the full-reducer semijoin sweeps (leaves→root→
//!    leaves, with emptiness assertions), and — for queries with free
//!    variables — the bottom-up joins projected onto (free ∪ connector)
//!    variables.
//!
//! Everything shape-dependent is computed once in
//! [`AcyclicPlan::compile`]; evaluation is one interpreter pass of
//! [`PlanIr`] over flat row buffers. Because the join tree's node
//! labels *are* the hyperedge schemas, surviving the reducer prefix
//! alone decides Boolean queries (`PlanIr::reduction_decides`).
//!
//! [`compile_tree`]: crate::eval::ir::compile_tree

use crate::ast::{Atom, ConjunctiveQuery, VarId};
use crate::eval::flat::{MatCacheStats, MaterializationCache};
use crate::eval::ir::{compile_tree, MatSource, NodeSpec, PlanIr};
use cqapx_hypergraphs::{gyo, Hypergraph};
use cqapx_par::ThreadBudget;
use cqapx_structures::{Element, Structure};
use std::collections::BTreeSet;
use std::fmt;

/// Error: the query is not acyclic, so no join tree exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotAcyclic;

impl fmt::Display for NotAcyclic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query is not acyclic: no join tree exists")
    }
}

impl std::error::Error for NotAcyclic {}

/// A compiled evaluation plan for an acyclic CQ.
///
/// # Examples
///
/// ```
/// use cqapx_cq::{eval::AcyclicPlan, parse_cq};
/// use cqapx_structures::Structure;
///
/// let q = parse_cq("Q(x, w) :- E(x, y), E(y, z), E(z, w)").unwrap();
/// let plan = AcyclicPlan::compile(&q).unwrap();
/// let d = Structure::digraph(4, &[(0, 1), (1, 2), (2, 3)]);
/// let answers = plan.eval(&d);
/// assert_eq!(answers.len(), 1);
/// assert!(answers.contains(&vec![0, 3]));
/// ```
#[derive(Debug, Clone)]
pub struct AcyclicPlan {
    query: ConjunctiveQuery,
    ir: PlanIr,
}

impl AcyclicPlan {
    /// Compiles a plan; fails when the query hypergraph is cyclic.
    pub fn compile(query: &ConjunctiveQuery) -> Result<AcyclicPlan, NotAcyclic> {
        // Group atoms by variable set, preserving first-occurrence order so
        // that group indices equal hyperedge indices of `Hypergraph` (which
        // deduplicates in insertion order too).
        let mut grouped: Vec<(Vec<VarId>, Vec<usize>)> = Vec::new();
        for (ai, atom) in query.atoms().iter().enumerate() {
            let mut vars: Vec<VarId> = atom.args.clone();
            vars.sort_unstable();
            vars.dedup();
            match grouped.iter_mut().find(|(v, _)| *v == vars) {
                Some((_, atoms)) => atoms.push(ai),
                None => grouped.push((vars, vec![ai])),
            }
        }
        let mut h = Hypergraph::new(query.var_count());
        for (vars, _) in &grouped {
            h.add_edge(vars);
        }
        debug_assert_eq!(h.edge_count(), grouped.len());
        let join_tree = gyo::gyo_reduce(&h).join_tree.ok_or(NotAcyclic)?;

        let nodes: Vec<NodeSpec> = grouped
            .into_iter()
            .map(|(_, atoms)| {
                let atom_refs: Vec<&Atom> = atoms.iter().map(|&ai| &query.atoms()[ai]).collect();
                let source = MatSource::from_groups(&[atom_refs]);
                NodeSpec {
                    label: source.schema.clone(),
                    source,
                }
            })
            .collect();

        let ir = compile_tree(
            &nodes,
            &join_tree.parent_indices(),
            &join_tree.bottom_up_order(),
            query.free_vars(),
        );
        Ok(AcyclicPlan {
            query: query.clone(),
            ir,
        })
    }

    /// The underlying query.
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    /// The compiled IR program.
    pub fn ir(&self) -> &PlanIr {
        &self.ir
    }

    /// Boolean evaluation: `Q(D) ≠ ∅`.
    pub fn eval_boolean(&self, d: &Structure) -> bool {
        self.eval_boolean_cached(d, None).0
    }

    /// Boolean evaluation through an optional per-database
    /// materialization cache; also reports the cache outcome.
    pub fn eval_boolean_cached(
        &self,
        d: &Structure,
        cache: Option<&MaterializationCache>,
    ) -> (bool, MatCacheStats) {
        self.eval_boolean_cached_budget(d, cache, ThreadBudget::shared())
    }

    /// [`AcyclicPlan::eval_boolean_cached`] under an explicit thread
    /// budget for intra-query parallelism.
    pub fn eval_boolean_cached_budget(
        &self,
        d: &Structure,
        cache: Option<&MaterializationCache>,
        budget: &ThreadBudget,
    ) -> (bool, MatCacheStats) {
        self.ir.run_boolean_budget(d, cache, budget)
    }

    /// Full evaluation: the set of answer tuples in head order.
    pub fn eval(&self, d: &Structure) -> BTreeSet<Vec<Element>> {
        self.eval_cached(d, None).0
    }

    /// Full evaluation through an optional per-database materialization
    /// cache; also reports the cache outcome.
    pub fn eval_cached(
        &self,
        d: &Structure,
        cache: Option<&MaterializationCache>,
    ) -> (BTreeSet<Vec<Element>>, MatCacheStats) {
        self.eval_cached_budget(d, cache, ThreadBudget::shared())
    }

    /// [`AcyclicPlan::eval_cached`] under an explicit thread budget:
    /// parallel answers are identical to sequential ones — the budget
    /// only decides how many workers the kernels may claim.
    pub fn eval_cached_budget(
        &self,
        d: &Structure,
        cache: Option<&MaterializationCache>,
        budget: &ThreadBudget,
    ) -> (BTreeSet<Vec<Element>>, MatCacheStats) {
        self.eval_cached_budget_profiled(d, cache, budget, None)
    }

    /// [`AcyclicPlan::eval_cached_budget`], optionally collecting a
    /// per-operator [`EvalProfile`](crate::eval::EvalProfile) (`None`
    /// keeps the hot path at one branch per operator).
    pub fn eval_cached_budget_profiled(
        &self,
        d: &Structure,
        cache: Option<&MaterializationCache>,
        budget: &ThreadBudget,
        profile: Option<&mut crate::eval::EvalProfile>,
    ) -> (BTreeSet<Vec<Element>>, MatCacheStats) {
        if self.query.is_boolean() {
            let (nonempty, stats) = self
                .ir
                .run_boolean_budget_profiled(d, cache, budget, profile);
            let mut out = BTreeSet::new();
            if nonempty {
                // Nonempty after full reduction: the single empty tuple.
                out.insert(Vec::new());
            }
            return (out, stats);
        }
        let (result, stats) = self.ir.run_budget_profiled(d, cache, budget, profile);
        match result {
            None => (BTreeSet::new(), stats),
            // Plan intermediates hold dense domain codes; the answer
            // boundary decodes them back to the structure's elements.
            Some(rel) => (
                rel.rows_in_head_order_decoded(self.query.free_vars(), d.domain_dict()),
                stats,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::naive::{eval_boolean_naive, eval_naive};
    use crate::parser::parse_cq;

    fn check_agrees(q: &str, d: &Structure) {
        let q = parse_cq(q).unwrap();
        let plan = AcyclicPlan::compile(&q).unwrap();
        assert_eq!(
            plan.eval(d),
            eval_naive(&q, d),
            "Yannakakis must agree with naive on {q}"
        );
        assert_eq!(plan.eval_boolean(d), eval_boolean_naive(&q, d));
        // And through a fresh cache, twice (cold then warm).
        let cache = MaterializationCache::new();
        let (cold, s1) = plan.eval_cached(d, Some(&cache));
        let (warm, s2) = plan.eval_cached(d, Some(&cache));
        assert_eq!(cold, eval_naive(&q, d), "cold cache run on {q}");
        assert_eq!(warm, cold, "warm cache run on {q}");
        // The cold run materializes at least once (same-key hyperedges
        // within one query may already hit); the warm run only hits.
        assert!(s1.misses > 0);
        assert_eq!(s2.misses, 0);
        assert_eq!(s2.hits, s1.hits + s1.misses);
    }

    #[test]
    fn cyclic_query_rejected() {
        let q = parse_cq("Q() :- E(x,y), E(y,z), E(z,x)").unwrap();
        assert!(AcyclicPlan::compile(&q).is_err());
    }

    #[test]
    fn join_tree_ir_decides_boolean_by_reduction() {
        let q = parse_cq("Q() :- E(x, y), E(y, z)").unwrap();
        let plan = AcyclicPlan::compile(&q).unwrap();
        assert!(plan.ir().reduction_decides());
    }

    /// A `reduction_decides` Boolean plan collapses its semijoin sweep
    /// to bitmap intersections under `CQAPX_BITMAP=on`; the decision,
    /// the naive reference, and the cache traffic must all be identical
    /// to the probe sweep — on both satisfied and unsatisfied
    /// instances, cold and warm.
    #[test]
    fn bitmap_boolean_sweep_matches_probe_sweep() {
        use crate::eval::flat::{knob_guard, reset_bitmap_override, set_bitmap_mode, BitmapMode};
        let _g = knob_guard();
        let mut edges = Vec::new();
        for u in 0..40u32 {
            edges.push((u, (u * 7 + 3) % 40));
            edges.push((u, (u * 13 + 1) % 40));
        }
        let yes = Structure::digraph(40, &edges);
        let no = Structure::digraph(4, &[(0, 1), (2, 3)]);
        for qs in [
            "Q() :- E(x, y), E(y, z), E(z, w)",
            "Q() :- E(h, a), E(h, b), E(h, c)",
            "Q() :- E(x, y), E(y, y)",
        ] {
            let q = parse_cq(qs).unwrap();
            let plan = AcyclicPlan::compile(&q).unwrap();
            assert!(plan.ir().reduction_decides(), "{qs} must be sweep-shaped");
            for d in [&yes, &no] {
                let naive = eval_boolean_naive(&q, d);
                set_bitmap_mode(BitmapMode::On);
                let cache_on = MaterializationCache::new();
                let (on_cold, s_on) = plan.eval_boolean_cached(d, Some(&cache_on));
                let (on_warm, _) = plan.eval_boolean_cached(d, Some(&cache_on));
                set_bitmap_mode(BitmapMode::Off);
                let cache_off = MaterializationCache::new();
                let (off_cold, s_off) = plan.eval_boolean_cached(d, Some(&cache_off));
                reset_bitmap_override();
                assert_eq!(on_cold, naive, "bitmap sweep wrong on {qs}");
                assert_eq!(on_warm, naive, "warm bitmap sweep wrong on {qs}");
                assert_eq!(off_cold, naive, "probe sweep wrong on {qs}");
                assert_eq!(
                    (s_on.hits, s_on.misses),
                    (s_off.hits, s_off.misses),
                    "cache traffic must not depend on the kernel ({qs})"
                );
            }
        }
    }

    /// Forcing the packed kernels onto the acyclic tier — the reducer
    /// semijoins and the final projection dedup — must leave answers,
    /// the naive reference, and cache traffic untouched.
    #[test]
    fn packed_kernels_identical_on_acyclic_tier() {
        use crate::eval::flat::{knob_guard, reset_packed_override, set_packed_mode, PackedMode};
        let _g = knob_guard();
        let mut edges = Vec::new();
        for u in 0..40u32 {
            edges.push((u, (u * 7 + 3) % 40));
            edges.push((u, (u * 13 + 1) % 40));
        }
        let d = Structure::digraph(40, &edges);
        for qs in [
            "Q(x, w) :- E(x, y), E(y, z), E(z, w)",
            "Q(x, y) :- E(x, y), E(y, z)",
            "Q() :- E(x, y), E(y, z), E(z, w)",
        ] {
            let q = parse_cq(qs).unwrap();
            let plan = AcyclicPlan::compile(&q).unwrap();
            let naive = eval_naive(&q, &d);
            set_packed_mode(PackedMode::On);
            let cache_on = MaterializationCache::new();
            let (rows_on, s_on) = plan.eval_cached(&d, Some(&cache_on));
            let bool_on = plan.eval_boolean_cached(&d, Some(&cache_on)).0;
            set_packed_mode(PackedMode::Off);
            let cache_off = MaterializationCache::new();
            let (rows_off, s_off) = plan.eval_cached(&d, Some(&cache_off));
            reset_packed_override();
            assert_eq!(rows_on, rows_off, "answers differ on {qs}");
            assert_eq!(rows_on, naive, "naive disagrees on {qs}");
            assert_eq!(bool_on, !naive.is_empty(), "boolean wrong on {qs}");
            assert_eq!(
                (s_on.hits, s_on.misses),
                (s_off.hits, s_off.misses),
                "cache traffic must not depend on the kernel ({qs})"
            );
        }
    }

    #[test]
    fn path_queries_agree() {
        let d = Structure::digraph(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (1, 4), (4, 5), (5, 0)]);
        check_agrees("Q(x, w) :- E(x, y), E(y, z), E(z, w)", &d);
        check_agrees("Q() :- E(x, y), E(y, z)", &d);
        check_agrees("Q(y) :- E(x, y), E(y, z)", &d);
    }

    #[test]
    fn star_query() {
        let d = Structure::digraph(5, &[(0, 1), (0, 2), (0, 3), (3, 0)]);
        check_agrees("Q(x) :- E(x, a), E(x, b), E(b, x)", &d);
    }

    #[test]
    fn repeated_variable_atoms() {
        let d = Structure::digraph(3, &[(0, 0), (0, 1), (1, 2)]);
        check_agrees("Q(x) :- E(x, x), E(x, y)", &d);
    }

    #[test]
    fn multiple_atoms_same_varset() {
        // E(x,y) and E(y,x) share the variable set {x,y}: intersected.
        let d = Structure::digraph(4, &[(0, 1), (1, 0), (2, 3)]);
        check_agrees("Q(x) :- E(x, y), E(y, x)", &d);
    }

    #[test]
    fn disconnected_query() {
        let d = Structure::digraph(4, &[(0, 1), (2, 3)]);
        check_agrees("Q(x, u) :- E(x, y), E(u, v)", &d);
        check_agrees("Q() :- E(x, y), E(u, v)", &d);
    }

    #[test]
    fn higher_arity_acyclic() {
        use cqapx_structures::{StructureBuilder, Vocabulary};
        let v = Vocabulary::new(vec![("R", 3), ("S", 2)]);
        let r = v.rel("R").unwrap();
        let s = v.rel("S").unwrap();
        let mut b = StructureBuilder::new(v.clone(), 5);
        b.add(r, &[0, 1, 2])
            .add(r, &[1, 2, 3])
            .add(s, &[2, 4])
            .add(s, &[0, 1]);
        let d = b.finish();
        let q = crate::parser::parse_cq_with_vocab("Q(a, c) :- R(a, b, c), S(c, d)", &v).unwrap();
        let plan = AcyclicPlan::compile(&q).unwrap();
        assert_eq!(plan.eval(&d), eval_naive(&q, &d));
    }

    #[test]
    fn boolean_empty_answer() {
        let q = parse_cq("Q() :- E(x, y), E(y, z)").unwrap();
        let plan = AcyclicPlan::compile(&q).unwrap();
        let d = Structure::digraph(2, &[(0, 1)]);
        assert!(!plan.eval_boolean(&d));
        assert!(plan.eval(&d).is_empty());
    }

    #[test]
    fn full_reducer_prunes_dangling() {
        // Classic: path query where early matches dangle.
        let q = parse_cq("Q(a, d) :- E(a, b), E(b, c), E(c, d)").unwrap();
        let plan = AcyclicPlan::compile(&q).unwrap();
        // A long "comb" with dead ends.
        let d = Structure::digraph(7, &[(0, 1), (1, 2), (2, 3), (0, 4), (4, 5), (1, 6)]);
        assert_eq!(plan.eval(&d), eval_naive(&q, &d));
    }

    #[test]
    fn cache_shared_across_plans() {
        // Two different prepared queries over the same hyperedge shape
        // share the materialization.
        let d = Structure::digraph(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let p1 = AcyclicPlan::compile(&parse_cq("Q(x, z) :- E(x, y), E(y, z)").unwrap()).unwrap();
        let p2 = AcyclicPlan::compile(&parse_cq("Q(a) :- E(a, b)").unwrap()).unwrap();
        let cache = MaterializationCache::new();
        let (a1, s1) = p1.eval_cached(&d, Some(&cache));
        let (a2, s2) = p2.eval_cached(&d, Some(&cache));
        assert_eq!(a1.len(), 3);
        assert_eq!(a2.len(), 4);
        assert_eq!(s1.misses, 1); // E(x,y) and E(y,z) are one hyperedge key
        assert_eq!(s1.hits, 1);
        assert_eq!(s2.hits, 1); // p2's only hyperedge reuses p1's entry
        assert_eq!(s2.misses, 0);
    }
}
