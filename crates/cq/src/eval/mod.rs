//! Query evaluation: naive backtracking and Yannakakis for acyclic CQs.

pub mod evaluator;
pub mod naive;
pub mod relation;
pub mod yannakakis;

pub use evaluator::{Evaluator, NaiveEvaluator};
pub use naive::{eval_boolean_naive, eval_naive, NaivePlan};
pub use yannakakis::{AcyclicPlan, NotAcyclic};
