//! Query evaluation: naive backtracking, Yannakakis for acyclic CQs,
//! and the bounded-treewidth decomposition tier — the latter two
//! compiled to the shared physical plan IR of [`ir`], executing on the
//! columnar join kernel of [`flat`].

pub mod decomposed;
pub mod evaluator;
pub mod flat;
pub mod ir;
pub mod naive;
pub mod yannakakis;

pub use decomposed::{BagPart, BagSummary, DecomposedPlan, NotDecomposable};
pub use evaluator::{Evaluator, NaiveEvaluator};
pub use flat::{
    bitmap_stats, packed_stats, set_bitmap_mode, set_direct_index_enabled, set_packed_mode,
    AtomBinder, BitmapMode, BitmapStats, FlatRelation, MatCacheStats, MatKey, MaterializationCache,
    PackedMode, PackedStats,
};
pub use ir::{
    env_bag_strategy, resolve_bag_strategy, resolve_bag_strategy_observed, EvalProfile, MatPart,
    MatSource, MatStrategy, NodeSpec, Op, OpProfile, PlanIr, Slot,
};
pub use naive::{eval_boolean_naive, eval_naive, NaivePlan};
pub use yannakakis::{AcyclicPlan, NotAcyclic};
