//! Query evaluation: naive backtracking and Yannakakis for acyclic CQs.

pub mod naive;
pub mod relation;
pub mod yannakakis;

pub use naive::{eval_boolean_naive, eval_naive};
pub use yannakakis::{AcyclicPlan, NotAcyclic};
