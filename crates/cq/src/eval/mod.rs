//! Query evaluation: naive backtracking and Yannakakis for acyclic CQs,
//! both running on the columnar join kernel of [`flat`].

pub mod evaluator;
pub mod flat;
pub mod naive;
pub mod yannakakis;

pub use evaluator::{Evaluator, NaiveEvaluator};
pub use flat::{AtomBinder, FlatRelation, MatCacheStats, MatKey, MaterializationCache};
pub use naive::{eval_boolean_naive, eval_naive, NaivePlan};
pub use yannakakis::{AcyclicPlan, NotAcyclic};
