//! The [`Evaluator`] trait: one interface over the naive backtracking
//! join and compiled Yannakakis plans, so engines and planners can pick a
//! strategy per (query, database) pair and swap it without touching call
//! sites.

use crate::ast::ConjunctiveQuery;
use crate::eval::decomposed::DecomposedPlan;
use crate::eval::flat::{MatCacheStats, MaterializationCache};
use crate::eval::naive::NaivePlan;
use crate::eval::yannakakis::AcyclicPlan;
use cqapx_par::ThreadBudget;
use cqapx_structures::{Element, Structure};
use std::collections::BTreeSet;

/// A prepared evaluation strategy for one conjunctive query.
///
/// Implementations must agree on semantics: `eval` returns exactly
/// `Q(D)` in head order, and `eval_boolean` is `!eval(d).is_empty()`
/// (possibly computed faster).
pub trait Evaluator {
    /// The query this evaluator answers.
    fn query(&self) -> &ConjunctiveQuery;

    /// Evaluates `Q(D)`: the full answer set, tuples in head order.
    fn eval(&self, d: &Structure) -> BTreeSet<Vec<Element>>;

    /// Decides `Q(D) ≠ ∅`.
    fn eval_boolean(&self, d: &Structure) -> bool {
        !self.eval(d).is_empty()
    }

    /// Evaluates `Q(D)` through a per-database [`MaterializationCache`]
    /// under an explicit [`ThreadBudget`], reporting the cache outcome.
    /// Strategies that materialize hyperedge relations (Yannakakis, the
    /// decomposed tier) override this to share scans across queries and
    /// fan work out over the budget's workers; the default ignores
    /// both — the budget is a *limit*, never an obligation.
    fn eval_with_cache(
        &self,
        d: &Structure,
        cache: &MaterializationCache,
        budget: &ThreadBudget,
    ) -> (BTreeSet<Vec<Element>>, MatCacheStats) {
        let _ = (cache, budget);
        (self.eval(d), MatCacheStats::default())
    }

    /// A short display name for plans/stats, e.g. `"naive"`.
    fn strategy_name(&self) -> &'static str;
}

/// The backtracking-join evaluator; works for every CQ. The tableau's
/// hom-solver is compiled once at construction (see [`NaivePlan`]), so
/// repeated evaluations pay only for the search.
#[derive(Debug, Clone)]
pub struct NaiveEvaluator {
    plan: NaivePlan,
}

impl NaiveEvaluator {
    /// Compiles a query for repeated naive evaluation.
    pub fn new(query: ConjunctiveQuery) -> Self {
        NaiveEvaluator {
            plan: NaivePlan::compile(query),
        }
    }
}

impl Evaluator for NaiveEvaluator {
    fn query(&self) -> &ConjunctiveQuery {
        self.plan.query()
    }

    fn eval(&self, d: &Structure) -> BTreeSet<Vec<Element>> {
        self.plan.eval(d)
    }

    fn eval_boolean(&self, d: &Structure) -> bool {
        self.plan.eval_boolean(d)
    }

    fn strategy_name(&self) -> &'static str {
        "naive"
    }
}

impl Evaluator for AcyclicPlan {
    fn query(&self) -> &ConjunctiveQuery {
        AcyclicPlan::query(self)
    }

    fn eval(&self, d: &Structure) -> BTreeSet<Vec<Element>> {
        AcyclicPlan::eval(self, d)
    }

    fn eval_boolean(&self, d: &Structure) -> bool {
        AcyclicPlan::eval_boolean(self, d)
    }

    fn eval_with_cache(
        &self,
        d: &Structure,
        cache: &MaterializationCache,
        budget: &ThreadBudget,
    ) -> (BTreeSet<Vec<Element>>, MatCacheStats) {
        AcyclicPlan::eval_cached_budget(self, d, Some(cache), budget)
    }

    fn strategy_name(&self) -> &'static str {
        "yannakakis"
    }
}

impl Evaluator for DecomposedPlan {
    fn query(&self) -> &ConjunctiveQuery {
        DecomposedPlan::query(self)
    }

    fn eval(&self, d: &Structure) -> BTreeSet<Vec<Element>> {
        DecomposedPlan::eval(self, d)
    }

    fn eval_boolean(&self, d: &Structure) -> bool {
        DecomposedPlan::eval_boolean(self, d)
    }

    fn eval_with_cache(
        &self,
        d: &Structure,
        cache: &MaterializationCache,
        budget: &ThreadBudget,
    ) -> (BTreeSet<Vec<Element>>, MatCacheStats) {
        DecomposedPlan::eval_cached_budget(self, d, Some(cache), budget)
    }

    fn strategy_name(&self) -> &'static str {
        "decomposed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_cq;

    #[test]
    fn trait_objects_agree() {
        let q = parse_cq("Q(x, z) :- E(x, y), E(y, z)").unwrap();
        let d = Structure::digraph(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (1, 4)]);
        let evals: Vec<Box<dyn Evaluator>> = vec![
            Box::new(NaiveEvaluator::new(q.clone())),
            Box::new(AcyclicPlan::compile(&q).unwrap()),
            Box::new(DecomposedPlan::compile(&q, 1).unwrap()),
        ];
        let expected = evals[0].eval(&d);
        assert!(!expected.is_empty());
        for e in &evals {
            assert_eq!(e.eval(&d), expected, "{}", e.strategy_name());
            assert!(e.eval_boolean(&d), "{}", e.strategy_name());
            assert_eq!(e.query().to_string(), q.to_string());
        }
    }

    #[test]
    fn default_boolean_matches_eval() {
        let q = parse_cq("Q() :- E(x, y), E(y, x)").unwrap();
        let yes = Structure::digraph(2, &[(0, 1), (1, 0)]);
        let no = Structure::digraph(2, &[(0, 1)]);
        let n = NaiveEvaluator::new(q);
        assert!(n.eval_boolean(&yes));
        assert!(!n.eval_boolean(&no));
    }
}
