//! Bounded-treewidth evaluation: Yannakakis over the bags of a tree
//! decomposition, compiled to the shared plan IR.
//!
//! The paper's `TW(k)` classes promise *tractable* evaluation for every
//! query whose graph `G(Q)` has treewidth at most `k` — including the
//! cyclic queries the acyclic tier must reject. The classic recipe:
//!
//! 1. compute a width-`≤ k` [`TreeDecomposition`] of `G(Q)`
//!    (deterministic, exact — `graphs::treewidth::treewidth_at_most`);
//! 2. assign every atom to **every bag containing its variables** (an
//!    atom's variables form a clique of `G(Q)`, so at least one bag
//!    covers it) and **materialize each bag** as the join of its atom
//!    groups — at most `adom^(k+1)` rows, the tractability bound. Bag
//!    materializations are [`MatKey`]-cached exactly like hyperedges
//!    and shared across plans (see [`MatSource`]);
//! 3. run the acyclic pipeline over the rooted bag tree: full-reducer
//!    semijoin sweeps as a prefilter, then bottom-up joins projected
//!    onto (free ∪ parent-bag) variables.
//!
//! Bags may contain *connector* variables none of their own atoms
//! constrain (a width-2 decomposition of the 6-cycle has them), so the
//! bag schemas can violate the running-intersection property that makes
//! the reducer complete on true join trees. The compiled program
//! therefore treats the sweeps as a sound prefilter only and lets the
//! join phase — whose projection keep-sets come from the *bags*, which
//! do satisfy running intersection — decide answers, Boolean ones
//! included. Intermediate relations stay inside `bag ∪ free` variables,
//! keeping evaluation polynomial for fixed `k`.
//!
//! [`TreeDecomposition`]: cqapx_graphs::treewidth::TreeDecomposition

use crate::ast::{Atom, ConjunctiveQuery, VarId};
use crate::classes::query_graph;
use crate::eval::flat::{MatCacheStats, MatKey, MaterializationCache};
use crate::eval::ir::{compile_tree, MatSource, MatStrategy, NodeSpec, PlanIr};
use cqapx_graphs::treewidth::treewidth_at_most;
use cqapx_par::ThreadBudget;
use cqapx_structures::{Element, RelId, Structure};
use std::collections::BTreeSet;
use std::fmt;

/// Error: the query graph has treewidth above the requested bound, so
/// no decomposition-based plan exists at that width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotDecomposable {
    /// The width bound that was requested.
    pub width_limit: usize,
}

impl fmt::Display for NotDecomposable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "query graph has treewidth above {}: no width-bounded decomposition exists",
            self.width_limit
        )
    }
}

impl std::error::Error for NotDecomposable {}

/// One part (sub-hyperedge) of a bag, exposed for the planner.
#[derive(Debug, Clone)]
pub struct BagPart {
    /// The relation of the part's first atom (for raw statistics).
    pub rel: RelId,
    /// The part's cache key (for real materialized cardinalities).
    pub key: MatKey,
    /// Sorted distinct variables of the part (for the strategy model).
    pub schema: Vec<VarId>,
}

/// Cost-model inputs of one bag, exposed for the planner: the bag size,
/// the compiled build strategy, and the parts (sub-hyperedges) joined
/// inside it.
#[derive(Debug, Clone)]
pub struct BagSummary {
    /// Number of variables in the bag (label, not just covered schema).
    pub label_size: usize,
    /// The bag source's compiled build strategy (plans compile with
    /// [`MatStrategy::Auto`]; see [`DecomposedPlan::with_bag_strategy`]).
    pub strategy: MatStrategy,
    /// The sub-hyperedges joined inside the bag.
    pub parts: Vec<BagPart>,
}

/// A compiled bounded-treewidth evaluation plan for a (typically
/// cyclic) CQ.
///
/// # Examples
///
/// ```
/// use cqapx_cq::{eval::DecomposedPlan, parse_cq};
/// use cqapx_structures::Structure;
///
/// let q = parse_cq("Q(x) :- E(x,y), E(y,z), E(z,x)").unwrap();
/// let plan = DecomposedPlan::compile(&q, 2).unwrap();
/// assert_eq!(plan.width(), 2);
/// let d = Structure::digraph(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
/// assert_eq!(plan.eval(&d).len(), 3); // x ∈ {0, 1, 2}
/// ```
#[derive(Debug, Clone)]
pub struct DecomposedPlan {
    query: ConjunctiveQuery,
    ir: PlanIr,
    width: usize,
    bags: Vec<BagSummary>,
}

impl DecomposedPlan {
    /// Compiles a plan from a width-`≤ k` tree decomposition of `G(Q)`;
    /// fails when the treewidth exceeds `k`.
    pub fn compile(query: &ConjunctiveQuery, k: usize) -> Result<DecomposedPlan, NotDecomposable> {
        let g = query_graph(query);
        let td = treewidth_at_most(&g, k).ok_or(NotDecomposable { width_limit: k })?;
        let width = td.width();
        let rooted = td.rooted();

        // Assign each atom to every bag covering its variable set, then
        // group the atoms of a bag by variable set (one MatPart each).
        let atom_vars: Vec<Vec<VarId>> = query
            .atoms()
            .iter()
            .map(|a| {
                let mut vars = a.args.clone();
                vars.sort_unstable();
                vars.dedup();
                vars
            })
            .collect();
        let mut covered = vec![false; query.atoms().len()];
        let mut nodes: Vec<NodeSpec> = Vec::with_capacity(td.bags.len());
        let mut bags: Vec<BagSummary> = Vec::with_capacity(td.bags.len());
        for bag in &td.bags {
            let mut groups: Vec<(Vec<VarId>, Vec<&Atom>)> = Vec::new();
            for (ai, atom) in query.atoms().iter().enumerate() {
                let vars = &atom_vars[ai];
                if vars.iter().all(|v| bag.binary_search(v).is_ok()) {
                    covered[ai] = true;
                    match groups.iter_mut().find(|(v, _)| v == vars) {
                        Some((_, atoms)) => atoms.push(atom),
                        None => groups.push((vars.clone(), vec![atom])),
                    }
                }
            }
            let group_refs: Vec<Vec<&Atom>> = groups.iter().map(|(_, a)| a.clone()).collect();
            let source = if group_refs.is_empty() {
                // A connector bag covering no atom: the "true" relation.
                MatSource {
                    schema: Vec::new(),
                    key: MatKey::of_group(&[], &[]),
                    parts: Vec::new(),
                    strategy: MatStrategy::Auto,
                }
            } else {
                MatSource::from_groups(&group_refs)
            };
            bags.push(BagSummary {
                label_size: bag.len(),
                strategy: source.strategy,
                parts: source
                    .parts
                    .iter()
                    .zip(&group_refs)
                    .map(|(p, g)| BagPart {
                        rel: g[0].rel,
                        key: p.key.clone(),
                        schema: p.schema.clone(),
                    })
                    .collect(),
            });
            nodes.push(NodeSpec {
                source,
                label: bag.clone(),
            });
        }
        assert!(
            covered.iter().all(|&c| c),
            "every atom's variable clique must lie in some bag"
        );

        let ir = compile_tree(&nodes, &rooted.parent, &rooted.order, query.free_vars());
        Ok(DecomposedPlan {
            query: query.clone(),
            ir,
            width,
            bags,
        })
    }

    /// Returns the plan with every bag forced to the given build
    /// strategy (compiled plans default to [`MatStrategy::Auto`]). The
    /// produced bag relations are identical under any strategy — only
    /// the build cost changes — so this is a test/bench/planner knob,
    /// not a semantic one.
    pub fn with_bag_strategy(mut self, strategy: MatStrategy) -> DecomposedPlan {
        self.ir.set_bag_strategy(strategy);
        for bag in &mut self.bags {
            bag.strategy = strategy;
        }
        self
    }

    /// The underlying query.
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    /// The width of the decomposition the plan evaluates over.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The compiled IR program.
    pub fn ir(&self) -> &PlanIr {
        &self.ir
    }

    /// Per-bag cost-model inputs (label sizes, part relations and cache
    /// keys), in bag order.
    pub fn bag_summaries(&self) -> &[BagSummary] {
        &self.bags
    }

    /// Boolean evaluation: `Q(D) ≠ ∅`.
    pub fn eval_boolean(&self, d: &Structure) -> bool {
        self.eval_boolean_cached(d, None).0
    }

    /// Boolean evaluation through an optional per-database
    /// materialization cache; also reports the cache outcome.
    pub fn eval_boolean_cached(
        &self,
        d: &Structure,
        cache: Option<&MaterializationCache>,
    ) -> (bool, MatCacheStats) {
        self.eval_boolean_cached_budget(d, cache, ThreadBudget::shared())
    }

    /// [`DecomposedPlan::eval_boolean_cached`] under an explicit thread
    /// budget for intra-query parallelism.
    pub fn eval_boolean_cached_budget(
        &self,
        d: &Structure,
        cache: Option<&MaterializationCache>,
        budget: &ThreadBudget,
    ) -> (bool, MatCacheStats) {
        self.ir.run_boolean_budget(d, cache, budget)
    }

    /// Full evaluation: the set of answer tuples in head order.
    pub fn eval(&self, d: &Structure) -> BTreeSet<Vec<Element>> {
        self.eval_cached(d, None).0
    }

    /// Full evaluation through an optional per-database materialization
    /// cache; also reports the cache outcome.
    pub fn eval_cached(
        &self,
        d: &Structure,
        cache: Option<&MaterializationCache>,
    ) -> (BTreeSet<Vec<Element>>, MatCacheStats) {
        self.eval_cached_budget(d, cache, ThreadBudget::shared())
    }

    /// [`DecomposedPlan::eval_cached`] under an explicit thread budget:
    /// independent bag materializations fan out over the budget's
    /// workers and the bag joins/sweeps run on morsel-parallel kernels;
    /// answers are identical to the sequential run.
    pub fn eval_cached_budget(
        &self,
        d: &Structure,
        cache: Option<&MaterializationCache>,
        budget: &ThreadBudget,
    ) -> (BTreeSet<Vec<Element>>, MatCacheStats) {
        self.eval_cached_budget_profiled(d, cache, budget, None)
    }

    /// [`DecomposedPlan::eval_cached_budget`], optionally collecting a
    /// per-operator [`EvalProfile`](crate::eval::EvalProfile).
    pub fn eval_cached_budget_profiled(
        &self,
        d: &Structure,
        cache: Option<&MaterializationCache>,
        budget: &ThreadBudget,
        profile: Option<&mut crate::eval::EvalProfile>,
    ) -> (BTreeSet<Vec<Element>>, MatCacheStats) {
        if self.query.is_boolean() {
            let (nonempty, stats) = self
                .ir
                .run_boolean_budget_profiled(d, cache, budget, profile);
            let mut out = BTreeSet::new();
            if nonempty {
                out.insert(Vec::new());
            }
            return (out, stats);
        }
        let (result, stats) = self.ir.run_budget_profiled(d, cache, budget, profile);
        match result {
            None => (BTreeSet::new(), stats),
            // Plan intermediates hold dense domain codes; the answer
            // boundary decodes them back to the structure's elements.
            Some(rel) => (
                rel.rows_in_head_order_decoded(self.query.free_vars(), d.domain_dict()),
                stats,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::naive::{eval_boolean_naive, eval_naive};
    use crate::parser::parse_cq;

    fn check_agrees(q: &str, k: usize, d: &Structure) {
        let q = parse_cq(q).unwrap();
        let plan = DecomposedPlan::compile(&q, k).unwrap();
        assert_eq!(
            plan.eval(d),
            eval_naive(&q, d),
            "decomposed must agree with naive on {q}"
        );
        assert_eq!(
            plan.eval_boolean(d),
            eval_boolean_naive(&q, d),
            "boolean disagrees on {q}"
        );
        // Through a fresh cache, cold then warm: identical answers, and
        // the warm run adopts every bag.
        let cache = MaterializationCache::new();
        let (cold, s1) = plan.eval_cached(d, Some(&cache));
        let (warm, s2) = plan.eval_cached(d, Some(&cache));
        assert_eq!(cold, eval_naive(&q, d), "cold cache run on {q}");
        assert_eq!(warm, cold, "warm cache run on {q}");
        assert!(s1.misses > 0, "cold run must materialize on {q}");
        assert_eq!(s2.misses, 0, "warm run must not re-materialize on {q}");
    }

    #[test]
    fn too_wide_rejected() {
        // K4 has treewidth 3.
        let q = parse_cq("Q() :- E(a,b), E(a,c), E(a,d), E(b,c), E(b,d), E(c,d)").unwrap();
        assert!(DecomposedPlan::compile(&q, 2).is_err());
        let plan = DecomposedPlan::compile(&q, 3).unwrap();
        assert_eq!(plan.width(), 3);
    }

    #[test]
    fn triangle_single_bag() {
        let d = Structure::digraph(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (4, 4)]);
        check_agrees("Q() :- E(x,y), E(y,z), E(z,x)", 2, &d);
        check_agrees("Q(x) :- E(x,y), E(y,z), E(z,x)", 2, &d);
        check_agrees("Q(x, y) :- E(x,y), E(y,z), E(z,x)", 2, &d);
    }

    #[test]
    fn six_cycle_connector_bags() {
        // The width-2 decomposition of C6 has bags whose schemas lose a
        // connector variable — the case where the semijoin sweeps alone
        // are incomplete and the join phase must decide.
        let q = "Q() :- E(a,p), E(p,b), E(b,q), E(q,c), E(c,r), E(r,a)";
        let with_c6 =
            Structure::digraph(7, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 6)]);
        check_agrees(q, 2, &with_c6);
        // A digraph with 6-paths but no directed 6-cycle: every bag
        // relation is nonempty yet the answer is empty — the sweeps
        // alone would say "true".
        let no_c6 =
            Structure::digraph(8, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7)]);
        check_agrees(q, 2, &no_c6);
        let plan = DecomposedPlan::compile(&parse_cq(q).unwrap(), 2).unwrap();
        assert!(
            !plan.ir().reduction_decides(),
            "C6 bags must defer Boolean answers to the join phase"
        );
    }

    /// The cyclic tier must give identical answers and cache traffic
    /// under both bitmap kernel settings — the bitmap path reaches it
    /// through the WCOJ lead intersection and the bag semijoin sweeps.
    #[test]
    fn bitmap_kernels_identical_on_cyclic_tier() {
        use crate::eval::flat::{knob_guard, reset_bitmap_override, set_bitmap_mode, BitmapMode};
        let _g = knob_guard();
        let q6 = "Q() :- E(a,p), E(p,b), E(b,q), E(q,c), E(c,r), E(r,a)";
        let qtri = "Q(x) :- E(x,y), E(y,z), E(z,x)";
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for u in 0..60u32 {
            edges.push((u, (u * 11 + 5) % 60));
            edges.push((u, (u * 17 + 2) % 60));
            edges.push(((u * 3) % 60, u));
        }
        let d = Structure::digraph(60, &edges);
        for (qs, strategy) in [
            (q6, MatStrategy::Binary),
            (q6, MatStrategy::Wcoj),
            (qtri, MatStrategy::Wcoj),
        ] {
            let q = parse_cq(qs).unwrap();
            let plan = DecomposedPlan::compile(&q, 2)
                .unwrap()
                .with_bag_strategy(strategy);
            set_bitmap_mode(BitmapMode::On);
            let cache_on = MaterializationCache::new();
            let (rows_on, s_on) = plan.eval_cached(&d, Some(&cache_on));
            let on_bool = plan.eval_boolean(&d);
            set_bitmap_mode(BitmapMode::Off);
            let cache_off = MaterializationCache::new();
            let (rows_off, s_off) = plan.eval_cached(&d, Some(&cache_off));
            let off_bool = plan.eval_boolean(&d);
            reset_bitmap_override();
            assert_eq!(rows_on, rows_off, "answers differ on {qs}");
            assert_eq!(on_bool, off_bool, "boolean differs on {qs}");
            assert_eq!(rows_on, eval_naive(&q, &d), "naive disagrees on {qs}");
            assert_eq!(
                (s_on.hits, s_on.misses),
                (s_off.hits, s_off.misses),
                "cache traffic must not depend on the kernel ({qs})"
            );
        }
    }

    /// The cyclic tier must give identical answers and cache traffic
    /// under both packed kernel settings — forcing the packed word
    /// kernels onto every eligible two-column interface (cross-bag
    /// semijoins, bag joins, dedups) must not move a byte.
    #[test]
    fn packed_kernels_identical_on_cyclic_tier() {
        use crate::eval::flat::{knob_guard, reset_packed_override, set_packed_mode, PackedMode};
        let _g = knob_guard();
        let q6 = "Q() :- E(a,p), E(p,b), E(b,q), E(q,c), E(c,r), E(r,a)";
        let qpair = "Q(x, y) :- E(x, z), E(z, y), E(x, w), E(w, y)";
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for u in 0..60u32 {
            edges.push((u, (u * 11 + 5) % 60));
            edges.push((u, (u * 17 + 2) % 60));
            edges.push(((u * 3) % 60, u));
        }
        let d = Structure::digraph(60, &edges);
        for (qs, strategy) in [
            (q6, MatStrategy::Binary),
            (q6, MatStrategy::Wcoj),
            (qpair, MatStrategy::Binary),
        ] {
            let q = parse_cq(qs).unwrap();
            let plan = DecomposedPlan::compile(&q, 2)
                .unwrap()
                .with_bag_strategy(strategy);
            set_packed_mode(PackedMode::On);
            let cache_on = MaterializationCache::new();
            let (rows_on, s_on) = plan.eval_cached(&d, Some(&cache_on));
            let on_bool = plan.eval_boolean(&d);
            set_packed_mode(PackedMode::Off);
            let cache_off = MaterializationCache::new();
            let (rows_off, s_off) = plan.eval_cached(&d, Some(&cache_off));
            let off_bool = plan.eval_boolean(&d);
            reset_packed_override();
            assert_eq!(rows_on, rows_off, "answers differ on {qs}");
            assert_eq!(on_bool, off_bool, "boolean differs on {qs}");
            assert_eq!(rows_on, eval_naive(&q, &d), "naive disagrees on {qs}");
            assert_eq!(
                (s_on.hits, s_on.misses),
                (s_off.hits, s_off.misses),
                "cache traffic must not depend on the kernel ({qs})"
            );
        }
    }

    #[test]
    fn free_variable_cycles() {
        let d = Structure::digraph(6, &[(0, 1), (1, 2), (2, 3), (3, 0), (1, 4), (4, 2), (5, 5)]);
        check_agrees("Q(a, c) :- E(a,b), E(b,c), E(c,d), E(d,a)", 2, &d);
        check_agrees("Q(a) :- E(a,b), E(b,c), E(c,d), E(d,e), E(e,a)", 2, &d);
    }

    #[test]
    fn wheel_width_three() {
        // Hub + 4-rim wheel: treewidth 3.
        let q = "Q(h) :- E(h,a), E(h,b), E(h,c), E(h,d), E(a,b), E(b,c), E(c,d), E(d,a)";
        let mut edges = vec![(0u32, 1), (0, 2), (0, 3), (0, 4)];
        edges.extend([(1, 2), (2, 3), (3, 4), (4, 1)]);
        edges.extend([(2, 5), (5, 3)]);
        let d = Structure::digraph(6, &edges);
        assert!(DecomposedPlan::compile(&parse_cq(q).unwrap(), 2).is_err());
        check_agrees(q, 3, &d);
    }

    #[test]
    fn repeated_vars_and_loops() {
        let d = Structure::digraph(4, &[(0, 0), (0, 1), (1, 2), (2, 0), (3, 3)]);
        check_agrees("Q(x) :- E(x,x), E(x,y), E(y,z), E(z,x)", 2, &d);
        check_agrees("Q() :- E(x,y), E(y,x), E(y,z), E(z,x)", 2, &d);
    }

    #[test]
    fn disconnected_cyclic_components() {
        // Two triangles over disjoint variables: the decomposition tree
        // is glued across components with empty overlaps.
        let d = Structure::digraph(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        check_agrees(
            "Q() :- E(x,y), E(y,z), E(z,x), E(u,v), E(v,w), E(w,u)",
            2,
            &d,
        );
        check_agrees(
            "Q(x, u) :- E(x,y), E(y,z), E(z,x), E(u,v), E(v,w), E(w,u)",
            2,
            &d,
        );
    }

    #[test]
    fn acyclic_queries_also_work() {
        // The tier is not restricted to cyclic queries: a path query has
        // treewidth 1 and the decomposition is a path of edge bags.
        let d = Structure::digraph(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        check_agrees("Q(x, z) :- E(x, y), E(y, z)", 1, &d);
        check_agrees("Q() :- E(x, y), E(y, z)", 1, &d);
    }

    #[test]
    fn bag_cache_shared_with_acyclic_plans() {
        use crate::eval::yannakakis::AcyclicPlan;
        // The triangle's single bag joins three edge-shaped parts; a
        // part's key is the plain hyperedge key, so an acyclic plan over
        // E(x, y) shares the part materialization.
        let d = Structure::digraph(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let cache = MaterializationCache::new();
        let tri = DecomposedPlan::compile(&parse_cq("Q() :- E(x,y), E(y,z), E(z,x)").unwrap(), 2)
            .unwrap();
        let (_, s1) = tri.eval_cached(&d, Some(&cache));
        // Cold: the triangle bag (and its parts) materialize; the two
        // forward-edge-shaped parts share one key.
        assert!(s1.misses > 0);
        assert!(s1.hits > 0, "same-shape parts within the plan must share");
        let edge = AcyclicPlan::compile(&parse_cq("Q(a, b) :- E(a, b)").unwrap()).unwrap();
        let (ans, s2) = edge.eval_cached(&d, Some(&cache));
        assert_eq!(ans.len(), 4);
        assert_eq!(
            (s2.hits, s2.misses),
            (1, 0),
            "hyperedge adopts the part entry"
        );
    }

    #[test]
    fn summaries_expose_bag_shape() {
        let q = parse_cq("Q() :- E(x,y), E(y,z), E(z,x)").unwrap();
        let plan = DecomposedPlan::compile(&q, 2).unwrap();
        // Some bag holds the whole triangle: label size 3, all three
        // edge parts joined inside it.
        let full = plan
            .bag_summaries()
            .iter()
            .find(|b| b.label_size == 3)
            .expect("a bag must contain the triangle clique");
        assert_eq!(full.parts.len(), 3);
        assert!(!plan.bag_summaries().is_empty());
    }
}
