//! In-memory relations over query variables: the working sets of the
//! Yannakakis pipeline (materialized atoms, semijoins, projected joins).

use crate::ast::VarId;
use cqapx_structures::fxhash::{FxHashMap, FxHashSet};
use cqapx_structures::Element;
use std::collections::{BTreeSet, HashMap, HashSet};

/// A relation over a fixed list of distinct variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarRelation {
    /// The schema: distinct variables, in a fixed order.
    pub schema: Vec<VarId>,
    /// The rows; each row has `schema.len()` values.
    pub rows: HashSet<Vec<Element>>,
}

impl VarRelation {
    /// An empty relation over a schema.
    pub fn empty(schema: Vec<VarId>) -> Self {
        VarRelation {
            schema,
            rows: HashSet::new(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The var → schema-position map, built once per operation so that
    /// every later lookup is O(1) instead of an O(schema) scan.
    fn position_map(&self) -> FxHashMap<VarId, usize> {
        self.schema
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i))
            .collect()
    }

    /// Positions in the schema of the given variables (must be present).
    fn positions_in(map: &FxHashMap<VarId, usize>, vars: &[VarId]) -> Vec<usize> {
        vars.iter()
            .map(|v| *map.get(v).expect("variable must be in schema"))
            .collect()
    }

    /// The key of a row on the given schema positions.
    fn key(row: &[Element], positions: &[usize]) -> Vec<Element> {
        positions.iter().map(|&p| row[p]).collect()
    }

    /// Semijoin `self ⋉ other` on their shared variables: keeps the rows of
    /// `self` that agree with some row of `other`.
    pub fn semijoin(&mut self, other: &VarRelation) {
        let their_map = other.position_map();
        let shared: Vec<VarId> = self
            .schema
            .iter()
            .copied()
            .filter(|v| their_map.contains_key(v))
            .collect();
        if shared.is_empty() {
            if other.is_empty() {
                self.rows.clear();
            }
            return;
        }
        let my_pos = Self::positions_in(&self.position_map(), &shared);
        let their_pos = Self::positions_in(&their_map, &shared);
        let keys: HashSet<Vec<Element>> = other
            .rows
            .iter()
            .map(|r| Self::key(r, &their_pos))
            .collect();
        self.rows.retain(|r| keys.contains(&Self::key(r, &my_pos)));
    }

    /// Natural join `self ⋈ other`.
    pub fn join(&self, other: &VarRelation) -> VarRelation {
        let my_map = self.position_map();
        let their_map = other.position_map();
        let shared: Vec<VarId> = self
            .schema
            .iter()
            .copied()
            .filter(|v| their_map.contains_key(v))
            .collect();
        let extra: Vec<VarId> = other
            .schema
            .iter()
            .copied()
            .filter(|v| !my_map.contains_key(v))
            .collect();
        let mut schema = self.schema.clone();
        schema.extend_from_slice(&extra);

        let their_shared_pos = Self::positions_in(&their_map, &shared);
        let their_extra_pos = Self::positions_in(&their_map, &extra);
        let my_shared_pos = Self::positions_in(&my_map, &shared);

        // Hash the smaller relation, probe with the larger: the index is
        // the memory-resident side, so build it on whichever input has
        // fewer rows. Output rows are `self`-schema columns followed by
        // `other`'s extra columns either way.
        let mut rows = HashSet::new();
        if self.rows.len() <= other.rows.len() {
            // Build on `self`, probe with `other`.
            let mut index: HashMap<Vec<Element>, Vec<&Vec<Element>>> = HashMap::new();
            for r in &self.rows {
                index
                    .entry(Self::key(r, &my_shared_pos))
                    .or_default()
                    .push(r);
            }
            for r in &other.rows {
                if let Some(matches) = index.get(&Self::key(r, &their_shared_pos)) {
                    let ext = Self::key(r, &their_extra_pos);
                    for &mine in matches {
                        let mut row = mine.clone();
                        row.extend_from_slice(&ext);
                        rows.insert(row);
                    }
                }
            }
        } else {
            // Build on `other`, probe with `self`.
            let mut index: HashMap<Vec<Element>, Vec<Vec<Element>>> = HashMap::new();
            for r in &other.rows {
                index
                    .entry(Self::key(r, &their_shared_pos))
                    .or_default()
                    .push(Self::key(r, &their_extra_pos));
            }
            for r in &self.rows {
                if let Some(matches) = index.get(&Self::key(r, &my_shared_pos)) {
                    for ext in matches {
                        let mut row = r.clone();
                        row.extend_from_slice(ext);
                        rows.insert(row);
                    }
                }
            }
        }
        VarRelation { schema, rows }
    }

    /// Projection onto a sub-schema (variables must be present; duplicates
    /// in `vars` are allowed but collapse to their first occurrence — use
    /// [`VarRelation::rows_in_head_order`] for repeated output columns).
    pub fn project(&self, vars: &[VarId]) -> VarRelation {
        let positions = Self::positions_in(&self.position_map(), vars);
        let mut seen: FxHashSet<VarId> = FxHashSet::default();
        let mut schema = Vec::new();
        let mut keep_positions = Vec::new();
        for (&v, &p) in vars.iter().zip(positions.iter()) {
            if seen.insert(v) {
                schema.push(v);
                keep_positions.push(p);
            }
        }
        let rows = self
            .rows
            .iter()
            .map(|r| Self::key(r, &keep_positions))
            .collect();
        VarRelation { schema, rows }
    }

    /// Reads the rows out in the order of an explicit head (duplicated
    /// head variables allowed).
    pub fn rows_in_head_order(&self, head: &[VarId]) -> BTreeSet<Vec<Element>> {
        let positions = Self::positions_in(&self.position_map(), head);
        self.rows.iter().map(|r| Self::key(r, &positions)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(schema: &[VarId], rows: &[&[Element]]) -> VarRelation {
        VarRelation {
            schema: schema.to_vec(),
            rows: rows.iter().map(|r| r.to_vec()).collect(),
        }
    }

    #[test]
    fn semijoin_filters() {
        let mut a = rel(&[0, 1], &[&[1, 2], &[3, 4], &[5, 6]]);
        let b = rel(&[1, 2], &[&[2, 9], &[6, 9]]);
        a.semijoin(&b);
        assert_eq!(a.len(), 2);
        assert!(a.rows.contains(&vec![1, 2]));
        assert!(a.rows.contains(&vec![5, 6]));
    }

    #[test]
    fn semijoin_disjoint_schemas() {
        let mut a = rel(&[0], &[&[1], &[2]]);
        let b = rel(&[1], &[&[7]]);
        a.semijoin(&b);
        assert_eq!(a.len(), 2); // nonempty other: keep all
        let empty = VarRelation::empty(vec![1]);
        a.semijoin(&empty);
        assert!(a.is_empty()); // empty other: cartesian semantics drop all
    }

    #[test]
    fn join_shares_columns() {
        let a = rel(&[0, 1], &[&[1, 2], &[3, 4]]);
        let b = rel(&[1, 2], &[&[2, 5], &[2, 6], &[9, 9]]);
        let j = a.join(&b);
        assert_eq!(j.schema, vec![0, 1, 2]);
        assert_eq!(j.len(), 2);
        assert!(j.rows.contains(&vec![1, 2, 5]));
        assert!(j.rows.contains(&vec![1, 2, 6]));
    }

    #[test]
    fn join_cartesian_when_disjoint() {
        let a = rel(&[0], &[&[1], &[2]]);
        let b = rel(&[1], &[&[7], &[8]]);
        let j = a.join(&b);
        assert_eq!(j.len(), 4);
    }

    #[test]
    fn join_builds_on_smaller_side() {
        // Regression for the build-side choice: results must be identical
        // whichever operand is smaller, and identical to the flipped join
        // modulo column order.
        let small = rel(&[0, 1], &[&[1, 2], &[3, 4]]);
        let big = rel(
            &[1, 2],
            &[&[2, 5], &[2, 6], &[4, 7], &[9, 9], &[8, 8], &[7, 7]],
        );
        let j1 = small.join(&big); // builds on `small`
        let j2 = big.join(&small); // builds on `small` (still the smaller)
        assert_eq!(j1.schema, vec![0, 1, 2]);
        assert_eq!(j2.schema, vec![1, 2, 0]);
        assert_eq!(j1.len(), 3);
        // Same rows up to column permutation.
        assert_eq!(
            j1.rows_in_head_order(&[0, 1, 2]),
            j2.rows_in_head_order(&[0, 1, 2])
        );
        // Equal-size operands exercise the build-on-self branch boundary.
        let even = rel(&[1, 2], &[&[2, 5], &[4, 7]]);
        let j3 = small.join(&even);
        let j4 = even.join(&small);
        assert_eq!(
            j3.rows_in_head_order(&[0, 1, 2]),
            j4.rows_in_head_order(&[0, 1, 2])
        );
    }

    #[test]
    fn project_and_head_order() {
        let a = rel(&[0, 1], &[&[1, 2], &[3, 4]]);
        let p = a.project(&[1]);
        assert_eq!(p.schema, vec![1]);
        assert_eq!(p.len(), 2);
        let head = a.rows_in_head_order(&[1, 0, 1]);
        assert!(head.contains(&vec![2, 1, 2]));
        assert!(head.contains(&vec![4, 3, 4]));
    }
}
