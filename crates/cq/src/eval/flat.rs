//! The columnar join kernel: flat row-buffer relations and the
//! compile-once machinery ([`AtomBinder`], [`MatKey`],
//! [`MaterializationCache`]) the Yannakakis pipeline runs on.
//!
//! The seed pipeline kept relations as `HashSet<Vec<Element>>`: every
//! semijoin/join/projection allocated a fresh key `Vec` per row and paid
//! a SipHash pass over it. A [`FlatRelation`] instead stores all rows in
//! **one contiguous buffer** (`rows × arity` elements, row-major) and
//! keys rows by hashing the relevant columns in place with the FxHash
//! mixer; duplicate elimination is a lexicographic sort + dedup over row
//! indices rather than per-row set insertion, and semijoins compact the
//! surviving rows in place instead of rebuilding the set. The only
//! allocations on the hot path are the (reused, chain-linked) key index
//! and the output buffers of joins/projections.
//!
//! Layout of a relation over schema `(x, y)` with rows `(1,2)`, `(3,4)`:
//!
//! ```text
//! schema:  x  y            data: [1, 2, 3, 4]
//! row 0 →  1  2                   ^--^  row 0 (offset 0·arity)
//! row 1 →  3  4                         ^--^  row 1 (offset 1·arity)
//! ```

use crate::ast::{Atom, VarId};
use cqapx_structures::fxhash::{FxHashMap, FxHasher};
use cqapx_structures::{Element, RelId, Structure};
use std::collections::BTreeSet;
use std::hash::Hasher;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A relation over distinct variables, stored columnar-flat: one
/// contiguous row-major buffer instead of a hash set of row vectors.
///
/// Invariants: `data.len() == rows * schema.len()`; the schema lists
/// distinct variables. Operations that can produce duplicate rows
/// ([`FlatRelation::push_row`], [`FlatRelation::project`]) are paired
/// with [`FlatRelation::sort_dedup`]; the plan-level operations
/// (materialization, semijoin, join) keep relations duplicate-free.
#[derive(Debug, Clone)]
pub struct FlatRelation {
    /// Distinct variables labelling the columns.
    schema: Vec<VarId>,
    /// Number of rows (tracked explicitly so 0-ary relations — Boolean
    /// intermediates — still distinguish "no row" from "one empty row").
    rows: usize,
    /// Row-major buffer of `rows * schema.len()` elements.
    data: Vec<Element>,
}

impl FlatRelation {
    /// An empty relation over a schema of distinct variables.
    pub fn empty(schema: Vec<VarId>) -> Self {
        FlatRelation {
            schema,
            rows: 0,
            data: Vec::new(),
        }
    }

    /// The 0-ary relation holding the single empty row — the join
    /// identity ("true"). Joining against it is a no-op; semijoining
    /// against it keeps every row.
    pub fn unit() -> Self {
        FlatRelation {
            schema: Vec::new(),
            rows: 1,
            data: Vec::new(),
        }
    }

    /// The column labels.
    pub fn schema(&self) -> &[VarId] {
        &self.schema
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.schema.len()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// `true` when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Drops all rows.
    pub fn clear(&mut self) {
        self.rows = 0;
        self.data.clear();
    }

    /// The `i`-th row.
    pub fn row(&self, i: usize) -> &[Element] {
        let a = self.schema.len();
        &self.data[i * a..(i + 1) * a]
    }

    /// Iterates the rows (empty slices for 0-ary relations).
    pub fn iter_rows(&self) -> impl Iterator<Item = &[Element]> {
        let a = self.schema.len();
        (0..self.rows).map(move |i| &self.data[i * a..(i + 1) * a])
    }

    /// Appends a row (must match the arity). May introduce duplicates;
    /// call [`FlatRelation::sort_dedup`] to normalize.
    pub fn push_row(&mut self, row: &[Element]) {
        debug_assert_eq!(row.len(), self.schema.len(), "row arity mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// The same rows under different column labels (`schema` must have
    /// the original arity). This is how cached materializations —
    /// stored under canonical labels — are adopted into a plan's
    /// variable space: one buffer memcpy, no re-scan.
    pub fn relabel(&self, schema: Vec<VarId>) -> FlatRelation {
        assert_eq!(schema.len(), self.schema.len(), "relabel arity mismatch");
        FlatRelation {
            schema,
            rows: self.rows,
            data: self.data.clone(),
        }
    }

    /// Appends every row of `other` (whose schema must cover the same
    /// variable set, in any column order), remapping columns by name.
    /// May introduce duplicates; callers finish with
    /// [`FlatRelation::sort_dedup`] — this is the buffer-level half of a
    /// set union.
    pub fn union_rows(&mut self, other: &FlatRelation) {
        assert_eq!(
            {
                let mut a = self.schema.clone();
                a.sort_unstable();
                a
            },
            {
                let mut b = other.schema.clone();
                b.sort_unstable();
                b
            },
            "union operands must range over the same variables"
        );
        if self.schema == other.schema {
            self.data.extend_from_slice(&other.data);
            self.rows += other.rows;
            return;
        }
        // Column remap: for each of my columns, its position in `other`.
        let from: Vec<usize> = self
            .schema
            .iter()
            .map(|v| other.schema.iter().position(|w| w == v).expect("same vars"))
            .collect();
        self.data.reserve(other.rows * self.schema.len());
        for row in other.iter_rows() {
            for &p in &from {
                self.data.push(row[p]);
            }
        }
        self.rows += other.rows;
    }

    /// Sorts rows lexicographically and removes duplicates, leaving the
    /// canonical form all set-level comparisons rely on.
    pub fn sort_dedup(&mut self) {
        let a = self.schema.len();
        if a == 0 {
            self.rows = self.rows.min(1);
            return;
        }
        let data = &self.data;
        let mut idx: Vec<u32> = (0..self.rows as u32).collect();
        idx.sort_unstable_by(|&x, &y| {
            let (x, y) = (x as usize * a, y as usize * a);
            data[x..x + a].cmp(&data[y..y + a])
        });
        idx.dedup_by(|&mut x, &mut y| {
            let (x, y) = (x as usize * a, y as usize * a);
            data[x..x + a] == data[y..y + a]
        });
        let mut out = Vec::with_capacity(idx.len() * a);
        for &i in &idx {
            out.extend_from_slice(&data[i as usize * a..][..a]);
        }
        self.rows = idx.len();
        self.data = out;
    }

    /// Intersection with a same-schema relation; both sides must be in
    /// sorted-dedup form (a single merge walk, no hashing).
    pub fn intersect_sorted(&mut self, other: &FlatRelation) {
        debug_assert_eq!(self.schema, other.schema, "intersect schema mismatch");
        let a = self.schema.len();
        if a == 0 {
            self.rows = self.rows.min(other.rows);
            return;
        }
        let mut w = 0usize; // write row
        let mut j = 0usize; // read row in other
        for i in 0..self.rows {
            let mine = i * a;
            while j < other.rows && other.data[j * a..j * a + a] < self.data[mine..mine + a] {
                j += 1;
            }
            if j < other.rows && other.data[j * a..j * a + a] == self.data[mine..mine + a] {
                self.data.copy_within(mine..mine + a, w * a);
                w += 1;
            }
        }
        self.rows = w;
        self.data.truncate(w * a);
    }

    /// FxHash of the key columns of one row, hashed in place (no key
    /// vector is ever materialized).
    #[inline]
    fn hash_key(row: &[Element], pos: &[usize]) -> u64 {
        let mut h = FxHasher::default();
        for &p in pos {
            h.write_u32(row[p]);
        }
        h.finish()
    }

    #[inline]
    fn keys_eq(a: &[Element], a_pos: &[usize], b: &[Element], b_pos: &[usize]) -> bool {
        a_pos.iter().zip(b_pos.iter()).all(|(&i, &j)| a[i] == b[j])
    }

    /// Semijoin `self ⋉ other` on aligned key columns: keeps the rows of
    /// `self` whose `my_pos` columns match some row of `other` on its
    /// `their_pos` columns. Survivors are compacted **in place** — no
    /// row set is rebuilt and no per-row key is allocated. With empty
    /// key positions this is the cartesian-semantics degenerate case:
    /// all rows survive iff `other` is nonempty.
    pub fn semijoin_on(&mut self, my_pos: &[usize], other: &FlatRelation, their_pos: &[usize]) {
        debug_assert_eq!(my_pos.len(), their_pos.len(), "key positions must align");
        if my_pos.is_empty() {
            if other.is_empty() {
                self.clear();
            }
            return;
        }
        let index = KeyIndex::build(other, their_pos);
        let a = self.schema.len();
        let mut w = 0usize;
        for i in 0..self.rows {
            let row = &self.data[i * a..i * a + a];
            let hit = index
                .probe(Self::hash_key(row, my_pos))
                .any(|r| Self::keys_eq(row, my_pos, other.row(r), their_pos));
            if hit {
                self.data.copy_within(i * a..i * a + a, w * a);
                w += 1;
            }
        }
        self.rows = w;
        self.data.truncate(w * a);
    }

    /// Natural join `self ⋈ other`: output schema is `self`'s columns
    /// followed by `other`'s extra columns. Hash join building the key
    /// index on the smaller side; cartesian product when the schemas are
    /// disjoint.
    pub fn join(&self, other: &FlatRelation) -> FlatRelation {
        let my_map: FxHashMap<VarId, usize> = self
            .schema
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i))
            .collect();
        let their_map: FxHashMap<VarId, usize> = other
            .schema
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i))
            .collect();
        let mut my_shared = Vec::new();
        let mut their_shared = Vec::new();
        for (i, v) in self.schema.iter().enumerate() {
            if let Some(&j) = their_map.get(v) {
                my_shared.push(i);
                their_shared.push(j);
            }
        }
        let mut their_extra = Vec::new();
        let mut schema = self.schema.clone();
        for (j, &v) in other.schema.iter().enumerate() {
            if !my_map.contains_key(&v) {
                their_extra.push(j);
                schema.push(v);
            }
        }
        let out_arity = schema.len();
        let mut out = FlatRelation::empty(schema);

        if my_shared.is_empty() {
            // Disjoint schemas: cartesian product.
            out.data.reserve(self.rows * other.rows * out_arity);
            for i in 0..self.rows {
                for j in 0..other.rows {
                    out.data.extend_from_slice(self.row(i));
                    let orow = other.row(j);
                    for &p in &their_extra {
                        out.data.push(orow[p]);
                    }
                }
            }
            out.rows = self.rows * other.rows;
            return out;
        }

        // Build the index on the smaller side, probe with the larger.
        if self.rows <= other.rows {
            let index = KeyIndex::build(self, &my_shared);
            for j in 0..other.rows {
                let orow = other.row(j);
                for m in index.probe(Self::hash_key(orow, &their_shared)) {
                    let mrow = self.row(m);
                    if Self::keys_eq(mrow, &my_shared, orow, &their_shared) {
                        out.data.extend_from_slice(mrow);
                        for &p in &their_extra {
                            out.data.push(orow[p]);
                        }
                        out.rows += 1;
                    }
                }
            }
        } else {
            let index = KeyIndex::build(other, &their_shared);
            for i in 0..self.rows {
                let mrow = self.row(i);
                for m in index.probe(Self::hash_key(mrow, &my_shared)) {
                    let orow = other.row(m);
                    if Self::keys_eq(mrow, &my_shared, orow, &their_shared) {
                        out.data.extend_from_slice(mrow);
                        for &p in &their_extra {
                            out.data.push(orow[p]);
                        }
                        out.rows += 1;
                    }
                }
            }
        }
        out
    }

    /// Projection onto a sub-schema (variables must be present;
    /// duplicates collapse to their first occurrence). The result is
    /// sorted and deduplicated.
    pub fn project(&self, vars: &[VarId]) -> FlatRelation {
        let map: FxHashMap<VarId, usize> = self
            .schema
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i))
            .collect();
        let mut schema = Vec::new();
        let mut keep = Vec::new();
        for &v in vars {
            if !schema.contains(&v) {
                schema.push(v);
                keep.push(*map.get(&v).expect("projected variable must be in schema"));
            }
        }
        let mut out = FlatRelation::empty(schema);
        out.rows = self.rows;
        out.data.reserve(self.rows * keep.len());
        for i in 0..self.rows {
            let row = self.row(i);
            for &p in &keep {
                out.data.push(row[p]);
            }
        }
        out.sort_dedup();
        out
    }

    /// Reads the rows out in the order of an explicit head (duplicated
    /// head variables allowed).
    pub fn rows_in_head_order(&self, head: &[VarId]) -> BTreeSet<Vec<Element>> {
        let map: FxHashMap<VarId, usize> = self
            .schema
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i))
            .collect();
        let positions: Vec<usize> = head
            .iter()
            .map(|v| *map.get(v).expect("head variable must be in schema"))
            .collect();
        self.iter_rows()
            .map(|r| positions.iter().map(|&p| r[p]).collect())
            .collect()
    }
}

/// A chained hash index over the key columns of a [`FlatRelation`]:
/// `map` sends a key hash to the head of a row chain, `next` links rows
/// with equal hashes. Two allocations total, no per-key buckets — the
/// probe re-checks real column values, so hash collisions only cost a
/// comparison.
struct KeyIndex {
    map: FxHashMap<u64, u32>,
    next: Vec<u32>,
}

const CHAIN_END: u32 = u32::MAX;

impl KeyIndex {
    fn build(rel: &FlatRelation, pos: &[usize]) -> KeyIndex {
        let mut map = FxHashMap::default();
        map.reserve(rel.len());
        let mut next = vec![CHAIN_END; rel.len()];
        for (i, slot) in next.iter_mut().enumerate() {
            let h = FlatRelation::hash_key(rel.row(i), pos);
            let head = map.entry(h).or_insert(CHAIN_END);
            *slot = *head;
            *head = i as u32;
        }
        KeyIndex { map, next }
    }

    /// All row indices whose key hash equals `hash` (callers re-check
    /// the actual columns).
    fn probe(&self, hash: u64) -> ProbeIter<'_> {
        ProbeIter {
            next: &self.next,
            cur: self.map.get(&hash).copied().unwrap_or(CHAIN_END),
        }
    }
}

struct ProbeIter<'a> {
    next: &'a [u32],
    cur: u32,
}

impl Iterator for ProbeIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.cur == CHAIN_END {
            return None;
        }
        let r = self.cur as usize;
        self.cur = self.next[r];
        Some(r)
    }
}

/// A compiled tuple→row mapping for one atom: which tuple positions must
/// agree (repeated variables) and which tuple position feeds each output
/// column. Compiling this once per plan removes the `var_count`-sized
/// binding scratch the seed materializer allocated **per tuple**.
#[derive(Debug, Clone)]
pub struct AtomBinder {
    rel: RelId,
    /// `(i, j)` pairs of tuple positions that must hold equal values
    /// (the atom repeats a variable at both).
    eq_checks: Vec<(usize, usize)>,
    /// For each output column (schema order), the tuple position that
    /// supplies its value.
    out_pos: Vec<usize>,
}

impl AtomBinder {
    /// Compiles the binder of `atom` for an output schema (the sorted
    /// distinct variables of the atom's hyperedge; every schema variable
    /// must occur in the atom).
    pub fn compile(atom: &Atom, schema: &[VarId]) -> AtomBinder {
        let mut eq_checks = Vec::new();
        let mut first: FxHashMap<VarId, usize> = FxHashMap::default();
        for (j, &v) in atom.args.iter().enumerate() {
            match first.get(&v) {
                Some(&i) => eq_checks.push((i, j)),
                None => {
                    first.insert(v, j);
                }
            }
        }
        let out_pos = schema
            .iter()
            .map(|v| *first.get(v).expect("schema variable must occur in atom"))
            .collect();
        AtomBinder {
            rel: atom.rel,
            eq_checks,
            out_pos,
        }
    }

    /// Scans the atom's relation in `d` and appends one row per
    /// consistent tuple to `out` (arity must match the compiled schema).
    /// Rows are appended unnormalized; callers finish with
    /// [`FlatRelation::sort_dedup`].
    pub fn materialize_into(&self, d: &Structure, out: &mut FlatRelation) {
        debug_assert_eq!(out.arity(), self.out_pos.len(), "binder arity mismatch");
        'tuples: for t in d.tuples(self.rel) {
            for &(i, j) in &self.eq_checks {
                if t[i] != t[j] {
                    continue 'tuples;
                }
            }
            for &p in &self.out_pos {
                out.data.push(t[p]);
            }
            out.rows += 1;
        }
    }
}

/// The canonical identity of a materialized hyperedge relation,
/// independent of variable names and query identity: each atom of the
/// hyperedge reduced to its relation plus the **column index** (position
/// in the sorted distinct variable list) of every argument, the whole
/// list sorted. Two hyperedges with equal keys materialize to identical
/// row sets over any database — which is what lets a
/// [`MaterializationCache`] share work across prepared queries.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MatKey {
    atoms: Vec<(RelId, Vec<u32>)>,
}

impl MatKey {
    /// The key of a hyperedge: `vars` are the sorted distinct variables,
    /// `atoms` every atom whose variable set equals `vars`.
    pub fn of_group(atoms: &[&Atom], vars: &[VarId]) -> MatKey {
        debug_assert!(vars.windows(2).all(|w| w[0] < w[1]), "vars must be sorted");
        let col =
            |v: VarId| -> u32 { vars.binary_search(&v).expect("atom var must be in vars") as u32 };
        let mut keyed: Vec<(RelId, Vec<u32>)> = atoms
            .iter()
            .map(|a| (a.rel, a.args.iter().map(|&v| col(v)).collect()))
            .collect();
        keyed.sort();
        keyed.dedup();
        MatKey { atoms: keyed }
    }

    /// The key of a single atom taken as its own hyperedge (used by the
    /// planner to look up real cardinalities of cached materializations).
    pub fn of_atom(atom: &Atom) -> MatKey {
        let mut vars: Vec<VarId> = atom.args.clone();
        vars.sort_unstable();
        vars.dedup();
        MatKey::of_group(&[atom], &vars)
    }
}

/// Per-call cache outcome of an evaluation that consulted a
/// [`MaterializationCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatCacheStats {
    /// Hyperedges served from the cache.
    pub hits: u32,
    /// Hyperedges materialized (and inserted) on this call.
    pub misses: u32,
}

impl MatCacheStats {
    /// Accumulates another outcome into this one.
    pub fn add(&mut self, other: MatCacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

/// A per-database cache of materialized hyperedge relations, keyed by
/// [`MatKey`] and shared across prepared queries and concurrent batch
/// requests. Entries are stored under the materializing plan's own
/// column labels and adopted elsewhere via [`FlatRelation::relabel`]
/// (label-independent by construction of the key).
///
/// Invalidation: the cache is owned by one immutable database snapshot
/// (structures are immutable post-builder), so entries never go stale;
/// re-registering a database creates a fresh snapshot with a fresh,
/// empty cache.
///
/// Retention: entries are kept for the snapshot's lifetime, like the
/// compiled plans of prepared queries — the population is bounded by
/// the distinct hyperedge shapes of the queries actually served, and
/// each entry is at most one relation's worth of elements. Dropping the
/// snapshot (or re-registering its name and dropping the old handle)
/// releases everything.
#[derive(Debug, Default)]
pub struct MaterializationCache {
    /// `RwLock`, not `Mutex`: at serving-time hit rates nearly every
    /// access is a read (hits, planner peeks), and parallel batch
    /// workers must not serialize on the warm path.
    map: RwLock<FxHashMap<MatKey, Arc<FlatRelation>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl MaterializationCache {
    /// An empty cache.
    pub fn new() -> Self {
        MaterializationCache::default()
    }

    /// The cached relation for `key`, or the result of `materialize`
    /// (inserted for later calls). Returns the relation and whether it
    /// was a hit. The lock is not held while materializing; concurrent
    /// misses on the same key race benignly (first insert wins).
    pub fn get_or_materialize(
        &self,
        key: &MatKey,
        materialize: impl FnOnce() -> FlatRelation,
    ) -> (Arc<FlatRelation>, bool) {
        if let Some(hit) = self.map.read().expect("cache lock poisoned").get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (Arc::clone(hit), true);
        }
        let fresh = Arc::new(materialize());
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut map = self.map.write().expect("cache lock poisoned");
        let entry = map.entry(key.clone()).or_insert_with(|| Arc::clone(&fresh));
        (Arc::clone(entry), false)
    }

    /// The cardinality of a cached materialization, if present. Does not
    /// count as a hit or miss — this is the planner's peek at real
    /// cardinalities.
    pub fn peek_cardinality(&self, key: &MatKey) -> Option<usize> {
        self.map
            .read()
            .expect("cache lock poisoned")
            .get(key)
            .map(|r| r.len())
    }

    /// The cardinalities of several cached materializations under one
    /// read-lock acquisition (the planner resolves every atom of a query
    /// in one critical section). `None` per key not yet materialized.
    pub fn peek_cardinalities<'k>(
        &self,
        keys: impl IntoIterator<Item = &'k MatKey>,
    ) -> Vec<Option<usize>> {
        let map = self.map.read().expect("cache lock poisoned");
        keys.into_iter()
            .map(|k| map.get(k).map(|r| r.len()))
            .collect()
    }

    /// Total cache hits since creation.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total cache misses (materializations run) since creation.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of cached hyperedge relations.
    pub fn len(&self) -> usize {
        self.map.read().expect("cache lock poisoned").len()
    }

    /// `true` when nothing has been materialized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(schema: &[VarId], rows: &[&[Element]]) -> FlatRelation {
        let mut r = FlatRelation::empty(schema.to_vec());
        for row in rows {
            r.push_row(row);
        }
        r.sort_dedup();
        r
    }

    #[test]
    fn sort_dedup_canonicalizes() {
        let mut r = FlatRelation::empty(vec![0, 1]);
        r.push_row(&[3, 4]);
        r.push_row(&[1, 2]);
        r.push_row(&[3, 4]);
        r.sort_dedup();
        assert_eq!(r.len(), 2);
        assert_eq!(r.row(0), &[1, 2]);
        assert_eq!(r.row(1), &[3, 4]);
    }

    #[test]
    fn nullary_rows_cap_at_one() {
        let mut r = FlatRelation::empty(vec![]);
        r.push_row(&[]);
        r.push_row(&[]);
        r.sort_dedup();
        assert_eq!(r.len(), 1);
        assert_eq!(r.row(0), &[] as &[Element]);
    }

    #[test]
    fn unit_is_join_identity() {
        let t = FlatRelation::unit();
        assert_eq!(t.len(), 1);
        assert_eq!(t.arity(), 0);
        let a = rel(&[0, 1], &[&[1, 2], &[3, 4]]);
        assert_eq!(
            a.join(&t).rows_in_head_order(&[0, 1]),
            a.rows_in_head_order(&[0, 1])
        );
    }

    #[test]
    fn union_rows_remaps_columns() {
        let mut a = rel(&[0, 1], &[&[1, 2]]);
        let b = rel(&[1, 0], &[&[2, 1], &[9, 8]]);
        a.union_rows(&b);
        a.sort_dedup();
        assert_eq!(a.len(), 2); // (1,2) deduplicated, (8,9) added
        assert_eq!(a.row(0), &[1, 2]);
        assert_eq!(a.row(1), &[8, 9]);
    }

    #[test]
    fn semijoin_filters_and_compacts() {
        let mut a = rel(&[0, 1], &[&[1, 2], &[3, 4], &[5, 6]]);
        let b = rel(&[1, 2], &[&[2, 9], &[6, 9]]);
        // shared var 1: position 1 in a, position 0 in b.
        a.semijoin_on(&[1], &b, &[0]);
        assert_eq!(a.len(), 2);
        assert_eq!(a.row(0), &[1, 2]);
        assert_eq!(a.row(1), &[5, 6]);
    }

    #[test]
    fn semijoin_disjoint_schemas() {
        let mut a = rel(&[0], &[&[1], &[2]]);
        let b = rel(&[1], &[&[7]]);
        a.semijoin_on(&[], &b, &[]);
        assert_eq!(a.len(), 2); // nonempty other: keep all
        let empty = FlatRelation::empty(vec![1]);
        a.semijoin_on(&[], &empty, &[]);
        assert!(a.is_empty()); // empty other: cartesian semantics drop all
    }

    #[test]
    fn join_matches_row_pipeline() {
        let a = rel(&[0, 1], &[&[1, 2], &[3, 4]]);
        let b = rel(&[1, 2], &[&[2, 5], &[2, 6], &[9, 9]]);
        let j = a.join(&b);
        assert_eq!(j.schema(), &[0, 1, 2]);
        assert_eq!(j.len(), 2);
        assert_eq!(
            j.rows_in_head_order(&[0, 1, 2]),
            [vec![1, 2, 5], vec![1, 2, 6]].into_iter().collect()
        );
        // Build-side choice must not change the answer.
        let j2 = b.join(&a);
        assert_eq!(
            j.rows_in_head_order(&[0, 1, 2]),
            j2.rows_in_head_order(&[0, 1, 2])
        );
    }

    #[test]
    fn join_cartesian_when_disjoint() {
        let a = rel(&[0], &[&[1], &[2]]);
        let b = rel(&[1], &[&[7], &[8]]);
        assert_eq!(a.join(&b).len(), 4);
        // With a 0-ary operand (Boolean intermediate).
        let mut t = FlatRelation::empty(vec![]);
        t.push_row(&[]);
        assert_eq!(a.join(&t).len(), 2);
        assert_eq!(t.join(&a).len(), 2);
        let f = FlatRelation::empty(vec![]);
        assert_eq!(a.join(&f).len(), 0);
    }

    #[test]
    fn project_collapses_duplicates_and_dedups() {
        let a = rel(&[0, 1], &[&[1, 2], &[3, 2]]);
        let p = a.project(&[1, 1]);
        assert_eq!(p.schema(), &[1]);
        assert_eq!(p.len(), 1);
        assert_eq!(p.row(0), &[2]);
    }

    #[test]
    fn intersect_sorted_walks() {
        let mut a = rel(&[0, 1], &[&[1, 2], &[3, 4], &[5, 6]]);
        let b = rel(&[0, 1], &[&[3, 4], &[5, 6], &[7, 8]]);
        a.intersect_sorted(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.row(0), &[3, 4]);
        assert_eq!(a.row(1), &[5, 6]);
    }

    #[test]
    fn binder_rejects_inconsistent_repetitions() {
        use crate::parser::parse_cq;
        let q = parse_cq("Q(x) :- E(x, x)").unwrap();
        let binder = AtomBinder::compile(&q.atoms()[0], &[0]);
        let d = Structure::digraph(3, &[(0, 0), (0, 1), (2, 2)]);
        let mut out = FlatRelation::empty(vec![0]);
        binder.materialize_into(&d, &mut out);
        out.sort_dedup();
        assert_eq!(out.len(), 2); // loops at 0 and 2 only
        assert_eq!(out.row(0), &[0]);
        assert_eq!(out.row(1), &[2]);
    }

    #[test]
    fn mat_key_is_name_independent() {
        use crate::parser::parse_cq;
        let q1 = parse_cq("Q() :- E(x, y)").unwrap();
        let q2 = parse_cq("Q() :- E(a, b)").unwrap();
        assert_eq!(
            MatKey::of_atom(&q1.atoms()[0]),
            MatKey::of_atom(&q2.atoms()[0])
        );
        // Within one query, E(x,y) and E(y,x) differ: the second atom's
        // arguments hit the sorted variable list in reverse order.
        let q3 = parse_cq("Q() :- E(x, y), E(y, x)").unwrap();
        assert_ne!(
            MatKey::of_atom(&q3.atoms()[0]),
            MatKey::of_atom(&q3.atoms()[1])
        );
        // And E(y,z) is the same single-atom hyperedge shape as E(x,y).
        let q4 = parse_cq("Q() :- E(x, y), E(y, z)").unwrap();
        assert_eq!(
            MatKey::of_atom(&q4.atoms()[0]),
            MatKey::of_atom(&q4.atoms()[1])
        );
    }

    #[test]
    fn cache_hits_and_counts() {
        let cache = MaterializationCache::new();
        let q = crate::parser::parse_cq("Q() :- E(x, y)").unwrap();
        let key = MatKey::of_atom(&q.atoms()[0]);
        let make = || rel(&[0, 1], &[&[1, 2]]);
        let (r1, hit1) = cache.get_or_materialize(&key, make);
        let (r2, hit2) = cache.get_or_materialize(&key, || unreachable!("must hit"));
        assert!(!hit1 && hit2);
        assert_eq!(r1.len(), r2.len());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.peek_cardinality(&key), Some(1));
        assert_eq!(cache.len(), 1);
    }
}
