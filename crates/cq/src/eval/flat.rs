//! The columnar join kernel: flat row-buffer relations and the
//! compile-once machinery ([`AtomBinder`], [`MatKey`],
//! [`MaterializationCache`]) the Yannakakis pipeline runs on.
//!
//! The seed pipeline kept relations as `HashSet<Vec<Element>>`: every
//! semijoin/join/projection allocated a fresh key `Vec` per row and paid
//! a SipHash pass over it. A [`FlatRelation`] instead stores all rows in
//! **one contiguous buffer** (`rows × arity` elements, row-major) and
//! keys rows by hashing the relevant columns in place with the FxHash
//! mixer; duplicate elimination is a lexicographic sort + dedup over row
//! indices rather than per-row set insertion, and semijoins compact the
//! surviving rows in place instead of rebuilding the set. The only
//! allocations on the hot path are the (reused, chain-linked) key index
//! and the output buffers of joins/projections.
//!
//! Layout of a relation over schema `(x, y)` with rows `(1,2)`, `(3,4)`:
//!
//! ```text
//! schema:  x  y            data: [1, 2, 3, 4]
//! row 0 →  1  2                   ^--^  row 0 (offset 0·arity)
//! row 1 →  3  4                         ^--^  row 1 (offset 1·arity)
//! ```

use crate::ast::{Atom, VarId};
use cqapx_par::{parallel_chunks, parallel_map, DisjointWriter, ThreadBudget};
use cqapx_structures::fxhash::{FxHashMap, FxHasher};
use cqapx_structures::packed::{pack2, radix_dedup, radix_dedup_u32, radix_sort_pairs};
use cqapx_structures::{DomainBitmap, DomainDict, Element, RelId, Structure};
use std::collections::{BTreeSet, VecDeque};
use std::hash::Hasher;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// Minimum rows before a kernel even consults the thread budget:
/// below this, thread spawn/join overhead dwarfs the scan, so small
/// relations always take the sequential path (and never touch the
/// budget's atomics).
const PAR_MIN_ROWS: usize = 4096;

/// Rows per morsel for parallel scans: big enough that one atomic
/// claim amortizes over thousands of rows, small enough that the tail
/// of an uneven workload still load-balances.
const MORSEL_ROWS: usize = 2048;

/// How many extra workers a kernel asks the budget for: one per morsel
/// beyond the caller's own, capped so a single huge relation cannot
/// drain the whole budget from concurrent requests.
fn par_want(rows: usize) -> usize {
    (rows / MORSEL_ROWS).saturating_sub(1).min(31)
}

/// Minimum rows before [`PackedMode::Auto`] routes a relation through
/// the packed code-word kernels: below this the comparison sort /
/// hashed build is already a handful of microseconds and the radix
/// passes' fixed costs (histograms, scratch buffer) dominate.
const PACKED_MIN_ROWS: usize = 512;

/// Runtime switch for the direct-addressed single-column index: `0` =
/// consult `CQAPX_DIRECT_INDEX` (default on), `1` = forced on, `2` =
/// forced off. Process-global so benchmarks and differential tests can
/// compare both index representations within one process.
static DIRECT_INDEX_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Forces the direct-addressed index on or off for the whole process,
/// overriding the `CQAPX_DIRECT_INDEX` environment default. Both index
/// representations produce byte-identical join/semijoin outputs; this
/// knob exists for benchmarking and differential testing.
pub fn set_direct_index_enabled(on: bool) {
    DIRECT_INDEX_OVERRIDE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

fn direct_index_enabled() -> bool {
    match DIRECT_INDEX_OVERRIDE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            static FROM_ENV: OnceLock<bool> = OnceLock::new();
            *FROM_ENV.get_or_init(|| {
                std::env::var("CQAPX_DIRECT_INDEX")
                    .map(|v| !(v == "0" || v.eq_ignore_ascii_case("off")))
                    .unwrap_or(true)
            })
        }
    }
}

/// Policy for the word-parallel bitmap existence kernels over dense
/// codes (the `CQAPX_BITMAP` knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BitmapMode {
    /// Bitmaps wherever the existence predicate is a clear win; the
    /// density-adaptive choice (bitmap AND vs galloping search) in the
    /// WCOJ kernel's top-level intersection.
    Auto,
    /// Bitmaps wherever eligible, ignoring the density threshold.
    On,
    /// No bitmaps: every probe goes through the key index.
    Off,
}

/// Runtime switch for the bitmap existence kernels: `0` = consult
/// `CQAPX_BITMAP` (default auto), otherwise a forced [`BitmapMode`].
/// Process-global so benchmarks and differential tests can compare the
/// bitmap and probe kernels within one process, mirroring
/// [`set_direct_index_enabled`].
static BITMAP_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Forces the bitmap existence kernels to a mode for the whole
/// process, overriding the `CQAPX_BITMAP` environment default. All
/// modes produce byte-identical outputs — bitmaps only answer
/// existence, never ordering — so this knob exists for benchmarking
/// and differential testing.
pub fn set_bitmap_mode(mode: BitmapMode) {
    let v = match mode {
        BitmapMode::Auto => 1,
        BitmapMode::On => 2,
        BitmapMode::Off => 3,
    };
    BITMAP_OVERRIDE.store(v, Ordering::Relaxed);
}

pub(crate) fn bitmap_mode() -> BitmapMode {
    match BITMAP_OVERRIDE.load(Ordering::Relaxed) {
        1 => BitmapMode::Auto,
        2 => BitmapMode::On,
        3 => BitmapMode::Off,
        _ => {
            static FROM_ENV: OnceLock<BitmapMode> = OnceLock::new();
            *FROM_ENV.get_or_init(|| match std::env::var("CQAPX_BITMAP").as_deref() {
                Ok(v) if v == "0" || v.eq_ignore_ascii_case("off") => BitmapMode::Off,
                Ok(v) if v == "1" || v.eq_ignore_ascii_case("on") => BitmapMode::On,
                _ => BitmapMode::Auto,
            })
        }
    }
}

/// Policy for the packed code-word kernels over dense codes (the
/// `CQAPX_PACKED` knob): radix sort-dedup, radix-partitioned join
/// indexes, and word-compare semijoin selection vectors, all over rows
/// or keys packed into single `u64` words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackedMode {
    /// Packed kernels wherever the per-relation heuristic (arity,
    /// dense width, row count) predicts a win.
    Auto,
    /// Packed kernels wherever packing is legal, ignoring the row
    /// threshold.
    On,
    /// No packing: comparison sorts and hashed/direct indexes only.
    Off,
}

/// Runtime switch for the packed code-word kernels: `0` = consult
/// `CQAPX_PACKED` (default auto), otherwise a forced [`PackedMode`].
/// Process-global so benchmarks and differential tests can compare the
/// packed and generic kernels within one process, mirroring
/// [`set_bitmap_mode`].
static PACKED_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Forces the packed code-word kernels to a mode for the whole
/// process, overriding the `CQAPX_PACKED` environment default. All
/// modes produce byte-identical outputs — packing is monotone, so the
/// radix order is the canonical row order, and packed join groups
/// reproduce the hashed probe order exactly — so this knob exists for
/// benchmarking and differential testing.
pub fn set_packed_mode(mode: PackedMode) {
    let v = match mode {
        PackedMode::Auto => 1,
        PackedMode::On => 2,
        PackedMode::Off => 3,
    };
    PACKED_OVERRIDE.store(v, Ordering::Relaxed);
}

pub(crate) fn packed_mode() -> PackedMode {
    match PACKED_OVERRIDE.load(Ordering::Relaxed) {
        1 => PackedMode::Auto,
        2 => PackedMode::On,
        3 => PackedMode::Off,
        _ => {
            static FROM_ENV: OnceLock<PackedMode> = OnceLock::new();
            *FROM_ENV.get_or_init(|| match std::env::var("CQAPX_PACKED").as_deref() {
                Ok(v) if v == "0" || v.eq_ignore_ascii_case("off") => PackedMode::Off,
                Ok(v) if v == "1" || v.eq_ignore_ascii_case("on") => PackedMode::On,
                _ => PackedMode::Auto,
            })
        }
    }
}

/// Test-only: serializes tests (across this crate's modules) that read
/// or flip the process-global kernel knobs, so a forced window in one
/// test cannot leak into another's assertions.
#[cfg(test)]
pub(crate) fn knob_guard() -> std::sync::MutexGuard<'static, ()> {
    static KNOB: Mutex<()> = Mutex::new(());
    KNOB.lock().unwrap_or_else(|e| e.into_inner())
}

/// Test-only: returns the bitmap knob to its env-driven default.
#[cfg(test)]
pub(crate) fn reset_bitmap_override() {
    BITMAP_OVERRIDE.store(0, Ordering::Relaxed);
}

/// Test-only: returns the packed knob to its env-driven default.
#[cfg(test)]
pub(crate) fn reset_packed_override() {
    PACKED_OVERRIDE.store(0, Ordering::Relaxed);
}

/// Column bitmaps built this process (one per (relation, column)).
static BITMAP_BUILDS: AtomicU64 = AtomicU64::new(0);
/// Kernel dispatches answered by a bitmap instead of an index probe.
static BITMAP_PROBES: AtomicU64 = AtomicU64::new(0);
/// Word-table bytes of all currently live column bitmaps.
static BITMAP_RESIDENT: AtomicUsize = AtomicUsize::new(0);

/// Process-wide counters of the bitmap existence kernels, surfaced in
/// `Engine::snapshot()` and `examples/engine_metrics.rs`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BitmapStats {
    /// Column bitmaps built since process start.
    pub builds: u64,
    /// Kernel dispatches (semijoins, sweeps, WCOJ intersections) that
    /// ran on bitmaps instead of per-row index probes.
    pub probes: u64,
    /// Word-table bytes of all currently live column bitmaps.
    pub resident_bytes: usize,
}

/// The current process-wide bitmap counters.
pub fn bitmap_stats() -> BitmapStats {
    BitmapStats {
        builds: BITMAP_BUILDS.load(Ordering::Relaxed),
        probes: BITMAP_PROBES.load(Ordering::Relaxed),
        resident_bytes: BITMAP_RESIDENT.load(Ordering::Relaxed),
    }
}

/// Counts one bitmap-kernel dispatch (also from the plan IR's Boolean
/// sweep, which lives in a sibling module).
pub(crate) fn note_bitmap_probe() {
    BITMAP_PROBES.fetch_add(1, Ordering::Relaxed);
}

/// Counts one transient bitmap build (the Boolean sweep's live-row
/// rebuilds, which never become resident).
pub(crate) fn note_bitmap_build() {
    BITMAP_BUILDS.fetch_add(1, Ordering::Relaxed);
}

/// Packed structures built this process (radix-sorted row sets and
/// radix-partitioned join indexes).
static PACKED_BUILDS: AtomicU64 = AtomicU64::new(0);
/// Rows that flowed through a packed kernel (sorted, indexed, or
/// probed as code words).
static PACKED_ROWS: AtomicU64 = AtomicU64::new(0);

/// Process-wide counters of the packed code-word kernels
/// (`CQAPX_PACKED`), surfaced in `Engine::snapshot()` and
/// `examples/engine_metrics.rs`. Packed structures are transient —
/// built inside one kernel dispatch, dropped with it — so unlike the
/// bitmaps there is no resident-bytes gauge to report (and cache byte
/// accounting is untouched by the knob).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PackedStats {
    /// Packed structures built since process start (radix sorts and
    /// partitioned join indexes).
    pub builds: u64,
    /// Rows processed through packed kernels.
    pub rows: u64,
}

/// The current process-wide packed-kernel counters.
pub fn packed_stats() -> PackedStats {
    PackedStats {
        builds: PACKED_BUILDS.load(Ordering::Relaxed),
        rows: PACKED_ROWS.load(Ordering::Relaxed),
    }
}

/// Counts one packed-kernel dispatch over `rows` rows.
fn note_packed(rows: usize) {
    PACKED_BUILDS.fetch_add(1, Ordering::Relaxed);
    PACKED_ROWS.fetch_add(rows as u64, Ordering::Relaxed);
}

/// The lazily-built per-column existence bitmaps of one relation,
/// shared by clones through an `Arc` (the [`cqapx_structures::dict`]
/// `DictCell` pattern). Derived data: invisible to the relation's
/// logical value, rebuilt from scratch after any mutation.
#[derive(Debug)]
struct ColumnBitmaps {
    cols: Vec<OnceLock<Arc<DomainBitmap>>>,
}

impl ColumnBitmaps {
    fn new(arity: usize) -> Self {
        ColumnBitmaps {
            cols: (0..arity).map(|_| OnceLock::new()).collect(),
        }
    }

    /// Word-table bytes of the columns built so far.
    fn heap_bytes(&self) -> usize {
        self.cols
            .iter()
            .filter_map(|c| c.get())
            .map(|b| b.heap_bytes())
            .sum()
    }
}

impl Drop for ColumnBitmaps {
    fn drop(&mut self) {
        let bytes = self.heap_bytes();
        if bytes > 0 {
            BITMAP_RESIDENT.fetch_sub(bytes, Ordering::Relaxed);
        }
    }
}

/// The clone-shared slot holding a relation's [`ColumnBitmaps`].
/// Mutating operations replace the whole cell with a fresh one
/// (clones keep the old, still-valid bitmaps); `relabel` and `clone`
/// share it — same rows, same bitmaps.
#[derive(Debug, Default)]
struct BitmapCell(OnceLock<Arc<ColumnBitmaps>>);

impl Clone for BitmapCell {
    fn clone(&self) -> Self {
        BitmapCell(self.0.clone())
    }
}

/// Cached sorted word image of an arity-≤2 relation's rows (derived
/// data, like [`BitmapCell`] but order-sensitive): the packed radix
/// sort leaves its sorted distinct key words here so the packed merge
/// intersection can reuse them without re-packing, and the merge
/// stashes its surviving words back for the next part of a multi-part
/// build. Dropped by every mutation ([`FlatRelation::invalidate_bitmaps`]
/// doubles as the derived-data invalidation point), never cloned (a
/// clone re-derives on demand), and never counted by
/// [`FlatRelation::heap_bytes`] — bag materialization drops it before
/// a relation can land in a cache, so the image stays transient and
/// cache byte accounting is identical across packed modes.
#[derive(Debug, Default)]
struct WordsCell(Option<PackedWords>);

impl Clone for WordsCell {
    fn clone(&self) -> Self {
        WordsCell(None)
    }
}

/// A tight packed word image at per-column bit width `b`: `u32` words
/// when both columns fit one half (`2b ≤ 32`), `u64` words otherwise.
#[derive(Debug)]
enum PackedWords {
    /// Words `hi << b | lo` with `2b ≤ 32`.
    W32 {
        /// Per-column bit width the words were packed with.
        b: u32,
        /// Sorted distinct words, one per row.
        keys: Vec<u32>,
    },
    /// Words `hi << b | lo` widened to `u64`.
    W64 {
        /// Per-column bit width the words were packed with.
        b: u32,
        /// Sorted distinct words, one per row.
        keys: Vec<u64>,
    },
}

/// Sorted-set intersection over packed words: the words of `mine`
/// that appear in `theirs` (both sorted distinct), in order.
fn isect_keys<K: Copy + Ord>(mine: &[K], theirs: &[K]) -> Vec<K> {
    let mut out = Vec::new();
    let mut j = 0usize;
    for &m in mine {
        while j < theirs.len() && theirs[j] < m {
            j += 1;
        }
        if j == theirs.len() {
            break;
        }
        if theirs[j] == m {
            out.push(m);
        }
    }
    out
}

/// A relation over distinct variables, stored columnar-flat: one
/// contiguous row-major buffer instead of a hash set of row vectors.
///
/// Invariants: `data.len() == rows * schema.len()`; the schema lists
/// distinct variables. Operations that can produce duplicate rows
/// ([`FlatRelation::push_row`], [`FlatRelation::project`]) are paired
/// with [`FlatRelation::sort_dedup`]; the plan-level operations
/// (materialization, semijoin, join) keep relations duplicate-free.
#[derive(Debug, Clone)]
pub struct FlatRelation {
    /// Distinct variables labelling the columns.
    schema: Vec<VarId>,
    /// Number of rows (tracked explicitly so 0-ary relations — Boolean
    /// intermediates — still distinguish "no row" from "one empty row").
    rows: usize,
    /// Row-major buffer of `rows * schema.len()` elements.
    data: Vec<Element>,
    /// Dense-domain guarantee: when nonzero, every element of `data` is
    /// `< domain_width` (the snapshot dictionary's code count). `0`
    /// means "no guarantee" — the hashed index fallback. Relations
    /// materialized from a [`Structure`] carry the dictionary width;
    /// operators propagate it conservatively.
    domain_width: u32,
    /// Lazily-built per-column existence bitmaps (derived data; see
    /// [`BitmapCell`]). Invalidated by every mutating operation.
    bitmaps: BitmapCell,
    /// Cached sorted word image (derived data; see [`WordsCell`]).
    /// Invalidated by every mutating operation.
    words: WordsCell,
}

impl FlatRelation {
    /// An empty relation over a schema of distinct variables.
    pub fn empty(schema: Vec<VarId>) -> Self {
        FlatRelation {
            schema,
            rows: 0,
            data: Vec::new(),
            domain_width: 0,
            bitmaps: BitmapCell::default(),
            words: WordsCell::default(),
        }
    }

    /// The 0-ary relation holding the single empty row — the join
    /// identity ("true"). Joining against it is a no-op; semijoining
    /// against it keeps every row.
    pub fn unit() -> Self {
        FlatRelation {
            schema: Vec::new(),
            rows: 1,
            data: Vec::new(),
            domain_width: 0,
            bitmaps: BitmapCell::default(),
            words: WordsCell::default(),
        }
    }

    /// The dense-domain bound of this relation's elements (`0` = none).
    pub fn domain_width(&self) -> u32 {
        self.domain_width
    }

    /// Drops the cached word image (see [`WordsCell`]). Bag
    /// materialization calls this before handing a relation to the
    /// cache layer, keeping the image transient and cache byte
    /// accounting identical across packed modes.
    pub(crate) fn drop_word_image(&mut self) {
        self.words.0 = None;
    }

    /// The width bound of data drawn from both operands of a binary
    /// operator: a 0-ary or **empty** operand contributes no elements
    /// (an unbounded constant/unit side must not erase the other
    /// side's known bound); otherwise both bounds must be known for
    /// the combination to be known.
    fn combine_widths(&self, other: &FlatRelation) -> u32 {
        if self.schema.is_empty() || self.rows == 0 {
            other.domain_width
        } else if other.schema.is_empty() || other.rows == 0 {
            self.domain_width
        } else if self.domain_width > 0 && other.domain_width > 0 {
            self.domain_width.max(other.domain_width)
        } else {
            0
        }
    }

    /// Heap bytes held by this relation (buffer + schema + built
    /// column bitmaps), the unit of cache byte accounting. Cached
    /// relations prebuild their bitmaps at landing (`prebuild_bitmaps`
    /// in [`MaterializationCache::get_or_materialize`]) so the bytes
    /// stored with the cache entry — and subtracted at eviction —
    /// include them.
    pub fn heap_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<Element>()
            + self.schema.capacity() * std::mem::size_of::<VarId>()
            + self.bitmaps.0.get().map_or(0, |c| c.heap_bytes())
    }

    /// Whether column bitmaps may be built over this relation: the
    /// dense bound is known and the word table stays within ~8 bytes
    /// per row (beyond that the bitmap is mostly empty words and the
    /// index probe is cheaper per cache line). A pure function of the
    /// relation — never of the thread budget — so every kernel
    /// dispatch agrees on eligibility.
    fn bitmap_eligible(&self) -> bool {
        self.domain_width > 0 && (self.domain_width as usize) <= 64 * self.rows.max(16)
    }

    /// Whether [`FlatRelation::sort_dedup_seq`] takes the packed
    /// radix path: every row packs into one `u64` code word. Legal
    /// only for arity ≤ 2 with a dense-domain bound — packing wider
    /// rows does not fit a word, and without `domain_width > 0` the
    /// radix passes lose the bounded-digit guarantee the `Auto` cost
    /// model relies on (see `cqapx_structures::packed`). A pure
    /// function of the relation and the knob — never of the thread
    /// budget — so every dispatch site agrees.
    fn packed_sort_wanted(&self) -> bool {
        if self.domain_width == 0 || self.schema.is_empty() || self.schema.len() > 2 {
            return false;
        }
        match packed_mode() {
            PackedMode::Off => false,
            PackedMode::On => true,
            PackedMode::Auto => self.rows >= PACKED_MIN_ROWS,
        }
    }

    /// Whether projecting `self` to `vars` would take the fused
    /// packed path — the `EvalProfile` labelling predicate, mirroring
    /// the `packed_sort_wanted` check [`FlatRelation::project_budget`]
    /// makes on its (projected-schema, same-width, same-row-count)
    /// output shell.
    pub(crate) fn packed_project_would_dispatch(&self, vars: &[VarId]) -> bool {
        if self.domain_width == 0 {
            return false;
        }
        let mut kept: Vec<VarId> = Vec::new();
        for &v in vars {
            if !kept.contains(&v) {
                kept.push(v);
            }
        }
        if kept.is_empty() || kept.len() > 2 {
            return false;
        }
        match packed_mode() {
            PackedMode::Off => false,
            PackedMode::On => true,
            PackedMode::Auto => self.rows >= PACKED_MIN_ROWS,
        }
    }

    /// Whether a semijoin against `source` on `source_pos` would
    /// dispatch the packed word-compare kernel — the `EvalProfile`
    /// labelling predicate, kept in lockstep with the dispatch order
    /// of [`FlatRelation::semijoin_on_budget`].
    pub(crate) fn packed_semijoin_would_dispatch(
        source: &FlatRelation,
        source_pos: &[usize],
    ) -> bool {
        KeyIndex::wants_packed(source, source_pos)
    }

    /// Whether `self ⋈ other` would build a packed radix-partitioned
    /// index — the `EvalProfile` labelling predicate, mirroring
    /// [`FlatRelation::join_budget`]'s shared-column and
    /// build-smaller-side choices.
    pub(crate) fn packed_join_would_dispatch(&self, other: &FlatRelation) -> bool {
        let mut my_shared = Vec::new();
        let mut their_shared = Vec::new();
        for (i, v) in self.schema.iter().enumerate() {
            if let Some(j) = other.schema.iter().position(|w| w == v) {
                my_shared.push(i);
                their_shared.push(j);
            }
        }
        let (build, build_pos) = if self.rows <= other.rows {
            (self, &my_shared)
        } else {
            (other, &their_shared)
        };
        KeyIndex::wants_packed(build, build_pos)
    }

    /// Whether a sequential dedup of this relation would take the
    /// packed radix sort — the `EvalProfile` labelling predicate.
    pub(crate) fn packed_dedup_would_dispatch(&self) -> bool {
        self.packed_sort_wanted()
    }

    /// The existence bitmap of one column, built lazily and shared by
    /// clones. `None` when bitmaps are off ([`BitmapMode::Off`]) or
    /// the relation is ineligible — callers fall back to the index
    /// probe, which answers identically.
    pub(crate) fn column_bitmap(&self, col: usize) -> Option<Arc<DomainBitmap>> {
        if bitmap_mode() == BitmapMode::Off || !self.bitmap_eligible() {
            return None;
        }
        let cols = self
            .bitmaps
            .0
            .get_or_init(|| Arc::new(ColumnBitmaps::new(self.schema.len())));
        let a = self.schema.len();
        let bm = cols.cols[col].get_or_init(|| {
            let mut bm = DomainBitmap::new(self.domain_width);
            for i in 0..self.rows {
                bm.set(self.data[i * a + col]);
            }
            BITMAP_BUILDS.fetch_add(1, Ordering::Relaxed);
            BITMAP_RESIDENT.fetch_add(bm.heap_bytes(), Ordering::Relaxed);
            Arc::new(bm)
        });
        Some(Arc::clone(bm))
    }

    /// Eagerly builds every eligible column bitmap. The
    /// materialization cache calls this at entry landing so
    /// [`FlatRelation::heap_bytes`] — stored with the entry and
    /// subtracted at eviction — includes the bitmap words, keeping
    /// the byte budget honest.
    pub(crate) fn prebuild_bitmaps(&self) {
        for c in 0..self.schema.len() {
            let _ = self.column_bitmap(c);
        }
    }

    /// The column labels.
    pub fn schema(&self) -> &[VarId] {
        &self.schema
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.schema.len()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// `true` when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Drops all rows.
    pub fn clear(&mut self) {
        self.rows = 0;
        self.data.clear();
        self.invalidate_bitmaps();
    }

    /// Replaces the bitmap cell after a mutation. Clones made before
    /// the mutation keep the old (still-valid-for-them) bitmaps. Also
    /// drops the cached word image — every mutation site funnels
    /// through here, so this is the single derived-data invalidation
    /// point (the packed sort and merge re-stash after calling it).
    fn invalidate_bitmaps(&mut self) {
        self.words.0 = None;
        if self.bitmaps.0.get().is_some() {
            self.bitmaps = BitmapCell::default();
        }
    }

    /// Re-targets the buffer to a new schema, dropping all rows but
    /// keeping the allocation — the clear-and-refill scratch pattern of
    /// bag builds.
    pub(crate) fn reset(&mut self, schema: Vec<VarId>) {
        self.schema = schema;
        self.rows = 0;
        self.data.clear();
        self.domain_width = 0;
        self.invalidate_bitmaps();
    }

    /// The `i`-th row.
    pub fn row(&self, i: usize) -> &[Element] {
        let a = self.schema.len();
        &self.data[i * a..(i + 1) * a]
    }

    /// Iterates the rows (empty slices for 0-ary relations).
    pub fn iter_rows(&self) -> impl Iterator<Item = &[Element]> {
        let a = self.schema.len();
        (0..self.rows).map(move |i| &self.data[i * a..(i + 1) * a])
    }

    /// Appends a row (must match the arity). May introduce duplicates;
    /// call [`FlatRelation::sort_dedup`] to normalize.
    pub fn push_row(&mut self, row: &[Element]) {
        debug_assert_eq!(row.len(), self.schema.len(), "row arity mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
        self.invalidate_bitmaps();
    }

    /// The same rows under different column labels (`schema` must have
    /// the original arity). This is how cached materializations —
    /// stored under canonical labels — are adopted into a plan's
    /// variable space: one buffer memcpy, no re-scan.
    pub fn relabel(&self, schema: Vec<VarId>) -> FlatRelation {
        assert_eq!(schema.len(), self.schema.len(), "relabel arity mismatch");
        FlatRelation {
            schema,
            rows: self.rows,
            data: self.data.clone(),
            domain_width: self.domain_width,
            // Same rows, same bitmaps: relabeling shares the cell.
            bitmaps: self.bitmaps.clone(),
            words: WordsCell::default(),
        }
    }

    /// Appends every row of `other` (whose schema must cover the same
    /// variable set, in any column order), remapping columns by name.
    /// May introduce duplicates; callers finish with
    /// [`FlatRelation::sort_dedup`] — this is the buffer-level half of a
    /// set union.
    pub fn union_rows(&mut self, other: &FlatRelation) {
        assert_eq!(
            {
                let mut a = self.schema.clone();
                a.sort_unstable();
                a
            },
            {
                let mut b = other.schema.clone();
                b.sort_unstable();
                b
            },
            "union operands must range over the same variables"
        );
        self.domain_width = self.combine_widths(other);
        if self.schema == other.schema {
            self.data.extend_from_slice(&other.data);
            self.rows += other.rows;
            self.invalidate_bitmaps();
            return;
        }
        // Column remap: for each of my columns, its position in `other`.
        let from: Vec<usize> = self
            .schema
            .iter()
            .map(|v| other.schema.iter().position(|w| w == v).expect("same vars"))
            .collect();
        self.data.reserve(other.rows * self.schema.len());
        for row in other.iter_rows() {
            for &p in &from {
                self.data.push(row[p]);
            }
        }
        self.rows += other.rows;
        self.invalidate_bitmaps();
    }

    /// Sorts rows lexicographically and removes duplicates, leaving the
    /// canonical form all set-level comparisons rely on. Runs under the
    /// process-wide [`ThreadBudget::shared`] budget (sequential unless
    /// `CQAPX_THREADS` is set).
    pub fn sort_dedup(&mut self) {
        self.sort_dedup_budget(ThreadBudget::shared());
    }

    /// [`FlatRelation::sort_dedup`] under an explicit thread budget: a
    /// parallel merge sort (morsel-sorted runs, pairwise parallel
    /// merges, parallel gather) when the budget grants extra workers and
    /// the relation is large enough; the plain sequential sort
    /// otherwise. The canonical output is identical either way — rows
    /// that compare equal are byte-identical, so tie order cannot show.
    ///
    /// Built bitmaps stay valid across this call: reordering rows and
    /// dropping whole-row duplicates never changes a column's value
    /// *set*, which is all a bitmap records.
    pub fn sort_dedup_budget(&mut self, budget: &ThreadBudget) {
        let a = self.schema.len();
        if a == 0 {
            self.rows = self.rows.min(1);
            return;
        }
        if self.rows < PAR_MIN_ROWS || budget.capacity() == 0 {
            return self.sort_dedup_seq();
        }
        let lease = budget.claim(par_want(self.rows));
        if lease.extra() == 0 {
            return self.sort_dedup_seq();
        }
        self.words.0 = None;
        let w = lease.workers();
        let n = self.rows;
        let (rows_out, data_out) = {
            let data = &self.data;
            let row_cmp = |x: u32, y: u32| {
                let (x, y) = (x as usize * a, y as usize * a);
                data[x..x + a].cmp(&data[y..y + a])
            };
            // Sorted runs, one per worker-sized slice of the row space.
            let mut runs: Vec<Vec<u32>> = parallel_chunks(n, n.div_ceil(w), w, |_, r| {
                let mut idx: Vec<u32> = (r.start as u32..r.end as u32).collect();
                idx.sort_unstable_by(|&x, &y| row_cmp(x, y));
                idx
            });
            // Pairwise merges, each pair merged on its own worker.
            while runs.len() > 1 {
                let mut pairs: Vec<(Vec<u32>, Option<Vec<u32>>)> = Vec::new();
                let mut it = runs.into_iter();
                while let Some(first) = it.next() {
                    pairs.push((first, it.next()));
                }
                runs = parallel_map(pairs, w, |(left, right)| {
                    let Some(right) = right else { return left };
                    let mut merged = Vec::with_capacity(left.len() + right.len());
                    let (mut i, mut j) = (0, 0);
                    while i < left.len() && j < right.len() {
                        if row_cmp(left[i], right[j]) != std::cmp::Ordering::Greater {
                            merged.push(left[i]);
                            i += 1;
                        } else {
                            merged.push(right[j]);
                            j += 1;
                        }
                    }
                    merged.extend_from_slice(&left[i..]);
                    merged.extend_from_slice(&right[j..]);
                    merged
                });
            }
            let mut idx = runs.pop().expect("at least one run");
            idx.dedup_by(|&mut x, &mut y| {
                let (x, y) = (x as usize * a, y as usize * a);
                data[x..x + a] == data[y..y + a]
            });
            // Parallel gather into the output buffer (morsel order =
            // sorted order).
            let total = idx.len();
            let bufs = parallel_chunks(total, MORSEL_ROWS, w, |_, r| {
                let mut b: Vec<Element> = Vec::with_capacity(r.len() * a);
                for &i in &idx[r] {
                    b.extend_from_slice(&data[i as usize * a..][..a]);
                }
                b
            });
            let mut out = Vec::with_capacity(total * a);
            for b in bufs {
                out.extend_from_slice(&b);
            }
            (total, out)
        };
        self.rows = rows_out;
        self.data = data_out;
    }

    /// The sequential sort + dedup (also the `threads = 1` compile
    /// target of [`FlatRelation::sort_dedup_budget`]).
    ///
    /// Narrow relations (arity ≤ 8 — every bag and join-phase
    /// intermediate of practical plans) take a packed fast path: rows
    /// are copied into fixed-size arrays and sorted by value, which
    /// beats the index-indirect comparison sort by avoiding a random
    /// data-buffer read per comparison. `[Element; A]` orders
    /// lexicographically, i.e. exactly the canonical row order, so the
    /// output is bit-identical to the generic path's.
    ///
    /// When the rows pack into single `u64` code words
    /// ([`FlatRelation::packed_sort_wanted`]: arity ≤ 2 over a dense
    /// domain), the comparison sort is replaced by an LSB **radix
    /// sort** over the words. Packing is monotone — numeric word
    /// order is lexicographic row order — so this too is
    /// bit-identical, while a relation of `n` dense codes sorts in
    /// `O(n · passes)` with at most four byte passes under 64 K codes.
    fn sort_dedup_seq(&mut self) {
        // The word image is order-sensitive; drop it before any
        // re-sort (the radix arm stashes a fresh one).
        self.words.0 = None;
        if self.packed_sort_wanted() {
            return self.sort_dedup_radix();
        }
        self.sort_dedup_cmp()
    }

    /// The packed radix arm of [`FlatRelation::sort_dedup_seq`]:
    /// pack → radix sort → word dedup → unpack. Injectivity of the
    /// packing makes word equality row equality, so the dedup is a
    /// word compare per adjacent pair.
    ///
    /// Words are packed **tightly**: with `b` bits covering the dense
    /// bound, a two-column row becomes `hi << b | lo` — monotone for
    /// any `b` with `lo < 2^b`, exactly like the fixed-shift
    /// [`pack2`], but occupying `2b` bits instead of `32 + b`. Rows
    /// whose tight word fits 32 bits (and all single columns) sort as
    /// `u32` keys: half the memory traffic per pass and at most half
    /// the passes of the wide encoding.
    fn sort_dedup_radix(&mut self) {
        let a = self.schema.len();
        debug_assert!(a == 1 || a == 2, "only word-packable rows");
        let n = self.rows;
        if a == 1 {
            radix_dedup_u32(&mut self.data);
            self.rows = self.data.len();
            note_packed(n);
            return;
        }
        // Bits covering every code: codes are `< domain_width ≤ 2^b`.
        let b = match self.domain_width {
            0 | 1 => 0,
            w => 32 - (w - 1).leading_zeros(),
        };
        if 2 * b <= 32 {
            let mut keys = self.build_words32(b);
            radix_dedup_u32(&mut keys);
            self.data.clear();
            let mask = (1u32 << b).wrapping_sub(1);
            for &k in &keys {
                self.data.push(k >> b);
                self.data.push(k & mask);
            }
            self.rows = keys.len();
            self.words.0 = Some(PackedWords::W32 { b, keys });
        } else {
            let mut keys = self.build_words64(b);
            radix_dedup(&mut keys);
            self.data.clear();
            let mask = (1u64 << b) - 1;
            for &k in &keys {
                self.data.push((k >> b) as Element);
                self.data.push((k & mask) as Element);
            }
            self.rows = keys.len();
            self.words.0 = Some(PackedWords::W64 { b, keys });
        }
        note_packed(n);
    }

    /// Packs the two columns of every row into a tight `u32` word at
    /// per-column bit width `b` (caller guarantees arity 2, `2b ≤ 32`).
    fn build_words32(&self, b: u32) -> Vec<u32> {
        (0..self.rows)
            .map(|i| (self.data[2 * i] << b) | self.data[2 * i + 1])
            .collect()
    }

    /// [`FlatRelation::build_words32`] widened to `u64` words.
    fn build_words64(&self, b: u32) -> Vec<u64> {
        (0..self.rows)
            .map(|i| ((self.data[2 * i] as u64) << b) | self.data[2 * i + 1] as u64)
            .collect()
    }

    /// Fused packed projection: packs the kept columns of every source
    /// row straight into tight code words, radix sorts, dedups, and
    /// unpacks into `out`. This replaces the unpacked path's column
    /// gather **and** its canonical sort with one pipeline — the
    /// intermediate row buffer the gather would write (and the sort
    /// would immediately re-read) never exists. The caller guarantees
    /// `out.packed_sort_wanted()`: arity 1 or 2, a dense-domain bound,
    /// and a row count past the knob's threshold.
    fn project_packed_into(&self, keep: &[usize], out: &mut FlatRelation) {
        let a = self.schema.len();
        let n = self.rows;
        match *keep {
            [k] => {
                let mut keys: Vec<Element> = (0..n).map(|i| self.data[i * a + k]).collect();
                radix_dedup_u32(&mut keys);
                out.rows = keys.len();
                out.data = keys;
            }
            [k0, k1] => {
                // Bits covering every code (see `sort_dedup_radix`).
                let b = match out.domain_width {
                    0 | 1 => 0,
                    w => 32 - (w - 1).leading_zeros(),
                };
                if 2 * b <= 32 {
                    let mut keys: Vec<u32> = (0..n)
                        .map(|i| (self.data[i * a + k0] << b) | self.data[i * a + k1])
                        .collect();
                    radix_dedup_u32(&mut keys);
                    let mask = (1u32 << b).wrapping_sub(1);
                    out.data.reserve(2 * keys.len());
                    for &k in &keys {
                        out.data.push(k >> b);
                        out.data.push(k & mask);
                    }
                    out.rows = keys.len();
                } else {
                    let mut keys: Vec<u64> = (0..n)
                        .map(|i| {
                            ((self.data[i * a + k0] as u64) << b) | self.data[i * a + k1] as u64
                        })
                        .collect();
                    radix_dedup(&mut keys);
                    let mask = (1u64 << b) - 1;
                    out.data.reserve(2 * keys.len());
                    for &k in &keys {
                        out.data.push((k >> b) as Element);
                        out.data.push((k & mask) as Element);
                    }
                    out.rows = keys.len();
                }
            }
            _ => unreachable!("packed projection requires arity 1 or 2"),
        }
        note_packed(n);
    }

    /// The comparison arm of [`FlatRelation::sort_dedup_seq`] (also
    /// the `CQAPX_PACKED=off` pin the differential suites compare the
    /// radix arm against).
    fn sort_dedup_cmp(&mut self) {
        fn packed<const A: usize>(rows: usize, data: &mut Vec<Element>) -> usize {
            let mut packed: Vec<[Element; A]> = Vec::with_capacity(rows);
            for i in 0..rows {
                let mut r = [0; A];
                r.copy_from_slice(&data[i * A..(i + 1) * A]);
                packed.push(r);
            }
            packed.sort_unstable();
            packed.dedup();
            data.clear();
            for r in &packed {
                data.extend_from_slice(r);
            }
            packed.len()
        }
        let a = self.schema.len();
        match a {
            1 => self.rows = packed::<1>(self.rows, &mut self.data),
            2 => self.rows = packed::<2>(self.rows, &mut self.data),
            3 => self.rows = packed::<3>(self.rows, &mut self.data),
            4 => self.rows = packed::<4>(self.rows, &mut self.data),
            5 => self.rows = packed::<5>(self.rows, &mut self.data),
            6 => self.rows = packed::<6>(self.rows, &mut self.data),
            7 => self.rows = packed::<7>(self.rows, &mut self.data),
            8 => self.rows = packed::<8>(self.rows, &mut self.data),
            _ => {
                let data = &self.data;
                let mut idx: Vec<u32> = (0..self.rows as u32).collect();
                idx.sort_unstable_by(|&x, &y| {
                    let (x, y) = (x as usize * a, y as usize * a);
                    data[x..x + a].cmp(&data[y..y + a])
                });
                idx.dedup_by(|&mut x, &mut y| {
                    let (x, y) = (x as usize * a, y as usize * a);
                    data[x..x + a] == data[y..y + a]
                });
                let mut out = Vec::with_capacity(idx.len() * a);
                for &i in &idx {
                    out.extend_from_slice(&data[i as usize * a..][..a]);
                }
                self.rows = idx.len();
                self.data = out;
            }
        }
    }

    /// Intersection with a same-schema relation; both sides must be in
    /// sorted-dedup form (a single merge walk, no hashing).
    pub fn intersect_sorted(&mut self, other: &FlatRelation) {
        debug_assert_eq!(self.schema, other.schema, "intersect schema mismatch");
        let a = self.schema.len();
        if a == 0 {
            self.rows = self.rows.min(other.rows);
            return;
        }
        // Packed fast path: the merge walk compares words instead of
        // row slices, reusing the sorted word image the radix sort
        // cached on either side. Output bytes are identical — the
        // packing is monotone and injective, so the surviving words
        // unpack to exactly the rows the slice walk keeps.
        if self.packed_intersect_wanted(other) {
            return self.intersect_sorted_packed(other);
        }
        let mut w = 0usize; // write row
        let mut j = 0usize; // read row in other
        for i in 0..self.rows {
            let mine = i * a;
            while j < other.rows && other.data[j * a..j * a + a] < self.data[mine..mine + a] {
                j += 1;
            }
            if j < other.rows && other.data[j * a..j * a + a] == self.data[mine..mine + a] {
                self.data.copy_within(mine..mine + a, w * a);
                w += 1;
            }
        }
        self.rows = w;
        self.data.truncate(w * a);
        self.invalidate_bitmaps();
    }

    /// Whether [`FlatRelation::intersect_sorted`] takes the packed
    /// word-merge path: both sides carry the dense bound, rows pack
    /// into single words, and the knob agrees. A pure function of the
    /// operands and the knob — never of the thread budget — so every
    /// dispatch site agrees.
    fn packed_intersect_wanted(&self, other: &FlatRelation) -> bool {
        if self.domain_width == 0
            || other.domain_width == 0
            || self.schema.is_empty()
            || self.schema.len() > 2
        {
            return false;
        }
        match packed_mode() {
            PackedMode::Off => false,
            PackedMode::On => true,
            PackedMode::Auto => self.rows.max(other.rows) >= PACKED_MIN_ROWS,
        }
    }

    /// The packed arm of [`FlatRelation::intersect_sorted`]: merge
    /// over packed words, reusing the sorted word image the radix
    /// sort stashed on either side when the packing widths line up
    /// (multi-part bag builds sort each part right before
    /// intersecting, so the images are usually hot). The surviving
    /// words are stashed back, so the next part's intersection skips
    /// the re-pack too.
    fn intersect_sorted_packed(&mut self, other: &FlatRelation) {
        let n = self.rows;
        if self.schema.len() == 1 {
            // Single columns are their own words.
            let mut w = 0usize;
            let mut j = 0usize;
            for i in 0..n {
                let m = self.data[i];
                while j < other.rows && other.data[j] < m {
                    j += 1;
                }
                if j == other.rows {
                    break;
                }
                if other.data[j] == m {
                    self.data[w] = m;
                    w += 1;
                }
            }
            self.rows = w;
            self.data.truncate(w);
            self.invalidate_bitmaps();
            note_packed(n);
            return;
        }
        // One shared bit width so word order agrees on both sides.
        let b = match self.domain_width.max(other.domain_width) {
            0 | 1 => 0,
            w => 32 - (w - 1).leading_zeros(),
        };
        if 2 * b <= 32 {
            let mine = match self.words.0.take() {
                Some(PackedWords::W32 { b: wb, keys }) if wb == b => keys,
                _ => self.build_words32(b),
            };
            let kept = match &other.words.0 {
                Some(PackedWords::W32 { b: wb, keys }) if *wb == b => isect_keys(&mine, keys),
                _ => isect_keys(&mine, &other.build_words32(b)),
            };
            self.data.clear();
            let mask = (1u32 << b).wrapping_sub(1);
            for &k in &kept {
                self.data.push(k >> b);
                self.data.push(k & mask);
            }
            self.rows = kept.len();
            self.invalidate_bitmaps();
            self.words.0 = Some(PackedWords::W32 { b, keys: kept });
        } else {
            let mine = match self.words.0.take() {
                Some(PackedWords::W64 { b: wb, keys }) if wb == b => keys,
                _ => self.build_words64(b),
            };
            let kept = match &other.words.0 {
                Some(PackedWords::W64 { b: wb, keys }) if *wb == b => isect_keys(&mine, keys),
                _ => isect_keys(&mine, &other.build_words64(b)),
            };
            self.data.clear();
            let mask = (1u64 << b) - 1;
            for &k in &kept {
                self.data.push((k >> b) as Element);
                self.data.push((k & mask) as Element);
            }
            self.rows = kept.len();
            self.invalidate_bitmaps();
            self.words.0 = Some(PackedWords::W64 { b, keys: kept });
        }
        note_packed(n);
    }

    /// FxHash of the key columns of one row, hashed in place (no key
    /// vector is ever materialized).
    #[inline]
    fn hash_key(row: &[Element], pos: &[usize]) -> u64 {
        let mut h = FxHasher::default();
        for &p in pos {
            h.write_u32(row[p]);
        }
        h.finish()
    }

    #[inline]
    fn keys_eq(a: &[Element], a_pos: &[usize], b: &[Element], b_pos: &[usize]) -> bool {
        a_pos.iter().zip(b_pos.iter()).all(|(&i, &j)| a[i] == b[j])
    }

    /// Semijoin `self ⋉ other` on aligned key columns: keeps the rows of
    /// `self` whose `my_pos` columns match some row of `other` on its
    /// `their_pos` columns. Survivors are compacted **in place** — no
    /// row set is rebuilt and no per-row key is allocated. With empty
    /// key positions this is the cartesian-semantics degenerate case:
    /// all rows survive iff `other` is nonempty.
    pub fn semijoin_on(&mut self, my_pos: &[usize], other: &FlatRelation, their_pos: &[usize]) {
        self.semijoin_on_budget(my_pos, other, their_pos, ThreadBudget::shared());
    }

    /// [`FlatRelation::semijoin_on`] under an explicit thread budget:
    /// the probe runs over row-range morsels on claimed workers, each
    /// collecting its survivors, and the in-place compaction walks the
    /// morsel results in order — the surviving rows and their order are
    /// identical to the sequential sweep.
    pub fn semijoin_on_budget(
        &mut self,
        my_pos: &[usize],
        other: &FlatRelation,
        their_pos: &[usize],
        budget: &ThreadBudget,
    ) {
        debug_assert_eq!(my_pos.len(), their_pos.len(), "key positions must align");
        if my_pos.is_empty() {
            if other.is_empty() {
                self.clear();
            }
            return;
        }
        // Branch-free bitmap path for single-column keys against a
        // dense source: the existence predicate ("does my code occur
        // in the other column?") is exactly what the index probe
        // answers, so survivors — and with them output bytes — are
        // identical; only the per-row branch goes away.
        if my_pos.len() == 1 {
            if let Some(bm) = other.column_bitmap(their_pos[0]) {
                note_bitmap_probe();
                return self.semijoin_bitmap(my_pos[0], &bm, budget);
            }
        }
        // Word-compare path for two-column keys against a dense
        // source: pack both key columns into one word and test
        // membership in the radix-partitioned index — the selection-
        // vector style of the bitmap path, extended to pair keys. The
        // index groups exactly the matching rows, so survivors — and
        // output bytes — are identical to the per-row hashed probe.
        if KeyIndex::wants_packed(other, their_pos) {
            let index = KeyIndex::build_packed(other, their_pos);
            return self.semijoin_packed(my_pos, &index, budget);
        }
        let a = self.schema.len();
        if self.rows >= PAR_MIN_ROWS && budget.capacity() > 0 {
            // Build first (the build claims and releases its own
            // workers), then lease the probe: claiming the probe lease
            // first would drain the budget the build could have used.
            let index = KeyIndex::build_budget(other, their_pos, budget);
            let lease = budget.claim(par_want(self.rows));
            if lease.extra() > 0 {
                let survivors: Vec<Vec<u32>> = {
                    let data = &self.data;
                    parallel_chunks(self.rows, MORSEL_ROWS, lease.workers(), |_, r| {
                        let mut keep: Vec<u32> = Vec::new();
                        for i in r {
                            let row = &data[i * a..i * a + a];
                            if index.has_row_match(row, my_pos, other, their_pos) {
                                keep.push(i as u32);
                            }
                        }
                        keep
                    })
                };
                let mut w = 0usize;
                for keep in &survivors {
                    for &i in keep {
                        self.data
                            .copy_within(i as usize * a..i as usize * a + a, w * a);
                        w += 1;
                    }
                }
                self.rows = w;
                self.data.truncate(w * a);
                self.invalidate_bitmaps();
                return;
            }
            // No probe workers left: sequential probe over the (bit-
            // identical) index that was just built.
            return self.semijoin_probe_seq(my_pos, other, their_pos, &index);
        }
        let index = KeyIndex::build(other, their_pos);
        self.semijoin_probe_seq(my_pos, other, their_pos, &index);
    }

    /// The sequential semijoin probe + in-place compaction over a
    /// prebuilt index.
    fn semijoin_probe_seq(
        &mut self,
        my_pos: &[usize],
        other: &FlatRelation,
        their_pos: &[usize],
        index: &KeyIndex,
    ) {
        let a = self.schema.len();
        let mut w = 0usize;
        for i in 0..self.rows {
            let row = &self.data[i * a..i * a + a];
            if index.has_row_match(row, my_pos, other, their_pos) {
                self.data.copy_within(i * a..i * a + a, w * a);
                w += 1;
            }
        }
        self.rows = w;
        self.data.truncate(w * a);
        self.invalidate_bitmaps();
    }

    /// Semijoin survivor selection against a prebuilt existence
    /// bitmap: codes are tested **branch-free** into a selection
    /// vector (the membership read is straight-line word math and the
    /// conditional append is an unconditional store plus a 0/1 index
    /// bump), then the survivors are compacted once. The parallel
    /// variant collects per-morsel selection vectors and compacts in
    /// morsel order, mirroring [`FlatRelation::semijoin_on_budget`]
    /// exactly — survivors and their order are identical to the
    /// per-row `has_row_match` loop either way.
    fn semijoin_bitmap(&mut self, my_col: usize, bm: &DomainBitmap, budget: &ThreadBudget) {
        let a = self.schema.len();
        if self.rows >= PAR_MIN_ROWS && budget.capacity() > 0 {
            let lease = budget.claim(par_want(self.rows));
            if lease.extra() > 0 {
                let survivors: Vec<Vec<u32>> = {
                    let data = &self.data;
                    parallel_chunks(self.rows, MORSEL_ROWS, lease.workers(), |_, r| {
                        let mut keep: Vec<u32> = vec![0; r.len()];
                        let mut n = 0usize;
                        for i in r {
                            keep[n] = i as u32;
                            n += bm.contains(data[i * a + my_col]) as usize;
                        }
                        keep.truncate(n);
                        keep
                    })
                };
                let mut w = 0usize;
                for keep in &survivors {
                    for &i in keep {
                        self.data
                            .copy_within(i as usize * a..i as usize * a + a, w * a);
                        w += 1;
                    }
                }
                self.rows = w;
                self.data.truncate(w * a);
                self.invalidate_bitmaps();
                return;
            }
        }
        let mut sel: Vec<u32> = vec![0; self.rows];
        let mut n = 0usize;
        for i in 0..self.rows {
            sel[n] = i as u32;
            n += bm.contains(self.data[i * a + my_col]) as usize;
        }
        for (w, &i) in sel[..n].iter().enumerate() {
            self.data
                .copy_within(i as usize * a..i as usize * a + a, w * a);
        }
        self.rows = n;
        self.data.truncate(n * a);
        self.invalidate_bitmaps();
    }

    /// Semijoin survivor selection for two-column keys against a
    /// packed radix-partitioned index: each probe row's key columns
    /// pack into one `u64` word, membership is a word compare inside
    /// the index's partition, and survivors collect through the same
    /// selection-vector compaction as [`FlatRelation::semijoin_bitmap`]
    /// (unconditional store plus a 0/1 index bump). Sequential and
    /// morsel-parallel variants compact survivors in identical order.
    fn semijoin_packed(&mut self, my_pos: &[usize], index: &KeyIndex, budget: &ThreadBudget) {
        let a = self.schema.len();
        let (p0, p1) = (my_pos[0], my_pos[1]);
        if self.rows >= PAR_MIN_ROWS && budget.capacity() > 0 {
            let lease = budget.claim(par_want(self.rows));
            if lease.extra() > 0 {
                let survivors: Vec<Vec<u32>> = {
                    let data = &self.data;
                    parallel_chunks(self.rows, MORSEL_ROWS, lease.workers(), |_, r| {
                        let mut keep: Vec<u32> = vec![0; r.len()];
                        let mut n = 0usize;
                        for i in r {
                            keep[n] = i as u32;
                            let k = pack2(data[i * a + p0], data[i * a + p1]);
                            n += index.contains_packed(k) as usize;
                        }
                        keep.truncate(n);
                        keep
                    })
                };
                let mut w = 0usize;
                for keep in &survivors {
                    for &i in keep {
                        self.data
                            .copy_within(i as usize * a..i as usize * a + a, w * a);
                        w += 1;
                    }
                }
                self.rows = w;
                self.data.truncate(w * a);
                self.invalidate_bitmaps();
                return;
            }
        }
        let mut sel: Vec<u32> = vec![0; self.rows];
        let mut n = 0usize;
        for i in 0..self.rows {
            sel[n] = i as u32;
            let k = pack2(self.data[i * a + p0], self.data[i * a + p1]);
            n += index.contains_packed(k) as usize;
        }
        for (w, &i) in sel[..n].iter().enumerate() {
            self.data
                .copy_within(i as usize * a..i as usize * a + a, w * a);
        }
        self.rows = n;
        self.data.truncate(n * a);
        self.invalidate_bitmaps();
    }

    /// Natural join `self ⋈ other`: output schema is `self`'s columns
    /// followed by `other`'s extra columns. Hash join building the key
    /// index on the smaller side; cartesian product when the schemas are
    /// disjoint.
    pub fn join(&self, other: &FlatRelation) -> FlatRelation {
        self.join_budget(other, ThreadBudget::shared())
    }

    /// [`FlatRelation::join`] under an explicit thread budget: the key
    /// index is built on the smaller side (hash-partitioned build when
    /// large), and the larger side probes it over row-range morsels,
    /// each worker emitting into its own output buffer; the buffers are
    /// stitched in morsel order, so the output rows and their order are
    /// identical to the sequential probe loop.
    pub fn join_budget(&self, other: &FlatRelation, budget: &ThreadBudget) -> FlatRelation {
        let my_map: FxHashMap<VarId, usize> = self
            .schema
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i))
            .collect();
        let their_map: FxHashMap<VarId, usize> = other
            .schema
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i))
            .collect();
        let mut my_shared = Vec::new();
        let mut their_shared = Vec::new();
        for (i, v) in self.schema.iter().enumerate() {
            if let Some(&j) = their_map.get(v) {
                my_shared.push(i);
                their_shared.push(j);
            }
        }
        let mut their_extra = Vec::new();
        let mut schema = self.schema.clone();
        for (j, &v) in other.schema.iter().enumerate() {
            if !my_map.contains_key(&v) {
                their_extra.push(j);
                schema.push(v);
            }
        }
        let out_arity = schema.len();
        let mut out = FlatRelation::empty(schema);
        // When `other` contributes no output columns (its variables
        // are a subset of mine — a semijoin-shaped join), every output
        // element comes from `self`, so my bound survives even if the
        // other side carries none.
        out.domain_width = if their_extra.is_empty() && self.domain_width > 0 {
            self.domain_width
        } else {
            self.combine_widths(other)
        };

        if my_shared.is_empty() {
            // Disjoint schemas: cartesian product.
            out.data.reserve(self.rows * other.rows * out_arity);
            for i in 0..self.rows {
                for j in 0..other.rows {
                    out.data.extend_from_slice(self.row(i));
                    let orow = other.row(j);
                    for &p in &their_extra {
                        out.data.push(orow[p]);
                    }
                }
            }
            out.rows = self.rows * other.rows;
            return out;
        }

        // Build the index on the smaller side, probe with the larger.
        // `probe_is_other` tracks which operand the probe rows come
        // from, because the output layout is always `self`'s columns
        // followed by `other`'s extras.
        let (build, probe, build_pos, probe_pos, probe_is_other) = if self.rows <= other.rows {
            (self, other, &my_shared, &their_shared, true)
        } else {
            (other, self, &their_shared, &my_shared, false)
        };
        // One probe morsel: emit every match of rows `range` into `buf`
        // (the sequential loop is the single-morsel case).
        let probe_range =
            |buf: &mut Vec<Element>, range: std::ops::Range<usize>, index: &KeyIndex| -> usize {
                let mut rows = 0usize;
                let exact = index.is_exact();
                for j in range {
                    let prow = probe.row(j);
                    for m in index.probe_row(prow, probe_pos) {
                        let brow = build.row(m);
                        if exact || Self::keys_eq(prow, probe_pos, brow, build_pos) {
                            let (s_row, o_row) = if probe_is_other {
                                (brow, prow)
                            } else {
                                (prow, brow)
                            };
                            buf.extend_from_slice(s_row);
                            for &p in &their_extra {
                                buf.push(o_row[p]);
                            }
                            rows += 1;
                        }
                    }
                }
                rows
            };

        if probe.rows >= PAR_MIN_ROWS && budget.capacity() > 0 {
            // Build first (own worker claim, released after), then
            // lease the probe — the other order would hand the build's
            // workers to the probe before the build could use them.
            let index = KeyIndex::build_budget(build, build_pos, budget);
            let lease = budget.claim(par_want(probe.rows));
            if lease.extra() > 0 {
                let parts: Vec<(Vec<Element>, usize)> =
                    parallel_chunks(probe.rows, MORSEL_ROWS, lease.workers(), |_, r| {
                        let mut buf: Vec<Element> = Vec::new();
                        let rows = probe_range(&mut buf, r, &index);
                        (buf, rows)
                    });
                let total_rows: usize = parts.iter().map(|(_, r)| r).sum();
                out.data.reserve(total_rows * out_arity);
                for (buf, rows) in parts {
                    out.data.extend_from_slice(&buf);
                    out.rows += rows;
                }
                return out;
            }
            // No probe workers left: sequential probe over the index
            // that was just built (bit-identical to a sequential build).
            let mut buf = std::mem::take(&mut out.data);
            out.rows = probe_range(&mut buf, 0..probe.rows, &index);
            out.data = buf;
            return out;
        }
        let index = KeyIndex::build(build, build_pos);
        let mut buf = std::mem::take(&mut out.data);
        out.rows = probe_range(&mut buf, 0..probe.rows, &index);
        out.data = buf;
        out
    }

    /// Projection onto a sub-schema (variables must be present;
    /// duplicates collapse to their first occurrence). The result is
    /// sorted and deduplicated.
    pub fn project(&self, vars: &[VarId]) -> FlatRelation {
        self.project_budget(vars, ThreadBudget::shared())
    }

    /// [`FlatRelation::project`] under an explicit thread budget: the
    /// column gather runs over row-range morsels stitched in order, and
    /// the canonicalizing sort is [`FlatRelation::sort_dedup_budget`].
    pub fn project_budget(&self, vars: &[VarId], budget: &ThreadBudget) -> FlatRelation {
        let map: FxHashMap<VarId, usize> = self
            .schema
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i))
            .collect();
        let mut schema = Vec::new();
        let mut keep = Vec::new();
        for &v in vars {
            if !schema.contains(&v) {
                schema.push(v);
                keep.push(*map.get(&v).expect("projected variable must be in schema"));
            }
        }
        let mut out = FlatRelation::empty(schema);
        out.domain_width = self.domain_width;
        out.rows = self.rows;
        // Fused packed projection: when the projected rows pack into
        // code words, build the words straight from the source rows —
        // the column gather, the canonical sort, and the dedup of the
        // unpacked path collapse into one radix pipeline with no
        // intermediate row buffer. Output bytes are identical: the
        // packing is monotone, so sorted distinct words unpack to the
        // sorted distinct rows the gather-then-sort path produces.
        if out.packed_sort_wanted() {
            self.project_packed_into(&keep, &mut out);
            return out;
        }
        let mut gathered = false;
        if self.rows >= PAR_MIN_ROWS && budget.capacity() > 0 {
            let lease = budget.claim(par_want(self.rows));
            if lease.extra() > 0 {
                let bufs = parallel_chunks(self.rows, MORSEL_ROWS, lease.workers(), |_, r| {
                    let mut b: Vec<Element> = Vec::with_capacity(r.len() * keep.len());
                    for i in r {
                        let row = self.row(i);
                        for &p in &keep {
                            b.push(row[p]);
                        }
                    }
                    b
                });
                out.data.reserve(self.rows * keep.len());
                for b in bufs {
                    out.data.extend_from_slice(&b);
                }
                gathered = true;
            }
        }
        if !gathered {
            out.data.reserve(self.rows * keep.len());
            for i in 0..self.rows {
                let row = self.row(i);
                for &p in &keep {
                    out.data.push(row[p]);
                }
            }
        }
        out.sort_dedup_budget(budget);
        out
    }

    /// Distinct projection **without** the canonical ordering: gathers
    /// the kept columns and dedups through an open-addressed hash table
    /// in one pass, leaving row order unspecified (first occurrence
    /// wins). Requires a duplicate-free input (all plan intermediates
    /// are). The join-phase operators only need set semantics — joins
    /// and semijoins probe hashes, and the answer collector orders —
    /// so plan execution uses this on wide intermediates where the
    /// O(n log n) sort dwarfs the dedup it buys. Bag materialization
    /// keeps using [`FlatRelation::project_budget`]: its sorted output
    /// is a cache and bit-identity contract.
    pub fn project_distinct(&self, vars: &[VarId]) -> FlatRelation {
        let map: FxHashMap<VarId, usize> = self
            .schema
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i))
            .collect();
        let mut schema = Vec::new();
        let mut keep = Vec::new();
        for &v in vars {
            if !schema.contains(&v) {
                schema.push(v);
                keep.push(*map.get(&v).expect("projected variable must be in schema"));
            }
        }
        let a = keep.len();
        let mut out = FlatRelation::empty(schema);
        out.domain_width = self.domain_width;
        if a == 0 {
            out.rows = self.rows.min(1);
            return out;
        }
        // Packed fast path: projected rows that fit a code word dedup
        // through the radix pipeline instead of the hash table —
        // sequential counting passes instead of random probes into an
        // open-addressed table that outgrows cache on wide inputs.
        // This op's row order is unspecified by contract, so the
        // packed path's sorted order is a legal (and canonical)
        // choice; every consumer is order-insensitive.
        if self.packed_project_would_dispatch(vars) {
            self.project_packed_into(&keep, &mut out);
            return out;
        }
        // Open addressing over output-row indices, hashes recomputed on
        // compare-miss only (the table stays a quarter empty).
        let cap = (self.rows * 2).next_power_of_two().max(16);
        let mask = cap - 1;
        let mut table: Vec<u32> = vec![u32::MAX; cap];
        out.data.reserve(self.rows.min(cap) * a);
        let mut scratch: Vec<Element> = vec![0; a];
        for i in 0..self.rows {
            let row = self.row(i);
            for (s, &p) in scratch.iter_mut().zip(&keep) {
                *s = row[p];
            }
            let mut slot = (Self::hash_row(&scratch) as usize) & mask;
            loop {
                let entry = table[slot];
                if entry == u32::MAX {
                    table[slot] = out.rows as u32;
                    out.data.extend_from_slice(&scratch);
                    out.rows += 1;
                    break;
                }
                if out.data[entry as usize * a..][..a] == scratch[..] {
                    break;
                }
                slot = (slot + 1) & mask;
            }
        }
        out
    }

    /// FxHash of a whole row.
    #[inline]
    fn hash_row(row: &[Element]) -> u64 {
        let mut h = FxHasher::default();
        for &e in row {
            h.write_u32(e);
        }
        h.finish()
    }

    /// Per-column maximum value frequency — the observed heavy-hitter
    /// degree the Auto bag strategy feeds into its skew-corrected
    /// estimate (see `resolve_bag_strategy_observed`). One counting
    /// pass per column; empty relations report all zeros.
    pub fn max_degrees(&self) -> Vec<usize> {
        let a = self.schema.len();
        let mut out = vec![0usize; a];
        let mut counts: FxHashMap<Element, usize> = FxHashMap::default();
        for (j, slot) in out.iter_mut().enumerate() {
            counts.clear();
            for r in 0..self.rows {
                *counts.entry(self.data[r * a + j]).or_insert(0) += 1;
            }
            *slot = counts.values().copied().max().unwrap_or(0);
        }
        out
    }

    /// Reads the rows out in the order of an explicit head (duplicated
    /// head variables allowed).
    pub fn rows_in_head_order(&self, head: &[VarId]) -> BTreeSet<Vec<Element>> {
        let map: FxHashMap<VarId, usize> = self
            .schema
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i))
            .collect();
        let positions: Vec<usize> = head
            .iter()
            .map(|v| *map.get(v).expect("head variable must be in schema"))
            .collect();
        self.iter_rows()
            .map(|r| positions.iter().map(|&p| r[p]).collect())
            .collect()
    }

    /// [`FlatRelation::rows_in_head_order`] with the dictionary decode
    /// applied: relations materialized from a structure hold dense
    /// domain codes, and this is the one boundary where codes turn back
    /// into the structure's elements. A no-op (bit-identical) when the
    /// dictionary encodes identically.
    pub fn rows_in_head_order_decoded(
        &self,
        head: &[VarId],
        dict: &DomainDict,
    ) -> BTreeSet<Vec<Element>> {
        if dict.is_identity() {
            return self.rows_in_head_order(head);
        }
        // The encoding is monotone, so decoding per row preserves the
        // set (and even the canonical order) exactly.
        self.rows_in_head_order(head)
            .into_iter()
            .map(|row| row.into_iter().map(|c| dict.decode(c)).collect())
            .collect()
    }
}

/// A key index over the key columns of a [`FlatRelation`], in one of
/// three representations chosen deterministically at build time:
///
/// * [`KeyIndex::Hashed`] — a chained hash index: a flat power-of-two
///   bucket table (`heads`, addressed by the top hash bits) with rows
///   of one bucket linked through `next`, plus the **per-row key hash
///   computed once at build time** in `hashes`. Storing the hashes pays
///   twice: the probe filters chain entries by stored hash before any
///   column comparison, and the hash-partitioned parallel build reuses
///   the hash pass when distributing rows to bucket-range partitions.
///
/// * [`KeyIndex::Direct`] — a direct-addressed (CSR) index for
///   **single-column keys over a dense domain**: `offsets[v]..
///   offsets[v+1]` delimits the slice of `slots` holding exactly the
///   rows whose key column equals code `v`. No hashing, no collision
///   chains, one array load per probe. Eligible only when the relation
///   carries a dense-domain bound ([`FlatRelation::domain_width`]) and
///   the bound is small enough that the offset table costs no more
///   than the hashed build it replaces.
///
/// * [`KeyIndex::Packed`] — a radix-partitioned index for **two-column
///   keys over a dense domain** (`CQAPX_PACKED`): keys are packed into
///   single `u64` code words, the `(word, row)` pairs radix-sorted,
///   and the distinct words stored CSR-grouped under a **partition
///   directory** over the words' top used bits — each directory slot
///   delimits a cache-sized run of sorted words. A probe is one shift,
///   one directory load, and a word-compare search inside the
///   partition: no hashing, no collision chains, and — because every
///   group holds exactly the rows equal to the probe word — no
///   per-candidate key re-check.
///
/// Buckets of all representations list rows in **descending row
/// order** (the chained build pushes at the head in ascending row
/// order; the direct build fills in reverse; the packed build feeds
/// the stable radix sort in reverse), so probe sequences — and
/// with them join output buffers — are byte-identical across
/// representations.
enum KeyIndex {
    Hashed {
        /// Bucket heads; length is a power of two.
        heads: Vec<u32>,
        /// Next row in the same bucket.
        next: Vec<u32>,
        /// The key hash of every indexed row, computed once at build.
        hashes: Vec<u64>,
        /// `bucket(h) = h >> shift` — top bits address the table.
        shift: u32,
    },
    Direct {
        /// CSR offsets, length `width + 1`.
        offsets: Vec<u32>,
        /// Row ids grouped by key code, descending within a group.
        slots: Vec<u32>,
    },
    Packed {
        /// The distinct packed key words, ascending.
        keys: Vec<u64>,
        /// CSR offsets into `slots`, length `keys.len() + 1`.
        offsets: Vec<u32>,
        /// Row ids grouped by key word, descending within a group.
        slots: Vec<u32>,
        /// Partition directory: `dir[d]..dir[d + 1]` delimits the run
        /// of `keys` whose word `>> dir_shift` equals `d`. Length
        /// `partitions + 1`; sized to roughly one key per slot, capped
        /// so the table stays cache-resident.
        dir: Vec<u32>,
        /// Top-used-bits shift addressing the directory.
        dir_shift: u32,
    },
}

const CHAIN_END: u32 = u32::MAX;

impl KeyIndex {
    /// Bucket count and shift for `n` rows: one bucket per row, rounded
    /// up to a power of two (minimum 2, so the shift stays below 64).
    fn table_shape(n: usize) -> (usize, u32) {
        let buckets = n.next_power_of_two().max(2);
        (buckets, 64 - buckets.trailing_zeros())
    }

    /// Whether a build over `pos` takes the direct-addressed
    /// representation: single-column key, dense-domain bound present,
    /// and an offset table no larger than ~4 slots per row (beyond
    /// that the hashed index is both smaller and cache-friendlier).
    /// A pure function of the relation and key — never of the thread
    /// budget — so parallel and sequential builds always agree.
    fn wants_direct(rel: &FlatRelation, pos: &[usize]) -> bool {
        pos.len() == 1
            && rel.domain_width > 0
            && (rel.domain_width as usize) <= 4 * rel.len().max(16)
            && direct_index_enabled()
    }

    /// Counting-sort build of the direct representation: one pass
    /// counts codes, one prefix sum, one **reverse** fill so each
    /// code's slot group lists rows in descending order — the exact
    /// probe order of the chained-hash build.
    fn build_direct(rel: &FlatRelation, col: usize) -> KeyIndex {
        let n = rel.len();
        let a = rel.schema.len();
        let width = rel.domain_width as usize;
        let mut offsets = vec![0u32; width + 1];
        for i in 0..n {
            offsets[rel.data[i * a + col] as usize + 1] += 1;
        }
        for v in 1..=width {
            offsets[v] += offsets[v - 1];
        }
        let mut cursor = offsets.clone();
        let mut slots = vec![0u32; n];
        for i in (0..n).rev() {
            let v = rel.data[i * a + col] as usize;
            slots[cursor[v] as usize] = i as u32;
            cursor[v] += 1;
        }
        KeyIndex::Direct { offsets, slots }
    }

    /// Whether a build over `pos` takes the packed radix-partitioned
    /// representation: a two-column key (single-column keys already
    /// have the cheaper direct/hashed paths) over a dense-domain bound
    /// — the packing invariant — with the `CQAPX_PACKED` knob
    /// consenting. Like [`KeyIndex::wants_direct`], a pure function of
    /// the relation and key, never of the thread budget.
    fn wants_packed(rel: &FlatRelation, pos: &[usize]) -> bool {
        pos.len() == 2
            && rel.domain_width > 0
            && match packed_mode() {
                PackedMode::Off => false,
                PackedMode::On => true,
                PackedMode::Auto => rel.len() >= PACKED_MIN_ROWS,
            }
    }

    /// Packs a probe row's two key columns into the index's word form.
    #[inline]
    fn pack_key(row: &[Element], pos: &[usize]) -> u64 {
        pack2(row[pos[0]], row[pos[1]])
    }

    /// Radix-partitioned build: pack every key, radix-sort the
    /// `(word, row)` pairs — rows fed in **reverse** so the stable
    /// passes leave each word group listing rows descending, the
    /// chained-hash probe order — then lay the groups out CSR and
    /// index the sorted words with a top-bits partition directory.
    fn build_packed(rel: &FlatRelation, pos: &[usize]) -> KeyIndex {
        let n = rel.len();
        let a = rel.schema.len();
        let (p0, p1) = (pos[0], pos[1]);
        let mut pairs: Vec<(u64, u32)> = Vec::with_capacity(n);
        for i in (0..n).rev() {
            let base = i * a;
            pairs.push((pack2(rel.data[base + p0], rel.data[base + p1]), i as u32));
        }
        radix_sort_pairs(&mut pairs);
        let mut keys: Vec<u64> = Vec::new();
        let mut offsets: Vec<u32> = Vec::new();
        let mut slots: Vec<u32> = Vec::with_capacity(n);
        for &(k, row) in &pairs {
            if keys.last() != Some(&k) {
                keys.push(k);
                offsets.push(slots.len() as u32);
            }
            slots.push(row);
        }
        offsets.push(slots.len() as u32);
        // Directory over the top used bits: keys are sorted, so every
        // partition is a contiguous run. One slot per distinct key
        // (rounded to a power of two), capped at 2^16 slots so the
        // table stays cache-resident even for huge builds.
        let used_bits = keys.last().map_or(0, |k| 64 - k.leading_zeros());
        let dir_bits = (64 - (keys.len() as u64).leading_zeros())
            .min(used_bits)
            .min(16);
        let dir_shift = used_bits - dir_bits;
        let mut dir = vec![0u32; (1usize << dir_bits) + 1];
        for &k in &keys {
            dir[(k >> dir_shift) as usize + 1] += 1;
        }
        for d in 1..dir.len() {
            dir[d] += dir[d - 1];
        }
        note_packed(n);
        KeyIndex::Packed {
            keys,
            offsets,
            slots,
            dir,
            dir_shift,
        }
    }

    /// The rows matching packed word `k` exactly (descending), or the
    /// empty slice: directory partition, then a word-compare binary
    /// search inside it. Words above every indexed key shift past the
    /// directory and read as absent, mirroring the direct index's
    /// out-of-range behaviour.
    #[inline]
    fn packed_group(&self, k: u64) -> &[u32] {
        let KeyIndex::Packed {
            keys,
            offsets,
            slots,
            dir,
            dir_shift,
        } = self
        else {
            unreachable!("packed group on a non-packed index")
        };
        let d = (k >> dir_shift) as usize;
        // `dir` always has at least two fences; a word whose partition
        // shifts past the last fence is above every indexed key.
        if d >= dir.len() - 1 {
            return &[];
        }
        let (lo, hi) = (dir[d] as usize, dir[d + 1] as usize);
        match keys[lo..hi].binary_search(&k) {
            Ok(g) => {
                let g = lo + g;
                &slots[offsets[g] as usize..offsets[g + 1] as usize]
            }
            Err(_) => &[],
        }
    }

    /// Word-membership probe on a packed index: is any indexed row's
    /// key equal to word `k`?
    #[inline]
    fn contains_packed(&self, k: u64) -> bool {
        !self.packed_group(k).is_empty()
    }

    fn build(rel: &FlatRelation, pos: &[usize]) -> KeyIndex {
        if Self::wants_direct(rel, pos) {
            return Self::build_direct(rel, pos[0]);
        }
        if Self::wants_packed(rel, pos) {
            return Self::build_packed(rel, pos);
        }
        let n = rel.len();
        let mut hashes = vec![0u64; n];
        for (i, h) in hashes.iter_mut().enumerate() {
            *h = FlatRelation::hash_key(rel.row(i), pos);
        }
        let (buckets, shift) = Self::table_shape(n);
        let mut heads = vec![CHAIN_END; buckets];
        let mut next = vec![CHAIN_END; n];
        for (i, slot) in next.iter_mut().enumerate() {
            let b = (hashes[i] >> shift) as usize;
            *slot = heads[b];
            heads[b] = i as u32;
        }
        KeyIndex::Hashed {
            heads,
            next,
            hashes,
            shift,
        }
    }

    /// Hash-partitioned parallel build: one worker pass computes the
    /// per-row hashes over morsels, then each worker owns a contiguous
    /// **bucket range** and inserts exactly the rows hashing into it
    /// (reusing the stored hashes), scanning rows in ascending order —
    /// the resulting table is bit-identical to the sequential build, so
    /// probe sequences (and join output order) cannot depend on the
    /// thread count.
    fn build_budget(rel: &FlatRelation, pos: &[usize], budget: &ThreadBudget) -> KeyIndex {
        let n = rel.len();
        // The direct build is a counting sort — linear, branch-free,
        // already cheaper than the parallel hashed build's hash pass —
        // so it never claims workers (and the representation choice
        // stays budget-independent). The packed build is a handful of
        // radix passes, comparable to the hash pass alone, and stays
        // sequential for the same reason.
        if Self::wants_direct(rel, pos) {
            return Self::build_direct(rel, pos[0]);
        }
        if Self::wants_packed(rel, pos) {
            return Self::build_packed(rel, pos);
        }
        if n < PAR_MIN_ROWS || budget.capacity() == 0 {
            return Self::build(rel, pos);
        }
        let lease = budget.claim(par_want(n));
        if lease.extra() == 0 {
            return Self::build(rel, pos);
        }
        let w = lease.workers();
        let mut hashes = vec![0u64; n];
        {
            let out = DisjointWriter::new(&mut hashes);
            parallel_chunks(n, MORSEL_ROWS, w, |_, r| {
                for i in r {
                    // SAFETY: morsels are disjoint row ranges; i < n.
                    unsafe { out.write(i, FlatRelation::hash_key(rel.row(i), pos)) };
                }
            });
        }
        let (buckets, shift) = Self::table_shape(n);
        let mut heads = vec![CHAIN_END; buckets];
        let mut next = vec![CHAIN_END; n];
        {
            let hw = DisjointWriter::new(&mut heads);
            let nw = DisjointWriter::new(&mut next);
            let hashes = &hashes;
            // Deliberate tradeoff: every partition rescans the whole
            // hash array (w sequential passes over 8·n bytes total)
            // to find its rows, because the *inserts* — random-access
            // writes into a table larger than cache — are what
            // dominate a large build, and those split w ways. The
            // rescan keeps the build single-phase with zero shared
            // mutable state beyond the partition-owned slots.
            parallel_chunks(buckets, buckets.div_ceil(w), w, |_, bucket_range| {
                for (i, &h) in hashes.iter().enumerate() {
                    let b = (h >> shift) as usize;
                    if bucket_range.contains(&b) {
                        // SAFETY: each bucket lies in exactly one
                        // worker's range, and each row hashes to exactly
                        // one bucket — all slots are partition-owned.
                        unsafe {
                            nw.write(i, hw.read(b));
                            hw.write(b, i as u32);
                        }
                    }
                }
            });
        }
        KeyIndex::Hashed {
            heads,
            next,
            hashes,
            shift,
        }
    }

    /// All candidate row indices for a probe row's key columns (callers
    /// re-check the actual columns; for the direct representation the
    /// candidates already match exactly and the re-check is a trivially
    /// true column compare). Hashed: chain walk filtered by stored
    /// hash. Direct: one slice lookup, out-of-range codes yield
    /// nothing.
    #[inline]
    fn probe_row<'a>(&'a self, row: &[Element], pos: &[usize]) -> ProbeIter<'a> {
        match self {
            KeyIndex::Hashed { .. } => self.probe_hash(FlatRelation::hash_key(row, pos)),
            KeyIndex::Direct { .. } => self.probe_value(row[pos[0]]),
            KeyIndex::Packed { .. } => {
                ProbeIter::Direct(self.packed_group(Self::pack_key(row, pos)).iter())
            }
        }
    }

    /// Whether probe candidates are **exact** matches already: direct
    /// buckets hold exactly the rows whose key column equals the probe
    /// code — and packed groups exactly the rows whose packed key word
    /// equals the probe word — so callers may skip the per-candidate
    /// column re-check that the hashed representation needs against
    /// collisions.
    #[inline]
    fn is_exact(&self) -> bool {
        matches!(self, KeyIndex::Direct { .. } | KeyIndex::Packed { .. })
    }

    /// Existence-only probe: does any indexed row of `build` match the
    /// probe `row` on the key columns? The direct representation
    /// answers from the offset table alone — two loads, no candidate
    /// iteration and no `build` row access; hashed walks the chain and
    /// re-checks columns as usual.
    #[inline]
    fn has_row_match(
        &self,
        row: &[Element],
        pos: &[usize],
        build: &FlatRelation,
        build_pos: &[usize],
    ) -> bool {
        match self {
            KeyIndex::Direct { offsets, .. } => {
                let v = row[pos[0]] as usize;
                v + 1 < offsets.len() && offsets[v] < offsets[v + 1]
            }
            KeyIndex::Packed { .. } => self.contains_packed(Self::pack_key(row, pos)),
            KeyIndex::Hashed { .. } => self
                .probe_row(row, pos)
                .any(|m| FlatRelation::keys_eq(row, pos, build.row(m), build_pos)),
        }
    }

    /// Probe by a single key value (the WCOJ prefix probe: key column
    /// is always column 0 of the part).
    #[inline]
    fn probe_value(&self, v: Element) -> ProbeIter<'_> {
        match self {
            KeyIndex::Hashed { .. } => self.probe_hash(FlatRelation::hash_key(&[v], &[0])),
            KeyIndex::Direct { offsets, slots, .. } => {
                let group = if (v as usize) < offsets.len() - 1 {
                    &slots[offsets[v as usize] as usize..offsets[v as usize + 1] as usize]
                } else {
                    &[]
                };
                ProbeIter::Direct(group.iter())
            }
            KeyIndex::Packed { .. } => {
                unreachable!("single-value probe on a packed two-column index")
            }
        }
    }

    #[inline]
    fn probe_hash(&self, hash: u64) -> ProbeIter<'_> {
        match self {
            KeyIndex::Hashed {
                heads,
                next,
                hashes,
                shift,
            } => ProbeIter::Hashed {
                next,
                hashes,
                hash,
                cur: heads[(hash >> shift) as usize],
            },
            KeyIndex::Direct { .. } | KeyIndex::Packed { .. } => {
                unreachable!("hash probe on an exact index")
            }
        }
    }
}

enum ProbeIter<'a> {
    Hashed {
        next: &'a [u32],
        hashes: &'a [u64],
        hash: u64,
        cur: u32,
    },
    Direct(std::slice::Iter<'a, u32>),
}

impl Iterator for ProbeIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        match self {
            ProbeIter::Hashed {
                next,
                hashes,
                hash,
                cur,
            } => {
                while *cur != CHAIN_END {
                    let r = *cur as usize;
                    *cur = next[r];
                    if hashes[r] == *hash {
                        return Some(r);
                    }
                }
                None
            }
            ProbeIter::Direct(it) => it.next().map(|&r| r as usize),
        }
    }
}

/// Candidates per parallel morsel of the multiway kernel: the unit of
/// work is one first-variable candidate *subtree*, which is far heavier
/// than one row, so the morsel is much smaller than [`MORSEL_ROWS`].
const WCOJ_MORSEL_CANDS: usize = 32;

/// First row in `lo..hi` whose `col` value is `>= v` (`> v` when
/// `strict`): galloping search — exponential probe from `lo`, then
/// binary search inside the overshot step. Within a fixed-prefix row
/// range of a sorted relation the column is sorted, which is what makes
/// this the "per-column sorted index" of the multiway kernel.
fn gallop(
    data: &[Element],
    arity: usize,
    col: usize,
    lo: usize,
    hi: usize,
    v: Element,
    strict: bool,
) -> usize {
    let above = |row: usize| {
        let x = data[row * arity + col];
        if strict {
            x > v
        } else {
            x >= v
        }
    };
    if lo >= hi || above(lo) {
        return lo;
    }
    let mut step = 1usize;
    let mut prev = lo;
    loop {
        let nxt = prev + step;
        if nxt >= hi || above(nxt) {
            // Binary search in (prev, min(nxt, hi)).
            let (mut l, mut h) = (prev + 1, nxt.min(hi));
            while l < h {
                let mid = l + (h - l) / 2;
                if above(mid) {
                    h = mid;
                } else {
                    l = mid + 1;
                }
            }
            return l;
        }
        prev = nxt;
        step <<= 1;
    }
}

/// Static shape of one multiway join: which global variable level each
/// part column binds at, which parts activate at each level, and the
/// column-0 [`KeyIndex`]es used as prefix probes for parts that enter
/// the recursion below the root (their whole relation is the candidate
/// range, so a stored-hash probe finds the run of the current value in
/// O(run) instead of galloping from row 0 per parent binding).
struct WcojShape<'a> {
    parts: &'a [&'a FlatRelation],
    /// Per level: `(part, depth)` for every part whose `depth`-th column
    /// binds at this level. Nonempty at every level (the schema is the
    /// union of the part schemas).
    active_at: Vec<Vec<(usize, usize)>>,
    /// Per part: a hash index over column 0, built only for parts whose
    /// first column binds below the root.
    col0: Vec<Option<KeyIndex>>,
    levels: usize,
}

impl<'a> WcojShape<'a> {
    fn new(parts: &'a [&'a FlatRelation], schema: &[VarId]) -> WcojShape<'a> {
        debug_assert!(schema.windows(2).all(|w| w[0] < w[1]));
        let cols: Vec<Vec<usize>> = parts
            .iter()
            .map(|p| {
                p.schema
                    .iter()
                    .map(|v| schema.binary_search(v).expect("part var must be in schema"))
                    .collect()
            })
            .collect();
        let mut active_at: Vec<Vec<(usize, usize)>> = vec![Vec::new(); schema.len()];
        for (pi, lv) in cols.iter().enumerate() {
            for (depth, &level) in lv.iter().enumerate() {
                active_at[level].push((pi, depth));
            }
        }
        let col0 = parts
            .iter()
            .zip(&cols)
            .map(|(p, lv)| (lv[0] > 0).then(|| KeyIndex::build(p, &[0])))
            .collect();
        WcojShape {
            parts,
            active_at,
            col0,
            levels: schema.len(),
        }
    }

    /// The run `[lo, hi)` of rows of part `p` whose column 0 equals `v`,
    /// via the stored-hash prefix probe; `None` when no row matches.
    fn probe_run(&self, p: usize, v: Element) -> Option<(usize, usize)> {
        let idx = self.col0[p].as_ref().expect("probe only for indexed parts");
        let rel = self.parts[p];
        let a = rel.schema.len();
        let exact = idx.is_exact();
        let (mut lo, mut hi) = (usize::MAX, 0usize);
        for r in idx.probe_value(v) {
            if exact || rel.data[r * a] == v {
                lo = lo.min(r);
                hi = hi.max(r + 1);
            }
        }
        (lo != usize::MAX).then_some((lo, hi))
    }
}

/// Mutable per-worker state of one multiway enumeration: prefix-run
/// bounds per (part, depth), per-level cursor scratch, the current
/// variable binding, and the output buffer.
struct WcojRun<'a> {
    shape: &'a WcojShape<'a>,
    /// `bounds[p][d]`: row range of part `p` matching the first `d`
    /// bound columns. `bounds[p][0]` is the whole relation.
    bounds: Vec<Vec<(usize, usize)>>,
    /// Per level: cursor per active slot (reused across calls).
    cursors: Vec<Vec<usize>>,
    binding: Vec<Element>,
    out: Vec<Element>,
    rows: usize,
}

impl<'a> WcojRun<'a> {
    fn new(shape: &'a WcojShape<'a>) -> WcojRun<'a> {
        WcojRun {
            shape,
            bounds: shape
                .parts
                .iter()
                .map(|p| vec![(0, p.rows); p.schema.len() + 1])
                .collect(),
            cursors: shape
                .active_at
                .iter()
                .map(|a| vec![0usize; a.len()])
                .collect(),
            binding: vec![0; shape.levels],
            out: Vec::new(),
            rows: 0,
        }
    }

    #[inline]
    fn val(&self, p: usize, row: usize, c: usize) -> Element {
        let rel = self.shape.parts[p];
        rel.data[row * rel.schema.len() + c]
    }

    /// Enumerates all extensions of the current binding from `level` on,
    /// appending complete bindings (schema order) to the output. Values
    /// are visited in ascending order at every level, so the output is
    /// lexicographically sorted and duplicate-free — the canonical
    /// `sort_dedup` form, byte-identical to the binary build's.
    fn enumerate(&mut self, level: usize) {
        if level == self.shape.levels {
            self.out.extend_from_slice(&self.binding);
            self.rows += 1;
            return;
        }
        let active = &self.shape.active_at[level];
        // Parts entering here with their whole relation as the range are
        // filtered by hash prefix probe instead of leapfrogged — unless
        // every active part is such, in which case they lead themselves.
        let all_fresh = active
            .iter()
            .all(|&(p, d)| d == 0 && self.shape.col0[p].is_some());
        let is_probed =
            |&(p, d): &(usize, usize)| !all_fresh && d == 0 && self.shape.col0[p].is_some();
        let mut curs = std::mem::take(&mut self.cursors[level]);
        let mut ends = vec![0usize; active.len()];
        let mut live = true;
        for (slot, &(p, d)) in active.iter().enumerate() {
            if is_probed(&active[slot]) {
                continue;
            }
            let (lo, hi) = self.bounds[p][d];
            curs[slot] = lo;
            ends[slot] = hi;
            if lo >= hi {
                live = false;
            }
        }
        if !live {
            self.cursors[level] = curs;
            return;
        }
        'search: loop {
            // Leapfrog the lead slots to a common value.
            let mut vmax = Element::MIN;
            for (slot, a) in active.iter().enumerate() {
                if !is_probed(a) {
                    vmax = vmax.max(self.val(a.0, curs[slot], a.1));
                }
            }
            let mut moved = false;
            for (slot, a) in active.iter().enumerate() {
                if is_probed(a) {
                    continue;
                }
                let &(p, d) = a;
                if self.val(p, curs[slot], d) < vmax {
                    let rel = self.shape.parts[p];
                    curs[slot] = gallop(
                        &rel.data,
                        rel.schema.len(),
                        d,
                        curs[slot],
                        ends[slot],
                        vmax,
                        false,
                    );
                    if curs[slot] >= ends[slot] {
                        break 'search;
                    }
                    if self.val(p, curs[slot], d) > vmax {
                        moved = true;
                    }
                }
            }
            if moved {
                continue;
            }
            // All lead slots sit on `vmax`: check the probed slots and
            // narrow every active part to its run of the value.
            let mut ok = true;
            for a in active.iter().filter(|a| is_probed(a)) {
                match self.shape.probe_run(a.0, vmax) {
                    Some(run) => self.bounds[a.0][1] = run,
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                for (slot, a) in active.iter().enumerate() {
                    if is_probed(a) {
                        continue;
                    }
                    let &(p, d) = a;
                    let rel = self.shape.parts[p];
                    let run_end = gallop(
                        &rel.data,
                        rel.schema.len(),
                        d,
                        curs[slot],
                        ends[slot],
                        vmax,
                        true,
                    );
                    self.bounds[p][d + 1] = (curs[slot], run_end);
                }
                self.binding[level] = vmax;
                self.enumerate(level + 1);
            }
            // Advance every lead slot past the value.
            for (slot, a) in active.iter().enumerate() {
                if is_probed(a) {
                    continue;
                }
                let &(p, d) = a;
                let rel = self.shape.parts[p];
                curs[slot] = if ok {
                    self.bounds[p][d + 1].1
                } else {
                    gallop(
                        &rel.data,
                        rel.schema.len(),
                        d,
                        curs[slot],
                        ends[slot],
                        vmax,
                        true,
                    )
                };
                if curs[slot] >= ends[slot] {
                    break 'search;
                }
            }
        }
        self.cursors[level] = curs;
    }
}

/// Worst-case-optimal multiway join (generic-join / leapfrog style) of
/// sorted-canonical relations onto their sorted variable union:
/// variable by variable, the candidate extensions are intersected
/// across every part containing the variable — galloping over the
/// sorted per-column runs, with stored-hash [`KeyIndex`] prefix probes
/// for parts entering the intersection mid-recursion. The total work is
/// bounded by the fractional-cover (AGM) bound of the join, not by the
/// size of any binary intermediate.
///
/// Requirements: every part is in `sort_dedup` canonical form with a
/// sorted, nonempty schema; `schema` is the sorted union of the part
/// schemas. The output is in canonical form by construction (values are
/// enumerated in ascending order per level), byte-identical to
/// `parts[0] ⋈ … ⋈ parts[n-1]` projected and canonicalized.
///
/// Under a granting `budget` the enumeration fans out over morsels of
/// the first variable's candidates, each worker enumerating its
/// candidates' subtrees into its own buffer; buffers are stitched in
/// candidate order, so the output is bit-identical to the sequential
/// run.
/// The level-0 candidate set of a multiway join as a bitmap AND of the
/// lead parts' column-0 bitmaps, when the density-adaptive choice
/// favors it: `None` falls back to the galloping leapfrog scan.
///
/// Both enumerations produce the identical ascending candidate
/// sequence (each column-0 bitmap is the exact value set of that
/// column, so the AND is exactly the leapfrog intersection); the
/// choice is pure performance. [`BitmapMode::Auto`] takes the bitmap
/// only above a density threshold — the word scan is `O(width / 64)`
/// regardless of outcome, while galloping is `O(cands · log)` — which
/// plays the same role as the skew-corrected cost model's density
/// estimate in the bag-strategy choice: an observed-size heuristic,
/// never affecting bytes.
fn wcoj_lead_bitmap(parts: &[&FlatRelation], lead: &[(usize, usize)]) -> Option<DomainBitmap> {
    let mode = bitmap_mode();
    if mode == BitmapMode::Off {
        return None;
    }
    let min_rows = lead.iter().map(|&(p, _)| parts[p].rows).min().unwrap_or(0);
    let width = lead
        .iter()
        .map(|&(p, _)| parts[p].domain_width)
        .min()
        .unwrap_or(0);
    if min_rows == 0 || width == 0 {
        return None;
    }
    // Dense enough: at least one candidate value per 8 codes of the
    // narrowest lead column's domain.
    if mode == BitmapMode::Auto && (width as usize) > 8 * min_rows {
        return None;
    }
    let mut acc: Option<DomainBitmap> = None;
    for &(p, _) in lead {
        let bm = parts[p].column_bitmap(0)?;
        acc = Some(match acc {
            None => bm.as_ref().clone(),
            Some(prev) => prev.and(&bm),
        });
    }
    acc
}

pub(crate) fn multiway_join(
    parts: &[&FlatRelation],
    schema: &[VarId],
    budget: &ThreadBudget,
) -> FlatRelation {
    debug_assert!(!parts.is_empty() && parts.iter().all(|p| !p.schema.is_empty()));
    let shape = WcojShape::new(parts, schema);
    let mut out = FlatRelation::empty(schema.to_vec());
    if parts.iter().all(|p| p.domain_width > 0) {
        out.domain_width = parts.iter().map(|p| p.domain_width).max().unwrap_or(0);
    }
    if shape.levels == 0 {
        return out;
    }
    // Level-0 candidates: the leapfrog intersection of the first
    // columns, with each candidate's per-part run recorded so workers
    // (and the sequential fallback) start directly at level 1.
    let lead: Vec<(usize, usize)> = shape.active_at[0].clone();
    let mut cands: Vec<Element> = Vec::new();
    let mut runs: Vec<(usize, usize)> = Vec::new(); // cands.len() × lead.len()
    if let Some(bm) = wcoj_lead_bitmap(parts, &lead) {
        // Bitmap AND gave the candidates; a monotone cursor per lead
        // slot finds each candidate's run exactly as the leapfrog
        // would (first row ≥ v is the first row = v, since v occurs
        // in every lead column).
        note_bitmap_probe();
        let mut curs: Vec<usize> = vec![0; lead.len()];
        for v in bm.iter_ones() {
            cands.push(v);
            for (slot, &(p, _)) in lead.iter().enumerate() {
                let rel = parts[p];
                let lo = gallop(
                    &rel.data,
                    rel.schema.len(),
                    0,
                    curs[slot],
                    rel.rows,
                    v,
                    false,
                );
                let end = gallop(&rel.data, rel.schema.len(), 0, lo, rel.rows, v, true);
                runs.push((lo, end));
                curs[slot] = end;
            }
        }
    } else {
        let mut curs: Vec<usize> = vec![0; lead.len()];
        let mut live = lead.iter().all(|&(p, _)| parts[p].rows > 0);
        'scan: while live {
            let mut vmax = Element::MIN;
            for (slot, &(p, _)) in lead.iter().enumerate() {
                vmax = vmax.max(parts[p].data[curs[slot] * parts[p].schema.len()]);
            }
            let mut moved = false;
            for (slot, &(p, _)) in lead.iter().enumerate() {
                let rel = parts[p];
                if rel.data[curs[slot] * rel.schema.len()] < vmax {
                    curs[slot] = gallop(
                        &rel.data,
                        rel.schema.len(),
                        0,
                        curs[slot],
                        rel.rows,
                        vmax,
                        false,
                    );
                    if curs[slot] >= rel.rows {
                        break 'scan;
                    }
                    if rel.data[curs[slot] * rel.schema.len()] > vmax {
                        moved = true;
                    }
                }
            }
            if moved {
                continue;
            }
            cands.push(vmax);
            for (slot, &(p, _)) in lead.iter().enumerate() {
                let rel = parts[p];
                let end = gallop(
                    &rel.data,
                    rel.schema.len(),
                    0,
                    curs[slot],
                    rel.rows,
                    vmax,
                    true,
                );
                runs.push((curs[slot], end));
                curs[slot] = end;
                if end >= rel.rows {
                    live = false;
                }
            }
        }
    }
    // One candidate's subtree: bind level 0, install the runs, recurse.
    let run_candidate = |st: &mut WcojRun, i: usize| {
        st.binding[0] = cands[i];
        for (slot, &(p, _)) in lead.iter().enumerate() {
            st.bounds[p][1] = runs[i * lead.len() + slot];
        }
        st.enumerate(1);
    };
    if cands.len() >= 2 * WCOJ_MORSEL_CANDS && budget.capacity() > 0 {
        let want = (cands.len() / WCOJ_MORSEL_CANDS).saturating_sub(1).min(31);
        let lease = budget.claim(want);
        if lease.extra() > 0 {
            let bufs: Vec<(Vec<Element>, usize)> =
                parallel_chunks(cands.len(), WCOJ_MORSEL_CANDS, lease.workers(), |_, r| {
                    let mut st = WcojRun::new(&shape);
                    for i in r {
                        run_candidate(&mut st, i);
                    }
                    (st.out, st.rows)
                });
            let total: usize = bufs.iter().map(|(_, n)| n).sum();
            out.data.reserve(total * schema.len());
            for (buf, n) in bufs {
                out.data.extend_from_slice(&buf);
                out.rows += n;
            }
            return out;
        }
    }
    let mut st = WcojRun::new(&shape);
    for i in 0..cands.len() {
        run_candidate(&mut st, i);
    }
    out.data = st.out;
    out.rows = st.rows;
    out
}

/// A compiled tuple→row mapping for one atom: which tuple positions must
/// agree (repeated variables) and which tuple position feeds each output
/// column. Compiling this once per plan removes the `var_count`-sized
/// binding scratch the seed materializer allocated **per tuple**.
#[derive(Debug, Clone)]
pub struct AtomBinder {
    rel: RelId,
    /// `(i, j)` pairs of tuple positions that must hold equal values
    /// (the atom repeats a variable at both).
    eq_checks: Vec<(usize, usize)>,
    /// For each output column (schema order), the tuple position that
    /// supplies its value.
    out_pos: Vec<usize>,
}

impl AtomBinder {
    /// Compiles the binder of `atom` for an output schema (the sorted
    /// distinct variables of the atom's hyperedge; every schema variable
    /// must occur in the atom).
    pub fn compile(atom: &Atom, schema: &[VarId]) -> AtomBinder {
        let mut eq_checks = Vec::new();
        let mut first: FxHashMap<VarId, usize> = FxHashMap::default();
        for (j, &v) in atom.args.iter().enumerate() {
            match first.get(&v) {
                Some(&i) => eq_checks.push((i, j)),
                None => {
                    first.insert(v, j);
                }
            }
        }
        let out_pos = schema
            .iter()
            .map(|v| *first.get(v).expect("schema variable must occur in atom"))
            .collect();
        AtomBinder {
            rel: atom.rel,
            eq_checks,
            out_pos,
        }
    }

    /// Scans the atom's relation in `d` and appends one row per
    /// consistent tuple to `out` (arity must match the compiled schema).
    /// Rows are appended unnormalized; callers finish with
    /// [`FlatRelation::sort_dedup`].
    pub fn materialize_into(&self, d: &Structure, out: &mut FlatRelation) {
        debug_assert_eq!(out.arity(), self.out_pos.len(), "binder arity mismatch");
        // Materialization is the dictionary-encode boundary: rows are
        // stored as dense domain codes, and the relation carries the
        // code width so single-column keys can use the direct index.
        // Tuple elements are active by definition, so every encode
        // resolves. When the dictionary is the identity the raw loop
        // avoids the table lookup (and is byte-identical anyway).
        let dict = d.domain_dict();
        out.domain_width = dict.len() as u32;
        out.invalidate_bitmaps();
        // Scans stream the flat row-major image (one sequential pass)
        // instead of chasing a heap allocation per tuple.
        let arity = d.vocabulary().arity(self.rel);
        let flat = d.flat_tuples(self.rel);
        out.data.reserve((flat.len() / arity) * self.out_pos.len());
        if dict.is_identity() {
            // Whole-tuple scans (no filter, columns in tuple order) are
            // one bulk copy of the image.
            if self.eq_checks.is_empty()
                && arity == self.out_pos.len()
                && self.out_pos.iter().enumerate().all(|(i, &p)| i == p)
            {
                out.data.extend_from_slice(flat);
                out.rows += flat.len() / arity;
                return;
            }
            'rows: for t in flat.chunks_exact(arity) {
                for &(i, j) in &self.eq_checks {
                    if t[i] != t[j] {
                        continue 'rows;
                    }
                }
                for &p in &self.out_pos {
                    out.data.push(t[p]);
                }
                out.rows += 1;
            }
            return;
        }
        'rows2: for t in flat.chunks_exact(arity) {
            for &(i, j) in &self.eq_checks {
                if t[i] != t[j] {
                    continue 'rows2;
                }
            }
            for &p in &self.out_pos {
                out.data.push(dict.encode(t[p]));
            }
            out.rows += 1;
        }
    }
}

/// The canonical identity of a materialized hyperedge relation,
/// independent of variable names and query identity: each atom of the
/// hyperedge reduced to its relation plus the **column index** (position
/// in the sorted distinct variable list) of every argument, the whole
/// list sorted. Two hyperedges with equal keys materialize to identical
/// row sets over any database — which is what lets a
/// [`MaterializationCache`] share work across prepared queries.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MatKey {
    atoms: Vec<(RelId, Vec<u32>)>,
}

impl MatKey {
    /// The key of a hyperedge: `vars` are the sorted distinct variables,
    /// `atoms` every atom whose variable set equals `vars`.
    pub fn of_group(atoms: &[&Atom], vars: &[VarId]) -> MatKey {
        debug_assert!(vars.windows(2).all(|w| w[0] < w[1]), "vars must be sorted");
        let col =
            |v: VarId| -> u32 { vars.binary_search(&v).expect("atom var must be in vars") as u32 };
        let mut keyed: Vec<(RelId, Vec<u32>)> = atoms
            .iter()
            .map(|a| (a.rel, a.args.iter().map(|&v| col(v)).collect()))
            .collect();
        keyed.sort();
        keyed.dedup();
        MatKey { atoms: keyed }
    }

    /// The key of a single atom taken as its own hyperedge (used by the
    /// planner to look up real cardinalities of cached materializations).
    pub fn of_atom(atom: &Atom) -> MatKey {
        let mut vars: Vec<VarId> = atom.args.clone();
        vars.sort_unstable();
        vars.dedup();
        MatKey::of_group(&[atom], &vars)
    }
}

/// Per-call cache outcome of an evaluation that consulted a
/// [`MaterializationCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatCacheStats {
    /// Hyperedges served from the cache.
    pub hits: u32,
    /// Hyperedges materialized (and inserted) on this call.
    pub misses: u32,
    /// Multi-part bag builds that joined their parts binarily.
    pub binary_bag_builds: u32,
    /// Multi-part bag builds that ran the multiway (WCOJ) kernel.
    pub wcoj_bag_builds: u32,
    /// Microseconds spent in binary bag joins (join phase only).
    pub binary_bag_us: u64,
    /// Microseconds spent in multiway bag builds (join phase only).
    pub wcoj_bag_us: u64,
}

impl MatCacheStats {
    /// Accumulates another outcome into this one.
    pub fn add(&mut self, other: MatCacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.binary_bag_builds += other.binary_bag_builds;
        self.wcoj_bag_builds += other.wcoj_bag_builds;
        self.binary_bag_us += other.binary_bag_us;
        self.wcoj_bag_us += other.wcoj_bag_us;
    }
}

/// A per-database cache of materialized hyperedge relations, keyed by
/// [`MatKey`] and shared across prepared queries and concurrent batch
/// requests. Entries are stored under the materializing plan's own
/// column labels and adopted elsewhere via [`FlatRelation::relabel`]
/// (label-independent by construction of the key).
///
/// Invalidation: the cache is owned by one immutable database snapshot
/// (structures are immutable post-builder), so entries never go stale;
/// re-registering a database creates a fresh snapshot with a fresh,
/// empty cache.
///
/// Retention: entries are kept for the snapshot's lifetime, like the
/// compiled plans of prepared queries — the population is bounded by
/// the distinct hyperedge shapes of the queries actually served, and
/// each entry is at most one relation's worth of elements. Dropping the
/// snapshot (or re-registering its name and dropping the old handle)
/// releases everything.
///
/// Concurrency: materialization is **single-flight** — the map holds
/// one [`OnceLock`] flight per key, so when parallel batch requests
/// miss on the same `MatKey` simultaneously, exactly one scans the
/// database and the rest block on the flight and adopt the result as a
/// hit. This keeps the hit/miss accounting identical to a sequential
/// run of the same requests (one miss, the rest hits) and never burns
/// budgeted worker threads on duplicate scans.
#[derive(Debug, Default)]
pub struct MaterializationCache {
    /// `RwLock`, not `Mutex`: at serving-time hit rates nearly every
    /// access is a read (hits, planner peeks), and parallel batch
    /// workers must not serialize on the warm path.
    map: RwLock<FxHashMap<MatKey, Arc<MatFlight>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Byte budget for resident entries; `0` = unbounded (the default,
    /// under which behavior — including exact hit/miss accounting — is
    /// identical to the pre-budget cache).
    budget: AtomicUsize,
    /// Bytes held by landed entries ([`FlatRelation::heap_bytes`]).
    resident: AtomicUsize,
    /// Entries evicted to stay under budget, since creation.
    evictions: AtomicU64,
    /// Clock ring of insertion keys for the second-chance sweep. May
    /// hold stale keys (evicted then re-inserted entries push again);
    /// the sweep validates each popped key against the map.
    clock: Mutex<VecDeque<MatKey>>,
}

/// One single-flight materialization slot: the first claimant runs the
/// scan inside [`OnceLock::get_or_init`]; concurrent claimants block
/// and share the result.
#[derive(Debug, Default)]
struct MatFlight {
    cell: OnceLock<Arc<FlatRelation>>,
    /// Heap bytes of the landed relation (0 until landing).
    bytes: AtomicUsize,
    /// Referenced since the clock hand last passed (second chance).
    touched: AtomicBool,
}

impl MaterializationCache {
    /// An empty cache.
    pub fn new() -> Self {
        MaterializationCache::default()
    }

    /// The cached relation for `key`, or the result of `materialize`
    /// (inserted for later calls). Returns the relation and whether it
    /// was a hit. No lock is held while materializing; concurrent
    /// misses on the same key are single-flight — one caller runs
    /// `materialize` (and counts the miss), the rest wait on the flight
    /// and count hits, exactly as if they had arrived after it.
    pub fn get_or_materialize(
        &self,
        key: &MatKey,
        materialize: impl FnOnce() -> FlatRelation,
    ) -> (Arc<FlatRelation>, bool) {
        // Bound scope for the read guard: a `match` scrutinee would
        // keep it alive into the write-locking arm and self-deadlock.
        let existing = {
            let map = self.map.read().expect("cache lock poisoned");
            map.get(key).cloned()
        };
        let flight = match existing {
            Some(f) => f,
            None => {
                // Re-check before inserting: a racing caller may have
                // created the flight between the two lock acquisitions,
                // and only a true insert needs to clone the key.
                let mut map = self.map.write().expect("cache lock poisoned");
                match map.get(key) {
                    Some(f) => Arc::clone(f),
                    None => {
                        let f = Arc::clone(map.entry(key.clone()).or_default());
                        drop(map);
                        self.clock
                            .lock()
                            .expect("clock lock poisoned")
                            .push_back(key.clone());
                        f
                    }
                }
            }
        };
        let mut ran = false;
        let rel = flight.cell.get_or_init(|| {
            ran = true;
            let rel = Arc::new(materialize());
            // Build the entry's column bitmaps before taking its byte
            // size: the stored bytes — what eviction later subtracts —
            // then include the bitmap words, keeping the budget honest.
            rel.prebuild_bitmaps();
            // Byte accounting must happen *inside* the flight, before
            // the `OnceLock` publishes the cell: the sweep treats a
            // landed cell as evictable and subtracts `flight.bytes`,
            // so a sweeper racing ahead of a post-landing store would
            // subtract 0 while the lander's later `fetch_add` leaks
            // phantom resident bytes that nothing ever reclaims. The
            // `OnceLock`'s release-publication orders these stores
            // before any observer can see the cell as landed.
            let bytes = rel.heap_bytes();
            flight.bytes.store(bytes, Ordering::Relaxed);
            self.resident.fetch_add(bytes, Ordering::Relaxed);
            rel
        });
        let rel = Arc::clone(rel);
        if ran {
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.maybe_evict();
        } else {
            flight.touched.store(true, Ordering::Relaxed);
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        (rel, !ran)
    }

    /// Second-chance clock sweep, run after a landing pushes resident
    /// bytes past the budget. Un-landed flights are never evicted (a
    /// waiter may be blocked on them); recently-referenced entries get
    /// one pass of grace. Eviction removes the **whole flight** from
    /// the map — including its single-flight `OnceLock` slot — so a
    /// later request for the key starts a fresh flight and rebuilds;
    /// waiters still holding the old `Arc` land normally on it.
    fn maybe_evict(&self) {
        let budget = self.budget.load(Ordering::Relaxed);
        if budget == 0 || self.resident.load(Ordering::Relaxed) <= budget {
            return;
        }
        let mut map = self.map.write().expect("cache lock poisoned");
        let mut clock = self.clock.lock().expect("clock lock poisoned");
        // Bounded sweep: the first revolution honors second chance; on
        // the second, pressure overrides recency and any landed entry
        // is fair game. The hand is FIFO and survivors re-enter at the
        // tail, so the first `len` pops visit every original entry
        // exactly once — an exact phase boundary. Without the second
        // phase, hits already in flight (flight cloned before this
        // sweep took the map lock) could keep re-setting `touched` and
        // a starvation-level budget would stay exceeded at quiescence.
        // If the hand still finds only un-landed flights, the overage
        // is in-flight work the sweep must not touch.
        let mut grace = clock.len();
        let mut steps = 2 * clock.len() + 2;
        while self.resident.load(Ordering::Relaxed) > budget && steps > 0 {
            steps -= 1;
            let first_pass = grace > 0;
            grace = grace.saturating_sub(1);
            let Some(key) = clock.pop_front() else { break };
            let Some(flight) = map.get(&key) else {
                continue; // stale hand entry: key already evicted
            };
            if flight.cell.get().is_none() {
                clock.push_back(key);
                continue;
            }
            if first_pass && flight.touched.swap(false, Ordering::Relaxed) {
                clock.push_back(key);
                continue;
            }
            let flight = map.remove(&key).expect("checked above");
            self.resident
                .fetch_sub(flight.bytes.load(Ordering::Relaxed), Ordering::Relaxed);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Sets the byte budget (`0` = unbounded) and applies it
    /// immediately if the cache is already over.
    pub fn set_budget_bytes(&self, bytes: usize) {
        self.budget.store(bytes, Ordering::Relaxed);
        self.maybe_evict();
    }

    /// The configured byte budget (`0` = unbounded).
    pub fn budget_bytes(&self) -> usize {
        self.budget.load(Ordering::Relaxed)
    }

    /// Bytes currently held by landed entries.
    pub fn resident_bytes(&self) -> usize {
        self.resident.load(Ordering::Relaxed)
    }

    /// Entries evicted since creation.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// The cardinality of a cached materialization, if present (and
    /// landed — an in-flight scan is not peeked, matching "not yet
    /// materialized"). Does not count as a hit or miss — this is the
    /// planner's peek at real cardinalities.
    pub fn peek_cardinality(&self, key: &MatKey) -> Option<usize> {
        self.map
            .read()
            .expect("cache lock poisoned")
            .get(key)
            .and_then(|f| f.cell.get())
            .map(|r| r.len())
    }

    /// The cardinalities of several cached materializations under one
    /// read-lock acquisition (the planner resolves every atom of a query
    /// in one critical section). `None` per key not yet materialized.
    pub fn peek_cardinalities<'k>(
        &self,
        keys: impl IntoIterator<Item = &'k MatKey>,
    ) -> Vec<Option<usize>> {
        let map = self.map.read().expect("cache lock poisoned");
        keys.into_iter()
            .map(|k| map.get(k).and_then(|f| f.cell.get()).map(|r| r.len()))
            .collect()
    }

    /// Total cache hits since creation.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total cache misses (materializations run) since creation.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of cached hyperedge relations (landed flights only).
    pub fn len(&self) -> usize {
        self.map
            .read()
            .expect("cache lock poisoned")
            .values()
            .filter(|f| f.cell.get().is_some())
            .count()
    }

    /// `true` when nothing has been materialized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(schema: &[VarId], rows: &[&[Element]]) -> FlatRelation {
        let mut r = FlatRelation::empty(schema.to_vec());
        for row in rows {
            r.push_row(row);
        }
        r.sort_dedup();
        r
    }

    #[test]
    fn sort_dedup_canonicalizes() {
        let mut r = FlatRelation::empty(vec![0, 1]);
        r.push_row(&[3, 4]);
        r.push_row(&[1, 2]);
        r.push_row(&[3, 4]);
        r.sort_dedup();
        assert_eq!(r.len(), 2);
        assert_eq!(r.row(0), &[1, 2]);
        assert_eq!(r.row(1), &[3, 4]);
    }

    #[test]
    fn nullary_rows_cap_at_one() {
        let mut r = FlatRelation::empty(vec![]);
        r.push_row(&[]);
        r.push_row(&[]);
        r.sort_dedup();
        assert_eq!(r.len(), 1);
        assert_eq!(r.row(0), &[] as &[Element]);
    }

    #[test]
    fn unit_is_join_identity() {
        let t = FlatRelation::unit();
        assert_eq!(t.len(), 1);
        assert_eq!(t.arity(), 0);
        let a = rel(&[0, 1], &[&[1, 2], &[3, 4]]);
        assert_eq!(
            a.join(&t).rows_in_head_order(&[0, 1]),
            a.rows_in_head_order(&[0, 1])
        );
    }

    #[test]
    fn union_rows_remaps_columns() {
        let mut a = rel(&[0, 1], &[&[1, 2]]);
        let b = rel(&[1, 0], &[&[2, 1], &[9, 8]]);
        a.union_rows(&b);
        a.sort_dedup();
        assert_eq!(a.len(), 2); // (1,2) deduplicated, (8,9) added
        assert_eq!(a.row(0), &[1, 2]);
        assert_eq!(a.row(1), &[8, 9]);
    }

    #[test]
    fn semijoin_filters_and_compacts() {
        let mut a = rel(&[0, 1], &[&[1, 2], &[3, 4], &[5, 6]]);
        let b = rel(&[1, 2], &[&[2, 9], &[6, 9]]);
        // shared var 1: position 1 in a, position 0 in b.
        a.semijoin_on(&[1], &b, &[0]);
        assert_eq!(a.len(), 2);
        assert_eq!(a.row(0), &[1, 2]);
        assert_eq!(a.row(1), &[5, 6]);
    }

    #[test]
    fn semijoin_disjoint_schemas() {
        let mut a = rel(&[0], &[&[1], &[2]]);
        let b = rel(&[1], &[&[7]]);
        a.semijoin_on(&[], &b, &[]);
        assert_eq!(a.len(), 2); // nonempty other: keep all
        let empty = FlatRelation::empty(vec![1]);
        a.semijoin_on(&[], &empty, &[]);
        assert!(a.is_empty()); // empty other: cartesian semantics drop all
    }

    #[test]
    fn join_matches_row_pipeline() {
        let a = rel(&[0, 1], &[&[1, 2], &[3, 4]]);
        let b = rel(&[1, 2], &[&[2, 5], &[2, 6], &[9, 9]]);
        let j = a.join(&b);
        assert_eq!(j.schema(), &[0, 1, 2]);
        assert_eq!(j.len(), 2);
        assert_eq!(
            j.rows_in_head_order(&[0, 1, 2]),
            [vec![1, 2, 5], vec![1, 2, 6]].into_iter().collect()
        );
        // Build-side choice must not change the answer.
        let j2 = b.join(&a);
        assert_eq!(
            j.rows_in_head_order(&[0, 1, 2]),
            j2.rows_in_head_order(&[0, 1, 2])
        );
    }

    #[test]
    fn join_cartesian_when_disjoint() {
        let a = rel(&[0], &[&[1], &[2]]);
        let b = rel(&[1], &[&[7], &[8]]);
        assert_eq!(a.join(&b).len(), 4);
        // With a 0-ary operand (Boolean intermediate).
        let mut t = FlatRelation::empty(vec![]);
        t.push_row(&[]);
        assert_eq!(a.join(&t).len(), 2);
        assert_eq!(t.join(&a).len(), 2);
        let f = FlatRelation::empty(vec![]);
        assert_eq!(a.join(&f).len(), 0);
    }

    #[test]
    fn project_collapses_duplicates_and_dedups() {
        let a = rel(&[0, 1], &[&[1, 2], &[3, 2]]);
        let p = a.project(&[1, 1]);
        assert_eq!(p.schema(), &[1]);
        assert_eq!(p.len(), 1);
        assert_eq!(p.row(0), &[2]);
    }

    #[test]
    fn intersect_sorted_walks() {
        let mut a = rel(&[0, 1], &[&[1, 2], &[3, 4], &[5, 6]]);
        let b = rel(&[0, 1], &[&[3, 4], &[5, 6], &[7, 8]]);
        a.intersect_sorted(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.row(0), &[3, 4]);
        assert_eq!(a.row(1), &[5, 6]);
    }

    #[test]
    fn binder_rejects_inconsistent_repetitions() {
        use crate::parser::parse_cq;
        let q = parse_cq("Q(x) :- E(x, x)").unwrap();
        let binder = AtomBinder::compile(&q.atoms()[0], &[0]);
        let d = Structure::digraph(3, &[(0, 0), (0, 1), (2, 2)]);
        let mut out = FlatRelation::empty(vec![0]);
        binder.materialize_into(&d, &mut out);
        out.sort_dedup();
        assert_eq!(out.len(), 2); // loops at 0 and 2 only
        assert_eq!(out.row(0), &[0]);
        assert_eq!(out.row(1), &[2]);
    }

    #[test]
    fn mat_key_is_name_independent() {
        use crate::parser::parse_cq;
        let q1 = parse_cq("Q() :- E(x, y)").unwrap();
        let q2 = parse_cq("Q() :- E(a, b)").unwrap();
        assert_eq!(
            MatKey::of_atom(&q1.atoms()[0]),
            MatKey::of_atom(&q2.atoms()[0])
        );
        // Within one query, E(x,y) and E(y,x) differ: the second atom's
        // arguments hit the sorted variable list in reverse order.
        let q3 = parse_cq("Q() :- E(x, y), E(y, x)").unwrap();
        assert_ne!(
            MatKey::of_atom(&q3.atoms()[0]),
            MatKey::of_atom(&q3.atoms()[1])
        );
        // And E(y,z) is the same single-atom hyperedge shape as E(x,y).
        let q4 = parse_cq("Q() :- E(x, y), E(y, z)").unwrap();
        assert_eq!(
            MatKey::of_atom(&q4.atoms()[0]),
            MatKey::of_atom(&q4.atoms()[1])
        );
    }

    /// A large relation of pseudo-random rows (duplicates likely; not
    /// normalized) for exercising the parallel kernel paths.
    fn big_random_rel(schema: &[VarId], n: usize, domain: u32, seed: u64) -> FlatRelation {
        let mut r = FlatRelation::empty(schema.to_vec());
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as u32) % domain
        };
        let row_buf: Vec<Vec<Element>> = (0..n)
            .map(|_| (0..schema.len()).map(|_| next()).collect())
            .collect();
        for row in &row_buf {
            r.push_row(row);
        }
        r
    }

    /// Every parallel kernel must reproduce the sequential output bit
    /// for bit — same rows, same order, same buffer contents.
    #[test]
    fn parallel_kernels_are_bit_identical_to_sequential() {
        let seq = ThreadBudget::sequential();
        let par = ThreadBudget::new(4);
        let a = big_random_rel(&[0, 1, 2], 12_000, 40, 1);
        let b = big_random_rel(&[1, 3], 9_000, 40, 2);

        // sort_dedup: parallel merge sort vs sequential sort.
        let mut s1 = a.clone();
        s1.sort_dedup_budget(&seq);
        let mut s2 = a.clone();
        s2.sort_dedup_budget(&par);
        assert_eq!(s1.rows, s2.rows);
        assert_eq!(s1.data, s2.data, "sort_dedup outputs must be identical");

        let mut b1 = b.clone();
        b1.sort_dedup_budget(&seq);

        // join: partitioned build + morsel probe vs sequential loop.
        let j1 = s1.join_budget(&b1, &seq);
        let j2 = s1.join_budget(&b1, &par);
        assert_eq!(j1.schema, j2.schema);
        assert_eq!(j1.rows, j2.rows);
        assert_eq!(j1.data, j2.data, "join outputs must be identical");
        // Both build-side choices (probe = other / probe = self).
        let j3 = b1.join_budget(&s1, &seq);
        let j4 = b1.join_budget(&s1, &par);
        assert_eq!(j3.data, j4.data, "swapped join outputs must be identical");

        // semijoin: morsel probe + ordered compaction vs sequential.
        let mut m1 = s1.clone();
        m1.semijoin_on_budget(&[1], &b1, &[0], &seq);
        let mut m2 = s1.clone();
        m2.semijoin_on_budget(&[1], &b1, &[0], &par);
        assert_eq!(m1.rows, m2.rows);
        assert_eq!(m1.data, m2.data, "semijoin outputs must be identical");

        // project: morsel gather + parallel sort vs sequential.
        let p1 = s1.project_budget(&[2, 0], &seq);
        let p2 = s1.project_budget(&[2, 0], &par);
        assert_eq!(p1.schema, p2.schema);
        assert_eq!(p1.data, p2.data, "project outputs must be identical");
    }

    /// A zero-capacity budget must never spawn — and must leave results
    /// unchanged even right at the morsel-size boundaries.
    #[test]
    fn sequential_budget_is_the_default_path() {
        let seq = ThreadBudget::sequential();
        assert_eq!(seq.capacity(), 0);
        let mut r = big_random_rel(&[0, 1], PAR_MIN_ROWS + 1, 10, 3);
        let mut expected = r.clone();
        expected.sort_dedup_budget(&ThreadBudget::new(1));
        r.sort_dedup_budget(&seq);
        assert_eq!(r.data, expected.data);
    }

    /// Concurrent misses on one key run the scan exactly once
    /// (single-flight); the waiters account as hits, exactly like a
    /// sequential run of the same requests.
    #[test]
    fn single_flight_materializes_once() {
        use std::sync::atomic::AtomicUsize;
        let cache = MaterializationCache::new();
        let q = crate::parser::parse_cq("Q() :- E(x, y)").unwrap();
        let key = MatKey::of_atom(&q.atoms()[0]);
        let runs = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let (r, _) = cache.get_or_materialize(&key, || {
                        runs.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        rel(&[0, 1], &[&[1, 2]])
                    });
                    assert_eq!(r.len(), 1);
                });
            }
        });
        assert_eq!(
            runs.load(Ordering::SeqCst),
            1,
            "one scan under single-flight"
        );
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 7);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cache_hits_and_counts() {
        let cache = MaterializationCache::new();
        let q = crate::parser::parse_cq("Q() :- E(x, y)").unwrap();
        let key = MatKey::of_atom(&q.atoms()[0]);
        let make = || rel(&[0, 1], &[&[1, 2]]);
        let (r1, hit1) = cache.get_or_materialize(&key, make);
        let (r2, hit2) = cache.get_or_materialize(&key, || unreachable!("must hit"));
        assert!(!hit1 && hit2);
        assert_eq!(r1.len(), r2.len());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.peek_cardinality(&key), Some(1));
        assert_eq!(cache.len(), 1);
    }

    // ── multiway (WCOJ) kernel ──────────────────────────────────────

    fn lcg(seed: &mut u64) -> u64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *seed >> 33
    }

    fn random_rel(schema: &[VarId], rows: usize, dom: u64, seed: &mut u64) -> FlatRelation {
        let mut r = FlatRelation::empty(schema.to_vec());
        for _ in 0..rows {
            let row: Vec<Element> = schema
                .iter()
                .map(|_| (lcg(seed) % dom) as Element)
                .collect();
            r.push_row(&row);
        }
        r.sort_dedup();
        r
    }

    /// The binary reference build: left-deep joins, canonical project.
    fn binary_reference(parts: &[&FlatRelation], schema: &[VarId]) -> FlatRelation {
        let budget = &ThreadBudget::sequential();
        let mut acc: Option<FlatRelation> = None;
        for &p in parts {
            acc = Some(match acc {
                None => p.clone(),
                Some(a) => a.join_budget(p, budget),
            });
        }
        acc.unwrap().project_budget(schema, budget)
    }

    fn assert_identical(got: &FlatRelation, want: &FlatRelation, ctx: &str) {
        assert_eq!(got.schema(), want.schema(), "schema differs: {ctx}");
        assert_eq!(got.len(), want.len(), "row count differs: {ctx}");
        assert!(got.iter_rows().eq(want.iter_rows()), "rows differ: {ctx}");
    }

    #[test]
    fn multiway_join_matches_binary_build() {
        let mut seed = 7u64;
        // Shapes: path (exercises the mid-recursion prefix probe),
        // triangle, and two irregular hypergraphs with 3–4 variables.
        let shapes: [&[&[VarId]]; 4] = [
            &[&[0, 1], &[1, 2]],
            &[&[0, 1], &[1, 2], &[0, 2]],
            &[&[0, 1, 2], &[1, 3], &[2, 3]],
            &[&[0, 2], &[1, 2], &[0, 1, 3]],
        ];
        for &(dom, rows) in &[(4u64, 12usize), (10, 60), (25, 300)] {
            for schemas in shapes {
                let rels: Vec<FlatRelation> = schemas
                    .iter()
                    .map(|s| random_rel(s, rows, dom, &mut seed))
                    .collect();
                let parts: Vec<&FlatRelation> = rels.iter().collect();
                let mut schema: Vec<VarId> =
                    schemas.iter().flat_map(|s| s.iter().copied()).collect();
                schema.sort_unstable();
                schema.dedup();
                let got = multiway_join(&parts, &schema, &ThreadBudget::sequential());
                let want = binary_reference(&parts, &schema);
                assert_identical(&got, &want, &format!("{schemas:?} dom {dom} rows {rows}"));
            }
        }
    }

    #[test]
    fn multiway_join_empty_part_gives_empty() {
        let a = rel(&[0, 1], &[&[1, 2], &[2, 3]]);
        let b = FlatRelation::empty(vec![1, 2]);
        let out = multiway_join(&[&a, &b], &[0, 1, 2], &ThreadBudget::sequential());
        assert_eq!(out.schema(), &[0, 1, 2]);
        assert!(out.is_empty());
    }

    #[test]
    fn multiway_join_single_part_is_identity() {
        let a = rel(&[0, 1], &[&[1, 2], &[2, 3], &[5, 1]]);
        let out = multiway_join(&[&a], &[0, 1], &ThreadBudget::sequential());
        assert_identical(&out, &a, "single part");
    }

    // ── direct-addressed index ──────────────────────────────────────

    /// A dense-coded relation: rows drawn from `[0, width)` with the
    /// width bound installed, as binder materialization would produce.
    fn dense_rel(schema: &[VarId], n: usize, width: u32, seed: u64) -> FlatRelation {
        let mut r = big_random_rel(schema, n, width, seed);
        r.sort_dedup();
        r.domain_width = width;
        r
    }

    /// Joins and semijoins through the direct-addressed index must be
    /// byte-identical to the hashed path — same rows, same order.
    #[test]
    fn direct_index_is_bit_identical_to_hashed() {
        let _g = knob_guard();
        let budget = ThreadBudget::sequential();
        for &(n, m, width) in &[
            (500usize, 300usize, 64u32),
            (3000, 2500, 900),
            (64, 6000, 40),
        ] {
            let a = dense_rel(&[0, 1], n, width, 11);
            let b = dense_rel(&[1, 2], m, width, 22);
            assert!(
                KeyIndex::wants_direct(&b, &[0]),
                "fixture must be direct-eligible"
            );

            let direct = a.join_budget(&b, &budget);
            let mut sj_direct = a.clone();
            sj_direct.semijoin_on_budget(&[1], &b, &[0], &budget);

            // Force the hashed representation for the comparison run.
            set_direct_index_enabled(false);
            let hashed = a.join_budget(&b, &budget);
            let mut sj_hashed = a.clone();
            sj_hashed.semijoin_on_budget(&[1], &b, &[0], &budget);
            set_direct_index_enabled(true);

            assert_eq!(direct.schema, hashed.schema);
            assert_eq!(direct.data, hashed.data, "join bytes differ (n={n})");
            assert_eq!(direct.domain_width, hashed.domain_width);
            assert_eq!(
                sj_direct.data, sj_hashed.data,
                "semijoin bytes differ (n={n})"
            );
        }
        DIRECT_INDEX_OVERRIDE.store(0, Ordering::Relaxed);
    }

    /// Probe values outside the dense bound (possible when the probe
    /// side carries a wider — or no — bound) must simply miss.
    #[test]
    fn direct_index_out_of_range_probe_misses() {
        let _g = knob_guard();
        let b = dense_rel(&[1, 2], 100, 16, 5);
        assert!(KeyIndex::wants_direct(&b, &[0]));
        let mut a = rel(&[0, 1], &[&[7, 3], &[8, 99]]); // 99 ≥ width 16
        a.semijoin_on(&[1], &b, &[0]);
        assert!(a.iter_rows().all(|r| r[1] < 16));
    }

    /// A sparse bound (width ≫ rows) must fall back to the hashed
    /// representation; multi-column keys always do.
    #[test]
    fn direct_index_memory_guard_and_multicolumn_fallback() {
        let _g = knob_guard();
        let small = dense_rel(&[0, 1], 20, 1000, 9);
        assert!(
            !KeyIndex::wants_direct(&small, &[0]),
            "width 1000 ≫ 4·max(20,16)"
        );
        let dense = dense_rel(&[0, 1], 500, 64, 9);
        assert!(!KeyIndex::wants_direct(&dense, &[0, 1]), "two-column key");
        let unbounded = rel(&[0, 1], &[&[1, 2]]);
        assert!(!KeyIndex::wants_direct(&unbounded, &[0]), "no width bound");
    }

    /// The WCOJ prefix probe through a direct column-0 index must keep
    /// the multiway output identical to the binary reference.
    #[test]
    fn multiway_join_with_direct_prefix_probe_matches_binary() {
        let _g = knob_guard();
        let mut seed = 17u64;
        let schemas: [&[VarId]; 3] = [&[0, 1], &[1, 2], &[0, 2]];
        let rels: Vec<FlatRelation> = schemas
            .iter()
            .map(|s| {
                let mut r = random_rel(s, 400, 60, &mut seed);
                r.domain_width = 60;
                r
            })
            .collect();
        let parts: Vec<&FlatRelation> = rels.iter().collect();
        assert!(parts.iter().all(|p| KeyIndex::wants_direct(p, &[0])));
        let got = multiway_join(&parts, &[0, 1, 2], &ThreadBudget::sequential());
        assert_eq!(got.domain_width, 60);
        let want = binary_reference(&parts, &[0, 1, 2]);
        assert_identical(&got, &want, "direct prefix probe");
    }

    // ── dictionary encoding ─────────────────────────────────────────

    /// Materialization through a non-identity dictionary stores dense
    /// codes; the decoded head-order boundary restores raw elements.
    #[test]
    fn binder_encodes_and_boundary_decodes() {
        use crate::parser::parse_cq;
        // adom = {1, 3, 5} of a universe of 6: codes 0, 1, 2.
        let d = Structure::digraph(6, &[(1, 3), (3, 5)]);
        let dict = d.domain_dict();
        assert!(!dict.is_identity());
        let q = parse_cq("Q(x, y) :- E(x, y)").unwrap();
        let mut out = FlatRelation::empty(vec![0, 1]);
        AtomBinder::compile(&q.atoms()[0], &[0, 1]).materialize_into(&d, &mut out);
        out.sort_dedup();
        assert_eq!(out.domain_width(), 3);
        assert_eq!(out.row(0), &[0, 1]); // (1,3) encoded
        assert_eq!(out.row(1), &[1, 2]); // (3,5) encoded
        let decoded = out.rows_in_head_order_decoded(&[0, 1], dict);
        assert_eq!(
            decoded,
            [vec![1, 3], vec![3, 5]]
                .into_iter()
                .collect::<BTreeSet<_>>()
        );
    }

    // ── byte-accounted eviction ─────────────────────────────────────

    /// Three distinct single-atom keys. Parsed from **one** query:
    /// `RelId`s are per-query, so atoms parsed separately would all get
    /// `RelId(0)` and collide into one `MatKey`.
    fn three_keys() -> [MatKey; 3] {
        let q = crate::parser::parse_cq("Q() :- E(x, y), F(x, y), G(x, y)").unwrap();
        [
            MatKey::of_atom(&q.atoms()[0]),
            MatKey::of_atom(&q.atoms()[1]),
            MatKey::of_atom(&q.atoms()[2]),
        ]
    }

    fn wide_rel(rows: usize, tag: Element) -> FlatRelation {
        let mut r = FlatRelation::empty(vec![0, 1]);
        for i in 0..rows {
            r.push_row(&[i as Element, tag]);
        }
        r.sort_dedup();
        r
    }

    /// Landing entries past the budget evicts cold ones; resident bytes
    /// track [`FlatRelation::heap_bytes`] exactly.
    #[test]
    fn eviction_keeps_resident_bytes_bounded() {
        let cache = MaterializationCache::new();
        let one = wide_rel(512, 0).heap_bytes();
        cache.set_budget_bytes(2 * one + one / 2); // room for two entries
        let keys = three_keys();
        for (i, k) in keys.iter().enumerate() {
            cache.get_or_materialize(k, || wide_rel(512, i as Element));
        }
        assert!(cache.resident_bytes() <= cache.budget_bytes());
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 2);
        // The clock hand moved through the oldest entry first.
        assert_eq!(cache.peek_cardinality(&keys[0]), None);
        assert!(cache.peek_cardinality(&keys[2]).is_some());
    }

    /// Regression (single-flight slot lifecycle): an evicted key's
    /// `OnceLock` flight is gone with the entry, so a re-request
    /// *rebuilds* — it must neither deadlock on the stale landed cell
    /// nor serve the evicted value as a hit.
    #[test]
    fn evicted_entry_rebuilds_instead_of_deadlocking() {
        let cache = MaterializationCache::new();
        cache.set_budget_bytes(1); // everything evicts as soon as it lands
        let [key, _, _] = three_keys();
        let runs = std::sync::atomic::AtomicUsize::new(0);
        let build = || {
            runs.fetch_add(1, Ordering::SeqCst);
            wide_rel(64, 7)
        };
        let (r1, hit1) = cache.get_or_materialize(&key, build);
        assert!(!hit1);
        assert_eq!(cache.len(), 0, "entry evicted on landing");
        // Re-request: a fresh flight must run the builder again.
        let (r2, hit2) = cache.get_or_materialize(&key, build);
        assert!(!hit2, "evicted entry must not count as a hit");
        assert_eq!(runs.load(Ordering::SeqCst), 2);
        assert_eq!(r1.data, r2.data, "rebuild is byte-identical");
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.evictions(), 2);
        assert_eq!(cache.resident_bytes(), 0);
    }

    /// Recently-hit entries survive one clock pass (second chance): the
    /// hot entry outlives colder, newer ones.
    #[test]
    fn second_chance_spares_hot_entries() {
        let cache = MaterializationCache::new();
        let one = wide_rel(512, 0).heap_bytes();
        cache.set_budget_bytes(2 * one + one / 2);
        let [hot, cold, third] = three_keys();
        cache.get_or_materialize(&hot, || wide_rel(512, 0));
        cache.get_or_materialize(&cold, || wide_rel(512, 1));
        cache.get_or_materialize(&hot, || unreachable!("must hit")); // touch
        cache.get_or_materialize(&third, || wide_rel(512, 2));
        assert!(
            cache.peek_cardinality(&hot).is_some(),
            "touched entry survives"
        );
        assert_eq!(cache.peek_cardinality(&cold), None, "cold entry evicted");
    }

    /// With no budget (the default) nothing ever evicts and the
    /// accounting still tracks resident bytes.
    #[test]
    fn unbounded_cache_never_evicts() {
        let cache = MaterializationCache::new();
        let mut total = 0usize;
        for (i, k) in three_keys().iter().enumerate() {
            let (r, _) = cache.get_or_materialize(k, || wide_rel(256 << i, i as Element));
            total += r.heap_bytes();
        }
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.resident_bytes(), total);
    }

    // ── bitmap existence kernels ────────────────────────────────────

    /// The bitmap semijoin (branch-free selection vector) must be
    /// byte-identical to the index-probe path — same survivors, same
    /// order, same width bound — sequentially and under morsel fan-out.
    #[test]
    fn bitmap_semijoin_is_bit_identical_to_probe() {
        let _g = knob_guard();
        for &(n, m, width) in &[
            (500usize, 300usize, 64u32),
            (3000, 2500, 900),
            (64, 6000, 40),
        ] {
            let a = dense_rel(&[0, 1], n, width, 31);
            let b = dense_rel(&[1, 2], m, width, 32);
            for threads in [1usize, 4] {
                let budget = ThreadBudget::new(threads);
                set_bitmap_mode(BitmapMode::On);
                let probes = BITMAP_PROBES.load(Ordering::Relaxed);
                let mut via_bitmap = a.clone();
                via_bitmap.semijoin_on_budget(&[1], &b, &[0], &budget);
                assert!(
                    BITMAP_PROBES.load(Ordering::Relaxed) > probes,
                    "dense fixture must take the bitmap path"
                );
                set_bitmap_mode(BitmapMode::Off);
                let mut via_probe = a.clone();
                via_probe.semijoin_on_budget(&[1], &b, &[0], &budget);
                assert_eq!(
                    via_bitmap.data, via_probe.data,
                    "semijoin bytes differ (n={n}, {threads} threads)"
                );
                assert_eq!(via_bitmap.rows, via_probe.rows);
                assert_eq!(via_bitmap.domain_width, via_probe.domain_width);
            }
        }
        BITMAP_OVERRIDE.store(0, Ordering::Relaxed);
    }

    /// The density-adaptive WCOJ lead (bitmap AND over the parts'
    /// column-0 bitmaps, runs recovered by monotone gallops) must keep
    /// the multiway output identical to the pure-leapfrog scan.
    #[test]
    fn multiway_join_bitmap_lead_matches_leapfrog() {
        let _g = knob_guard();
        let mut seed = 43u64;
        let schemas: [&[VarId]; 3] = [&[0, 1], &[1, 2], &[0, 2]];
        let rels: Vec<FlatRelation> = schemas
            .iter()
            .map(|s| {
                let mut r = random_rel(s, 600, 80, &mut seed);
                r.domain_width = 80;
                r
            })
            .collect();
        let parts: Vec<&FlatRelation> = rels.iter().collect();
        set_bitmap_mode(BitmapMode::On);
        let with_bitmap = multiway_join(&parts, &[0, 1, 2], &ThreadBudget::sequential());
        let with_bitmap_par = multiway_join(&parts, &[0, 1, 2], &ThreadBudget::new(4));
        set_bitmap_mode(BitmapMode::Off);
        let leapfrog = multiway_join(&parts, &[0, 1, 2], &ThreadBudget::sequential());
        BITMAP_OVERRIDE.store(0, Ordering::Relaxed);
        assert!(!leapfrog.is_empty(), "triangle join must produce rows");
        assert_identical(&with_bitmap, &leapfrog, "bitmap lead (sequential)");
        assert_identical(&with_bitmap_par, &leapfrog, "bitmap lead (parallel)");
    }

    /// Bitmaps answer only existence, so they survive `sort_dedup` but
    /// must be dropped by any mutation that changes the value set —
    /// a stale cell would silently corrupt later semijoins.
    #[test]
    fn bitmaps_invalidate_on_mutation_and_survive_sort() {
        let _g = knob_guard();
        set_bitmap_mode(BitmapMode::On);
        let mut r = dense_rel(&[0, 1], 200, 32, 77);
        let bm = r.column_bitmap(0).expect("dense fixture is eligible");
        r.sort_dedup();
        assert!(
            Arc::ptr_eq(&bm, &r.column_bitmap(0).unwrap()),
            "sort_dedup keeps the cached cell"
        );
        // A clone taken before the mutation keeps the old (valid) cell.
        let snapshot = r.clone();
        r.push_row(&[31, 31]);
        let rebuilt = r.column_bitmap(0).expect("rebuilt after push_row");
        assert!(!Arc::ptr_eq(&bm, &rebuilt), "mutation must drop the cell");
        assert!(rebuilt.contains(31));
        assert!(Arc::ptr_eq(&bm, &snapshot.column_bitmap(0).unwrap()));
        BITMAP_OVERRIDE.store(0, Ordering::Relaxed);
    }

    /// Regression: joining with the unit (or an empty) relation must
    /// keep the other side's known bound instead of clearing it, and a
    /// semijoin-shaped join (no extra columns) keeps `self`'s bound.
    #[test]
    fn combine_widths_keeps_bound_through_unit_and_empty() {
        let unit = FlatRelation::unit();
        let dense = dense_rel(&[0, 1], 50, 16, 3);
        assert_eq!(unit.combine_widths(&dense), 16);
        assert_eq!(dense.combine_widths(&unit), 16);
        let empty = FlatRelation::empty(vec![2]);
        assert_eq!(dense.combine_widths(&empty), 16);

        let budget = ThreadBudget::sequential();
        let joined = unit.join_budget(&dense, &budget);
        assert_eq!(joined.domain_width, 16, "unit ⋈ dense keeps the bound");
        // Semijoin-shaped: other contributes no new columns, so the
        // output rows are a subset of self's — self's bound holds even
        // if the other side's is unknown.
        let mut wide = dense_rel(&[1, 3], 50, 16, 4);
        wide.domain_width = 0;
        let shaped = dense.join_budget(&wide.project(&[1]), &budget);
        assert_eq!(shaped.schema, vec![0, 1]);
        assert_eq!(shaped.domain_width, 16, "their_extra is empty");
    }

    /// Cached materializations prebuild their bitmaps, and the bytes
    /// stored with the entry — hence resident accounting and eviction —
    /// include the word tables.
    #[test]
    fn cache_accounts_bitmap_bytes() {
        let _g = knob_guard();
        set_bitmap_mode(BitmapMode::On);
        let cache = MaterializationCache::new();
        let [key, _, _] = three_keys();
        let bare = dense_rel(&[0, 1], 512, 256, 8);
        let raw = bare.heap_bytes(); // no bitmaps built yet
        let (landed, _) = cache.get_or_materialize(&key, || dense_rel(&[0, 1], 512, 256, 8));
        assert!(
            landed.heap_bytes() > raw,
            "landed entry carries bitmap words"
        );
        assert_eq!(cache.resident_bytes(), landed.heap_bytes());
        BITMAP_OVERRIDE.store(0, Ordering::Relaxed);
    }

    // ── packed code-word kernels ────────────────────────────────────

    /// The radix `sort_dedup` fast path must leave exactly the bytes
    /// the comparison sort leaves, for arity 1 and arity 2, including
    /// the duplicate-heavy and empty cases.
    #[test]
    fn packed_sort_dedup_is_byte_identical_to_comparison() {
        let _g = knob_guard();
        for &(schema, n, width) in &[
            (&[0][..], 900usize, 40u32),
            (&[0, 1][..], 2000, 64),
            (&[0, 1][..], 1500, 3), // duplicate-heavy
            (&[0, 1][..], 0, 16),
        ] {
            let mut radix = big_random_rel(schema, n, width.max(1), 17);
            radix.domain_width = width;
            let mut cmp = radix.clone();
            set_packed_mode(PackedMode::On);
            radix.sort_dedup();
            set_packed_mode(PackedMode::Off);
            cmp.sort_dedup();
            assert_eq!(radix.schema, cmp.schema);
            assert_eq!(radix.rows, cmp.rows, "row count (n={n} width={width})");
            assert_eq!(radix.data, cmp.data, "bytes differ (n={n} width={width})");
            assert_eq!(radix.domain_width, cmp.domain_width);
        }
        // Unbounded or wide relations must never take the radix path
        // even when forced on: the knob selects among eligible
        // representations, it does not create eligibility.
        let mut unbounded = big_random_rel(&[0, 1], 600, 50, 23);
        let mut wide = big_random_rel(&[0, 1, 2], 600, 50, 23);
        wide.domain_width = 50;
        set_packed_mode(PackedMode::On);
        assert!(!unbounded.packed_sort_wanted());
        assert!(!wide.packed_sort_wanted());
        let before = packed_stats().builds;
        unbounded.sort_dedup();
        wide.sort_dedup();
        assert_eq!(
            packed_stats().builds,
            before,
            "ineligible inputs skip the counter"
        );
        reset_packed_override();
    }

    /// Joins and semijoins on a two-column key through the packed
    /// radix-partitioned index must be byte-identical to the hashed
    /// path — same rows, same order — sequentially and under a
    /// granting thread budget.
    #[test]
    fn packed_index_is_bit_identical_to_hashed() {
        let _g = knob_guard();
        for &(n, m, width) in &[(800usize, 600usize, 12u32), (2500, 2000, 48)] {
            let a = dense_rel(&[0, 1, 2], n, width, 31);
            let b = dense_rel(&[1, 2, 3], m, width, 32);
            // Shared columns {1, 2}: a genuine two-column key.
            set_packed_mode(PackedMode::On);
            assert!(
                KeyIndex::wants_packed(&b, &[0, 1]),
                "fixture must be eligible"
            );
            let before = packed_stats();
            let packed = a.join_budget(&b, &ThreadBudget::sequential());
            let packed_par = a.join_budget(&b, &ThreadBudget::new(4));
            let mut sj_packed = a.clone();
            sj_packed.semijoin_on_budget(&[1, 2], &b, &[0, 1], &ThreadBudget::sequential());
            let mut sj_packed_par = a.clone();
            sj_packed_par.semijoin_on_budget(&[1, 2], &b, &[0, 1], &ThreadBudget::new(4));
            let after = packed_stats();
            assert!(
                after.builds > before.builds,
                "packed builds must be counted"
            );
            assert!(after.rows > before.rows, "packed rows must be counted");

            set_packed_mode(PackedMode::Off);
            let hashed = a.join_budget(&b, &ThreadBudget::sequential());
            let mut sj_hashed = a.clone();
            sj_hashed.semijoin_on_budget(&[1, 2], &b, &[0, 1], &ThreadBudget::sequential());
            reset_packed_override();

            assert_eq!(packed.schema, hashed.schema);
            assert_eq!(packed.data, hashed.data, "join bytes differ (n={n})");
            assert_eq!(packed.domain_width, hashed.domain_width);
            assert_eq!(packed_par.data, hashed.data, "parallel join bytes differ");
            assert_eq!(sj_packed.data, sj_hashed.data, "semijoin bytes differ");
            assert_eq!(
                sj_packed_par.data, sj_hashed.data,
                "parallel semijoin bytes differ"
            );
        }
    }

    /// Packed-index edge cases: empty build side, single key, and
    /// probe words past the maximum key (possible when the probe side
    /// carries a wider — or no — bound) must simply miss.
    #[test]
    fn packed_index_edge_cases() {
        let _g = knob_guard();
        set_packed_mode(PackedMode::On);
        let empty = {
            let mut r = FlatRelation::empty(vec![0, 1]);
            r.domain_width = 8;
            r
        };
        let idx = KeyIndex::build_packed(&empty, &[0, 1]);
        assert!(!idx.contains_packed(pack2(0, 0)));

        let mut one = FlatRelation::empty(vec![0, 1]);
        one.push_row(&[0, 0]);
        one.domain_width = 1;
        let idx = KeyIndex::build_packed(&one, &[0, 1]);
        assert!(idx.contains_packed(pack2(0, 0)));
        assert!(!idx.contains_packed(pack2(0, 1)));
        assert!(
            !idx.contains_packed(pack2(7, 7)),
            "past-the-directory probe misses"
        );
        assert!(!idx.contains_packed(u64::MAX));

        let b = dense_rel(&[0, 1], 700, 20, 5);
        let idx = KeyIndex::build_packed(&b, &[0, 1]);
        assert!(idx.is_exact(), "packed candidates need no re-check");
        for row in b.iter_rows() {
            assert!(idx.contains_packed(pack2(row[0], row[1])));
        }
        assert!(!idx.contains_packed(pack2(20, 0)), "width is exclusive");
        assert!(!idx.contains_packed(pack2(1_000_000, 3)));
        reset_packed_override();
    }

    /// The descending-row group order inside the packed index must
    /// match the chained-hash bucket order exactly — this is the
    /// invariant the join byte-identity rests on.
    #[test]
    fn packed_groups_list_rows_descending() {
        let _g = knob_guard();
        set_packed_mode(PackedMode::On);
        let mut r = FlatRelation::empty(vec![0, 1]);
        for i in 0..600u32 {
            r.push_row(&[i % 7, i % 3]);
        }
        r.domain_width = 7;
        let idx = KeyIndex::build_packed(&r, &[0, 1]);
        for key in (0..7u32).flat_map(|h| (0..3u32).map(move |l| pack2(h, l))) {
            let group = idx.packed_group(key);
            assert!(
                group.windows(2).all(|w| w[0] > w[1]),
                "group for {key:#x} must list rows strictly descending"
            );
        }
        reset_packed_override();
    }

    // ── domain-width propagation (packed eligibility audit) ─────────

    /// Regression: a projection that drops the high column must keep
    /// the low column's `domain_width` — both the sorting projection
    /// and the hash-distinct variant — or downstream packed kernels
    /// lose their eligibility for no reason.
    #[test]
    fn projection_keeps_domain_width_on_surviving_columns() {
        let r = dense_rel(&[0, 1], 300, 24, 9);
        for vars in [&[0][..], &[1][..], &[1, 0][..]] {
            assert_eq!(r.project(vars).domain_width(), 24, "project {vars:?}");
            assert_eq!(
                r.project_distinct(vars).domain_width(),
                24,
                "distinct {vars:?}"
            );
        }
    }

    /// Regression: unioning into a freshly reset (empty) accumulator —
    /// the bag-build scratch pattern — must adopt the incoming bound,
    /// and a union of two bounded sides keeps the max; one unknown
    /// side poisons the bound conservatively.
    #[test]
    fn union_rows_propagates_domain_width_conservatively() {
        let dense = dense_rel(&[0, 1], 100, 16, 2);
        let mut scratch = dense_rel(&[0, 1], 10, 8, 6);
        scratch.reset(vec![0, 1]);
        assert_eq!(scratch.domain_width(), 0, "reset clears the bound");
        scratch.union_rows(&dense);
        assert_eq!(
            scratch.domain_width(),
            16,
            "empty accumulator adopts the bound"
        );
        let wider = dense_rel(&[0, 1], 100, 32, 7);
        scratch.union_rows(&wider);
        assert_eq!(
            scratch.domain_width(),
            32,
            "bounded ∪ bounded keeps the max"
        );
        let mut unknown = big_random_rel(&[0, 1], 50, 16, 8);
        unknown.sort_dedup();
        scratch.union_rows(&unknown);
        assert_eq!(scratch.domain_width(), 0, "unknown side poisons the bound");
    }

    #[test]
    fn multiway_join_parallel_is_bit_identical() {
        // Enough level-0 candidates (> 2·WCOJ_MORSEL_CANDS) to engage
        // the morsel fan-out under a granting budget.
        let mut seed = 99u64;
        let schemas: [&[VarId]; 3] = [&[0, 1], &[1, 2], &[0, 2]];
        let rels: Vec<FlatRelation> = schemas
            .iter()
            .map(|s| random_rel(s, 900, 200, &mut seed))
            .collect();
        let parts: Vec<&FlatRelation> = rels.iter().collect();
        let seq = multiway_join(&parts, &[0, 1, 2], &ThreadBudget::sequential());
        assert!(!seq.is_empty(), "triangle join must produce rows");
        for threads in [2usize, 4, 8] {
            let budget = ThreadBudget::new(threads);
            let par = multiway_join(&parts, &[0, 1, 2], &budget);
            assert_identical(&par, &seq, &format!("{threads} threads"));
        }
    }
}
