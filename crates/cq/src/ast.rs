//! The conjunctive-query AST.

use cqapx_structures::{RelId, Vocabulary};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A query variable, as a dense index into the query's variable table.
pub type VarId = u32;

/// One atom `R(v₁, …, v_n)` of a query body.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Atom {
    /// The relation symbol.
    pub rel: RelId,
    /// Argument variables (repetitions allowed, e.g. `E(x, x)`).
    pub args: Vec<VarId>,
}

/// A conjunctive query `Q(x̄) :- R₁(…), …, R_m(…)`.
///
/// Variables are indices `0..var_count`; `free` lists the head variables
/// (with repetitions allowed, as in `Q(x, x)`), every other variable is
/// existentially quantified. Safety is enforced: every free variable must
/// occur in some atom.
///
/// # Examples
///
/// ```
/// use cqapx_cq::parse_cq;
///
/// let q = parse_cq("Q(x, y) :- E(x, y), E(y, z), E(z, x)").unwrap();
/// assert_eq!(q.arity(), 2);
/// assert_eq!(q.join_count(), 2);  // m - 1 joins for m atoms
/// assert_eq!(q.var_count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConjunctiveQuery {
    vocab: Vocabulary,
    var_names: Vec<String>,
    free: Vec<VarId>,
    atoms: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// Builds a query, checking arities and safety.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatches, out-of-range variables, unsafe free
    /// variables, or an empty body (the paper's CQs always have at least
    /// one atom).
    pub fn new(
        vocab: Vocabulary,
        var_names: Vec<String>,
        free: Vec<VarId>,
        atoms: Vec<Atom>,
    ) -> Self {
        assert!(
            !atoms.is_empty(),
            "conjunctive queries need at least one atom"
        );
        let n = var_names.len() as VarId;
        for a in &atoms {
            assert_eq!(
                a.args.len(),
                vocab.arity(a.rel),
                "arity mismatch in atom over {}",
                vocab.name(a.rel)
            );
            for &v in &a.args {
                assert!(v < n, "variable {v} out of range");
            }
        }
        let mut occurs = vec![false; n as usize];
        for a in &atoms {
            for &v in &a.args {
                occurs[v as usize] = true;
            }
        }
        for &v in &free {
            assert!(v < n, "free variable {v} out of range");
            assert!(
                occurs[v as usize],
                "free variable {} must occur in the body (safety)",
                var_names[v as usize]
            );
        }
        // Every variable should occur somewhere (no dangling names).
        for (v, &occ) in occurs.iter().enumerate() {
            assert!(occ, "variable {} occurs in no atom", var_names[v]);
        }
        ConjunctiveQuery {
            vocab,
            var_names,
            free,
            atoms,
        }
    }

    /// The vocabulary.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Number of variables (free and bound).
    pub fn var_count(&self) -> usize {
        self.var_names.len()
    }

    /// The display name of a variable.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.var_names[v as usize]
    }

    /// All variable names.
    pub fn var_names(&self) -> &[String] {
        &self.var_names
    }

    /// The head (free) variables, in head order.
    pub fn free_vars(&self) -> &[VarId] {
        &self.free
    }

    /// Number of head positions.
    pub fn arity(&self) -> usize {
        self.free.len()
    }

    /// `true` for Boolean (closed) queries.
    pub fn is_boolean(&self) -> bool {
        self.free.is_empty()
    }

    /// The body atoms.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Number of atoms `m`.
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    /// The number of joins, `m − 1` (the paper's cost measure).
    pub fn join_count(&self) -> usize {
        self.atoms.len().saturating_sub(1)
    }

    /// `|Q|`: the number of variables, the paper's size measure for
    /// queries.
    pub fn size(&self) -> usize {
        self.var_count()
    }

    /// Renames variables to fresh canonical names (`v0, v1, …`), preserving
    /// structure. Useful before comparing printed forms.
    pub fn canonical_names(&self) -> ConjunctiveQuery {
        let var_names = (0..self.var_count()).map(|i| format!("v{i}")).collect();
        ConjunctiveQuery {
            vocab: self.vocab.clone(),
            var_names,
            free: self.free.clone(),
            atoms: self.atoms.clone(),
        }
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q(")?;
        for (i, &v) in self.free.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.var_names[v as usize])?;
        }
        write!(f, ") :- ")?;
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}(", self.vocab.name(a.rel))?;
            for (j, &v) in a.args.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self.var_names[v as usize])?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graphs() -> (Vocabulary, RelId) {
        let v = Vocabulary::graphs();
        let e = v.rel("E").unwrap();
        (v, e)
    }

    #[test]
    fn build_and_display() {
        let (v, e) = graphs();
        let q = ConjunctiveQuery::new(
            v,
            vec!["x".into(), "y".into()],
            vec![0],
            vec![Atom {
                rel: e,
                args: vec![0, 1],
            }],
        );
        assert_eq!(q.to_string(), "Q(x) :- E(x, y)");
        assert_eq!(q.arity(), 1);
        assert!(!q.is_boolean());
        assert_eq!(q.join_count(), 0);
    }

    #[test]
    fn repeated_head_variables() {
        let (v, e) = graphs();
        let q = ConjunctiveQuery::new(
            v,
            vec!["x".into()],
            vec![0, 0],
            vec![Atom {
                rel: e,
                args: vec![0, 0],
            }],
        );
        assert_eq!(q.arity(), 2);
        assert_eq!(q.to_string(), "Q(x, x) :- E(x, x)");
    }

    #[test]
    #[should_panic(expected = "safety")]
    fn unsafe_query_rejected() {
        let (v, e) = graphs();
        let _ = ConjunctiveQuery::new(
            v,
            vec!["x".into(), "y".into(), "z".into()],
            vec![2],
            vec![Atom {
                rel: e,
                args: vec![0, 1],
            }],
        );
    }

    #[test]
    #[should_panic(expected = "occurs in no atom")]
    fn dangling_variable_rejected() {
        let (v, e) = graphs();
        let _ = ConjunctiveQuery::new(
            v,
            vec!["x".into(), "y".into(), "z".into()],
            vec![],
            vec![Atom {
                rel: e,
                args: vec![0, 1],
            }],
        );
    }

    #[test]
    #[should_panic(expected = "at least one atom")]
    fn empty_body_rejected() {
        let (v, _) = graphs();
        let _ = ConjunctiveQuery::new(v, vec![], vec![], vec![]);
    }
}
