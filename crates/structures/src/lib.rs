//! Relational structures, homomorphisms, cores and quotients.
//!
//! This crate is the substrate for the whole `cq-approx` workspace: the
//! PODS 2012 paper *Efficient Approximations of Conjunctive Queries*
//! (Barceló, Libkin & Romero) works throughout with **tableaux of queries**
//! — finite relational structures, possibly with a tuple of distinguished
//! elements — and characterizes approximations via preorders based on the
//! existence of **homomorphisms**.
//!
//! The main types are:
//!
//! * [`Vocabulary`] — a database schema: named relations with arities.
//! * [`Structure`] — a finite relational structure (database) over a
//!   vocabulary, with elements `0..n` and optional display names.
//! * [`Pointed`] — a structure together with a tuple of distinguished
//!   elements `(D, ā)`, the shape of a tableau of a non-Boolean query.
//! * [`index`] — per-structure inverted indexes over tuples, built once
//!   per [`Structure`] (lazily, shared by clones) and consumed by every
//!   hom search against it.
//! * [`solver`] — the propagation-based homomorphism engine:
//!   [`HomSolver`] compiles a source once for reuse against many targets
//!   and variants, maintains generalized arc consistency with an AC-3
//!   worklist over table constraints, and honors shared [`SearchBudget`]
//!   step counters for cooperative cancellation.
//! * [`hom`] — the facade: [`Homomorphism`] witnesses and the one-shot
//!   [`HomProblem`] builder (pinned elements, injectivity, excluded
//!   target elements, all-solutions enumeration), all routed through the
//!   solver.
//! * [`core_ops`] — cores and retracts (`core(D)` — every structure has a
//!   unique core up to isomorphism).
//! * [`mod@quotient`] + [`partition`] — homomorphic images of a structure are
//!   exactly its quotients by partitions of the domain; enumeration of
//!   partitions drives the approximation algorithms of the paper.
//! * [`order`] — the homomorphism preorder `→` and the strict variant
//!   `D ⥛ D'` (written `upslope` in the paper: `D → D'` but `D' ↛ D`).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod bitmap;
pub mod core_ops;
pub mod dict;
pub mod dot;
pub mod fxhash;
pub mod hom;
pub mod index;
pub mod iso;
pub mod order;
pub mod packed;
pub mod partition;
pub mod pointed;
pub mod quotient;
pub mod solver;
pub mod structure;
pub mod vocabulary;

pub use bitmap::DomainBitmap;
pub use core_ops::{core_of, is_core, CoreResult};
pub use dict::DomainDict;
pub use hom::{HomProblem, HomSearchStats, Homomorphism};
pub use index::{RelIndex, StructureIndex};
pub use iso::{isomorphic, signature_pointed, IsoSignature};
pub use order::{hom_equivalent, hom_exists, strictly_below};
pub use partition::Partition;
pub use pointed::Pointed;
pub use quotient::quotient;
pub use solver::{HomRun, HomSolver, SearchBudget};
pub use structure::{Element, Structure, StructureBuilder, Tuple};
pub use vocabulary::{RelId, Vocabulary};
