//! Per-snapshot **domain dictionary**: the active domain of a
//! [`Structure`], interned into dense codes `[0, n)`.
//!
//! The dictionary assigns code `c` to the `c`-th smallest active element,
//! so encoding is canonical (two structures with the same relations get
//! the same codes regardless of how they were built) and **monotone**:
//! `a < b ⇔ encode(a) < encode(b)`. Monotonicity is load-bearing — the
//! columnar kernels keep relations in canonical sorted-dedup form, and a
//! monotone encoding means the canonical form in code space decodes to
//! exactly the canonical form in element space, row for row.
//!
//! Downstream, the dense code width travels with every materialized
//! `FlatRelation`, letting single-column join keys use a direct-addressed
//! (offset/count) index instead of a hash table.
//!
//! Like [`crate::index::StructureIndex`], the dictionary is derived data:
//! built lazily on first use, shared by clones, ignored by equality,
//! hashing, and serialization. Relations are immutable after
//! construction, so it never goes stale.

use crate::structure::{Element, Structure};
use std::sync::Arc;
use std::sync::OnceLock;

/// Sentinel in the reverse map for elements outside the active domain.
pub const NO_CODE: u32 = u32::MAX;

/// The interned active domain of one structure snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainDict {
    /// `elems[c]` is the element with code `c` (ascending, deduplicated).
    elems: Vec<Element>,
    /// `codes[e]` is the code of element `e`, or [`NO_CODE`] when `e` is
    /// not active. Length = universe size.
    codes: Vec<u32>,
    /// `true` when `encode` is the identity on active elements (the
    /// common case: a universe that *is* the active domain, or only has
    /// trailing isolated elements).
    identity: bool,
}

impl DomainDict {
    /// Builds the dictionary of a structure's active domain.
    pub fn build(s: &Structure) -> Self {
        let elems: Vec<Element> = s.active_domain().into_iter().collect();
        let mut codes = vec![NO_CODE; s.universe_size()];
        let mut identity = true;
        for (c, &e) in elems.iter().enumerate() {
            codes[e as usize] = c as u32;
            identity &= c as Element == e;
        }
        DomainDict {
            elems,
            codes,
            identity,
        }
    }

    /// Number of active elements = number of codes = the dense width.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// `true` when the active domain is empty.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// `true` when `encode` is the identity on every active element.
    pub fn is_identity(&self) -> bool {
        self.identity
    }

    /// The dense code of an active element.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds via the `NO_CODE` sentinel reaching a
    /// caller) only if `e` is not active; callers encode elements read
    /// from relation tuples, which are active by definition.
    #[inline]
    pub fn encode(&self, e: Element) -> u32 {
        self.codes[e as usize]
    }

    /// The element behind a code.
    #[inline]
    pub fn decode(&self, c: u32) -> Element {
        self.elems[c as usize]
    }

    /// Heap bytes held by the dictionary (for cache accounting).
    pub fn heap_bytes(&self) -> usize {
        self.elems.capacity() * std::mem::size_of::<Element>()
            + self.codes.capacity() * std::mem::size_of::<u32>()
    }
}

/// The lazily-initialized, clone-shared dictionary slot embedded in
/// [`Structure`]. Mirrors [`crate::index::IndexCell`]: derived data,
/// invisible to equality/hash/serde.
#[derive(Debug, Default)]
pub(crate) struct DictCell(pub(crate) OnceLock<Arc<DomainDict>>);

impl Clone for DictCell {
    fn clone(&self) -> Self {
        DictCell(self.0.clone())
    }
}

impl PartialEq for DictCell {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl Eq for DictCell {}

impl std::hash::Hash for DictCell {
    fn hash<H: std::hash::Hasher>(&self, _state: &mut H) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_universe_is_identity() {
        let s = Structure::digraph(3, &[(0, 1), (1, 2), (2, 0)]);
        let d = s.domain_dict();
        assert!(d.is_identity());
        assert_eq!(d.len(), 3);
        for e in 0..3 {
            assert_eq!(d.encode(e), e);
            assert_eq!(d.decode(e), e);
        }
    }

    #[test]
    fn trailing_isolated_elements_stay_identity() {
        // Node 3 is isolated but all active elements keep their value.
        let s = Structure::digraph(4, &[(0, 1), (1, 2)]);
        let d = s.domain_dict();
        assert!(d.is_identity());
        assert_eq!(d.len(), 3);
        assert_eq!(d.encode(2), 2);
    }

    #[test]
    fn gaps_compact_and_stay_monotone() {
        // Node 1 is isolated: adom = {0, 2, 4}.
        let s = Structure::digraph(5, &[(0, 2), (2, 4)]);
        let d = s.domain_dict();
        assert!(!d.is_identity());
        assert_eq!(d.len(), 3);
        assert_eq!(d.encode(0), 0);
        assert_eq!(d.encode(2), 1);
        assert_eq!(d.encode(4), 2);
        assert_eq!(d.decode(1), 2);
        assert_eq!(d.codes[1], NO_CODE);
        // Monotone: order of codes equals order of elements.
        assert!(d.encode(0) < d.encode(2) && d.encode(2) < d.encode(4));
    }

    #[test]
    fn shared_by_clones() {
        let s = Structure::digraph(3, &[(0, 1)]);
        let before = s.domain_dict() as *const DomainDict;
        let t = s.clone();
        assert_eq!(t.domain_dict() as *const DomainDict, before);
    }

    #[test]
    fn empty_structure() {
        let s = Structure::digraph(2, &[]);
        let d = s.domain_dict();
        assert!(d.is_empty());
        assert!(d.is_identity());
    }
}
