//! Quotients of structures by partitions of their universe.
//!
//! The quotient `D/P` replaces every element by its block; its tuples are
//! the images of `D`'s tuples. The projection `D → D/P` is always a
//! homomorphism, and conversely the image of *any* homomorphism defined on
//! `D` is (isomorphic to) a quotient of `D` — the observation at the heart
//! of the paper's Theorem 4.1: all approximations can be chosen among the
//! quotients of the tableau.

use crate::hom::Homomorphism;
use crate::partition::Partition;
use crate::pointed::Pointed;
use crate::structure::Structure;

/// The quotient of a structure by a partition, together with the
/// projection homomorphism.
///
/// # Examples
///
/// ```
/// use cqapx_structures::{quotient, Partition, Structure};
///
/// // Collapsing a directed 4-cycle along opposite nodes gives K2^<->.
/// let c4 = Structure::digraph(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
/// let p = Partition::from_labels(&[0, 1, 0, 1]);
/// let (q, proj) = quotient(&c4, &p);
/// assert_eq!(q.universe_size(), 2);
/// assert!(proj.verify(&c4, &q));
/// ```
pub fn quotient(s: &Structure, p: &Partition) -> (Structure, Homomorphism) {
    assert_eq!(p.len(), s.universe_size(), "partition must cover universe");
    let map: Vec<u32> = (0..s.universe_size()).map(|e| p.block_of(e)).collect();
    let q = s.map_image_raw(&map);
    // Every block is hit, so the universe of `q` (0..n_blocks) is exactly
    // the set of blocks; but blocks whose elements occur in no tuple would
    // be inactive. Tableaux have active universes, so their quotients do
    // too; keep the raw quotient to preserve the block numbering.
    let h = Homomorphism { map };
    (q, h)
}

/// Quotient of a pointed structure: the distinguished tuple is mapped
/// through the projection.
pub fn quotient_pointed(p: &Pointed, part: &Partition) -> (Pointed, Homomorphism) {
    let (q, h) = quotient(&p.structure, part);
    let distinguished = p.distinguished().iter().map(|&x| h.apply(x)).collect();
    (Pointed::new(q, distinguished), h)
}

/// The partition induced by an arbitrary map (kernel of the map).
pub fn kernel(map: &[u32]) -> Partition {
    Partition::from_labels(map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hom::HomProblem;
    use crate::partition::for_each_partition;
    use crate::structure::Element;
    use std::ops::ControlFlow;

    fn cycle(n: usize) -> Structure {
        let edges: Vec<(Element, Element)> = (0..n)
            .map(|i| (i as Element, ((i + 1) % n) as Element))
            .collect();
        Structure::digraph(n, &edges)
    }

    #[test]
    fn projection_is_homomorphism_for_all_partitions() {
        let g = cycle(4);
        for_each_partition(4, |p| {
            let (q, h) = quotient(&g, p);
            assert!(h.verify(&g, &q), "projection must be a hom for {p:?}");
            ControlFlow::Continue(())
        });
    }

    #[test]
    fn identity_partition_is_identity_quotient() {
        let g = cycle(5);
        let (q, h) = quotient(&g, &Partition::identity(5));
        assert_eq!(q, g);
        assert_eq!(h.map, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn coarsest_partition_gives_loop() {
        let g = cycle(5);
        let (q, _) = quotient(&g, &Partition::coarsest(5));
        assert_eq!(q.universe_size(), 1);
        let e = q.vocabulary().rel("E").unwrap();
        assert!(q.contains(e, &[0, 0]));
    }

    #[test]
    fn every_hom_image_is_a_quotient_image() {
        // For each hom h: C6 -> C3, quotient by ker(h) must map into C3.
        let c6 = cycle(6);
        let c3 = cycle(3);
        HomProblem::new(&c6, &c3).for_each(|h| {
            let p = kernel(&h.map);
            let (q, proj) = quotient(&c6, &p);
            assert!(proj.verify(&c6, &q));
            // q embeds into c3 (it is isomorphic to Im(h)).
            assert!(HomProblem::new(&q, &c3).exists());
            ControlFlow::Continue(())
        });
    }

    #[test]
    fn pointed_quotient_tracks_tuple() {
        let g = cycle(4);
        let p = Pointed::new(g, vec![0, 2]);
        let part = Partition::from_labels(&[0, 1, 0, 1]);
        let (q, _) = quotient_pointed(&p, &part);
        assert_eq!(q.distinguished(), &[0, 0]);
    }
}
