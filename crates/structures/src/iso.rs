//! Isomorphism checks between structures.

use crate::hom::HomProblem;
use crate::pointed::Pointed;
use crate::structure::Structure;

/// `true` when the two structures are isomorphic.
///
/// Uses the homomorphism engine with an injectivity constraint: a bijective
/// homomorphism between structures with equal per-relation tuple counts is
/// an isomorphism (it maps each relation injectively into an equal-sized
/// relation, hence onto it).
///
/// # Examples
///
/// ```
/// use cqapx_structures::{isomorphic, Structure};
///
/// let a = Structure::digraph(3, &[(0, 1), (1, 2), (2, 0)]);
/// let b = Structure::digraph(3, &[(1, 0), (0, 2), (2, 1)]); // relabeled C3
/// assert!(isomorphic(&a, &b));
///
/// let p = Structure::digraph(3, &[(0, 1), (1, 2)]);
/// assert!(!isomorphic(&a, &p));
/// ```
pub fn isomorphic(a: &Structure, b: &Structure) -> bool {
    if a.vocabulary() != b.vocabulary() {
        return false;
    }
    if a.universe_size() != b.universe_size() {
        return false;
    }
    for rel in a.vocabulary().rel_ids() {
        if a.tuples(rel).len() != b.tuples(rel).len() {
            return false;
        }
    }
    HomProblem::new(a, b).injective().exists()
}

/// Isomorphism of pointed structures: a structure isomorphism mapping the
/// distinguished tuple of `a` to that of `b` pointwise.
pub fn isomorphic_pointed(a: &Pointed, b: &Pointed) -> bool {
    if a.structure.vocabulary() != b.structure.vocabulary() {
        return false;
    }
    if a.structure.universe_size() != b.structure.universe_size() {
        return false;
    }
    if a.distinguished().len() != b.distinguished().len() {
        return false;
    }
    for rel in a.structure.vocabulary().rel_ids() {
        if a.structure.tuples(rel).len() != b.structure.tuples(rel).len() {
            return false;
        }
    }
    HomProblem::new(&a.structure, &b.structure)
        .pin_tuple(a.distinguished(), b.distinguished())
        .injective()
        .exists()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::Element;

    fn cycle(n: usize) -> Structure {
        let edges: Vec<(Element, Element)> = (0..n)
            .map(|i| (i as Element, ((i + 1) % n) as Element))
            .collect();
        Structure::digraph(n, &edges)
    }

    #[test]
    fn relabeled_cycles() {
        let a = cycle(5);
        let b = Structure::digraph(5, &[(2, 3), (3, 4), (4, 0), (0, 1), (1, 2)]);
        assert!(isomorphic(&a, &b));
    }

    #[test]
    fn different_sizes() {
        assert!(!isomorphic(&cycle(3), &cycle(4)));
    }

    #[test]
    fn same_counts_not_isomorphic() {
        // Path 0->1->2->3 vs star with 3 edges: same node and edge counts.
        let p = Structure::digraph(4, &[(0, 1), (1, 2), (2, 3)]);
        let s = Structure::digraph(4, &[(0, 1), (0, 2), (0, 3)]);
        assert!(!isomorphic(&p, &s));
    }

    #[test]
    fn pointed_isomorphism_respects_tuple() {
        let a = Pointed::new(cycle(3), vec![0]);
        let b = Pointed::new(cycle(3), vec![1]);
        // rotations exist, so these are isomorphic as pointed structures
        assert!(isomorphic_pointed(&a, &b));
        // path with endpoints distinguished differently
        let p1 = Pointed::new(Structure::digraph(2, &[(0, 1)]), vec![0]);
        let p2 = Pointed::new(Structure::digraph(2, &[(0, 1)]), vec![1]);
        assert!(!isomorphic_pointed(&p1, &p2));
    }

    #[test]
    fn reflexivity() {
        let g = cycle(4);
        assert!(isomorphic(&g, &g));
    }
}
