//! Isomorphism checks between structures, and cheap isomorphism-invariant
//! signatures for hashing structures up to isomorphism.

use crate::fxhash::FxHasher;
use crate::hom::HomProblem;
use crate::pointed::Pointed;
use crate::structure::Structure;
use std::hash::{Hash, Hasher};

/// `true` when the two structures are isomorphic.
///
/// Uses the homomorphism engine with an injectivity constraint: a bijective
/// homomorphism between structures with equal per-relation tuple counts is
/// an isomorphism (it maps each relation injectively into an equal-sized
/// relation, hence onto it).
///
/// # Examples
///
/// ```
/// use cqapx_structures::{isomorphic, Structure};
///
/// let a = Structure::digraph(3, &[(0, 1), (1, 2), (2, 0)]);
/// let b = Structure::digraph(3, &[(1, 0), (0, 2), (2, 1)]); // relabeled C3
/// assert!(isomorphic(&a, &b));
///
/// let p = Structure::digraph(3, &[(0, 1), (1, 2)]);
/// assert!(!isomorphic(&a, &p));
/// ```
pub fn isomorphic(a: &Structure, b: &Structure) -> bool {
    if a.vocabulary() != b.vocabulary() {
        return false;
    }
    if a.universe_size() != b.universe_size() {
        return false;
    }
    for rel in a.vocabulary().rel_ids() {
        if a.tuples(rel).len() != b.tuples(rel).len() {
            return false;
        }
    }
    HomProblem::new(a, b).injective().exists()
}

/// Isomorphism of pointed structures: a structure isomorphism mapping the
/// distinguished tuple of `a` to that of `b` pointwise.
pub fn isomorphic_pointed(a: &Pointed, b: &Pointed) -> bool {
    if a.structure.vocabulary() != b.structure.vocabulary() {
        return false;
    }
    if a.structure.universe_size() != b.structure.universe_size() {
        return false;
    }
    if a.distinguished().len() != b.distinguished().len() {
        return false;
    }
    for rel in a.structure.vocabulary().rel_ids() {
        if a.structure.tuples(rel).len() != b.structure.tuples(rel).len() {
            return false;
        }
    }
    HomProblem::new(&a.structure, &b.structure)
        .pin_tuple(a.distinguished(), b.distinguished())
        .injective()
        .exists()
}

/// A cheap isomorphism invariant of a pointed structure, usable as a hash
/// key: equal signatures are *necessary* for isomorphism (bucket key),
/// [`isomorphic_pointed`] confirms within a bucket.
///
/// The signature records the vocabulary, universe size, per-relation tuple
/// counts, the sorted multiset of per-element occurrence fingerprints
/// (refined by one Weisfeiler–Leman-style round over tuple adjacency), and
/// the fingerprints of the distinguished tuple in order. All components
/// are invariant under renaming elements, and the distinguished component
/// forces pointwise correspondence of distinguished tuples.
///
/// # Examples
///
/// ```
/// use cqapx_structures::iso::{isomorphic_pointed, signature_pointed};
/// use cqapx_structures::{Pointed, Structure};
///
/// let a = Pointed::boolean(Structure::digraph(3, &[(0, 1), (1, 2), (2, 0)]));
/// let b = Pointed::boolean(Structure::digraph(3, &[(1, 0), (0, 2), (2, 1)]));
/// assert_eq!(signature_pointed(&a), signature_pointed(&b));
/// assert!(isomorphic_pointed(&a, &b));
///
/// let p = Pointed::boolean(Structure::digraph(3, &[(0, 1), (1, 2)]));
/// assert_ne!(signature_pointed(&a), signature_pointed(&p));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IsoSignature {
    /// Relation names and arities, in `RelId` order.
    vocab: Vec<(String, usize)>,
    /// Universe size.
    universe: usize,
    /// Tuples per relation, in `RelId` order.
    rel_counts: Vec<usize>,
    /// Sorted refined per-element fingerprints.
    element_profile: Vec<u64>,
    /// Refined fingerprints of the distinguished elements, in tuple order.
    distinguished: Vec<u64>,
}

fn hash_of(h: &impl Hash) -> u64 {
    // Deterministic and fast; signature values are compared only against
    // other signatures computed by this same function, and collisions are
    // harmless (signature equality is a bucket key, never a proof).
    let mut hasher = FxHasher::default();
    h.hash(&mut hasher);
    hasher.finish()
}

/// Computes the [`IsoSignature`] of a pointed structure in time roughly
/// `O(total tuples × max arity)` (plus sorting).
pub fn signature_pointed(p: &Pointed) -> IsoSignature {
    let s = &p.structure;
    let n = s.universe_size();
    let vocab: Vec<(String, usize)> = s
        .vocabulary()
        .rel_ids()
        .map(|r| (s.vocabulary().name(r).to_string(), s.vocabulary().arity(r)))
        .collect();
    let rel_counts: Vec<usize> = s
        .vocabulary()
        .rel_ids()
        .map(|r| s.tuples(r).len())
        .collect();

    // Round 0: per-element occurrence counts by (relation, position),
    // plus loop-degree (repetitions inside one tuple).
    let mut occ: Vec<Vec<(u32, u32, u32)>> = vec![Vec::new(); n];
    for r in s.vocabulary().rel_ids() {
        let arity = s.vocabulary().arity(r);
        for t in s.tuples(r) {
            for pos in 0..arity {
                let e = t[pos] as usize;
                let key = (r.0, pos as u32);
                match occ[e].iter_mut().find(|(rr, pp, _)| (*rr, *pp) == key) {
                    Some((_, _, c)) => *c += 1,
                    None => occ[e].push((key.0, key.1, 1)),
                }
            }
        }
    }
    let mut color: Vec<u64> = occ
        .iter_mut()
        .map(|o| {
            o.sort_unstable();
            hash_of(o)
        })
        .collect();

    // One refinement round: rehash each element with the sorted multiset
    // of colors it co-occurs with, per (relation, own position, other
    // position). Distinguishes e.g. path-ends from star-centers that
    // round 0 conflates.
    let mut neigh: Vec<Vec<(u32, u32, u32, u64)>> = vec![Vec::new(); n];
    for r in s.vocabulary().rel_ids() {
        let arity = s.vocabulary().arity(r);
        for t in s.tuples(r) {
            for pos in 0..arity {
                for pos2 in 0..arity {
                    if pos2 != pos {
                        neigh[t[pos] as usize].push((
                            r.0,
                            pos as u32,
                            pos2 as u32,
                            color[t[pos2] as usize],
                        ));
                    }
                }
            }
        }
    }
    for e in 0..n {
        neigh[e].sort_unstable();
        color[e] = hash_of(&(color[e], &neigh[e]));
    }

    let mut element_profile = color.clone();
    element_profile.sort_unstable();
    let distinguished = p
        .distinguished()
        .iter()
        .map(|&e| color[e as usize])
        .collect();
    IsoSignature {
        vocab,
        universe: n,
        rel_counts,
        element_profile,
        distinguished,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::Element;

    fn cycle(n: usize) -> Structure {
        let edges: Vec<(Element, Element)> = (0..n)
            .map(|i| (i as Element, ((i + 1) % n) as Element))
            .collect();
        Structure::digraph(n, &edges)
    }

    #[test]
    fn relabeled_cycles() {
        let a = cycle(5);
        let b = Structure::digraph(5, &[(2, 3), (3, 4), (4, 0), (0, 1), (1, 2)]);
        assert!(isomorphic(&a, &b));
    }

    #[test]
    fn different_sizes() {
        assert!(!isomorphic(&cycle(3), &cycle(4)));
    }

    #[test]
    fn same_counts_not_isomorphic() {
        // Path 0->1->2->3 vs star with 3 edges: same node and edge counts.
        let p = Structure::digraph(4, &[(0, 1), (1, 2), (2, 3)]);
        let s = Structure::digraph(4, &[(0, 1), (0, 2), (0, 3)]);
        assert!(!isomorphic(&p, &s));
    }

    #[test]
    fn pointed_isomorphism_respects_tuple() {
        let a = Pointed::new(cycle(3), vec![0]);
        let b = Pointed::new(cycle(3), vec![1]);
        // rotations exist, so these are isomorphic as pointed structures
        assert!(isomorphic_pointed(&a, &b));
        // path with endpoints distinguished differently
        let p1 = Pointed::new(Structure::digraph(2, &[(0, 1)]), vec![0]);
        let p2 = Pointed::new(Structure::digraph(2, &[(0, 1)]), vec![1]);
        assert!(!isomorphic_pointed(&p1, &p2));
    }

    #[test]
    fn reflexivity() {
        let g = cycle(4);
        assert!(isomorphic(&g, &g));
    }

    #[test]
    fn signature_invariant_under_relabeling() {
        let a = Pointed::new(cycle(5), vec![2]);
        let b = Pointed::new(
            Structure::digraph(5, &[(2, 3), (3, 4), (4, 0), (0, 1), (1, 2)]),
            vec![4],
        );
        assert_eq!(signature_pointed(&a), signature_pointed(&b));
    }

    #[test]
    fn signature_separates_path_from_star() {
        // Same node/edge counts and in/out degree multisets conflated at
        // round 0 need the refinement round to separate... these two
        // differ already, but check the classic near-collision pair.
        let p = Pointed::boolean(Structure::digraph(4, &[(0, 1), (1, 2), (2, 3)]));
        let s = Pointed::boolean(Structure::digraph(4, &[(0, 1), (0, 2), (0, 3)]));
        assert_ne!(signature_pointed(&p), signature_pointed(&s));
    }

    #[test]
    fn signature_respects_distinguished_tuple() {
        let edge = Structure::digraph(2, &[(0, 1)]);
        let a = Pointed::new(edge.clone(), vec![0]);
        let b = Pointed::new(edge, vec![1]);
        assert_ne!(signature_pointed(&a), signature_pointed(&b));
    }
}
