//! Vocabularies (database schemas): relation names with fixed arities.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Identifier of a relation symbol inside a [`Vocabulary`].
///
/// `RelId` is an index into the vocabulary's relation table; it is only
/// meaningful together with the vocabulary that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RelId(pub u32);

impl RelId {
    /// The index of this relation inside its vocabulary.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// One relation symbol: a name and an arity.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RelationSymbol {
    /// Human-readable name (e.g. `"E"` for the edge relation of a digraph).
    pub name: String,
    /// Number of positions of the relation (must be at least 1).
    pub arity: usize,
}

/// A vocabulary (schema): an ordered list of relation symbols.
///
/// Vocabularies are cheap to clone (the symbol table is shared through an
/// [`Arc`]); two vocabularies are equal when their symbol lists are equal.
///
/// # Examples
///
/// ```
/// use cqapx_structures::Vocabulary;
///
/// let graphs = Vocabulary::graphs();
/// assert_eq!(graphs.arity(graphs.rel("E").unwrap()), 2);
///
/// let v = Vocabulary::new(vec![("R", 3), ("S", 2)]);
/// assert_eq!(v.len(), 2);
/// assert_eq!(v.max_arity(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Vocabulary {
    symbols: Arc<Vec<RelationSymbol>>,
}

impl Vocabulary {
    /// Builds a vocabulary from `(name, arity)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if two relations share a name, or if any arity is zero.
    pub fn new<S: Into<String>>(rels: Vec<(S, usize)>) -> Self {
        let symbols: Vec<RelationSymbol> = rels
            .into_iter()
            .map(|(name, arity)| RelationSymbol {
                name: name.into(),
                arity,
            })
            .collect();
        for s in &symbols {
            assert!(s.arity >= 1, "relation {} must have arity >= 1", s.name);
        }
        for (i, a) in symbols.iter().enumerate() {
            for b in symbols.iter().skip(i + 1) {
                assert_ne!(a.name, b.name, "duplicate relation name {}", a.name);
            }
        }
        Vocabulary {
            symbols: Arc::new(symbols),
        }
    }

    /// The vocabulary of directed graphs: a single binary relation `E`.
    ///
    /// The paper's Sections 4, 5 and the appendix work over this vocabulary.
    pub fn graphs() -> Self {
        Vocabulary::new(vec![("E", 2)])
    }

    /// A vocabulary with a single relation `R` of the given arity.
    ///
    /// Used by the paper's higher-arity examples (§5.3, §6).
    pub fn single(arity: usize) -> Self {
        Vocabulary::new(vec![("R", arity)])
    }

    /// Number of relation symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// `true` when the vocabulary has no relation symbols.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Looks a relation up by name.
    pub fn rel(&self, name: &str) -> Option<RelId> {
        self.symbols
            .iter()
            .position(|s| s.name == name)
            .map(|i| RelId(i as u32))
    }

    /// The arity of a relation.
    pub fn arity(&self, rel: RelId) -> usize {
        self.symbols[rel.index()].arity
    }

    /// The name of a relation.
    pub fn name(&self, rel: RelId) -> &str {
        &self.symbols[rel.index()].name
    }

    /// Iterates over all relation identifiers in order.
    pub fn rel_ids(&self) -> impl Iterator<Item = RelId> + '_ {
        (0..self.symbols.len() as u32).map(RelId)
    }

    /// The largest arity among the relations (`m` in the paper's bounds).
    ///
    /// Returns 0 for an empty vocabulary.
    pub fn max_arity(&self) -> usize {
        self.symbols.iter().map(|s| s.arity).max().unwrap_or(0)
    }

    /// All relation symbols.
    pub fn symbols(&self) -> &[RelationSymbol] {
        &self.symbols
    }
}

impl fmt::Display for Vocabulary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, s) in self.symbols.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}/{}", s.name, s.arity)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graphs_vocabulary() {
        let v = Vocabulary::graphs();
        assert_eq!(v.len(), 1);
        let e = v.rel("E").unwrap();
        assert_eq!(v.arity(e), 2);
        assert_eq!(v.name(e), "E");
        assert_eq!(v.max_arity(), 2);
        assert!(v.rel("F").is_none());
    }

    #[test]
    fn display() {
        let v = Vocabulary::new(vec![("R", 3), ("S", 1)]);
        assert_eq!(v.to_string(), "{R/3, S/1}");
    }

    #[test]
    fn equality_is_structural() {
        let a = Vocabulary::new(vec![("R", 2)]);
        let b = Vocabulary::new(vec![("R", 2)]);
        assert_eq!(a, b);
        let c = Vocabulary::new(vec![("R", 3)]);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "duplicate relation name")]
    fn duplicate_names_rejected() {
        let _ = Vocabulary::new(vec![("R", 2), ("R", 3)]);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn zero_arity_rejected() {
        let _ = Vocabulary::new(vec![("R", 0)]);
    }

    #[test]
    fn rel_ids_in_order() {
        let v = Vocabulary::new(vec![("A", 1), ("B", 2), ("C", 3)]);
        let ids: Vec<_> = v.rel_ids().collect();
        assert_eq!(ids.len(), 3);
        assert_eq!(v.name(ids[0]), "A");
        assert_eq!(v.name(ids[2]), "C");
    }
}
