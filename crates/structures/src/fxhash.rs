//! A fast, deterministic, non-cryptographic hasher for hot-path maps.
//!
//! The enumeration loops of the approximation stack (quotient
//! fingerprints, isomorphism-signature buckets, hom-verdict memos) hash
//! millions of small keys; the standard library's DDoS-resistant SipHash
//! dominates those loops. This is the classic `FxHash` multiply-rotate
//! mix (the rustc hasher): hash *quality* only affects bucket spread —
//! lookups stay exact through `Eq` — so a fast deterministic hasher is
//! always sound here. Not for untrusted keys.

use std::hash::{BuildHasherDefault, Hasher};

/// The rustc `FxHash` mixer.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed by [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed by [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_usable() {
        let mut m: FxHashMap<Vec<u32>, u32> = FxHashMap::default();
        m.insert(vec![1, 2, 3], 7);
        assert_eq!(m.get([1u32, 2, 3].as_slice()), Some(&7));
        let h = |v: &[u32]| {
            let mut hasher = FxHasher::default();
            use std::hash::Hash;
            v.hash(&mut hasher);
            hasher.finish()
        };
        assert_eq!(h(&[1, 2]), h(&[1, 2]));
        assert_ne!(h(&[1, 2]), h(&[2, 1]));
    }
}
