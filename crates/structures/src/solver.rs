//! The workspace-wide homomorphism solver: compiled sources, indexed
//! targets, a GAC propagation queue, and shared step budgets.
//!
//! Finding a homomorphism `D₁ → D₂` is exactly solving a CSP (Kolaitis &
//! Vardi): variables are the elements of `D₁`, candidate domains are sets
//! of elements of `D₂`, and every tuple of `D₁` is a table constraint
//! whose allowed assignments are the tuples of the corresponding target
//! relation. [`HomSolver`] is that CSP with the *source-side* work —
//! constraint extraction, incidence lists, repeated-variable patterns —
//! done once by [`HomSolver::compile`], so that many targets and variants
//! (pins, exclusions, injectivity) can be solved against one compiled
//! source without re-setup. The *target-side* work, the inverted indexes
//! driving support scans, comes from [`Structure::index`] and is likewise
//! built once per structure and shared by every search against it.
//!
//! # The GAC loop
//!
//! The solver maintains **generalized arc consistency** with an AC-3
//! style worklist over table constraints. Each variable holds a bitset
//! domain of candidate target elements. Revising a constraint scans its
//! supported target tuples — seeded from the shortest inverted list of an
//! already-assigned position, or the full relation when none is assigned
//! — and intersects every unassigned variable's domain with the values
//! that appear in some supporting tuple. Variables whose domains shrink
//! re-enqueue their incident constraints; a domain wipe-out fails the
//! current branch. Search interleaves this propagation with
//! minimum-remaining-values branching (domain size, then degree), undoing
//! domain shrinks through a trail on backtrack. Scratch buffers (domains,
//! trail, queue, value stacks) live in a thread-local pool, so steady-state
//! solving allocates only for reported solutions.
//!
//! # Budget semantics
//!
//! A [`SearchBudget`] is a shared, thread-safe **step counter**: every
//! branching decision (search node) costs one step, and a search whose
//! budget runs dry stops and reports
//! [`HomSearchStats::budget_exhausted`](crate::hom::HomSearchStats).
//! Because the counter is shared (cheaply cloneable, atomically
//! decremented), one budget can bound the *total* hom work of a composite
//! computation — an engine request fanning out into several searches, an
//! anytime approximation, a decision procedure — giving every layer the
//! same cooperative-cancellation mechanism. [`SearchBudget::cancel`]
//! zeroes the counter, stopping all sharing searches at their next node.

use crate::hom::{HomSearchStats, Homomorphism};
use crate::index::{ElemSet, StructureIndex};
use crate::structure::{Element, Structure};
use crate::vocabulary::{RelId, Vocabulary};
use std::cell::RefCell;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared step counter bounding homomorphism-search work.
///
/// Cloning shares the counter; see the [module docs](self) for the exact
/// semantics. One step = one branching decision.
#[derive(Debug, Clone)]
pub struct SearchBudget {
    steps: Arc<AtomicU64>,
}

impl SearchBudget {
    /// A budget of `steps` search nodes, to be shared by any number of
    /// searches.
    pub fn new(steps: u64) -> Self {
        SearchBudget {
            steps: Arc::new(AtomicU64::new(steps)),
        }
    }

    /// Steps left before exhaustion.
    pub fn remaining(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }

    /// `true` once the counter has reached zero.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Cooperatively cancels every search sharing this budget (zeroes the
    /// counter; they stop at their next branching decision).
    pub fn cancel(&self) {
        self.steps.store(0, Ordering::Relaxed);
    }

    /// Spends `n` steps. Returns `false` — without charging — when the
    /// budget was already exhausted; a final partial charge saturates to
    /// zero.
    pub fn charge(&self, n: u64) -> bool {
        self.steps
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                (cur > 0).then(|| cur.saturating_sub(n))
            })
            .is_ok()
    }
}

/// One table constraint of the compiled source: a source tuple, with its
/// repeated-position pattern and distinct variables precomputed.
#[derive(Clone)]
struct Constraint {
    /// Relation index (into `Vocabulary::rel_ids` order).
    rel: u32,
    /// The source tuple: `vars[p]` must map to the target tuple's `p`-th
    /// value.
    vars: Box<[Element]>,
    /// Position pairs `(p, q)`, `p < q`, with `vars[p] == vars[q]`.
    repeats: Box<[(u32, u32)]>,
    /// The distinct variables of the tuple.
    distinct: Box<[Element]>,
}

/// A source structure compiled for homomorphism search: reusable across
/// any number of targets and variants.
///
/// # Examples
///
/// ```
/// use cqapx_structures::{HomSolver, Structure};
///
/// let c6 = Structure::digraph(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
/// let solver = HomSolver::compile(&c6);
/// let c3 = Structure::digraph(3, &[(0, 1), (1, 2), (2, 0)]);
/// let c4 = Structure::digraph(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
/// assert!(solver.run(&c3).exists()); // wrap twice
/// assert!(!solver.run(&c4).exists()); // 4 ∤ 6
/// ```
#[derive(Clone)]
pub struct HomSolver {
    vocab: Vocabulary,
    n_source: usize,
    constraints: Vec<Constraint>,
    /// Constraints incident to each source variable.
    incident: Vec<Vec<u32>>,
}

impl HomSolver {
    /// Compiles the source side of the CSP: constraints, incidence lists,
    /// repeated-variable patterns.
    pub fn compile(source: &Structure) -> HomSolver {
        let vocab = source.vocabulary().clone();
        let n_source = source.universe_size();
        let mut constraints = Vec::new();
        let mut incident = vec![Vec::new(); n_source];
        for rel in vocab.rel_ids() {
            for t in source.tuples(rel) {
                let ci = constraints.len() as u32;
                let vars: Box<[Element]> = t.to_vec().into();
                let mut distinct: Vec<Element> = Vec::with_capacity(vars.len());
                for &v in vars.iter() {
                    if !distinct.contains(&v) {
                        distinct.push(v);
                        incident[v as usize].push(ci);
                    }
                }
                let mut repeats = Vec::new();
                for p in 0..vars.len() {
                    for q in (p + 1)..vars.len() {
                        if vars[p] == vars[q] {
                            repeats.push((p as u32, q as u32));
                        }
                    }
                }
                constraints.push(Constraint {
                    rel: rel.0,
                    vars,
                    repeats: repeats.into(),
                    distinct: distinct.into(),
                });
            }
        }
        HomSolver {
            vocab,
            n_source,
            constraints,
            incident,
        }
    }

    /// The vocabulary the source (and any target) must live over.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Universe size of the compiled source.
    pub fn source_size(&self) -> usize {
        self.n_source
    }

    /// Starts a search against a target; configure the returned run with
    /// pins / exclusions / injectivity / a budget, then execute it.
    ///
    /// # Panics
    ///
    /// Panics when the target's vocabulary differs from the source's.
    pub fn run<'s, 't>(&'s self, target: &'t Structure) -> HomRun<'s, 't> {
        assert_eq!(
            &self.vocab,
            target.vocabulary(),
            "homomorphisms need a common vocabulary"
        );
        HomRun {
            solver: self,
            target,
            pins: Vec::new(),
            excluded: Vec::new(),
            injective: false,
            budget: None,
        }
    }
}

impl std::fmt::Debug for HomSolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HomSolver")
            .field("source_size", &self.n_source)
            .field("constraints", &self.constraints.len())
            .finish()
    }
}

/// One configured search of a compiled source against a target.
pub struct HomRun<'s, 't> {
    solver: &'s HomSolver,
    target: &'t Structure,
    pins: Vec<(Element, Element)>,
    excluded: Vec<Element>,
    injective: bool,
    budget: Option<SearchBudget>,
}

impl<'s, 't> HomRun<'s, 't> {
    /// Forces `h(src) = tgt`.
    pub fn pin(mut self, src: Element, tgt: Element) -> Self {
        self.pins.push((src, tgt));
        self
    }

    /// Forces `h(src[i]) = tgt[i]` for every position.
    pub fn pin_tuple(mut self, src: &[Element], tgt: &[Element]) -> Self {
        assert_eq!(src.len(), tgt.len(), "pinned tuples must align");
        self.pins
            .extend(src.iter().copied().zip(tgt.iter().copied()));
        self
    }

    /// Forbids a target element from appearing in the image.
    pub fn exclude_target(mut self, t: Element) -> Self {
        self.excluded.push(t);
        self
    }

    /// Requires the homomorphism to be injective on elements.
    pub fn injective(mut self) -> Self {
        self.injective = true;
        self
    }

    /// Shares an existing step budget with this search (see
    /// [`SearchBudget`]).
    pub fn budget(mut self, budget: &SearchBudget) -> Self {
        self.budget = Some(budget.clone());
        self
    }

    /// Caps this search alone at `nodes` branching decisions (a private,
    /// unshared [`SearchBudget`]).
    pub fn node_budget(mut self, nodes: u64) -> Self {
        self.budget = Some(SearchBudget::new(nodes));
        self
    }

    /// Finds one homomorphism, if any.
    pub fn find(self) -> Option<Homomorphism> {
        let mut result = None;
        self.solve(|h| {
            result = Some(h.clone());
            ControlFlow::Break(())
        });
        result
    }

    /// `true` when a homomorphism exists.
    pub fn exists(self) -> bool {
        self.find().is_some()
    }

    /// Enumerates homomorphisms until the callback breaks; returns the
    /// search statistics.
    pub fn for_each<F: FnMut(&Homomorphism) -> ControlFlow<()>>(self, f: F) -> HomSearchStats {
        self.solve(f)
    }

    /// Counts homomorphisms, up to an optional limit.
    pub fn count(self, limit: Option<u64>) -> u64 {
        let mut n = 0u64;
        self.solve(|_| {
            n += 1;
            match limit {
                Some(l) if n >= l => ControlFlow::Break(()),
                _ => ControlFlow::Continue(()),
            }
        });
        n
    }

    fn solve<F: FnMut(&Homomorphism) -> ControlFlow<()>>(&self, mut f: F) -> HomSearchStats {
        let mut sc = take_scratch();
        let mut stats = HomSearchStats::default();
        {
            let mut search = Search {
                solver: self.solver,
                target: self.target,
                idx: self.target.index(),
                n_target: self.target.universe_size(),
                injective: self.injective,
                budget: self.budget.as_ref(),
                sc: &mut sc,
                revisions: 0,
            };
            if search.setup(&self.pins, &self.excluded) {
                // Root-level arc consistency (its trail level is never
                // undone).
                search.new_level();
                if search.propagate_all() {
                    let _ = search.search(&mut f, &mut stats, 0);
                }
            }
            stats.revisions = search.revisions;
        }
        put_scratch(sc);
        stats
    }
}

/// Reusable search buffers, pooled per thread (pooling rather than a
/// single slot keeps re-entrant solves — a `for_each` callback starting
/// another search — safe).
#[derive(Default)]
struct Scratch {
    domains: Vec<ElemSet>,
    assignment: Vec<Option<Element>>,
    /// Saved `(variable, previous domain)` pairs.
    trail: Vec<(u32, ElemSet)>,
    /// Trail length at each decision level.
    marks: Vec<usize>,
    queue: Vec<u32>,
    queued: Vec<bool>,
    shrunk: Vec<Element>,
    support: Vec<(Element, ElemSet)>,
    tuple_buf: Vec<Element>,
    /// Per-depth candidate-value buffers.
    vals: Vec<Vec<Element>>,
    /// Spare bitsets.
    pool: Vec<ElemSet>,
}

thread_local! {
    static SCRATCH_POOL: RefCell<Vec<Scratch>> = const { RefCell::new(Vec::new()) };
}

fn take_scratch() -> Scratch {
    SCRATCH_POOL
        .with(|p| p.borrow_mut().pop())
        .unwrap_or_default()
}

fn put_scratch(sc: Scratch) {
    SCRATCH_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < 8 {
            pool.push(sc);
        }
    });
}

struct Search<'a> {
    solver: &'a HomSolver,
    target: &'a Structure,
    idx: &'a StructureIndex,
    n_target: usize,
    injective: bool,
    budget: Option<&'a SearchBudget>,
    sc: &'a mut Scratch,
    /// AC-3 revisions performed, folded into
    /// [`HomSearchStats::revisions`] when the search returns.
    revisions: u64,
}

impl Search<'_> {
    /// Initializes domains from the index's occurrence sets, pins and
    /// exclusions. Returns `false` on an immediate wipe-out.
    fn setup(&mut self, pins: &[(Element, Element)], excluded: &[Element]) -> bool {
        let n_s = self.solver.n_source;
        let n_t = self.n_target;
        let sc = &mut *self.sc;
        sc.trail.clear();
        sc.marks.clear();
        sc.queue.clear();
        sc.queued.clear();
        sc.queued.resize(self.solver.constraints.len(), false);
        sc.shrunk.clear();
        if sc.domains.len() < n_s {
            sc.domains.resize_with(n_s, ElemSet::default);
        }
        for d in sc.domains[..n_s].iter_mut() {
            d.reset_full(n_t);
        }
        sc.assignment.clear();
        sc.assignment.resize(n_s, None);
        if sc.vals.len() < n_s + 1 {
            sc.vals.resize_with(n_s + 1, Vec::new);
        }
        if n_t == 0 && n_s > 0 {
            return false;
        }

        // Unary pruning: a constrained variable can only take values that
        // occur at the right (relation, position).
        for c in &self.solver.constraints {
            let ridx = self.idx.rel(RelId(c.rel));
            for (p, &v) in c.vars.iter().enumerate() {
                sc.domains[v as usize].intersect_with(ridx.occurs(p));
            }
        }
        for &e in excluded {
            for d in sc.domains[..n_s].iter_mut() {
                d.remove(e);
            }
        }
        for &(s, t) in pins {
            assert!((s as usize) < n_s, "pinned source element out of range");
            assert!((t as usize) < n_t, "pinned target element out of range");
            let keep = sc.domains[s as usize].contains(t);
            sc.domains[s as usize].reset_empty(n_t);
            if keep {
                sc.domains[s as usize].insert(t);
            }
        }
        if self.injective && n_s > n_t {
            return false;
        }
        !(n_s > 0 && sc.domains[..n_s].iter().any(|d| d.is_empty()))
    }

    fn new_level(&mut self) {
        self.sc.marks.push(self.sc.trail.len());
    }

    fn undo_level(&mut self) {
        let mark = self.sc.marks.pop().expect("matching trail level");
        while self.sc.trail.len() > mark {
            let (u, dom) = self.sc.trail.pop().expect("trail entry");
            let shrunk = std::mem::replace(&mut self.sc.domains[u as usize], dom);
            self.sc.pool.push(shrunk);
        }
    }

    /// Root-level propagation over every constraint.
    fn propagate_all(&mut self) -> bool {
        let sc = &mut *self.sc;
        sc.queue.clear();
        for ci in 0..self.solver.constraints.len() as u32 {
            sc.queue.push(ci);
            sc.queued[ci as usize] = true;
        }
        self.drain_queue()
    }

    /// Propagation seeded from the constraints incident to `var` (MAC).
    fn propagate_from(&mut self, var: Element) -> bool {
        let sc = &mut *self.sc;
        sc.queue.clear();
        for &ci in &self.solver.incident[var as usize] {
            if !sc.queued[ci as usize] {
                sc.queued[ci as usize] = true;
                sc.queue.push(ci);
            }
        }
        self.drain_queue()
    }

    /// AC-3 worklist: revise queued constraints, cascading through domain
    /// shrinks, until a fixpoint or a wipe-out.
    fn drain_queue(&mut self) -> bool {
        while let Some(ci) = self.sc.queue.pop() {
            self.sc.queued[ci as usize] = false;
            if !self.revise(ci as usize) {
                for &c in &self.sc.queue {
                    self.sc.queued[c as usize] = false;
                }
                self.sc.queue.clear();
                // A wiped-out revise may have recorded shrunk variables;
                // drop them so the next propagation doesn't re-enqueue
                // their constraints against restored domains.
                self.sc.shrunk.clear();
                return false;
            }
            let mut shrunk = std::mem::take(&mut self.sc.shrunk);
            for &v in &shrunk {
                for &cj in &self.solver.incident[v as usize] {
                    if cj != ci && !self.sc.queued[cj as usize] {
                        self.sc.queued[cj as usize] = true;
                        self.sc.queue.push(cj);
                    }
                }
            }
            shrunk.clear();
            self.sc.shrunk = shrunk;
        }
        true
    }

    /// Generalized arc consistency on one table constraint under the
    /// current partial assignment: intersects each unassigned variable's
    /// domain with its supported values. Shrunk variables are appended to
    /// `sc.shrunk`; returns `false` on a wipe-out.
    fn revise(&mut self, ci: usize) -> bool {
        self.revisions += 1;
        let c = &self.solver.constraints[ci];
        let rel = RelId(c.rel);
        let ridx = self.idx.rel(rel);
        let sc = &mut *self.sc;

        // Fully assigned: a membership test.
        if c.vars.iter().all(|&v| sc.assignment[v as usize].is_some()) {
            sc.tuple_buf.clear();
            sc.tuple_buf
                .extend(c.vars.iter().map(|&v| sc.assignment[v as usize].unwrap()));
            return self.target.contains(rel, &sc.tuple_buf);
        }

        // Seed the support scan from the shortest inverted list of an
        // assigned position; fall back to the full relation.
        let mut best: Option<&[u32]> = None;
        for (p, &v) in c.vars.iter().enumerate() {
            if let Some(val) = sc.assignment[v as usize] {
                let list = ridx.matches(p, val);
                if best.is_none_or(|b| list.len() < b.len()) {
                    best = Some(list);
                }
            }
        }

        // One support set per distinct unassigned variable.
        debug_assert!(sc.support.is_empty());
        for &v in c.distinct.iter() {
            if sc.assignment[v as usize].is_none() {
                let mut s = sc.pool.pop().unwrap_or_default();
                s.reset_empty(self.n_target);
                sc.support.push((v, s));
            }
        }

        {
            let (assignment, domains, support) = (&sc.assignment, &sc.domains, &mut sc.support);
            let mut consider = |t: &[Element]| {
                for (p, &v) in c.vars.iter().enumerate() {
                    match assignment[v as usize] {
                        Some(val) => {
                            if t[p] != val {
                                return;
                            }
                        }
                        None => {
                            if !domains[v as usize].contains(t[p]) {
                                return;
                            }
                        }
                    }
                }
                for &(p, q) in c.repeats.iter() {
                    if t[p as usize] != t[q as usize] {
                        return;
                    }
                }
                for (u, sup) in support.iter_mut() {
                    for (p, &v) in c.vars.iter().enumerate() {
                        if v == *u {
                            sup.insert(t[p]);
                        }
                    }
                }
            };
            let tuples = self.target.tuples(rel);
            match best {
                Some(list) => {
                    for &ti in list {
                        consider(&tuples[ti as usize]);
                    }
                }
                None => {
                    for t in tuples {
                        consider(t);
                    }
                }
            }
        }

        // Apply the supports as new domains (they are subsets of the old
        // domains by construction).
        let mut wiped = false;
        while let Some((u, sup)) = sc.support.pop() {
            if wiped {
                sc.pool.push(sup);
                continue;
            }
            let du = &mut sc.domains[u as usize];
            if sup.count() < du.count() {
                if sup.is_empty() {
                    wiped = true;
                }
                sc.shrunk.push(u);
                sc.trail.push((u, std::mem::replace(du, sup)));
            } else {
                sc.pool.push(sup);
            }
        }
        !wiped
    }

    /// Minimum-remaining-values with degree tiebreak.
    fn select_var(&self) -> Option<Element> {
        let mut best: Option<(usize, usize, Element)> = None;
        for v in 0..self.solver.n_source {
            if self.sc.assignment[v].is_none() {
                let dom = self.sc.domains[v].count();
                let deg = self.solver.incident[v].len();
                let key = (dom, usize::MAX - deg, v as Element);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
        }
        best.map(|(_, _, v)| v)
    }

    fn search<F: FnMut(&Homomorphism) -> ControlFlow<()>>(
        &mut self,
        f: &mut F,
        stats: &mut HomSearchStats,
        depth: usize,
    ) -> ControlFlow<()> {
        let var = match self.select_var() {
            Some(v) => v,
            None => {
                let map = self
                    .sc
                    .assignment
                    .iter()
                    .map(|a| a.expect("complete assignment"))
                    .collect();
                let h = Homomorphism { map };
                return f(&h);
            }
        };
        let mut vals = std::mem::take(&mut self.sc.vals[depth]);
        vals.clear();
        vals.extend(self.sc.domains[var as usize].iter());
        let mut flow = ControlFlow::Continue(());
        for &val in &vals {
            if let Some(b) = self.budget {
                if !b.charge(1) {
                    stats.budget_exhausted = true;
                    flow = ControlFlow::Break(());
                    break;
                }
            }
            stats.nodes += 1;
            self.new_level();
            self.sc.assignment[var as usize] = Some(val);
            let mut ok = true;
            if self.injective {
                // Forward-check injectivity: val leaves every other domain.
                let sc = &mut *self.sc;
                for u in 0..self.solver.n_source {
                    if u != var as usize
                        && sc.assignment[u].is_none()
                        && sc.domains[u].contains(val)
                    {
                        let mut nd = sc.pool.pop().unwrap_or_default();
                        nd.copy_from(&sc.domains[u]);
                        nd.remove(val);
                        sc.trail
                            .push((u as u32, std::mem::replace(&mut sc.domains[u], nd)));
                        if sc.domains[u].is_empty() {
                            ok = false;
                            break;
                        }
                    }
                }
            }
            if ok {
                ok = self.propagate_from(var);
            }
            let res = if ok {
                self.search(f, stats, depth + 1)
            } else {
                stats.backtracks += 1;
                ControlFlow::Continue(())
            };
            self.sc.assignment[var as usize] = None;
            self.undo_level();
            if res.is_break() {
                flow = ControlFlow::Break(());
                break;
            }
        }
        self.sc.vals[depth] = vals;
        flow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Structure {
        let edges: Vec<(Element, Element)> = (0..n)
            .map(|i| (i as Element, ((i + 1) % n) as Element))
            .collect();
        Structure::digraph(n, &edges)
    }

    #[test]
    fn compiled_source_reused_across_targets() {
        let solver = HomSolver::compile(&cycle(6));
        assert!(solver.run(&cycle(3)).exists());
        assert!(solver.run(&cycle(2)).exists());
        assert!(!solver.run(&cycle(4)).exists());
        assert!(!solver.run(&cycle(5)).exists());
        // Reuse with variants against the same target.
        let c3 = cycle(3);
        assert_eq!(solver.run(&c3).count(None), 3);
        assert!(solver.run(&c3).pin(0, 1).exists());
        assert!(!solver.run(&c3).injective().exists()); // 6 > 3 elements
    }

    #[test]
    fn shared_budget_cancels_across_runs() {
        let budget = SearchBudget::new(5);
        let solver = HomSolver::compile(&cycle(12));
        let mut exhausted = 0;
        for _ in 0..3 {
            let stats = solver
                .run(&cycle(4))
                .budget(&budget)
                .for_each(|_| ControlFlow::Continue(()));
            if stats.budget_exhausted {
                exhausted += 1;
            }
        }
        assert!(budget.is_exhausted());
        assert!(exhausted >= 1, "the shared budget ran dry");
        // A cancelled budget stops a fresh search immediately.
        let b2 = SearchBudget::new(u64::MAX);
        b2.cancel();
        let stats = solver
            .run(&cycle(4))
            .budget(&b2)
            .for_each(|_| ControlFlow::Continue(()));
        assert!(stats.budget_exhausted);
        assert_eq!(stats.nodes, 0);
    }

    #[test]
    fn budget_charge_saturates() {
        let b = SearchBudget::new(3);
        assert!(b.charge(2));
        assert!(b.charge(5)); // partial final charge allowed
        assert_eq!(b.remaining(), 0);
        assert!(!b.charge(1));
        assert!(b.is_exhausted());
    }

    #[test]
    fn stats_count_ac3_revisions() {
        // Any constrained search does at least one root revision, and
        // branching (MAC) revises again below the root.
        let solver = HomSolver::compile(&cycle(4));
        let stats = solver
            .run(&cycle(8))
            .for_each(|_| ControlFlow::Continue(()));
        assert!(stats.nodes > 0);
        assert!(stats.revisions > stats.nodes, "MAC revises per branch");
    }

    #[test]
    fn reentrant_solves_are_safe() {
        // A callback that itself runs a search must not corrupt scratch.
        let solver = HomSolver::compile(&cycle(3));
        let c3 = cycle(3);
        let mut inner_ok = true;
        solver.run(&c3).for_each(|_| {
            inner_ok &= HomSolver::compile(&cycle(6)).run(&c3).exists();
            ControlFlow::Continue(())
        });
        assert!(inner_ok);
    }

    #[test]
    #[should_panic(expected = "common vocabulary")]
    fn vocabulary_mismatch_panics() {
        let v = Vocabulary::single(3);
        let s = Structure::empty(v, 1);
        let _ = HomSolver::compile(&cycle(3)).run(&s);
    }
}
