//! Word-parallel **existence bitmap** over dense codes `[0, width)`.
//!
//! [`crate::dict::DomainDict`] interns the active domain into dense
//! `u32` codes, so membership of a code set is representable as a
//! chunked `u64` bitmap of `width` bits. The bitmap answers *only*
//! existence questions — "does code `v` occur in this column?" and
//! "do these two columns share any code?" — never ordering or
//! multiplicity, which is what lets the columnar kernels swap it in
//! for per-row hash/offset probes without perturbing output bytes.
//!
//! Probes are branch-free: out-of-range codes fall off the word table
//! and read as absent instead of taking a bounds branch, so a probe
//! loop over a selection vector compiles to straight-line word math.

/// A fixed-width existence bitmap over dense codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainBitmap {
    /// `width.div_ceil(64)` words; bit `v & 63` of word `v >> 6` is set
    /// iff code `v` is present.
    words: Vec<u64>,
    /// The exclusive upper bound on representable codes.
    width: u32,
    /// Number of set bits (distinct present codes).
    ones: u32,
}

impl DomainBitmap {
    /// An all-zero bitmap over `[0, width)`.
    pub fn new(width: u32) -> Self {
        DomainBitmap {
            words: vec![0u64; (width as usize).div_ceil(64)],
            width,
            ones: 0,
        }
    }

    /// Builds a bitmap over `[0, width)` with the given codes set.
    /// Codes `>= width` are ignored (they cannot occur in a column
    /// whose `domain_width` bound is honest).
    pub fn from_codes(width: u32, codes: impl IntoIterator<Item = u32>) -> Self {
        let mut bm = DomainBitmap::new(width);
        for v in codes {
            bm.set(v);
        }
        bm
    }

    /// Sets code `v`. Codes `>= width` are ignored.
    #[inline]
    pub fn set(&mut self, v: u32) {
        if let Some(w) = self.words.get_mut((v >> 6) as usize) {
            let bit = 1u64 << (v & 63);
            self.ones += ((*w & bit) == 0) as u32;
            *w |= bit;
        }
    }

    /// Branch-free membership probe. Codes `>= width` read as absent.
    #[inline]
    pub fn contains(&self, v: u32) -> bool {
        let w = self.words.get((v >> 6) as usize).copied().unwrap_or(0);
        (w >> (v & 63)) & 1 != 0
    }

    /// The exclusive upper bound on representable codes.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of distinct codes present.
    #[inline]
    pub fn ones(&self) -> u32 {
        self.ones
    }

    /// `true` when no code is present.
    pub fn is_empty(&self) -> bool {
        self.ones == 0
    }

    /// The backing word table (read-only; for word-wise kernels).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Word-wise ANY-of-AND: `true` iff some code is present in both
    /// bitmaps. Widths may differ; only the shared prefix can overlap.
    pub fn intersects(&self, other: &DomainBitmap) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(a, b)| a & b != 0)
    }

    /// Word-wise AND into a fresh bitmap of the narrower width.
    pub fn and(&self, other: &DomainBitmap) -> DomainBitmap {
        let width = self.width.min(other.width);
        let n = (width as usize).div_ceil(64);
        let mut words = Vec::with_capacity(n);
        let mut ones = 0u32;
        for i in 0..n {
            let w = self.words[i] & other.words[i];
            ones += w.count_ones();
            words.push(w);
        }
        DomainBitmap { words, width, ones }
    }

    /// Word-wise subset test: `true` iff every code present in `self`
    /// is present in `other`. Widths may differ — bits of `self` beyond
    /// `other`'s word table count as uncovered.
    pub fn subset_of(&self, other: &DomainBitmap) -> bool {
        self.words
            .iter()
            .enumerate()
            .all(|(i, &w)| w & !other.words.get(i).copied().unwrap_or(0) == 0)
    }

    /// Iterates set codes in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &w0)| {
            std::iter::successors(if w0 != 0 { Some(w0) } else { None }, |&w| {
                let w = w & (w - 1);
                if w != 0 {
                    Some(w)
                } else {
                    None
                }
            })
            .map(move |w| (i as u32) << 6 | w.trailing_zeros())
        })
    }

    /// Heap bytes held by the word table (for cache accounting).
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_contains_roundtrip() {
        let mut bm = DomainBitmap::new(130);
        for v in [0, 1, 63, 64, 127, 128, 129] {
            assert!(!bm.contains(v));
            bm.set(v);
            assert!(bm.contains(v));
        }
        assert_eq!(bm.ones(), 7);
        // Re-setting does not double-count.
        bm.set(63);
        assert_eq!(bm.ones(), 7);
    }

    #[test]
    fn out_of_range_reads_absent_and_set_ignored() {
        let mut bm = DomainBitmap::new(10);
        bm.set(1000);
        assert!(!bm.contains(1000));
        assert!(!bm.contains(u32::MAX));
        assert_eq!(bm.ones(), 0);
    }

    #[test]
    fn intersects_and_and_agree() {
        let a = DomainBitmap::from_codes(200, [3, 64, 150]);
        let b = DomainBitmap::from_codes(100, [4, 64]);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        let c = a.and(&b);
        assert_eq!(c.width(), 100);
        assert_eq!(c.iter_ones().collect::<Vec<_>>(), vec![64]);
        let d = DomainBitmap::from_codes(200, [5]);
        assert!(!a.intersects(&d));
        assert!(a.and(&d).is_empty());
    }

    #[test]
    fn subset_of_handles_width_mismatch() {
        let small = DomainBitmap::from_codes(64, [3, 40]);
        let big = DomainBitmap::from_codes(200, [3, 40, 150]);
        assert!(small.subset_of(&big));
        assert!(!big.subset_of(&small), "150 falls off small's word table");
        assert!(big.subset_of(&big));
        assert!(DomainBitmap::new(500).subset_of(&small), "∅ ⊆ anything");
        let other = DomainBitmap::from_codes(64, [3]);
        assert!(!small.subset_of(&other));
    }

    #[test]
    fn iter_ones_ascending() {
        let bm = DomainBitmap::from_codes(300, [299, 0, 64, 63, 128, 5]);
        assert_eq!(
            bm.iter_ones().collect::<Vec<_>>(),
            vec![0, 5, 63, 64, 128, 299]
        );
        assert_eq!(DomainBitmap::new(64).iter_ones().count(), 0);
    }

    #[test]
    fn zero_width_is_inert() {
        let mut bm = DomainBitmap::new(0);
        bm.set(0);
        assert!(!bm.contains(0));
        assert!(bm.is_empty());
        assert_eq!(bm.heap_bytes(), 0);
    }
}
