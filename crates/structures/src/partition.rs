//! Partitions of `{0, …, n-1}` and their enumeration.
//!
//! Homomorphic images of a tableau correspond exactly to its quotients by
//! partitions of the variable set (Theorem 4.1 takes approximations among
//! the structures `(Im(h), h(x̄))`, and the image of any map is determined
//! by which variables it identifies). The approximation algorithms
//! enumerate partitions as **restricted growth strings** (RGS): a sequence
//! `b` with `b[0] = 0` and `b[i] ≤ 1 + max(b[0..i])`, canonical per
//! set-partition. The number of partitions of an `n`-set is the `n`-th
//! Bell number — the source of the paper's single-exponential bounds.

use serde::{Deserialize, Serialize};
use std::ops::ControlFlow;

/// A partition of `{0, …, n-1}` in restricted-growth-string form.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Partition {
    /// `blocks[i]` is the block index of element `i`; block indices are
    /// dense and first-occurrence ordered (RGS normal form).
    blocks: Vec<u32>,
    n_blocks: u32,
}

impl Partition {
    /// The identity partition (every element its own block).
    pub fn identity(n: usize) -> Self {
        Partition {
            blocks: (0..n as u32).collect(),
            n_blocks: n as u32,
        }
    }

    /// The coarsest partition (all elements in one block). For `n = 0`
    /// there are no blocks.
    pub fn coarsest(n: usize) -> Self {
        Partition {
            blocks: vec![0; n],
            n_blocks: if n == 0 { 0 } else { 1 },
        }
    }

    /// Builds a partition from arbitrary block labels, normalizing to RGS
    /// form.
    pub fn from_labels(labels: &[u32]) -> Self {
        let table = labels.iter().map(|&l| l as usize + 1).max().unwrap_or(0);
        let mut remap: Vec<Option<u32>> = vec![None; table];
        let mut blocks = Vec::with_capacity(labels.len());
        let mut next = 0u32;
        for &l in labels {
            let slot = &mut remap[l as usize];
            let b = match *slot {
                Some(b) => b,
                None => {
                    let b = next;
                    *slot = Some(b);
                    next += 1;
                    b
                }
            };
            blocks.push(b);
        }
        Partition {
            blocks,
            n_blocks: next,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// `true` for the empty partition.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Number of blocks.
    pub fn n_blocks(&self) -> usize {
        self.n_blocks as usize
    }

    /// The block of an element.
    #[inline]
    pub fn block_of(&self, e: usize) -> u32 {
        self.blocks[e]
    }

    /// The block labels (RGS).
    pub fn labels(&self) -> &[u32] {
        &self.blocks
    }

    /// `true` when `self` refines `other` (every block of `self` is inside
    /// a block of `other`).
    pub fn refines(&self, other: &Partition) -> bool {
        assert_eq!(self.len(), other.len());
        // self refines other iff block_of(self) determines block_of(other).
        let mut img: Vec<Option<u32>> = vec![None; self.n_blocks as usize];
        for i in 0..self.len() {
            let b = self.blocks[i] as usize;
            match img[b] {
                None => img[b] = Some(other.blocks[i]),
                Some(x) => {
                    if x != other.blocks[i] {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// The partition obtained by additionally merging elements `a` and `b`.
    pub fn merge(&self, a: usize, b: usize) -> Partition {
        let ba = self.blocks[a];
        let bb = self.blocks[b];
        if ba == bb {
            return self.clone();
        }
        let labels: Vec<u32> = self
            .blocks
            .iter()
            .map(|&x| if x == bb { ba } else { x })
            .collect();
        Partition::from_labels(&labels)
    }
}

/// Enumerates every partition of `{0, …, n-1}` (Bell(n) of them) in RGS
/// order, invoking the callback on each; stops early on `Break`.
///
/// Returns `true` when the enumeration ran to completion.
///
/// # Examples
///
/// ```
/// use cqapx_structures::partition::for_each_partition;
/// use std::ops::ControlFlow;
///
/// let mut count = 0;
/// for_each_partition(4, |_p| {
///     count += 1;
///     ControlFlow::Continue(())
/// });
/// assert_eq!(count, 15); // Bell(4)
/// ```
pub fn for_each_partition<F: FnMut(&Partition) -> ControlFlow<()>>(n: usize, mut f: F) -> bool {
    if n == 0 {
        return matches!(
            f(&Partition {
                blocks: vec![],
                n_blocks: 0
            }),
            ControlFlow::Continue(())
        );
    }
    // Iterative RGS enumeration.
    let mut b = vec![0u32; n]; // current RGS
    let mut m = vec![0u32; n]; // m[i] = max(b[0..=i])
    loop {
        let n_blocks = m[n - 1] + 1;
        let p = Partition {
            blocks: b.clone(),
            n_blocks,
        };
        if let ControlFlow::Break(()) = f(&p) {
            return false;
        }
        // Find rightmost position we can increment.
        let mut i = n - 1;
        loop {
            if i == 0 {
                return true; // exhausted
            }
            let max_prev = m[i - 1];
            if b[i] <= max_prev {
                // can increment b[i] up to max_prev + 1
                b[i] += 1;
                m[i] = m[i - 1].max(b[i]);
                for j in i + 1..n {
                    b[j] = 0;
                    m[j] = m[j - 1];
                }
                break;
            }
            i -= 1;
        }
    }
}

/// The `n`-th Bell number (number of partitions of an `n`-set), saturating
/// at `u64::MAX`.
pub fn bell(n: usize) -> u64 {
    // Bell triangle.
    let mut row = vec![1u64];
    for _ in 0..n {
        let mut next = Vec::with_capacity(row.len() + 1);
        next.push(*row.last().unwrap());
        for &x in &row {
            let prev = *next.last().unwrap();
            next.push(prev.saturating_add(x));
        }
        row = next;
    }
    row[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bell_numbers() {
        assert_eq!(bell(0), 1);
        assert_eq!(bell(1), 1);
        assert_eq!(bell(2), 2);
        assert_eq!(bell(3), 5);
        assert_eq!(bell(4), 15);
        assert_eq!(bell(5), 52);
        assert_eq!(bell(10), 115_975);
    }

    #[test]
    fn enumeration_counts_match_bell() {
        for n in 0..=7 {
            let mut count = 0u64;
            for_each_partition(n, |_| {
                count += 1;
                ControlFlow::Continue(())
            });
            assert_eq!(count, bell(n), "Bell({n})");
        }
    }

    #[test]
    fn enumeration_yields_distinct_normalized_partitions() {
        let mut seen = std::collections::HashSet::new();
        for_each_partition(5, |p| {
            assert_eq!(p, &Partition::from_labels(p.labels()), "RGS-normalized");
            assert!(seen.insert(p.labels().to_vec()), "no duplicates");
            ControlFlow::Continue(())
        });
        assert_eq!(seen.len(), 52);
    }

    #[test]
    fn early_break() {
        let mut count = 0;
        let completed = for_each_partition(6, |_| {
            count += 1;
            if count >= 10 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert!(!completed);
        assert_eq!(count, 10);
    }

    #[test]
    fn from_labels_normalizes() {
        let p = Partition::from_labels(&[5, 2, 5, 2, 0]);
        assert_eq!(p.labels(), &[0, 1, 0, 1, 2]);
        assert_eq!(p.n_blocks(), 3);
    }

    #[test]
    fn refinement() {
        let fine = Partition::from_labels(&[0, 1, 2, 3]);
        let mid = Partition::from_labels(&[0, 0, 1, 1]);
        let coarse = Partition::coarsest(4);
        assert!(fine.refines(&mid));
        assert!(mid.refines(&coarse));
        assert!(fine.refines(&coarse));
        assert!(!mid.refines(&fine));
        let other = Partition::from_labels(&[0, 1, 0, 1]);
        assert!(!mid.refines(&other));
        assert!(!other.refines(&mid));
    }

    #[test]
    fn merge() {
        let p = Partition::identity(4);
        let q = p.merge(1, 3);
        assert_eq!(q.n_blocks(), 3);
        assert_eq!(q.block_of(1), q.block_of(3));
        let r = q.merge(1, 3);
        assert_eq!(q, r);
    }
}
