//! Structures with a tuple of distinguished elements: `(D, ā)`.
//!
//! Tableaux of non-Boolean conjunctive queries have this shape; a
//! homomorphism `(D₁, ā₁) → (D₂, ā₂)` must map `ā₁` to `ā₂` pointwise.

use crate::structure::{Element, Structure};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A structure together with a tuple of distinguished elements.
///
/// The distinguished tuple may repeat elements and may be empty (Boolean
/// case). Distinguished elements must lie in the universe.
///
/// # Examples
///
/// ```
/// use cqapx_structures::{Pointed, Structure};
///
/// // Tableau of Q(x, y) :- E(x,y), E(y,z), E(z,x)  with x=0, y=1, z=2.
/// let t = Structure::digraph(3, &[(0, 1), (1, 2), (2, 0)]);
/// let p = Pointed::new(t, vec![0, 1]);
/// assert_eq!(p.distinguished(), &[0, 1]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pointed {
    /// The underlying structure.
    pub structure: Structure,
    distinguished: Vec<Element>,
}

impl Pointed {
    /// Wraps a structure with a distinguished tuple.
    ///
    /// # Panics
    ///
    /// Panics when a distinguished element is outside the universe.
    pub fn new(structure: Structure, distinguished: Vec<Element>) -> Self {
        for &x in &distinguished {
            assert!(
                (x as usize) < structure.universe_size(),
                "distinguished element {x} out of universe"
            );
        }
        Pointed {
            structure,
            distinguished,
        }
    }

    /// A Boolean (empty-tuple) pointed structure.
    pub fn boolean(structure: Structure) -> Self {
        Pointed {
            structure,
            distinguished: Vec::new(),
        }
    }

    /// The distinguished tuple `ā`.
    pub fn distinguished(&self) -> &[Element] {
        &self.distinguished
    }

    /// Number of distinguished positions (free variables of the query).
    pub fn arity(&self) -> usize {
        self.distinguished.len()
    }

    /// `true` when there are no distinguished elements.
    pub fn is_boolean(&self) -> bool {
        self.distinguished.is_empty()
    }

    /// Applies a map to both the structure (image) and the tuple.
    ///
    /// Realizes `(Im(h), h(ā))` from the paper for a total map `h`.
    pub fn map_image(&self, map: &[Element]) -> Pointed {
        // `map_image` renumbers to the active domain of the image; rebuild
        // the same renumbering here so distinguished elements stay aligned.
        let raw = self.structure.map_image_raw(map);
        let (img, remap) = raw.restrict_to_adom();
        let distinguished = self
            .distinguished
            .iter()
            .map(|&x| {
                remap[map[x as usize] as usize]
                    .expect("distinguished elements occur in some atom, so they survive")
            })
            .collect();
        Pointed {
            structure: img,
            distinguished,
        }
    }

    /// Restricts the universe to the active domain (distinguished elements
    /// must occur in tuples, as they do for tableaux of queries whose free
    /// variables all occur in atoms).
    pub fn restrict_to_adom(&self) -> Pointed {
        let (s, remap) = self.structure.restrict_to_adom();
        let distinguished = self
            .distinguished
            .iter()
            .map(|&x| remap[x as usize].expect("distinguished element must be active"))
            .collect();
        Pointed {
            structure: s,
            distinguished,
        }
    }
}

impl fmt::Debug for Pointed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pointed(ā = [")?;
        for (i, &x) in self.distinguished.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.structure.element_name(x))?;
        }
        writeln!(f, "])")?;
        write!(f, "{:?}", self.structure)
    }
}

impl Structure {
    /// The raw image of this structure under a map, *without* restricting
    /// to the active domain (universe is `0..=max(map)`).
    pub(crate) fn map_image_raw(&self, map: &[Element]) -> Structure {
        assert_eq!(map.len(), self.universe_size(), "one image per element");
        let max = map.iter().copied().max().map_or(0, |m| m as usize + 1);
        let mut b = crate::structure::StructureBuilder::new(self.vocabulary().clone(), max);
        for rel in self.vocabulary().rel_ids() {
            for t in self.tuples(rel) {
                let mapped: Vec<Element> = t.iter().map(|&x| map[x as usize]).collect();
                b.add(rel, &mapped);
            }
        }
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boolean_pointed() {
        let p = Pointed::boolean(Structure::digraph(2, &[(0, 1)]));
        assert!(p.is_boolean());
        assert_eq!(p.arity(), 0);
    }

    #[test]
    fn map_image_tracks_distinguished() {
        // 4-cycle with distinguished (0,1,2); collapse 3 onto 1.
        let g = Structure::digraph(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let p = Pointed::new(g, vec![0, 1, 2]);
        let q = p.map_image(&[0, 1, 2, 1]);
        assert_eq!(q.structure.universe_size(), 3);
        assert_eq!(q.distinguished(), &[0, 1, 2]);
        let e = q.structure.vocabulary().rel("E").unwrap();
        // edges (0,1),(1,2),(2,1),(1,0)
        assert!(q.structure.contains(e, &[2, 1]));
        assert!(q.structure.contains(e, &[1, 0]));
    }

    #[test]
    fn map_image_renumbers_consistently() {
        // Map onto non-dense labels: elements {0,1,2} -> {5,7,5}
        let g = Structure::digraph(3, &[(0, 1), (1, 2)]);
        let p = Pointed::new(g, vec![2]);
        let q = p.map_image(&[5, 7, 5]);
        assert_eq!(q.structure.universe_size(), 2);
        // element 2 mapped to 5, which is renumbered to 0
        assert_eq!(q.distinguished(), &[0]);
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn distinguished_in_range() {
        let _ = Pointed::new(Structure::digraph(2, &[(0, 1)]), vec![5]);
    }
}
