//! Per-structure inverted indexes over relation tuples.
//!
//! Every hot path in the workspace — homomorphism search, core
//! computation, containment, the approximation pipeline — repeatedly asks
//! the same two questions about a structure's relations: *which tuples
//! have value `v` at position `p`?* (the support scan of a table
//! constraint) and *which values occur at position `p` at all?* (the unary
//! pruning of candidate domains). [`StructureIndex`] answers both in O(1)
//! from inverted lists built in one pass over the tuples.
//!
//! The index is built **lazily, once per [`Structure`]**, by
//! [`Structure::index`](crate::Structure::index), and cached behind an
//! `Arc`: clones of a structure share the built index, and repeated
//! searches against the same target (the `O(candidates²)` regime of the
//! minimality filter, or a core computation's `n` exclusion probes per
//! retract) pay the build cost exactly once. The cache never goes stale
//! because a `Structure`'s relations are immutable after
//! [`StructureBuilder::finish`](crate::StructureBuilder::finish) — the
//! only mutators (`set_names`/`clear_names`) touch display names, not
//! tuples. Any future tuple-level mutator must go through the builder,
//! which starts with a fresh, empty cache cell.

use crate::structure::{Element, Structure};
use crate::vocabulary::RelId;
use std::sync::{Arc, OnceLock};

/// A dense bitset over elements `0..n`, the solver's domain
/// representation and the index's occurrence sets.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct ElemSet {
    words: Vec<u64>,
}

impl ElemSet {
    /// Resets to the full set `{0, …, n-1}`, reusing the allocation.
    pub(crate) fn reset_full(&mut self, n: usize) {
        self.words.clear();
        self.words.resize(n.div_ceil(64), !0u64);
        if !n.is_multiple_of(64) {
            if let Some(last) = self.words.last_mut() {
                *last = (1u64 << (n % 64)) - 1;
            }
        }
    }

    /// Resets to the empty set over `0..n`, reusing the allocation.
    pub(crate) fn reset_empty(&mut self, n: usize) {
        self.words.clear();
        self.words.resize(n.div_ceil(64), 0u64);
    }

    /// Becomes a copy of `other`, reusing the allocation.
    pub(crate) fn copy_from(&mut self, other: &ElemSet) {
        self.words.clear();
        self.words.extend_from_slice(&other.words);
    }

    #[inline]
    pub(crate) fn contains(&self, i: Element) -> bool {
        (self.words[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    #[inline]
    pub(crate) fn insert(&mut self, i: Element) {
        self.words[(i / 64) as usize] |= 1 << (i % 64);
    }

    /// Removes an element; out-of-range removals are no-ops.
    #[inline]
    pub(crate) fn remove(&mut self, i: Element) {
        if let Some(w) = self.words.get_mut((i / 64) as usize) {
            *w &= !(1 << (i % 64));
        }
    }

    pub(crate) fn intersect_with(&mut self, other: &ElemSet) {
        for (w, o) in self.words.iter_mut().zip(other.words.iter()) {
            *w &= o;
        }
        // `other` may cover fewer words; anything beyond it is gone.
        for w in self.words.iter_mut().skip(other.words.len()) {
            *w = 0;
        }
    }

    pub(crate) fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = Element> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros();
                    w &= w - 1;
                    Some(wi as Element * 64 + b)
                }
            })
        })
    }
}

/// The inverted index of one relation: per-(position, value) tuple lists
/// plus per-position occurrence sets.
#[derive(Debug)]
pub struct RelIndex {
    arity: usize,
    n_values: usize,
    /// `lists[pos * n_values + val]` = indices (into the relation's sorted
    /// tuple slice) of tuples with `val` at `pos`.
    lists: Vec<Vec<u32>>,
    /// `occurs[pos]` = the set of values occurring at `pos`.
    occurs: Vec<ElemSet>,
}

impl RelIndex {
    fn build(s: &Structure, rel: RelId) -> RelIndex {
        let arity = s.vocabulary().arity(rel);
        let n_values = s.universe_size();
        let mut lists = vec![Vec::new(); arity * n_values];
        let mut occurs = vec![ElemSet::default(); arity];
        for o in occurs.iter_mut() {
            o.reset_empty(n_values);
        }
        for (ti, t) in s.tuples(rel).iter().enumerate() {
            for (p, &v) in t.iter().enumerate() {
                lists[p * n_values + v as usize].push(ti as u32);
                occurs[p].insert(v);
            }
        }
        RelIndex {
            arity,
            n_values,
            lists,
            occurs,
        }
    }

    /// The arity of the indexed relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Indices of the tuples holding `val` at position `pos` (indices into
    /// the slice returned by [`Structure::tuples`](crate::Structure::tuples)).
    #[inline]
    pub fn matches(&self, pos: usize, val: Element) -> &[u32] {
        &self.lists[pos * self.n_values + val as usize]
    }

    /// The set of values occurring at `pos` of any tuple.
    #[inline]
    pub(crate) fn occurs(&self, pos: usize) -> &ElemSet {
        &self.occurs[pos]
    }

    /// `true` when some tuple has `val` at position `pos`.
    pub fn occurs_at(&self, pos: usize, val: Element) -> bool {
        self.occurs[pos].contains(val)
    }
}

/// Inverted indexes for every relation of a [`Structure`], built once and
/// cached on the structure (see the [module docs](self)).
#[derive(Debug)]
pub struct StructureIndex {
    rels: Vec<RelIndex>,
}

impl StructureIndex {
    pub(crate) fn build(s: &Structure) -> StructureIndex {
        StructureIndex {
            rels: s
                .vocabulary()
                .rel_ids()
                .map(|rel| RelIndex::build(s, rel))
                .collect(),
        }
    }

    /// The index of one relation.
    #[inline]
    pub fn rel(&self, rel: RelId) -> &RelIndex {
        &self.rels[rel.index()]
    }
}

/// The lazily-initialized index slot carried by every [`Structure`].
///
/// Equality, hashing and (stub) serialization of structures ignore the
/// cache; cloning shares the already-built index (relations are immutable
/// after construction, so a shared index can never go stale).
#[derive(Debug, Default)]
pub(crate) struct IndexCell(pub(crate) OnceLock<Arc<StructureIndex>>);

impl Clone for IndexCell {
    fn clone(&self) -> Self {
        IndexCell(self.0.clone())
    }
}

impl PartialEq for IndexCell {
    fn eq(&self, _other: &Self) -> bool {
        true // the cache is derived data, invisible to equality
    }
}

impl Eq for IndexCell {}

impl std::hash::Hash for IndexCell {
    fn hash<H: std::hash::Hasher>(&self, _state: &mut H) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::StructureBuilder;
    use crate::vocabulary::Vocabulary;

    #[test]
    fn inverted_lists_match_tuples() {
        let v = Vocabulary::single(3);
        let r = v.rel("R").unwrap();
        let mut b = StructureBuilder::new(v, 4);
        b.add(r, &[0, 1, 2]).add(r, &[1, 1, 3]).add(r, &[2, 1, 0]);
        let s = b.finish();
        let idx = s.index().rel(r);
        assert_eq!(idx.arity(), 3);
        // position 1 is constantly 1.
        assert_eq!(idx.matches(1, 1).len(), 3);
        assert!(idx.matches(1, 0).is_empty());
        assert!(idx.occurs_at(0, 2));
        assert!(!idx.occurs_at(2, 1));
        // Lists point back at the sorted tuple slice.
        for &ti in idx.matches(0, 1) {
            assert_eq!(s.tuples(r)[ti as usize][0], 1);
        }
    }

    #[test]
    fn cache_shared_across_clones() {
        let s = Structure::digraph(3, &[(0, 1), (1, 2)]);
        let a = s.index() as *const StructureIndex;
        let s2 = s.clone();
        let b = s2.index() as *const StructureIndex;
        assert_eq!(a, b, "clones share the built index");
    }

    #[test]
    fn equality_ignores_cache() {
        let s = Structure::digraph(3, &[(0, 1), (1, 2)]);
        let t = Structure::digraph(3, &[(0, 1), (1, 2)]);
        let _ = s.index(); // build one side only
        assert_eq!(s, t);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |x: &Structure| {
            let mut h = DefaultHasher::new();
            x.hash(&mut h);
            h.finish()
        };
        assert_eq!(h(&s), h(&t));
    }

    #[test]
    fn elemset_basics() {
        let mut s = ElemSet::default();
        s.reset_full(70);
        assert_eq!(s.count(), 70);
        assert!(s.contains(69));
        s.remove(69);
        assert!(!s.contains(69));
        s.remove(1000); // out of range: no-op
        let mut t = ElemSet::default();
        t.reset_empty(70);
        t.insert(3);
        t.insert(64);
        s.intersect_with(&t);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 64]);
        assert!(!s.is_empty());
    }
}
