//! Finite relational structures (databases).

use crate::dict::{DictCell, DomainDict};
use crate::index::{IndexCell, StructureIndex};
use crate::vocabulary::{RelId, Vocabulary};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// An element of a structure's universe. Elements are dense indices
/// `0..structure.universe_size()`.
pub type Element = u32;

/// A tuple of elements, i.e. one fact of a relation.
pub type Tuple = Box<[Element]>;

/// A finite relational structure (a database) over a [`Vocabulary`].
///
/// Elements are `0..universe_size()`. Following standard database-theory
/// convention (and the paper), the universe is intended to be the *active
/// domain* — every element should occur in some tuple; structures with
/// isolated elements can be normalized with [`Structure::restrict_to_adom`].
///
/// Tuples of each relation are kept sorted and deduplicated, so structural
/// equality of `Structure` values is set equality of their relations.
///
/// # Examples
///
/// ```
/// use cqapx_structures::{Structure, Vocabulary};
///
/// // The directed 3-cycle (tableau of Q1() :- E(x,y),E(y,z),E(z,x)).
/// let c3 = Structure::digraph(3, &[(0, 1), (1, 2), (2, 0)]);
/// assert_eq!(c3.universe_size(), 3);
/// assert_eq!(c3.total_tuples(), 3);
/// let e = c3.vocabulary().rel("E").unwrap();
/// assert!(c3.contains(e, &[0, 1]));
/// assert!(!c3.contains(e, &[1, 0]));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Structure {
    vocab: Vocabulary,
    universe_size: usize,
    /// Per relation: sorted, deduplicated list of tuples.
    relations: Vec<Vec<Tuple>>,
    /// Optional display names of elements (same length as the universe).
    names: Option<Vec<String>>,
    /// Lazily-built inverted indexes (derived data: ignored by equality
    /// and hashing, shared by clones; see [`crate::index`]).
    index: IndexCell,
    /// Lazily-built active-domain dictionary (derived data, same
    /// contract as `index`; see [`crate::dict`]).
    dict: DictCell,
    /// Lazily-built flat row-major tuple images (derived data, same
    /// contract as `index`; see [`Structure::flat_tuples`]).
    flat: FlatCell,
}

impl Structure {
    /// Creates an empty structure with the given universe size.
    pub fn empty(vocab: Vocabulary, universe_size: usize) -> Self {
        let relations = vec![Vec::new(); vocab.len()];
        Structure {
            vocab,
            universe_size,
            relations,
            names: None,
            index: IndexCell::default(),
            dict: DictCell::default(),
            flat: FlatCell::default(),
        }
    }

    /// Builds a digraph structure over [`Vocabulary::graphs`].
    ///
    /// `n` is the number of nodes, `edges` the directed edges.
    pub fn digraph(n: usize, edges: &[(Element, Element)]) -> Self {
        let vocab = Vocabulary::graphs();
        let mut b = StructureBuilder::new(vocab.clone(), n);
        let e = vocab.rel("E").expect("graphs vocabulary has E");
        for &(u, v) in edges {
            b.add(e, &[u, v]);
        }
        b.finish()
    }

    /// The vocabulary of this structure.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Number of elements in the universe.
    pub fn universe_size(&self) -> usize {
        self.universe_size
    }

    /// Iterates over all elements `0..universe_size()`.
    pub fn elements(&self) -> impl Iterator<Item = Element> {
        0..self.universe_size as Element
    }

    /// The tuples of a relation (sorted, deduplicated).
    pub fn tuples(&self, rel: RelId) -> &[Tuple] {
        &self.relations[rel.index()]
    }

    /// The inverted indexes of this structure's relations, built lazily on
    /// first use and cached (clones share it). Relations are immutable
    /// after construction, so the cache never goes stale; see
    /// [`crate::index`] for the invalidation contract.
    pub fn index(&self) -> &StructureIndex {
        self.index
            .0
            .get_or_init(|| Arc::new(StructureIndex::build(self)))
    }

    /// The active-domain dictionary of this snapshot: dense codes
    /// `[0, n)` for the `n` active elements, in sorted (canonical)
    /// order. Built lazily on first use and cached; clones share it
    /// (see [`crate::dict`]).
    pub fn domain_dict(&self) -> &DomainDict {
        self.dict
            .0
            .get_or_init(|| Arc::new(DomainDict::build(self)))
    }

    /// The tuples of `rel` as one flat row-major buffer: `arity`
    /// consecutive elements per tuple, tuples in the same sorted order
    /// as [`Self::tuples`]. Built lazily on first use and cached;
    /// clones share it (same contract as [`Self::index`]). Scan
    /// kernels stream this image sequentially instead of chasing one
    /// heap allocation per tuple.
    pub fn flat_tuples(&self, rel: RelId) -> &[Element] {
        let all = self.flat.0.get_or_init(|| {
            Arc::new(
                self.relations
                    .iter()
                    .map(|ts| ts.iter().flat_map(|t| t.iter().copied()).collect())
                    .collect(),
            )
        });
        &all[rel.index()]
    }

    /// Checks whether a tuple is a fact of the relation.
    pub fn contains(&self, rel: RelId, tuple: &[Element]) -> bool {
        self.relations[rel.index()]
            .binary_search_by(|t| t.as_ref().cmp(tuple))
            .is_ok()
    }

    /// Total number of tuples across all relations (`|D|` up to a constant).
    pub fn total_tuples(&self) -> usize {
        self.relations.iter().map(|r| r.len()).sum()
    }

    /// `true` when every relation is empty.
    pub fn is_relations_empty(&self) -> bool {
        self.relations.iter().all(|r| r.is_empty())
    }

    /// The set of elements that occur in at least one tuple (active domain).
    pub fn active_domain(&self) -> BTreeSet<Element> {
        let mut adom = BTreeSet::new();
        for rel in &self.relations {
            for t in rel {
                adom.extend(t.iter().copied());
            }
        }
        adom
    }

    /// `true` when the universe equals the active domain.
    pub fn universe_is_active(&self) -> bool {
        self.active_domain().len() == self.universe_size
    }

    /// Restricts the universe to the active domain, renaming elements to be
    /// dense. Returns the restricted structure and, for each old element,
    /// its new name (or `None` when dropped).
    pub fn restrict_to_adom(&self) -> (Structure, Vec<Option<Element>>) {
        let adom = self.active_domain();
        let mut remap: Vec<Option<Element>> = vec![None; self.universe_size];
        for (new, &old) in adom.iter().enumerate() {
            remap[old as usize] = Some(new as Element);
        }
        let mut b = StructureBuilder::new(self.vocab.clone(), adom.len());
        for rel in self.vocab.rel_ids() {
            for t in self.tuples(rel) {
                let mapped: Vec<Element> = t
                    .iter()
                    .map(|&x| remap[x as usize].expect("active element"))
                    .collect();
                b.add(rel, &mapped);
            }
        }
        let mut out = b.finish();
        if let Some(names) = &self.names {
            let new_names = adom
                .iter()
                .map(|&old| names[old as usize].clone())
                .collect();
            out.names = Some(new_names);
        }
        (out, remap)
    }

    /// Sets display names for elements.
    ///
    /// # Panics
    ///
    /// Panics when the number of names differs from the universe size.
    pub fn set_names<S: Into<String>>(&mut self, names: Vec<S>) {
        assert_eq!(names.len(), self.universe_size, "one name per element");
        self.names = Some(names.into_iter().map(Into::into).collect());
    }

    /// The display name of an element (falls back to `e{index}`).
    pub fn element_name(&self, e: Element) -> String {
        match &self.names {
            Some(names) => names[e as usize].clone(),
            None => format!("e{e}"),
        }
    }

    /// Optional display names of all elements.
    pub fn names(&self) -> Option<&[String]> {
        self.names.as_deref()
    }

    /// Drops display names (useful before comparing structures for equality).
    pub fn clear_names(&mut self) {
        self.names = None;
    }

    /// The disjoint union of two structures over the same vocabulary.
    ///
    /// Elements of `other` are shifted by `self.universe_size()`.
    pub fn disjoint_union(&self, other: &Structure) -> Structure {
        assert_eq!(
            self.vocab, other.vocab,
            "disjoint union needs a common vocabulary"
        );
        let off = self.universe_size as Element;
        let mut b =
            StructureBuilder::new(self.vocab.clone(), self.universe_size + other.universe_size);
        for rel in self.vocab.rel_ids() {
            for t in self.tuples(rel) {
                b.add(rel, t);
            }
            for t in other.tuples(rel) {
                let shifted: Vec<Element> = t.iter().map(|&x| x + off).collect();
                b.add(rel, &shifted);
            }
        }
        b.finish()
    }

    /// The image of this structure under an arbitrary map of elements.
    ///
    /// The result's universe is `0..=max(map)` restricted to the active
    /// domain of the image; every map is a homomorphism *onto its image*, so
    /// this realizes `Im(h)` from the paper.
    pub fn map_image(&self, map: &[Element]) -> Structure {
        assert_eq!(map.len(), self.universe_size, "one image per element");
        let max = map.iter().copied().max().map_or(0, |m| m as usize + 1);
        let mut b = StructureBuilder::new(self.vocab.clone(), max);
        for rel in self.vocab.rel_ids() {
            for t in self.tuples(rel) {
                let mapped: Vec<Element> = t.iter().map(|&x| map[x as usize]).collect();
                b.add(rel, &mapped);
            }
        }
        let (img, _) = b.finish().restrict_to_adom();
        img
    }

    /// The substructure induced by keeping only tuples all of whose elements
    /// satisfy `keep`, then restricting to the active domain.
    ///
    /// Returns the substructure and the old→new element mapping.
    pub fn induced<F: Fn(Element) -> bool>(&self, keep: F) -> (Structure, Vec<Option<Element>>) {
        let mut b = StructureBuilder::new(self.vocab.clone(), self.universe_size);
        for rel in self.vocab.rel_ids() {
            for t in self.tuples(rel) {
                if t.iter().all(|&x| keep(x)) {
                    b.add(rel, t);
                }
            }
        }
        b.finish().restrict_to_adom()
    }

    /// `true` when every tuple of every relation of `self` is a tuple of
    /// `other` (containment of databases, `D₁ ⊆ D₂` in the paper).
    pub fn contained_in(&self, other: &Structure) -> bool {
        if self.vocab != other.vocab {
            return false;
        }
        self.vocab
            .rel_ids()
            .all(|rel| self.tuples(rel).iter().all(|t| other.contains(rel, t)))
    }

    /// `true` when `self ⊆ other` and some relation of `other` has a tuple
    /// missing from `self` (strict containment of databases).
    pub fn strictly_contained_in(&self, other: &Structure) -> bool {
        self.contained_in(other) && self.total_tuples() < other.total_tuples()
    }

    /// Checks basic well-formedness: arities match and elements are in range.
    pub fn validate(&self) -> Result<(), String> {
        for rel in self.vocab.rel_ids() {
            let arity = self.vocab.arity(rel);
            for t in self.tuples(rel) {
                if t.len() != arity {
                    return Err(format!(
                        "tuple {:?} of {} has length {}, expected {}",
                        t,
                        self.vocab.name(rel),
                        t.len(),
                        arity
                    ));
                }
                for &x in t.iter() {
                    if (x as usize) >= self.universe_size {
                        return Err(format!(
                            "element {} out of universe 0..{}",
                            x, self.universe_size
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

impl fmt::Debug for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Structure over {} with {} elements:",
            self.vocab, self.universe_size
        )?;
        for rel in self.vocab.rel_ids() {
            write!(f, "  {} = {{", self.vocab.name(rel))?;
            for (i, t) in self.tuples(rel).iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "(")?;
                for (j, &x) in t.iter().enumerate() {
                    if j > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}", self.element_name(x))?;
                }
                write!(f, ")")?;
            }
            writeln!(f, "}}")?;
        }
        Ok(())
    }
}

/// Incremental builder of a [`Structure`].
///
/// Collects tuples in any order; [`StructureBuilder::finish`] sorts and
/// deduplicates each relation.
#[derive(Debug, Clone)]
pub struct StructureBuilder {
    vocab: Vocabulary,
    universe_size: usize,
    relations: Vec<Vec<Tuple>>,
}

impl StructureBuilder {
    /// Starts a builder for the vocabulary and universe size.
    pub fn new(vocab: Vocabulary, universe_size: usize) -> Self {
        let relations = vec![Vec::new(); vocab.len()];
        StructureBuilder {
            vocab,
            universe_size,
            relations,
        }
    }

    /// Adds a fact. Panics when the arity is wrong or elements are out of
    /// range.
    pub fn add(&mut self, rel: RelId, tuple: &[Element]) -> &mut Self {
        assert_eq!(
            tuple.len(),
            self.vocab.arity(rel),
            "arity mismatch for {}",
            self.vocab.name(rel)
        );
        for &x in tuple {
            assert!(
                (x as usize) < self.universe_size,
                "element {x} out of universe 0..{}",
                self.universe_size
            );
        }
        self.relations[rel.index()].push(tuple.into());
        self
    }

    /// Grows the universe to at least `n` elements.
    pub fn ensure_universe(&mut self, n: usize) -> &mut Self {
        if n > self.universe_size {
            self.universe_size = n;
        }
        self
    }

    /// Allocates and returns a fresh element.
    pub fn fresh(&mut self) -> Element {
        let e = self.universe_size as Element;
        self.universe_size += 1;
        e
    }

    /// Finalizes the structure (sorting + deduplicating each relation).
    pub fn finish(self) -> Structure {
        let mut relations = self.relations;
        for rel in &mut relations {
            rel.sort_unstable();
            rel.dedup();
        }
        Structure {
            vocab: self.vocab,
            universe_size: self.universe_size,
            relations,
            names: None,
            index: IndexCell::default(),
            dict: DictCell::default(),
            flat: FlatCell::default(),
        }
    }
}

/// The lazily-initialized flat-tuple-image slot carried by every
/// [`Structure`]: one row-major `Vec<Element>` per relation. Mirrors
/// [`IndexCell`]: derived data, invisible to equality/hash/serde,
/// shared by clones (relations are immutable after construction, so a
/// shared image can never go stale).
#[derive(Debug, Default)]
struct FlatCell(OnceLock<Arc<Vec<Vec<Element>>>>);

impl Clone for FlatCell {
    fn clone(&self) -> Self {
        FlatCell(self.0.clone())
    }
}

impl PartialEq for FlatCell {
    fn eq(&self, _other: &Self) -> bool {
        true // the cache is derived data, invisible to equality
    }
}

impl Eq for FlatCell {}

impl std::hash::Hash for FlatCell {
    fn hash<H: std::hash::Hasher>(&self, _state: &mut H) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c3() -> Structure {
        Structure::digraph(3, &[(0, 1), (1, 2), (2, 0)])
    }

    #[test]
    fn flat_tuples_matches_tuples() {
        let v = Vocabulary::new(vec![("E", 2), ("T", 3)]);
        let (e, t) = (v.rel("E").unwrap(), v.rel("T").unwrap());
        let mut b = StructureBuilder::new(v, 5);
        b.add(e, &[3, 1]);
        b.add(e, &[0, 4]);
        b.add(e, &[3, 1]); // duplicate
        b.add(t, &[2, 2, 0]);
        let s = b.finish();
        for rel in [e, t] {
            let expect: Vec<Element> = s
                .tuples(rel)
                .iter()
                .flat_map(|t| t.iter().copied())
                .collect();
            assert_eq!(s.flat_tuples(rel), expect.as_slice());
        }
        // Clones share the already-built image.
        let c = s.clone();
        assert!(std::ptr::eq(c.flat_tuples(e), s.flat_tuples(e)));
    }

    #[test]
    fn digraph_basics() {
        let g = c3();
        let e = g.vocabulary().rel("E").unwrap();
        assert_eq!(g.total_tuples(), 3);
        assert!(g.contains(e, &[0, 1]));
        assert!(!g.contains(e, &[0, 2]));
        assert!(g.universe_is_active());
        g.validate().unwrap();
    }

    #[test]
    fn dedup_on_finish() {
        let g = Structure::digraph(2, &[(0, 1), (0, 1), (0, 1)]);
        assert_eq!(g.total_tuples(), 1);
    }

    #[test]
    fn active_domain_and_restrict() {
        // node 2 is isolated
        let g = Structure::digraph(3, &[(0, 1)]);
        assert!(!g.universe_is_active());
        let (r, remap) = g.restrict_to_adom();
        assert_eq!(r.universe_size(), 2);
        assert_eq!(remap[2], None);
        assert_eq!(remap[0], Some(0));
        assert!(r.universe_is_active());
    }

    #[test]
    fn disjoint_union() {
        let g = c3();
        let u = g.disjoint_union(&g);
        assert_eq!(u.universe_size(), 6);
        assert_eq!(u.total_tuples(), 6);
        let e = u.vocabulary().rel("E").unwrap();
        assert!(u.contains(e, &[3, 4]));
    }

    #[test]
    fn map_image_collapses() {
        let g = c3();
        // collapse all three nodes onto node 0 -> a single loop
        let img = g.map_image(&[0, 0, 0]);
        assert_eq!(img.universe_size(), 1);
        let e = img.vocabulary().rel("E").unwrap();
        assert!(img.contains(e, &[0, 0]));
        assert_eq!(img.total_tuples(), 1);
    }

    #[test]
    fn map_image_identity() {
        let g = c3();
        let img = g.map_image(&[0, 1, 2]);
        assert_eq!(img, g);
    }

    #[test]
    fn containment() {
        let p2 = Structure::digraph(3, &[(0, 1), (1, 2)]);
        let g = c3();
        // p2's tuples are (0,1),(1,2) which are both in c3
        assert!(p2.contained_in(&g));
        assert!(p2.strictly_contained_in(&g));
        assert!(!g.contained_in(&p2));
        assert!(g.contained_in(&g));
        assert!(!g.strictly_contained_in(&g));
    }

    #[test]
    fn induced_substructure() {
        let g = c3();
        let (sub, _) = g.induced(|x| x != 2);
        assert_eq!(sub.total_tuples(), 1);
        assert_eq!(sub.universe_size(), 2);
    }

    #[test]
    fn names_roundtrip() {
        let mut g = Structure::digraph(2, &[(0, 1)]);
        g.set_names(vec!["x", "y"]);
        assert_eq!(g.element_name(0), "x");
        assert_eq!(g.element_name(1), "y");
        g.clear_names();
        assert_eq!(g.element_name(0), "e0");
    }

    #[test]
    fn higher_arity() {
        let v = Vocabulary::single(3);
        let r = v.rel("R").unwrap();
        let mut b = StructureBuilder::new(v, 4);
        b.add(r, &[0, 1, 2]).add(r, &[1, 2, 3]);
        let s = b.finish();
        assert_eq!(s.total_tuples(), 2);
        assert!(s.contains(r, &[0, 1, 2]));
        s.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let v = Vocabulary::graphs();
        let e = v.rel("E").unwrap();
        let mut b = StructureBuilder::new(v, 2);
        b.add(e, &[0]);
    }
}
