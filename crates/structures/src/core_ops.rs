//! Cores of relational structures.
//!
//! A structure `D` is a **core** when there is no homomorphism from `D`
//! into a structure strictly contained in `D`; equivalently, every
//! endomorphism of `D` is surjective (hence an automorphism). Every finite
//! structure has a unique core up to isomorphism (`core(D)`), obtained by
//! repeatedly retracting along non-surjective endomorphisms. Cores of
//! tableaux are exactly the tableaux of **minimized** conjunctive queries
//! (Chandra & Merlin).
//!
//! For pointed structures `(D, ā)` the distinguished elements are pinned:
//! an endomorphism must fix `ā` pointwise, matching CQ minimization in the
//! presence of free variables.

use crate::hom::Homomorphism;
use crate::pointed::Pointed;
use crate::solver::HomSolver;
use crate::structure::{Element, Structure};

/// The result of a core computation.
#[derive(Debug, Clone)]
pub struct CoreResult {
    /// The core structure (with dense universe).
    pub core: Pointed,
    /// The retraction from the input onto (a copy of) the core: for each
    /// input element, the index of its image *in the core's universe*.
    pub retraction: Vec<Element>,
    /// Number of retract iterations performed.
    pub iterations: usize,
}

/// Searches for an endomorphism of `p` whose image misses at least one
/// element, i.e. a witness that `p` is not a core.
///
/// Distinguished elements are pinned to themselves. The endomorphism
/// source is compiled once and reused across all `n` exclusion probes
/// (and the target-side index is the structure's cached one), so each
/// probe pays only for its search.
fn non_surjective_endomorphism(p: &Pointed) -> Option<Homomorphism> {
    let s = &p.structure;
    let n = s.universe_size();
    let solver = HomSolver::compile(s);
    for avoid in 0..n as Element {
        if p.distinguished().contains(&avoid) {
            continue; // pinned elements are always in the image
        }
        let mut run = solver.run(s).exclude_target(avoid);
        for &d in p.distinguished() {
            run = run.pin(d, d);
        }
        if let Some(h) = run.find() {
            return Some(h);
        }
    }
    None
}

/// `true` when the pointed structure is a core (every endomorphism fixing
/// the distinguished tuple is surjective).
///
/// # Examples
///
/// ```
/// use cqapx_structures::{core_ops, Pointed, Structure};
///
/// let c3 = Pointed::boolean(Structure::digraph(3, &[(0, 1), (1, 2), (2, 0)]));
/// assert!(core_ops::is_core(&c3));
///
/// // A symmetric path 0 <-> 1 <-> 2 retracts onto a single edge: not a core.
/// let p = Pointed::boolean(Structure::digraph(3, &[(0, 1), (1, 0), (1, 2), (2, 1)]));
/// assert!(!core_ops::is_core(&p));
/// ```
pub fn is_core(p: &Pointed) -> bool {
    non_surjective_endomorphism(p).is_none()
}

/// Computes the core of a pointed structure.
///
/// Repeatedly finds a non-surjective endomorphism and replaces the
/// structure by its image, until no such endomorphism exists. The result is
/// the unique core up to isomorphism.
///
/// # Panics
///
/// Panics when the universe is not the active domain (tableaux of
/// conjunctive queries always have active universes; normalize with
/// [`Pointed::restrict_to_adom`] first otherwise).
///
/// # Examples
///
/// ```
/// use cqapx_structures::{core_ops, Pointed, Structure};
///
/// // A symmetric 3-path retracts onto a double edge K2^<->.
/// let p = Pointed::boolean(Structure::digraph(3, &[(0, 1), (1, 0), (1, 2), (2, 1)]));
/// let r = core_ops::core_of(&p);
/// assert_eq!(r.core.structure.universe_size(), 2);
/// ```
pub fn core_of(p: &Pointed) -> CoreResult {
    assert!(
        p.structure.universe_is_active(),
        "core_of needs an active universe (every element in some tuple)"
    );
    let mut current = p.restrict_to_adom();
    // retraction from original universe into current universe
    let mut retraction: Vec<Element> = (0..p.structure.universe_size() as Element).collect();
    let mut iterations = 0;

    // Monotonicity of unavoidability under retraction: if the current
    // structure `D` has no endomorphism (fixing ā) avoiding `y`, then no
    // retract `D'` of `D` containing `y` has one either — an endomorphism
    // `g` of `D'` avoiding `y` would compose with the projection and the
    // inclusion into `π;g;ι`, an endomorphism of `D` avoiding `y`. So a
    // failed probe settles its element for the *entire* run: the flag is
    // carried through each retraction's renumbering and the element is
    // never probed again, bounding the total number of failed probes by
    // the universe size (the seed engine restarted every probe from
    // scratch after each retraction).
    let mut proven: Vec<bool> = vec![false; current.structure.universe_size()];

    loop {
        let s = &current.structure;
        let n = s.universe_size();
        let solver = HomSolver::compile(s);
        let mut witness: Option<Homomorphism> = None;
        for avoid in 0..n as Element {
            if proven[avoid as usize] || current.distinguished().contains(&avoid) {
                continue;
            }
            let mut run = solver.run(s).exclude_target(avoid);
            for &d in current.distinguished() {
                run = run.pin(d, d);
            }
            match run.find() {
                Some(h) => {
                    witness = Some(h);
                    break;
                }
                None => proven[avoid as usize] = true,
            }
        }
        match witness {
            None => break,
            Some(mut h) => {
                iterations += 1;
                // Iterate the witness to its eventual image (h², h⁴, …):
                // every power of an endomorphism fixing ā is again one,
                // and the image chain shrinks until h is injective on it.
                // One cheap O(n log n) squeeze per *search* often saves
                // whole search-and-rebuild iterations.
                let mut image = h.image_size();
                loop {
                    let h2 = h.then(&h);
                    let next_image = h2.image_size();
                    if next_image < image {
                        h = h2;
                        image = next_image;
                    } else {
                        break;
                    }
                }
                // Build the image as a pointed structure, tracking renaming.
                let next = current.map_image(&h.map);
                // Track where each original element goes: through h, then
                // through the dense renumbering done by map_image. Recompute
                // the renumbering: elements of Im(h) sorted.
                let raw = current.structure.map_image_raw(&h.map);
                let (_, remap) = raw.restrict_to_adom();
                for r in retraction.iter_mut() {
                    let via_h = h.map[*r as usize];
                    *r = remap[via_h as usize].expect("image elements are active");
                }
                // Carry the settled flags through the renumbering
                // (collapsed elements drop out; surviving ones keep their
                // verdict by the monotonicity argument above).
                let mut next_proven = vec![false; next.structure.universe_size()];
                for (old, new) in remap.iter().enumerate() {
                    if let Some(new) = new {
                        next_proven[*new as usize] = proven[old];
                    }
                }
                proven = next_proven;
                current = next;
            }
        }
    }

    CoreResult {
        core: current,
        retraction,
        iterations,
    }
}

/// Convenience: core of a plain (Boolean) structure.
pub fn core_of_structure(s: &Structure) -> Structure {
    core_of(&Pointed::boolean(s.clone())).core.structure
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hom::HomProblem;
    use crate::structure::Structure;

    fn cycle(n: usize) -> Structure {
        let edges: Vec<(Element, Element)> = (0..n)
            .map(|i| (i as Element, ((i + 1) % n) as Element))
            .collect();
        Structure::digraph(n, &edges)
    }

    #[test]
    fn odd_cycles_are_cores() {
        for n in [3, 5, 7] {
            assert!(
                is_core(&Pointed::boolean(cycle(n))),
                "C{n} should be a core"
            );
        }
    }

    #[test]
    fn directed_even_cycle_is_core() {
        // A directed (not symmetric) C4 is a core: its endomorphisms are
        // rotations.
        assert!(is_core(&Pointed::boolean(cycle(4))));
    }

    #[test]
    fn directed_c6_is_a_core() {
        // A directed cycle cannot map into any proper subgraph of itself
        // (proper subgraphs are acyclic), so C6 is a core — even though it
        // maps onto C3. (Only C3 ∪ C6 retracts onto C3.)
        assert!(is_core(&Pointed::boolean(cycle(6))));
    }

    #[test]
    fn c3_union_c6_retracts_to_c3() {
        let g = cycle(3).disjoint_union(&cycle(6));
        let r = core_of(&Pointed::boolean(g.clone()));
        assert_eq!(r.core.structure.universe_size(), 3);
        assert!(is_core(&r.core));
        // Core is hom-equivalent to the original.
        assert!(HomProblem::new(&g, &r.core.structure).exists());
        assert!(HomProblem::new(&r.core.structure, &g).exists());
    }

    #[test]
    fn retraction_is_homomorphism() {
        let g = cycle(3).disjoint_union(&cycle(6));
        let r = core_of(&Pointed::boolean(g.clone()));
        let h = Homomorphism {
            map: r.retraction.clone(),
        };
        assert!(h.verify(&g, &r.core.structure));
    }

    #[test]
    fn loop_dominates() {
        // C3 plus a loop on a separate component cores to the loop.
        let g = cycle(3).disjoint_union(&Structure::digraph(1, &[(0, 0)]));
        let r = core_of(&Pointed::boolean(g));
        assert_eq!(r.core.structure.universe_size(), 1);
        assert_eq!(r.core.structure.total_tuples(), 1);
    }

    #[test]
    fn pinned_elements_survive() {
        // Path 0 -> 1 -> 2 with distinguished 0 and 2: the core keeps all
        // three elements (no endo can merge while fixing endpoints).
        let p = Structure::digraph(3, &[(0, 1), (1, 2)]);
        let pt = Pointed::new(p, vec![0, 2]);
        assert!(is_core(&pt));
        let r = core_of(&pt);
        assert_eq!(r.core.structure.universe_size(), 3);
    }

    #[test]
    fn pinning_changes_core() {
        // Symmetric edge 0 <-> 1 plus pendant edge 1 <-> 2: Boolean core is
        // K2; pinning element 2 keeps it.
        let g = Structure::digraph(3, &[(0, 1), (1, 0), (1, 2), (2, 1)]);
        let boolean_core = core_of(&Pointed::boolean(g.clone()));
        assert_eq!(boolean_core.core.structure.universe_size(), 2);
        let pinned = core_of(&Pointed::new(g, vec![2]));
        assert_eq!(pinned.core.structure.universe_size(), 2);
        // distinguished element must be in the core image
        assert_eq!(pinned.core.distinguished().len(), 1);
    }

    #[test]
    fn core_is_idempotent() {
        let g = cycle(6).disjoint_union(&cycle(9));
        let r1 = core_of(&Pointed::boolean(g));
        let r2 = core_of(&r1.core);
        assert_eq!(r2.iterations, 0);
        assert_eq!(
            r1.core.structure.universe_size(),
            r2.core.structure.universe_size()
        );
    }

    #[test]
    fn two_incomparable_components_both_stay() {
        // C3 + C5: neither maps to the other, so the core keeps both.
        let g = cycle(3).disjoint_union(&cycle(5));
        let r = core_of(&Pointed::boolean(g));
        assert_eq!(r.core.structure.universe_size(), 8);
    }
}
