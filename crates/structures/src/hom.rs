//! The homomorphism facade: [`Homomorphism`] witnesses and the one-shot
//! [`HomProblem`] builder.
//!
//! Finding a homomorphism `D₁ → D₂` between relational structures is
//! exactly solving a constraint satisfaction problem (Kolaitis & Vardi):
//! variables are the elements of `D₁`, domains are the elements of `D₂`,
//! and every tuple of `D₁` is a table constraint over the corresponding
//! tuples of `D₂`. The search itself lives in [`crate::solver`]: a
//! propagation solver (AC-3 over table constraints, MRV branching) running
//! on the per-structure inverted indexes of [`crate::index`].
//! `HomProblem` is the convenience wrapper for one-shot questions; when
//! one source is solved against many targets or variants, compile it once
//! with [`HomSolver::compile`](crate::HomSolver) instead.
//!
//! The same engine serves the whole workspace:
//!
//! * CQ **evaluation** — `ā ∈ Q(D)` iff `(T_Q, x̄) → (D, ā)`;
//! * CQ **containment** — `Q ⊆ Q'` iff `(T_{Q'}, x̄') → (T_Q, x̄)`;
//! * **cores** — search for non-injective endomorphisms;
//! * **colorability** — `G` is `k`-colorable iff `G → K⃗_k`;
//! * verification of the paper's gadget claims (incomparability of oriented
//!   paths, chooser properties, …).

use crate::solver::{HomRun, HomSolver, SearchBudget};
use crate::structure::{Element, Structure};
use std::cell::RefCell;
use std::ops::ControlFlow;

/// A homomorphism, stored as the image of each source element.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Homomorphism {
    /// `map[e]` is the image of source element `e`.
    pub map: Vec<Element>,
}

thread_local! {
    /// Reusable mark bitset for [`Homomorphism::image_size`] /
    /// [`Homomorphism::is_non_injective`] — these sit in the core-search
    /// inner loop, so they must not allocate or sort per call.
    static IMAGE_MARKS: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

impl Homomorphism {
    /// The image of a source element.
    #[inline]
    pub fn apply(&self, e: Element) -> Element {
        self.map[e as usize]
    }

    /// Clears and sizes the thread-local mark bitset for this map.
    /// Allocation-free after warm-up (the scratch persists across calls).
    fn with_image_marks<R>(&self, f: impl FnOnce(&[Element], &mut [u64]) -> R) -> R {
        IMAGE_MARKS.with(|cell| {
            let mut words = cell.borrow_mut();
            let need = self
                .map
                .iter()
                .map(|&x| x as usize / 64 + 1)
                .max()
                .unwrap_or(0);
            words.clear();
            words.resize(need, 0);
            f(&self.map, &mut words)
        })
    }

    /// `true` when two distinct source elements share an image.
    ///
    /// Allocation-free: uses a persistent thread-local mark bitset and
    /// stops at the first duplicate.
    pub fn is_non_injective(&self) -> bool {
        self.with_image_marks(|map, marks| {
            for &x in map {
                let (w, b) = (x as usize / 64, x % 64);
                if (marks[w] >> b) & 1 == 1 {
                    return true;
                }
                marks[w] |= 1 << b;
            }
            false
        })
    }

    /// Number of distinct image elements (allocation-free: no clone/sort).
    pub fn image_size(&self) -> usize {
        self.with_image_marks(|map, marks| {
            let mut count = 0;
            for &x in map {
                let (w, b) = (x as usize / 64, x % 64);
                count += usize::from((marks[w] >> b) & 1 == 0);
                marks[w] |= 1 << b;
            }
            count
        })
    }

    /// `true` when every element of `target_universe` is hit.
    pub fn is_surjective_onto(&self, target_universe: usize) -> bool {
        self.image_size() == target_universe
    }

    /// Composes two homomorphisms: `(g ∘ self)(x) = g(self(x))`.
    pub fn then(&self, g: &Homomorphism) -> Homomorphism {
        Homomorphism {
            map: self.map.iter().map(|&x| g.map[x as usize]).collect(),
        }
    }

    /// Verifies that this map really is a homomorphism `source → target`.
    pub fn verify(&self, source: &Structure, target: &Structure) -> bool {
        if self.map.len() != source.universe_size() {
            return false;
        }
        if self
            .map
            .iter()
            .any(|&x| (x as usize) >= target.universe_size())
        {
            return false;
        }
        for rel in source.vocabulary().rel_ids() {
            for t in source.tuples(rel) {
                let mapped: Vec<Element> = t.iter().map(|&x| self.map[x as usize]).collect();
                if !target.contains(rel, &mapped) {
                    return false;
                }
            }
        }
        true
    }
}

/// Statistics from a homomorphism search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HomSearchStats {
    /// Number of branching decisions explored.
    pub nodes: u64,
    /// Number of backtracks.
    pub backtracks: u64,
    /// Number of AC-3 constraint revisions performed (propagation work,
    /// the complement of `nodes`' branching work).
    pub revisions: u64,
    /// Whether the search exhausted its step budget before finishing.
    pub budget_exhausted: bool,
}

/// A one-shot homomorphism search problem `source → target` with optional
/// constraints.
///
/// This is sugar over [`HomSolver`]: each execution compiles the source
/// and runs once. Prefer compiling a [`HomSolver`] directly when solving
/// one source against many targets or variants.
///
/// # Examples
///
/// ```
/// use cqapx_structures::{HomProblem, Structure};
///
/// let c3 = Structure::digraph(3, &[(0, 1), (1, 2), (2, 0)]);
/// let c6 = Structure::digraph(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
/// // A directed 6-cycle maps onto a directed 3-cycle…
/// assert!(HomProblem::new(&c6, &c3).exists());
/// // …but not the other way around.
/// assert!(!HomProblem::new(&c3, &c6).exists());
/// ```
pub struct HomProblem<'a> {
    source: &'a Structure,
    target: &'a Structure,
    pins: Vec<(Element, Element)>,
    excluded: Vec<Element>,
    injective: bool,
    budget: Option<SearchBudget>,
}

impl<'a> HomProblem<'a> {
    /// Creates a search problem for homomorphisms `source → target`.
    ///
    /// # Panics
    ///
    /// Panics when the vocabularies differ.
    pub fn new(source: &'a Structure, target: &'a Structure) -> Self {
        assert_eq!(
            source.vocabulary(),
            target.vocabulary(),
            "homomorphisms need a common vocabulary"
        );
        HomProblem {
            source,
            target,
            pins: Vec::new(),
            excluded: Vec::new(),
            injective: false,
            budget: None,
        }
    }

    /// Forces `h(src) = tgt` (used for distinguished tuples).
    pub fn pin(mut self, src: Element, tgt: Element) -> Self {
        self.pins.push((src, tgt));
        self
    }

    /// Forces `h(src[i]) = tgt[i]` for every position.
    pub fn pin_tuple(mut self, src: &[Element], tgt: &[Element]) -> Self {
        assert_eq!(src.len(), tgt.len(), "pinned tuples must align");
        self.pins
            .extend(src.iter().copied().zip(tgt.iter().copied()));
        self
    }

    /// Forbids a target element from appearing in the image.
    pub fn exclude_target(mut self, t: Element) -> Self {
        self.excluded.push(t);
        self
    }

    /// Requires the homomorphism to be injective on elements.
    pub fn injective(mut self) -> Self {
        self.injective = true;
        self
    }

    /// Caps the number of search nodes (for anytime / bounded uses).
    pub fn node_budget(mut self, budget: u64) -> Self {
        self.budget = Some(SearchBudget::new(budget));
        self
    }

    /// Shares an existing step budget with this search (cooperative
    /// cancellation across searches; see [`SearchBudget`]).
    pub fn budget(mut self, budget: &SearchBudget) -> Self {
        self.budget = Some(budget.clone());
        self
    }

    fn configure<'s>(&self, solver: &'s HomSolver) -> HomRun<'s, 'a> {
        let mut run = solver.run(self.target);
        for &(s, t) in &self.pins {
            run = run.pin(s, t);
        }
        for &e in &self.excluded {
            run = run.exclude_target(e);
        }
        if self.injective {
            run = run.injective();
        }
        if let Some(b) = &self.budget {
            run = run.budget(b);
        }
        run
    }

    /// Finds one homomorphism, if any.
    pub fn find(&self) -> Option<Homomorphism> {
        let solver = HomSolver::compile(self.source);
        self.configure(&solver).find()
    }

    /// `true` when a homomorphism exists.
    pub fn exists(&self) -> bool {
        self.find().is_some()
    }

    /// Enumerates all homomorphisms, stopping early when the callback
    /// breaks. Returns the search statistics.
    pub fn for_each<F: FnMut(&Homomorphism) -> ControlFlow<()>>(&self, f: F) -> HomSearchStats {
        let solver = HomSolver::compile(self.source);
        self.configure(&solver).for_each(f)
    }

    /// Counts homomorphisms, up to an optional limit.
    pub fn count(&self, limit: Option<u64>) -> u64 {
        let solver = HomSolver::compile(self.source);
        self.configure(&solver).count(limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::StructureBuilder;
    use crate::vocabulary::Vocabulary;

    fn cycle(n: usize) -> Structure {
        let edges: Vec<(Element, Element)> = (0..n)
            .map(|i| (i as Element, ((i + 1) % n) as Element))
            .collect();
        Structure::digraph(n, &edges)
    }

    fn path(n: usize) -> Structure {
        let edges: Vec<(Element, Element)> =
            (0..n).map(|i| (i as Element, (i + 1) as Element)).collect();
        Structure::digraph(n + 1, &edges)
    }

    #[test]
    fn cycle_homomorphisms() {
        // C6 -> C3 exists (wrap twice), C3 -> C6 does not.
        assert!(HomProblem::new(&cycle(6), &cycle(3)).exists());
        assert!(!HomProblem::new(&cycle(3), &cycle(6)).exists());
        // C4 -> C2 exists.
        assert!(HomProblem::new(&cycle(4), &cycle(2)).exists());
        // C3 -> C3 exists (rotations): exactly 3 of them.
        assert_eq!(HomProblem::new(&cycle(3), &cycle(3)).count(None), 3);
    }

    #[test]
    fn path_to_path() {
        // P2 -> P4 (slide along), P4 -> P2 impossible (too long).
        assert!(HomProblem::new(&path(2), &path(4)).exists());
        assert!(!HomProblem::new(&path(4), &path(2)).exists());
    }

    #[test]
    fn loop_absorbs_everything() {
        let lp = Structure::digraph(1, &[(0, 0)]);
        assert!(HomProblem::new(&cycle(3), &lp).exists());
        assert!(HomProblem::new(&cycle(5), &lp).exists());
        assert!(!HomProblem::new(&lp, &cycle(3)).exists());
    }

    #[test]
    fn k2_bidirectional() {
        // K2^<-> (edges both ways) receives every bipartite digraph.
        let k2 = Structure::digraph(2, &[(0, 1), (1, 0)]);
        assert!(HomProblem::new(&cycle(4), &k2).exists());
        assert!(!HomProblem::new(&cycle(3), &k2).exists());
    }

    #[test]
    fn pinned_homomorphisms() {
        let p = path(2); // 0 -> 1 -> 2
        let c = cycle(3);
        // pin 0 -> 0: forced 1 -> 1, 2 -> 2.
        let h = HomProblem::new(&p, &c).pin(0, 0).find().unwrap();
        assert_eq!(h.map, vec![0, 1, 2]);
        assert!(h.verify(&p, &c));
    }

    #[test]
    fn excluded_targets() {
        let p = path(1);
        let c = cycle(3);
        // Excluding all of 0,1 leaves only the image {2 -> 0} edge (2,0):
        let h = HomProblem::new(&p, &c).exclude_target(1).find().unwrap();
        assert!(h.verify(&p, &c));
        assert!(!h.map.contains(&1));
    }

    #[test]
    fn injective_search() {
        let p = path(2);
        let c = cycle(3);
        let h = HomProblem::new(&p, &c).injective().find().unwrap();
        assert_eq!(h.image_size(), 3);
        // Injective C3 -> P2 impossible.
        assert!(!HomProblem::new(&cycle(3), &path(2)).injective().exists());
    }

    #[test]
    fn count_all() {
        // homs from a single edge into C3: the 3 edges.
        let e1 = path(1);
        assert_eq!(HomProblem::new(&e1, &cycle(3)).count(None), 3);
        // homs from a single vertex-with-no-edges? Universe must be active
        // normally; test isolated-node behaviour anyway.
        let isolated = Structure::digraph(1, &[]);
        assert_eq!(HomProblem::new(&isolated, &cycle(3)).count(None), 3);
    }

    #[test]
    fn repeated_variable_tuples() {
        // Source demands a loop: tuple (x, x).
        let lp = Structure::digraph(1, &[(0, 0)]);
        let c3 = cycle(3);
        assert!(!HomProblem::new(&lp, &c3).exists());
        let c3_with_loop = Structure::digraph(3, &[(0, 1), (1, 2), (2, 0), (1, 1)]);
        let h = HomProblem::new(&lp, &c3_with_loop).find().unwrap();
        assert_eq!(h.map, vec![1]);
    }

    #[test]
    fn higher_arity_hom() {
        let v = Vocabulary::single(3);
        let r = v.rel("R").unwrap();
        // Source: R(x, y, x). Target: R(0,1,0), R(1,1,2).
        let mut b = StructureBuilder::new(v.clone(), 2);
        b.add(r, &[0, 1, 0]);
        let src = b.finish();
        let mut b = StructureBuilder::new(v, 3);
        b.add(r, &[0, 1, 0]).add(r, &[1, 1, 2]);
        let tgt = b.finish();
        let sols: Vec<_> = {
            let mut v = Vec::new();
            HomProblem::new(&src, &tgt).for_each(|h| {
                v.push(h.map.clone());
                ControlFlow::Continue(())
            });
            v
        };
        // Only R(0,1,0) matches the (x,y,x) pattern.
        assert_eq!(sols, vec![vec![0, 1]]);
    }

    #[test]
    fn budget_exhaustion_reported() {
        let big = cycle(12);
        let stats = HomProblem::new(&big, &cycle(3))
            .node_budget(1)
            .for_each(|_| ControlFlow::Continue(()));
        assert!(stats.budget_exhausted || stats.nodes <= 1);
    }

    #[test]
    fn verify_rejects_bad_maps() {
        let c3 = cycle(3);
        let bad = Homomorphism { map: vec![0, 0, 0] };
        assert!(!bad.verify(&c3, &c3));
        let good = Homomorphism { map: vec![1, 2, 0] };
        assert!(good.verify(&c3, &c3));
    }

    #[test]
    fn composition() {
        let c6 = cycle(6);
        let c3 = cycle(3);
        let lp = Structure::digraph(1, &[(0, 0)]);
        let h1 = HomProblem::new(&c6, &c3).find().unwrap();
        let h2 = HomProblem::new(&c3, &lp).find().unwrap();
        let h = h1.then(&h2);
        assert!(h.verify(&c6, &lp));
    }

    #[test]
    fn empty_source() {
        let v = Vocabulary::graphs();
        let empty = Structure::empty(v, 0);
        let c3 = cycle(3);
        assert!(HomProblem::new(&empty, &c3).exists());
    }

    #[test]
    fn stats_nodes_counted() {
        let stats = HomProblem::new(&cycle(4), &cycle(2)).for_each(|_| ControlFlow::Continue(()));
        assert!(stats.nodes > 0);
    }

    #[test]
    fn image_methods_allocation_free_semantics() {
        // Correctness of the scratch-based image scans across shapes and
        // repeated calls (the scratch persists between them).
        let inj = Homomorphism { map: vec![2, 0, 1] };
        assert!(!inj.is_non_injective());
        assert_eq!(inj.image_size(), 3);
        assert!(inj.is_surjective_onto(3));

        let collapse = Homomorphism {
            map: vec![5, 5, 5, 5],
        };
        assert!(collapse.is_non_injective());
        assert_eq!(collapse.image_size(), 1);

        let empty = Homomorphism { map: vec![] };
        assert!(!empty.is_non_injective());
        assert_eq!(empty.image_size(), 0);

        // Large, sparse images exercise bitset growth; then a small map
        // reuses the (larger) scratch correctly.
        let sparse = Homomorphism {
            map: (0..1000).map(|i| i * 7 % 997).collect(),
        };
        assert_eq!(
            sparse.image_size(),
            sparse
                .map
                .iter()
                .collect::<std::collections::BTreeSet<_>>()
                .len()
        );
        let small = Homomorphism { map: vec![1, 1] };
        assert!(small.is_non_injective());
        assert_eq!(small.image_size(), 1);
    }

    #[test]
    fn image_methods_agree_with_naive() {
        // Differential check against the obvious sort-based computation.
        for seed in 0..20u64 {
            let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            let len = (seed % 9) as usize;
            let map: Vec<Element> = (0..len)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    (x % 11) as Element
                })
                .collect();
            let mut sorted = map.clone();
            sorted.sort_unstable();
            sorted.dedup();
            let h = Homomorphism { map: map.clone() };
            assert_eq!(h.image_size(), sorted.len(), "map {map:?}");
            assert_eq!(h.is_non_injective(), sorted.len() < map.len());
        }
    }
}
