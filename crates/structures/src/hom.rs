//! A CSP-style homomorphism engine.
//!
//! Finding a homomorphism `D₁ → D₂` between relational structures is
//! exactly solving a constraint satisfaction problem (Kolaitis & Vardi):
//! variables are the elements of `D₁`, domains are the elements of `D₂`,
//! and every tuple of `D₁` is a table constraint over the corresponding
//! tuples of `D₂`. This module implements a backtracking solver with
//! minimum-remaining-values (MRV) variable ordering and generalized arc
//! consistency (forward checking over the tuples incident to the last
//! assigned variable).
//!
//! The same engine serves the whole workspace:
//!
//! * CQ **evaluation** — `ā ∈ Q(D)` iff `(T_Q, x̄) → (D, ā)`;
//! * CQ **containment** — `Q ⊆ Q'` iff `(T_{Q'}, x̄') → (T_Q, x̄)`;
//! * **cores** — search for non-injective endomorphisms;
//! * **colorability** — `G` is `k`-colorable iff `G → K⃗_k`;
//! * verification of the paper's gadget claims (incomparability of oriented
//!   paths, chooser properties, …).

use crate::structure::{Element, Structure, Tuple};
use crate::vocabulary::RelId;
use std::collections::HashSet;
use std::ops::ControlFlow;

/// A homomorphism, stored as the image of each source element.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Homomorphism {
    /// `map[e]` is the image of source element `e`.
    pub map: Vec<Element>,
}

impl Homomorphism {
    /// The image of a source element.
    #[inline]
    pub fn apply(&self, e: Element) -> Element {
        self.map[e as usize]
    }

    /// `true` when two distinct source elements share an image.
    pub fn is_non_injective(&self) -> bool {
        let mut seen = vec![false; self.map.iter().map(|&x| x as usize + 1).max().unwrap_or(0)];
        for &x in &self.map {
            if seen[x as usize] {
                return true;
            }
            seen[x as usize] = true;
        }
        false
    }

    /// Number of distinct image elements.
    pub fn image_size(&self) -> usize {
        let mut v: Vec<Element> = self.map.clone();
        v.sort_unstable();
        v.dedup();
        v.len()
    }

    /// `true` when every element of `target_universe` is hit.
    pub fn is_surjective_onto(&self, target_universe: usize) -> bool {
        self.image_size() == target_universe
    }

    /// Composes two homomorphisms: `(g ∘ self)(x) = g(self(x))`.
    pub fn then(&self, g: &Homomorphism) -> Homomorphism {
        Homomorphism {
            map: self.map.iter().map(|&x| g.map[x as usize]).collect(),
        }
    }

    /// Verifies that this map really is a homomorphism `source → target`.
    pub fn verify(&self, source: &Structure, target: &Structure) -> bool {
        if self.map.len() != source.universe_size() {
            return false;
        }
        if self
            .map
            .iter()
            .any(|&x| (x as usize) >= target.universe_size())
        {
            return false;
        }
        for rel in source.vocabulary().rel_ids() {
            for t in source.tuples(rel) {
                let mapped: Vec<Element> = t.iter().map(|&x| self.map[x as usize]).collect();
                if !target.contains(rel, &mapped) {
                    return false;
                }
            }
        }
        true
    }
}

/// Statistics from a homomorphism search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HomSearchStats {
    /// Number of branching decisions explored.
    pub nodes: u64,
    /// Number of backtracks.
    pub backtracks: u64,
    /// Whether the search exhausted its node budget before finishing.
    pub budget_exhausted: bool,
}

/// A homomorphism search problem `source → target` with optional
/// constraints.
///
/// # Examples
///
/// ```
/// use cqapx_structures::{HomProblem, Structure};
///
/// let c3 = Structure::digraph(3, &[(0, 1), (1, 2), (2, 0)]);
/// let c6 = Structure::digraph(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
/// // A directed 6-cycle maps onto a directed 3-cycle…
/// assert!(HomProblem::new(&c6, &c3).exists());
/// // …but not the other way around.
/// assert!(!HomProblem::new(&c3, &c6).exists());
/// ```
pub struct HomProblem<'a> {
    source: &'a Structure,
    target: &'a Structure,
    pins: Vec<(Element, Element)>,
    excluded: Vec<Element>,
    injective: bool,
    node_budget: Option<u64>,
}

impl<'a> HomProblem<'a> {
    /// Creates a search problem for homomorphisms `source → target`.
    ///
    /// # Panics
    ///
    /// Panics when the vocabularies differ.
    pub fn new(source: &'a Structure, target: &'a Structure) -> Self {
        assert_eq!(
            source.vocabulary(),
            target.vocabulary(),
            "homomorphisms need a common vocabulary"
        );
        HomProblem {
            source,
            target,
            pins: Vec::new(),
            excluded: Vec::new(),
            injective: false,
            node_budget: None,
        }
    }

    /// Forces `h(src) = tgt` (used for distinguished tuples).
    pub fn pin(mut self, src: Element, tgt: Element) -> Self {
        self.pins.push((src, tgt));
        self
    }

    /// Forces `h(src[i]) = tgt[i]` for every position.
    pub fn pin_tuple(mut self, src: &[Element], tgt: &[Element]) -> Self {
        assert_eq!(src.len(), tgt.len(), "pinned tuples must align");
        self.pins
            .extend(src.iter().copied().zip(tgt.iter().copied()));
        self
    }

    /// Forbids a target element from appearing in the image.
    pub fn exclude_target(mut self, t: Element) -> Self {
        self.excluded.push(t);
        self
    }

    /// Requires the homomorphism to be injective on elements.
    pub fn injective(mut self) -> Self {
        self.injective = true;
        self
    }

    /// Caps the number of search nodes (for anytime / bounded uses).
    pub fn node_budget(mut self, budget: u64) -> Self {
        self.node_budget = Some(budget);
        self
    }

    /// Finds one homomorphism, if any.
    pub fn find(&self) -> Option<Homomorphism> {
        let mut result = None;
        self.solve(|h| {
            result = Some(h.clone());
            ControlFlow::Break(())
        });
        result
    }

    /// `true` when a homomorphism exists.
    pub fn exists(&self) -> bool {
        self.find().is_some()
    }

    /// Enumerates all homomorphisms, stopping early when the callback
    /// breaks. Returns the search statistics.
    pub fn for_each<F: FnMut(&Homomorphism) -> ControlFlow<()>>(&self, f: F) -> HomSearchStats {
        self.solve(f)
    }

    /// Counts homomorphisms, up to an optional limit.
    pub fn count(&self, limit: Option<u64>) -> u64 {
        let mut n = 0u64;
        self.solve(|_| {
            n += 1;
            match limit {
                Some(l) if n >= l => ControlFlow::Break(()),
                _ => ControlFlow::Continue(()),
            }
        });
        n
    }

    fn solve<F: FnMut(&Homomorphism) -> ControlFlow<()>>(&self, f: F) -> HomSearchStats {
        let mut solver = Solver::new(self);
        let mut stats = HomSearchStats::default();
        if solver.feasible {
            // Root-level arc consistency (never undone).
            solver.trail.push(Vec::new());
            if solver.propagate_all() {
                let mut f = f;
                let _ = solver.search(&mut f, &mut stats, self.node_budget);
            }
        }
        stats
    }
}

/// A dense bitset over target elements.
#[derive(Clone)]
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn full(n: usize) -> Self {
        let mut words = vec![!0u64; n.div_ceil(64)];
        if !n.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last = (1u64 << (n % 64)) - 1;
            }
        }
        if n == 0 {
            words.clear();
        }
        BitSet { words }
    }

    fn empty(n: usize) -> Self {
        BitSet {
            words: vec![0u64; n.div_ceil(64)],
        }
    }

    #[inline]
    fn contains(&self, i: Element) -> bool {
        (self.words[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    #[inline]
    fn insert(&mut self, i: Element) {
        self.words[(i / 64) as usize] |= 1 << (i % 64);
    }

    #[inline]
    fn remove(&mut self, i: Element) {
        self.words[(i / 64) as usize] &= !(1 << (i % 64));
    }

    fn intersect_with(&mut self, other: &BitSet) {
        for (w, o) in self.words.iter_mut().zip(other.words.iter()) {
            *w &= o;
        }
    }

    fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    fn iter(&self) -> impl Iterator<Item = Element> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros();
                    w &= w - 1;
                    Some(wi as Element * 64 + b)
                }
            })
        })
    }
}

/// Index of a target relation: tuples plus per-(position, value) inverted
/// lists for fast consistency scans.
struct TargetRelIndex {
    tuples: Vec<Tuple>,
    /// `by_pos_val[pos]` maps value → tuple indices with that value at `pos`.
    by_pos_val: Vec<Vec<Vec<u32>>>,
    tuple_set: HashSet<Tuple>,
}

impl TargetRelIndex {
    fn new(target: &Structure, rel: RelId) -> Self {
        let tuples: Vec<Tuple> = target.tuples(rel).to_vec();
        let arity = target.vocabulary().arity(rel);
        let n = target.universe_size();
        let mut by_pos_val = vec![vec![Vec::new(); n]; arity];
        for (ti, t) in tuples.iter().enumerate() {
            for (p, &v) in t.iter().enumerate() {
                by_pos_val[p][v as usize].push(ti as u32);
            }
        }
        let tuple_set = tuples.iter().cloned().collect();
        TargetRelIndex {
            tuples,
            by_pos_val,
            tuple_set,
        }
    }
}

/// One source constraint: a tuple of a source relation.
struct SourceConstraint {
    rel: usize,
    vars: Vec<Element>,
}

struct Solver<'a> {
    problem: &'a HomProblem<'a>,
    n_source: usize,
    n_target: usize,
    target_idx: Vec<TargetRelIndex>,
    constraints: Vec<SourceConstraint>,
    /// Constraints incident to each source variable.
    incident: Vec<Vec<u32>>,
    domains: Vec<BitSet>,
    assignment: Vec<Option<Element>>,
    /// Trail of (variable, saved domain) per decision level.
    trail: Vec<Vec<(u32, BitSet)>>,
    feasible: bool,
}

impl<'a> Solver<'a> {
    fn new(problem: &'a HomProblem<'a>) -> Self {
        let source = problem.source;
        let target = problem.target;
        let n_source = source.universe_size();
        let n_target = target.universe_size();
        let vocab = source.vocabulary();

        let target_idx: Vec<TargetRelIndex> = vocab
            .rel_ids()
            .map(|rel| TargetRelIndex::new(target, rel))
            .collect();

        let mut constraints = Vec::new();
        let mut incident = vec![Vec::new(); n_source];
        for rel in vocab.rel_ids() {
            for t in source.tuples(rel) {
                let ci = constraints.len() as u32;
                let vars: Vec<Element> = t.to_vec();
                let mut seen = Vec::new();
                for &v in &vars {
                    if !seen.contains(&v) {
                        incident[v as usize].push(ci);
                        seen.push(v);
                    }
                }
                constraints.push(SourceConstraint {
                    rel: rel.index(),
                    vars,
                });
            }
        }

        // Initial domains: unary (rel, pos) occurrence compatibility.
        let mut domains = vec![BitSet::full(n_target); n_source];
        let mut feasible = n_target > 0 || n_source == 0;
        if feasible {
            for c in &constraints {
                let idx = &target_idx[c.rel];
                for (p, &v) in c.vars.iter().enumerate() {
                    // v must take a value occurring at position p of this rel.
                    let mut allowed = BitSet::empty(n_target);
                    for (val, tuples) in idx.by_pos_val[p].iter().enumerate() {
                        if !tuples.is_empty() {
                            allowed.insert(val as Element);
                        }
                    }
                    domains[v as usize].intersect_with(&allowed);
                }
            }
            for &e in &problem.excluded {
                for d in domains.iter_mut() {
                    d.remove(e);
                }
            }
            for &(s, t) in &problem.pins {
                assert!(
                    (s as usize) < n_source,
                    "pinned source element out of range"
                );
                assert!(
                    (t as usize) < n_target,
                    "pinned target element out of range"
                );
                let mut single = BitSet::empty(n_target);
                single.insert(t);
                domains[s as usize].intersect_with(&single);
            }
            if problem.injective && n_source > n_target {
                feasible = false;
            }
            if domains.iter().any(|d| d.is_empty()) && n_source > 0 {
                feasible = false;
            }
        }

        Solver {
            problem,
            n_source,
            n_target,
            target_idx,
            constraints,
            incident,
            domains,
            assignment: vec![None; n_source],
            trail: Vec::new(),
            feasible,
        }
    }

    /// Maintains generalized arc consistency from a seed worklist of
    /// constraints, cascading through domain shrinks. Returns false on a
    /// wipe-out.
    fn propagate_worklist(&mut self, mut worklist: Vec<u32>) -> bool {
        let mut queued: Vec<bool> = vec![false; self.constraints.len()];
        for &ci in &worklist {
            queued[ci as usize] = true;
        }
        while let Some(ci) = worklist.pop() {
            queued[ci as usize] = false;
            match self.revise_constraint(ci as usize) {
                None => return false,
                Some(shrunk) => {
                    for v in shrunk {
                        for &cj in &self.incident[v as usize] {
                            if cj != ci && !queued[cj as usize] {
                                queued[cj as usize] = true;
                                worklist.push(cj);
                            }
                        }
                    }
                }
            }
        }
        true
    }

    /// Prunes domains reachable from `var` (MAC).
    fn propagate(&mut self, var: Element) -> bool {
        let seed = self.incident[var as usize].clone();
        self.propagate_worklist(seed)
    }

    /// Root-level propagation over every constraint.
    fn propagate_all(&mut self) -> bool {
        let seed: Vec<u32> = (0..self.constraints.len() as u32).collect();
        self.propagate_worklist(seed)
    }

    /// Generalized arc consistency on one source tuple constraint, given the
    /// current partial assignment: computes the supported values of every
    /// unassigned variable of the constraint and intersects its domain.
    /// Returns the variables whose domains shrank, or `None` on wipe-out.
    fn revise_constraint(&mut self, ci: usize) -> Option<Vec<Element>> {
        let (rel, vars) = {
            let c = &self.constraints[ci];
            (c.rel, c.vars.clone())
        };
        let idx = &self.target_idx[rel];

        // Fully assigned: membership check.
        if vars.iter().all(|&v| self.assignment[v as usize].is_some()) {
            let mapped: Tuple = vars
                .iter()
                .map(|&v| self.assignment[v as usize].unwrap())
                .collect();
            return if idx.tuple_set.contains(&mapped) {
                Some(Vec::new())
            } else {
                None
            };
        }

        // Pick the assigned position with the shortest inverted list to seed
        // the candidate scan; fall back to all tuples.
        let mut best: Option<&Vec<u32>> = None;
        for (p, &v) in vars.iter().enumerate() {
            if let Some(val) = self.assignment[v as usize] {
                let list = &idx.by_pos_val[p][val as usize];
                if best.is_none_or(|b| list.len() < b.len()) {
                    best = Some(list);
                }
            }
        }

        // Supported values per unassigned variable of this constraint.
        let mut support: Vec<(Element, BitSet)> = Vec::new();
        for &v in &vars {
            if self.assignment[v as usize].is_none() && !support.iter().any(|(u, _)| *u == v) {
                support.push((v, BitSet::empty(self.n_target)));
            }
        }

        let consider = |ti: u32, support: &mut Vec<(Element, BitSet)>, solver: &Self| {
            let t = &idx.tuples[ti as usize];
            // Check consistency with assignment and with repeated variables,
            // and that each unassigned position value is still in-domain.
            for (p, &v) in vars.iter().enumerate() {
                match solver.assignment[v as usize] {
                    Some(val) => {
                        if t[p] != val {
                            return;
                        }
                    }
                    None => {
                        if !solver.domains[v as usize].contains(t[p]) {
                            return;
                        }
                    }
                }
            }
            // Repeated-variable consistency inside the tuple.
            for (p, &v) in vars.iter().enumerate() {
                for (q, &u) in vars.iter().enumerate().skip(p + 1) {
                    if v == u && t[p] != t[q] {
                        return;
                    }
                }
            }
            for (u, sup) in support.iter_mut() {
                for (p, &v) in vars.iter().enumerate() {
                    if v == *u {
                        sup.insert(t[p]);
                    }
                }
            }
        };

        match best {
            Some(list) => {
                for &ti in list {
                    consider(ti, &mut support, self);
                }
            }
            None => {
                for ti in 0..idx.tuples.len() as u32 {
                    consider(ti, &mut support, self);
                }
            }
        }

        let mut shrunk = Vec::new();
        for (u, sup) in support {
            let old_count = self.domains[u as usize].count();
            let mut new_dom = self.domains[u as usize].clone();
            new_dom.intersect_with(&sup);
            if new_dom.count() < old_count {
                self.trail
                    .last_mut()
                    .expect("propagation happens inside a decision level")
                    .push((u, std::mem::replace(&mut self.domains[u as usize], new_dom)));
                shrunk.push(u);
            }
            if self.domains[u as usize].is_empty() {
                return None;
            }
        }
        Some(shrunk)
    }

    fn select_var(&self) -> Option<Element> {
        let mut best: Option<(usize, usize, Element)> = None; // (dom, -deg, var)
        for v in 0..self.n_source {
            if self.assignment[v].is_none() {
                let dom = self.domains[v].count();
                let deg = self.incident[v].len();
                let key = (dom, usize::MAX - deg, v as Element);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
        }
        best.map(|(_, _, v)| v)
    }

    fn search<F: FnMut(&Homomorphism) -> ControlFlow<()>>(
        &mut self,
        f: &mut F,
        stats: &mut HomSearchStats,
        budget: Option<u64>,
    ) -> ControlFlow<()> {
        if let Some(b) = budget {
            if stats.nodes >= b {
                stats.budget_exhausted = true;
                return ControlFlow::Break(());
            }
        }
        let var = match self.select_var() {
            Some(v) => v,
            None => {
                let map = self
                    .assignment
                    .iter()
                    .map(|a| a.expect("complete assignment"))
                    .collect();
                let h = Homomorphism { map };
                return f(&h);
            }
        };
        let values: Vec<Element> = self.domains[var as usize].iter().collect();
        for val in values {
            stats.nodes += 1;
            self.trail.push(Vec::new());
            self.assignment[var as usize] = Some(val);
            let mut ok = true;
            if self.problem.injective {
                // Remove val from every other unassigned domain.
                for u in 0..self.n_source {
                    if u != var as usize
                        && self.assignment[u].is_none()
                        && self.domains[u].contains(val)
                    {
                        let mut nd = self.domains[u].clone();
                        nd.remove(val);
                        self.trail
                            .last_mut()
                            .unwrap()
                            .push((u as u32, std::mem::replace(&mut self.domains[u], nd)));
                        if self.domains[u].is_empty() {
                            ok = false;
                            break;
                        }
                    }
                }
            }
            if ok {
                ok = self.propagate(var);
            }
            if ok {
                if let ControlFlow::Break(()) = self.search(f, stats, budget) {
                    return ControlFlow::Break(());
                }
            } else {
                stats.backtracks += 1;
            }
            // Undo.
            self.assignment[var as usize] = None;
            let level = self.trail.pop().expect("matching trail level");
            for (u, dom) in level.into_iter().rev() {
                self.domains[u as usize] = dom;
            }
        }
        ControlFlow::Continue(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::StructureBuilder;
    use crate::vocabulary::Vocabulary;

    fn cycle(n: usize) -> Structure {
        let edges: Vec<(Element, Element)> = (0..n)
            .map(|i| (i as Element, ((i + 1) % n) as Element))
            .collect();
        Structure::digraph(n, &edges)
    }

    fn path(n: usize) -> Structure {
        let edges: Vec<(Element, Element)> =
            (0..n).map(|i| (i as Element, (i + 1) as Element)).collect();
        Structure::digraph(n + 1, &edges)
    }

    #[test]
    fn cycle_homomorphisms() {
        // C6 -> C3 exists (wrap twice), C3 -> C6 does not.
        assert!(HomProblem::new(&cycle(6), &cycle(3)).exists());
        assert!(!HomProblem::new(&cycle(3), &cycle(6)).exists());
        // C4 -> C2 exists.
        assert!(HomProblem::new(&cycle(4), &cycle(2)).exists());
        // C3 -> C3 exists (rotations): exactly 3 of them.
        assert_eq!(HomProblem::new(&cycle(3), &cycle(3)).count(None), 3);
    }

    #[test]
    fn path_to_path() {
        // P2 -> P4 (slide along), P4 -> P2 impossible (too long).
        assert!(HomProblem::new(&path(2), &path(4)).exists());
        assert!(!HomProblem::new(&path(4), &path(2)).exists());
    }

    #[test]
    fn loop_absorbs_everything() {
        let lp = Structure::digraph(1, &[(0, 0)]);
        assert!(HomProblem::new(&cycle(3), &lp).exists());
        assert!(HomProblem::new(&cycle(5), &lp).exists());
        assert!(!HomProblem::new(&lp, &cycle(3)).exists());
    }

    #[test]
    fn k2_bidirectional() {
        // K2^<-> (edges both ways) receives every bipartite digraph.
        let k2 = Structure::digraph(2, &[(0, 1), (1, 0)]);
        assert!(HomProblem::new(&cycle(4), &k2).exists());
        assert!(!HomProblem::new(&cycle(3), &k2).exists());
    }

    #[test]
    fn pinned_homomorphisms() {
        let p = path(2); // 0 -> 1 -> 2
        let c = cycle(3);
        // pin 0 -> 0: forced 1 -> 1, 2 -> 2.
        let h = HomProblem::new(&p, &c).pin(0, 0).find().unwrap();
        assert_eq!(h.map, vec![0, 1, 2]);
        assert!(h.verify(&p, &c));
    }

    #[test]
    fn excluded_targets() {
        let p = path(1);
        let c = cycle(3);
        // Excluding all of 0,1 leaves only the image {2 -> 0} edge (2,0):
        let h = HomProblem::new(&p, &c).exclude_target(1).find().unwrap();
        assert!(h.verify(&p, &c));
        assert!(!h.map.contains(&1));
    }

    #[test]
    fn injective_search() {
        let p = path(2);
        let c = cycle(3);
        let h = HomProblem::new(&p, &c).injective().find().unwrap();
        assert_eq!(h.image_size(), 3);
        // Injective C3 -> P2 impossible.
        assert!(!HomProblem::new(&cycle(3), &path(2)).injective().exists());
    }

    #[test]
    fn count_all() {
        // homs from a single edge into C3: the 3 edges.
        let e1 = path(1);
        assert_eq!(HomProblem::new(&e1, &cycle(3)).count(None), 3);
        // homs from a single vertex-with-no-edges? Universe must be active
        // normally; test isolated-node behaviour anyway.
        let isolated = Structure::digraph(1, &[]);
        assert_eq!(HomProblem::new(&isolated, &cycle(3)).count(None), 3);
    }

    #[test]
    fn repeated_variable_tuples() {
        // Source demands a loop: tuple (x, x).
        let lp = Structure::digraph(1, &[(0, 0)]);
        let c3 = cycle(3);
        assert!(!HomProblem::new(&lp, &c3).exists());
        let c3_with_loop = Structure::digraph(3, &[(0, 1), (1, 2), (2, 0), (1, 1)]);
        let h = HomProblem::new(&lp, &c3_with_loop).find().unwrap();
        assert_eq!(h.map, vec![1]);
    }

    #[test]
    fn higher_arity_hom() {
        let v = Vocabulary::single(3);
        let r = v.rel("R").unwrap();
        // Source: R(x, y, x). Target: R(0,1,0), R(1,1,2).
        let mut b = StructureBuilder::new(v.clone(), 2);
        b.add(r, &[0, 1, 0]);
        let src = b.finish();
        let mut b = StructureBuilder::new(v, 3);
        b.add(r, &[0, 1, 0]).add(r, &[1, 1, 2]);
        let tgt = b.finish();
        let sols: Vec<_> = {
            let mut v = Vec::new();
            HomProblem::new(&src, &tgt).for_each(|h| {
                v.push(h.map.clone());
                ControlFlow::Continue(())
            });
            v
        };
        // Only R(0,1,0) matches the (x,y,x) pattern.
        assert_eq!(sols, vec![vec![0, 1]]);
    }

    #[test]
    fn budget_exhaustion_reported() {
        let big = cycle(12);
        let stats = HomProblem::new(&big, &cycle(3))
            .node_budget(1)
            .for_each(|_| ControlFlow::Continue(()));
        assert!(stats.budget_exhausted || stats.nodes <= 1);
    }

    #[test]
    fn verify_rejects_bad_maps() {
        let c3 = cycle(3);
        let bad = Homomorphism { map: vec![0, 0, 0] };
        assert!(!bad.verify(&c3, &c3));
        let good = Homomorphism { map: vec![1, 2, 0] };
        assert!(good.verify(&c3, &c3));
    }

    #[test]
    fn composition() {
        let c6 = cycle(6);
        let c3 = cycle(3);
        let lp = Structure::digraph(1, &[(0, 0)]);
        let h1 = HomProblem::new(&c6, &c3).find().unwrap();
        let h2 = HomProblem::new(&c3, &lp).find().unwrap();
        let h = h1.then(&h2);
        assert!(h.verify(&c6, &lp));
    }

    #[test]
    fn empty_source() {
        let v = Vocabulary::graphs();
        let empty = Structure::empty(v, 0);
        let c3 = cycle(3);
        assert!(HomProblem::new(&empty, &c3).exists());
    }

    #[test]
    fn stats_nodes_counted() {
        let stats = HomProblem::new(&cycle(4), &cycle(2)).for_each(|_| ControlFlow::Continue(()));
        assert!(stats.nodes > 0);
    }
}
