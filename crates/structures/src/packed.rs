//! Packed **code-word rows**: two dense codes in one `u64`, plus the
//! LSB radix sorts the packed kernels run on.
//!
//! [`crate::dict::DomainDict`] interns the active domain into dense
//! `u32` codes, so a row (or join key) spanning at most two coded
//! columns fits in a single machine word, `hi << 32 | lo`. The packing
//! is injective and **monotone**: the numeric order of packed words is
//! exactly the lexicographic order of `[hi, lo]` rows, which is what
//! lets a radix sort over words replace the comparison sort on the
//! canonical row order without changing a single output byte.
//!
//! **Packing invariant.** Callers may only pack columns whose relation
//! carries a dense-domain bound (`domain_width > 0` for *every* packed
//! column). The packing itself is total over `u32` pairs, but the
//! bound is what keeps the word population confined to the low bits —
//! the sorts below skip every radix pass whose digit is constant
//! across all keys, and the partition directories built over sorted
//! keys stay cache-sized, only because dense codes never stray above
//! their width.
//!
//! The sorts are **LSB (least-significant-digit) radix sorts** over
//! 8-bit digits: each executed pass is a stable counting sort, so the
//! final order is the full numeric key order, and — for the pair
//! variant — ties preserve feed order, which the join kernels use to
//! reproduce the probe order of the chained-hash index exactly.

use crate::structure::Element;

/// Packs two dense codes into one word, high column first. Monotone:
/// `pack2(a, b) <= pack2(c, d)` iff `[a, b] <= [c, d]`
/// lexicographically.
#[inline]
pub const fn pack2(hi: Element, lo: Element) -> u64 {
    ((hi as u64) << 32) | lo as u64
}

/// Inverse of [`pack2`].
#[inline]
pub const fn unpack2(w: u64) -> (Element, Element) {
    ((w >> 32) as Element, w as Element)
}

/// The OR of all keys: a zero digit here means the digit is zero in
/// every key, so its counting pass would be the identity permutation
/// (everything lands in bucket 0 in feed order) and can be skipped.
#[inline]
fn or_mask(keys: &[u64]) -> u64 {
    keys.iter().fold(0, |m, &k| m | k)
}

/// Sorts packed key words ascending: LSB radix over 8-bit digits,
/// skipping constant-digit passes. Dense codes populate only the low
/// bytes of each half-word, so a sort over `pack2`-packed rows of
/// width `w` runs `2 * ceil(log2(w) / 8)` passes — at most four for
/// any domain under 64 K codes.
pub fn radix_sort(keys: &mut [u64]) {
    if keys.len() < 2 {
        return;
    }
    let or = or_mask(keys);
    let mut scratch = vec![0u64; keys.len()];
    let mut in_keys = true;
    for pass in 0..8u32 {
        let shift = pass * 8;
        if (or >> shift) & 0xff == 0 {
            continue;
        }
        let (src, dst): (&[u64], &mut [u64]) = if in_keys {
            (keys, &mut scratch)
        } else {
            (&scratch, keys)
        };
        let mut starts = digit_starts(src, shift, |&k| k);
        for &k in src {
            let d = ((k >> shift) & 0xff) as usize;
            dst[starts[d]] = k;
            starts[d] += 1;
        }
        in_keys = !in_keys;
    }
    if !in_keys {
        keys.copy_from_slice(&scratch);
    }
}

/// [`radix_sort`] for `u32` keys: half the memory traffic per pass
/// and at most four passes. Tightly packed two-column words (`hi <<
/// b | lo` for a `b`-bit domain with `2b ≤ 32`) and single dense
/// columns sort here instead of widening to `u64`.
pub fn radix_sort_u32(keys: &mut [u32]) {
    if keys.len() < 2 {
        return;
    }
    let or = keys.iter().fold(0u32, |m, &k| m | k);
    let mut scratch = vec![0u32; keys.len()];
    let mut in_keys = true;
    for pass in 0..4u32 {
        let shift = pass * 8;
        if (or >> shift) & 0xff == 0 {
            continue;
        }
        let (src, dst): (&[u32], &mut [u32]) = if in_keys {
            (keys, &mut scratch)
        } else {
            (&scratch, keys)
        };
        let mut starts = digit_starts(src, shift, |&k| k as u64);
        for &k in src {
            let d = ((k >> shift) & 0xff) as usize;
            dst[starts[d]] = k;
            starts[d] += 1;
        }
        in_keys = !in_keys;
    }
    if !in_keys {
        keys.copy_from_slice(&scratch);
    }
}

/// Sorts-and-dedups packed key words in place, skipping the radix
/// sort entirely when the keys already arrive in order — materialized
/// scans usually do — so the packed path matches the adaptive
/// comparison sort's sorted-input best case instead of paying full
/// counting passes for order it already has. The sortedness check is
/// one sequential pass, a fraction of a single radix pass.
pub fn radix_dedup(keys: &mut Vec<u64>) {
    if !keys.is_sorted() {
        radix_sort(keys);
    }
    keys.dedup();
}

/// [`radix_dedup`] for `u32` keys.
pub fn radix_dedup_u32(keys: &mut Vec<u32>) {
    if !keys.is_sorted() {
        radix_sort_u32(keys);
    }
    keys.dedup();
}

/// Sorts `(key, tag)` pairs ascending by key, **stably**: pairs with
/// equal keys keep their feed order across every pass. The join
/// kernels feed row ids in descending order, so each key group comes
/// out listing rows descending — the exact candidate order of the
/// chained-hash and direct-addressed indexes, which is what keeps join
/// output buffers byte-identical across index representations.
pub fn radix_sort_pairs(pairs: &mut [(u64, u32)]) {
    /// A `(packed key, tag)` pair, as fed by the join kernels.
    type Pair = (u64, u32);
    if pairs.len() < 2 {
        return;
    }
    let or = pairs.iter().fold(0, |m, &(k, _)| m | k);
    let mut scratch = vec![(0u64, 0u32); pairs.len()];
    let mut in_pairs = true;
    for pass in 0..8u32 {
        let shift = pass * 8;
        if (or >> shift) & 0xff == 0 {
            continue;
        }
        let (src, dst): (&[Pair], &mut [Pair]) = if in_pairs {
            (pairs, &mut scratch)
        } else {
            (&scratch, pairs)
        };
        let mut starts = digit_starts(src, shift, |&(k, _)| k);
        for &p in src {
            let d = ((p.0 >> shift) & 0xff) as usize;
            dst[starts[d]] = p;
            starts[d] += 1;
        }
        in_pairs = !in_pairs;
    }
    if !in_pairs {
        pairs.copy_from_slice(&scratch);
    }
}

/// One counting pass: the exclusive prefix sums of the 256 digit
/// counts at `shift`, i.e. each digit's first output slot.
#[inline]
fn digit_starts<T>(src: &[T], shift: u32, key: impl Fn(&T) -> u64) -> [usize; 256] {
    let mut counts = [0usize; 256];
    for t in src {
        counts[((key(t) >> shift) & 0xff) as usize] += 1;
    }
    let mut sum = 0usize;
    for c in counts.iter_mut() {
        let n = *c;
        *c = sum;
        sum += n;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random stream (xorshift).
    fn stream(seed: u64) -> impl Iterator<Item = u64> {
        let mut s = seed.max(1);
        std::iter::repeat_with(move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        })
    }

    #[test]
    fn pack_is_monotone_and_invertible() {
        let vals = [0u32, 1, 2, 255, 256, 65_535, u32::MAX];
        let mut rows: Vec<[u32; 2]> = Vec::new();
        for &a in &vals {
            for &b in &vals {
                rows.push([a, b]);
                assert_eq!(unpack2(pack2(a, b)), (a, b));
            }
        }
        let mut by_row = rows.clone();
        by_row.sort_unstable();
        let mut by_word = rows;
        by_word.sort_unstable_by_key(|r| pack2(r[0], r[1]));
        assert_eq!(by_row, by_word, "word order must equal row order");
    }

    #[test]
    fn radix_sort_matches_comparison_sort() {
        for (seed, n, width) in [
            (3u64, 0usize, 1u64),
            (5, 1, 7),
            (7, 1000, 50),
            (11, 4096, 1 << 20),
            (13, 777, u64::MAX),
        ] {
            let mut keys: Vec<u64> = stream(seed).take(n).map(|k| k % width.max(1)).collect();
            let mut expected = keys.clone();
            expected.sort_unstable();
            radix_sort(&mut keys);
            assert_eq!(keys, expected, "seed {seed} n {n} width {width}");
        }
    }

    #[test]
    fn radix_sort_u32_matches_comparison_sort() {
        for (seed, n, width) in [
            (3u64, 0usize, 1u32),
            (5, 1, 7),
            (7, 1000, 50),
            (11, 4096, 1 << 20),
            (13, 777, u32::MAX),
        ] {
            let mut keys: Vec<u32> = stream(seed)
                .take(n)
                .map(|k| (k as u32) % width.max(1))
                .collect();
            let mut expected = keys.clone();
            expected.sort_unstable();
            radix_sort_u32(&mut keys);
            assert_eq!(keys, expected, "seed {seed} n {n} width {width}");
        }
    }

    #[test]
    fn radix_dedup_matches_sort_dedup() {
        for sorted in [false, true] {
            let mut k64: Vec<u64> = stream(21).take(3000).map(|k| k % 400).collect();
            let mut k32: Vec<u32> = k64.iter().map(|&k| k as u32).collect();
            if sorted {
                k64.sort_unstable();
                k32.sort_unstable();
            }
            let mut e64 = k64.clone();
            e64.sort_unstable();
            e64.dedup();
            let mut e32 = k32.clone();
            e32.sort_unstable();
            e32.dedup();
            radix_dedup(&mut k64);
            radix_dedup_u32(&mut k32);
            assert_eq!(k64, e64, "sorted={sorted}");
            assert_eq!(k32, e32, "sorted={sorted}");
        }
    }

    #[test]
    fn radix_sort_pairs_is_stable() {
        // Many duplicate keys; tags record feed order, which must
        // survive within every equal-key group.
        let mut pairs: Vec<(u64, u32)> = stream(42)
            .take(2000)
            .enumerate()
            .map(|(i, k)| (k % 37, i as u32))
            .collect();
        let mut expected = pairs.clone();
        expected.sort_by_key(|&(k, _)| k); // std stable sort
        radix_sort_pairs(&mut pairs);
        assert_eq!(pairs, expected);
    }

    #[test]
    fn radix_sort_skips_constant_digits() {
        // All keys share their high bytes; the sort must still be
        // correct (the skipped passes are identity permutations).
        let base = 0xdead_beef_0000_0000u64;
        let mut keys: Vec<u64> = stream(9).take(512).map(|k| base | (k & 0xffff)).collect();
        let mut expected = keys.clone();
        expected.sort_unstable();
        radix_sort(&mut keys);
        assert_eq!(keys, expected);
    }
}
