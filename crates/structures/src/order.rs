//! The homomorphism preorder on (pointed) structures.
//!
//! `D → D'` (a homomorphism exists) is reflexive and transitive; it becomes
//! a partial order on cores. The paper's notation `D ⥛ D'` (rendered
//! `upslope` in the extracted text) means `D → D'` **and** `D' ↛ D` —
//! strictly below in the preorder. Dually, on queries, `Q ⊆ Q'` iff
//! `T_{Q'} → T_Q`.

use crate::hom::HomProblem;
use crate::pointed::Pointed;
use crate::solver::HomSolver;

/// `true` when a homomorphism `a → b` respecting distinguished tuples
/// exists.
pub fn hom_exists(a: &Pointed, b: &Pointed) -> bool {
    if a.distinguished().len() != b.distinguished().len() {
        return false;
    }
    HomProblem::new(&a.structure, &b.structure)
        .pin_tuple(a.distinguished(), b.distinguished())
        .exists()
}

/// Like [`hom_exists`], against a pre-compiled source solver (`solver`
/// must be `HomSolver::compile(&a.structure)`).
fn hom_exists_compiled(solver: &HomSolver, a: &Pointed, b: &Pointed) -> bool {
    if a.distinguished().len() != b.distinguished().len() {
        return false;
    }
    solver
        .run(&b.structure)
        .pin_tuple(a.distinguished(), b.distinguished())
        .exists()
}

/// The full pairwise hom-existence matrix of a family:
/// `below[i][j] = family[i] → family[j]` (diagonal left `false`).
///
/// Each member's solver is compiled once and each member's target index is
/// built once, so the `n²` searches pay no per-pair setup.
pub fn hom_matrix(family: &[Pointed]) -> Vec<Vec<bool>> {
    let n = family.len();
    let mut below = vec![vec![false; n]; n];
    for (i, a) in family.iter().enumerate() {
        let solver = HomSolver::compile(&a.structure);
        for (j, b) in family.iter().enumerate() {
            if i != j {
                below[i][j] = hom_exists_compiled(&solver, a, b);
            }
        }
    }
    below
}

/// `true` when `a → b` and `b → a` (homomorphic equivalence; equal cores).
pub fn hom_equivalent(a: &Pointed, b: &Pointed) -> bool {
    hom_exists(a, b) && hom_exists(b, a)
}

/// `true` when `a → b` but `b ↛ a` (the paper's strict `⥛`).
pub fn strictly_below(a: &Pointed, b: &Pointed) -> bool {
    hom_exists(a, b) && !hom_exists(b, a)
}

/// `true` when `a` and `b` are incomparable (no homomorphism either way).
pub fn incomparable(a: &Pointed, b: &Pointed) -> bool {
    !hom_exists(a, b) && !hom_exists(b, a)
}

/// Indices of the →-minimal elements of a family of pointed structures
/// (elements with nothing strictly below them in the family).
///
/// Used by Theorem 4.1: the minimal elements of the quotient family
/// `H_C(Q)` under `→` are exactly the `C`-approximations.
pub fn minimal_elements(family: &[Pointed]) -> Vec<usize> {
    let n = family.len();
    let below = hom_matrix(family);
    (0..n)
        .filter(|&i| {
            // minimal iff no j with j -> i but i -/-> j
            !(0..n).any(|j| j != i && below[j][i] && !below[i][j])
        })
        .collect()
}

/// Indices of →-maximal elements (nothing strictly above).
pub fn maximal_elements(family: &[Pointed]) -> Vec<usize> {
    let n = family.len();
    let below = hom_matrix(family);
    (0..n)
        .filter(|&i| !(0..n).any(|j| j != i && below[i][j] && !below[j][i]))
        .collect()
}

/// Deduplicates a family up to homomorphic equivalence, keeping the first
/// representative of each class. Returns the kept indices.
pub fn dedupe_hom_equivalent(family: &[Pointed]) -> Vec<usize> {
    // Compile each candidate's solver lazily, once; equivalence checks
    // between i and a kept k then reuse both compiled sides.
    let mut solvers: Vec<Option<HomSolver>> = (0..family.len()).map(|_| None).collect();
    let mut kept: Vec<usize> = Vec::new();
    'outer: for i in 0..family.len() {
        if solvers[i].is_none() {
            solvers[i] = Some(HomSolver::compile(&family[i].structure));
        }
        for &k in &kept {
            let fwd = hom_exists_compiled(
                solvers[i].as_ref().expect("compiled above"),
                &family[i],
                &family[k],
            );
            if fwd
                && hom_exists_compiled(
                    solvers[k].as_ref().expect("kept entries are compiled"),
                    &family[k],
                    &family[i],
                )
            {
                continue 'outer;
            }
        }
        kept.push(i);
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::{Element, Structure};

    fn cycle(n: usize) -> Pointed {
        let edges: Vec<(Element, Element)> = (0..n)
            .map(|i| (i as Element, ((i + 1) % n) as Element))
            .collect();
        Pointed::boolean(Structure::digraph(n, &edges))
    }

    fn lp() -> Pointed {
        Pointed::boolean(Structure::digraph(1, &[(0, 0)]))
    }

    #[test]
    fn loop_is_top_of_everything() {
        assert!(strictly_below(&cycle(3), &lp()));
        assert!(strictly_below(&cycle(4), &lp()));
        assert!(hom_equivalent(&lp(), &lp()));
    }

    #[test]
    fn c6_strictly_below_c3() {
        // Directed C6 maps onto C3 (wrap twice) but C3 cannot map into C6.
        assert!(strictly_below(&cycle(6), &cycle(3)));
        assert!(!hom_equivalent(&cycle(3), &cycle(4)));
        // C3 ∪ C6 is hom-equivalent to C3.
        let union = Pointed::boolean(cycle(3).structure.disjoint_union(&cycle(6).structure));
        assert!(hom_equivalent(&union, &cycle(3)));
    }

    #[test]
    fn incomparable_cycles() {
        // C3 and C4: C3 -> C4? no (lengths); C4 -> C3? gcd arguments: a
        // directed C4 maps to C3 iff 3 | 4 — no. Incomparable.
        assert!(incomparable(&cycle(3), &cycle(4)));
    }

    #[test]
    fn minimal_and_maximal() {
        // Order: C6 ⥛ C3 ⥛ loop; C4 ⥛ loop; C4 incomparable with C3, C6.
        let family = vec![cycle(3), cycle(6), lp(), cycle(4)];
        let mins = minimal_elements(&family);
        assert_eq!(mins, vec![1, 3]); // C6 and C4
        let maxs = maximal_elements(&family);
        assert_eq!(maxs, vec![2]); // the loop
    }

    #[test]
    fn dedupe() {
        fn union(a: &Pointed, b: &Pointed) -> Pointed {
            Pointed::boolean(a.structure.disjoint_union(&b.structure))
        }
        // C3, C3 ∪ C6 and C3 ∪ C9 are pairwise hom-equivalent (all ~ C3).
        let family = vec![
            cycle(3),
            union(&cycle(3), &cycle(6)),
            union(&cycle(3), &cycle(9)),
            cycle(4),
            lp(),
        ];
        let kept = dedupe_hom_equivalent(&family);
        assert_eq!(kept, vec![0, 3, 4]);
    }

    #[test]
    fn arity_mismatch_no_hom() {
        let a = Pointed::new(Structure::digraph(2, &[(0, 1)]), vec![0]);
        let b = Pointed::boolean(Structure::digraph(2, &[(0, 1)]));
        assert!(!hom_exists(&a, &b));
    }
}
