//! Graphviz DOT export, for inspecting tableaux and gadgets.

use crate::pointed::Pointed;
use crate::structure::Structure;
use std::fmt::Write;

/// Renders a structure as Graphviz DOT.
///
/// Binary relations become labeled edges; higher-arity tuples become small
/// square "fact" nodes connected to their arguments with position-labeled
/// edges (standard hypergraph incidence drawing).
pub fn to_dot(s: &Structure) -> String {
    to_dot_pointed(&Pointed::boolean(s.clone()))
}

/// Renders a pointed structure as DOT; distinguished elements are drawn as
/// double circles annotated with their positions.
pub fn to_dot_pointed(p: &Pointed) -> String {
    let s = &p.structure;
    let mut out = String::new();
    let _ = writeln!(out, "digraph structure {{");
    let _ = writeln!(out, "  rankdir=LR;");
    for e in s.elements() {
        let positions: Vec<String> = p
            .distinguished()
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d == e)
            .map(|(i, _)| format!("x{}", i + 1))
            .collect();
        let label = if positions.is_empty() {
            s.element_name(e)
        } else {
            format!("{} [{}]", s.element_name(e), positions.join(","))
        };
        let shape = if positions.is_empty() {
            "circle"
        } else {
            "doublecircle"
        };
        let _ = writeln!(out, "  n{e} [label=\"{label}\", shape={shape}];");
    }
    let mut fact_id = 0usize;
    for rel in s.vocabulary().rel_ids() {
        let name = s.vocabulary().name(rel);
        let arity = s.vocabulary().arity(rel);
        for t in s.tuples(rel) {
            if arity == 2 {
                let _ = writeln!(out, "  n{} -> n{} [label=\"{}\"];", t[0], t[1], name);
            } else {
                let _ = writeln!(
                    out,
                    "  f{fact_id} [label=\"{name}\", shape=box, fontsize=9];"
                );
                for (i, &x) in t.iter().enumerate() {
                    let _ = writeln!(
                        out,
                        "  f{fact_id} -> n{x} [label=\"{}\", style=dashed, arrowhead=none];",
                        i + 1
                    );
                }
                fact_id += 1;
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::StructureBuilder;
    use crate::vocabulary::Vocabulary;

    #[test]
    fn binary_dot() {
        let g = Structure::digraph(2, &[(0, 1)]);
        let dot = to_dot(&g);
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("digraph"));
    }

    #[test]
    fn pointed_dot_marks_distinguished() {
        let g = Structure::digraph(2, &[(0, 1)]);
        let p = Pointed::new(g, vec![1]);
        let dot = to_dot_pointed(&p);
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("[x1]"));
    }

    #[test]
    fn ternary_dot_uses_fact_nodes() {
        let v = Vocabulary::single(3);
        let r = v.rel("R").unwrap();
        let mut b = StructureBuilder::new(v, 3);
        b.add(r, &[0, 1, 2]);
        let s = b.finish();
        let dot = to_dot(&s);
        assert!(dot.contains("f0 [label=\"R\""));
        assert!(dot.contains("style=dashed"));
    }
}
