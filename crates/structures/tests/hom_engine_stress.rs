//! Stress and adversarial tests for the homomorphism engine, including
//! property-based cross-validation against brute force.

use cqapx_structures::{
    core_of, hom_exists, isomorphic, HomProblem, Pointed, Structure, StructureBuilder, Vocabulary,
};
use proptest::prelude::*;
use std::ops::ControlFlow;

/// Brute-force hom existence: try all n^m maps.
fn brute_force_hom(src: &Structure, tgt: &Structure) -> bool {
    let n = src.universe_size();
    let m = tgt.universe_size();
    if n == 0 {
        return true;
    }
    if m == 0 {
        return false;
    }
    let mut map = vec![0u32; n];
    loop {
        let h = cqapx_structures::Homomorphism { map: map.clone() };
        if h.verify(src, tgt) {
            return true;
        }
        // increment
        let mut i = 0;
        loop {
            if i == n {
                return false;
            }
            map[i] += 1;
            if (map[i] as usize) < m {
                break;
            }
            map[i] = 0;
            i += 1;
        }
    }
}

fn digraph_strategy(max_n: usize, max_e: usize) -> impl Strategy<Value = Structure> {
    (1..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=max_e)
            .prop_map(move |edges| Structure::digraph(n, &edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The engine agrees with brute force on small instances.
    #[test]
    fn engine_matches_brute_force(
        src in digraph_strategy(4, 6),
        tgt in digraph_strategy(4, 6),
    ) {
        prop_assert_eq!(
            HomProblem::new(&src, &tgt).exists(),
            brute_force_hom(&src, &tgt)
        );
    }

    /// Every enumerated solution verifies; the count matches brute force.
    #[test]
    fn enumeration_sound_and_complete(
        src in digraph_strategy(3, 4),
        tgt in digraph_strategy(3, 5),
    ) {
        let mut engine_count = 0u64;
        HomProblem::new(&src, &tgt).for_each(|h| {
            assert!(h.verify(&src, &tgt));
            engine_count += 1;
            ControlFlow::Continue(())
        });
        // brute force count
        let n = src.universe_size();
        let m = tgt.universe_size();
        let mut brute = 0u64;
        if m > 0 {
            let total = (m as u64).pow(n as u32);
            for code in 0..total {
                let mut c = code;
                let map: Vec<u32> = (0..n)
                    .map(|_| {
                        let v = (c % m as u64) as u32;
                        c /= m as u64;
                        v
                    })
                    .collect();
                if (cqapx_structures::Homomorphism { map }).verify(&src, &tgt) {
                    brute += 1;
                }
            }
        } else if n == 0 {
            brute = 1;
        }
        prop_assert_eq!(engine_count, brute);
    }

    /// Hom existence is transitive.
    #[test]
    fn hom_transitive(
        a in digraph_strategy(3, 4),
        b in digraph_strategy(3, 4),
        c in digraph_strategy(3, 4),
    ) {
        let (pa, pb, pc) = (
            Pointed::boolean(a),
            Pointed::boolean(b),
            Pointed::boolean(c),
        );
        if hom_exists(&pa, &pb) && hom_exists(&pb, &pc) {
            prop_assert!(hom_exists(&pa, &pc));
        }
    }

    /// Isomorphic structures are hom-equivalent; cores of hom-equivalent
    /// structures are isomorphic.
    #[test]
    fn cores_of_equivalent_are_isomorphic(s in digraph_strategy(4, 6)) {
        prop_assume!(!s.is_relations_empty());
        let (s, _) = s.restrict_to_adom();
        // Build a hom-equivalent sibling: disjoint union with itself.
        let double = s.disjoint_union(&s);
        let c1 = core_of(&Pointed::boolean(s)).core.structure;
        let c2 = core_of(&Pointed::boolean(double)).core.structure;
        prop_assert!(isomorphic(&c1, &c2));
    }
}

#[test]
fn pinned_conflicts_are_unsatisfiable() {
    let p = Structure::digraph(2, &[(0, 1)]);
    let c = Structure::digraph(3, &[(0, 1), (1, 2), (2, 0)]);
    // pin both endpoints to the same node: E(x,y) cannot map to a loop.
    assert!(!HomProblem::new(&p, &c).pin(0, 1).pin(1, 1).exists());
    // consistent pins work
    assert!(HomProblem::new(&p, &c).pin(0, 1).pin(1, 2).exists());
}

#[test]
fn higher_arity_mixed_vocabulary() {
    let v = Vocabulary::new(vec![("R", 3), ("E", 2)]);
    let r = v.rel("R").unwrap();
    let e = v.rel("E").unwrap();
    // Source: R(x,y,z), E(z,x). Target: R(0,1,2), E(2,0), R(1,1,1).
    let mut b = StructureBuilder::new(v.clone(), 3);
    b.add(r, &[0, 1, 2]).add(e, &[2, 0]);
    let src = b.finish();
    let mut b = StructureBuilder::new(v, 3);
    b.add(r, &[0, 1, 2]).add(e, &[2, 0]).add(r, &[1, 1, 1]);
    let tgt = b.finish();
    assert_eq!(HomProblem::new(&src, &tgt).count(None), 1);
}

#[test]
fn big_tree_into_tree_is_fast() {
    // A balanced oriented tree with 500 nodes into a path: finishes
    // instantly thanks to forward checking (no exponential blowup).
    use cqapx_graphs_free::*;
    mod cqapx_graphs_free {
        // local tiny builder to avoid a dev-dependency cycle
        pub fn comb(n: usize) -> cqapx_structures::Structure {
            let mut edges = Vec::new();
            for i in 0..n {
                if i + 1 < n {
                    edges.push((i as u32, (i + 1) as u32));
                }
            }
            // teeth
            for i in 0..n {
                edges.push((i as u32, (n + i) as u32));
            }
            cqapx_structures::Structure::digraph(2 * n, &edges)
        }
    }
    let big = comb(250);
    let path = {
        let edges: Vec<(u32, u32)> = (0..300).map(|i| (i, i + 1)).collect();
        Structure::digraph(301, &edges)
    };
    let t0 = std::time::Instant::now();
    assert!(HomProblem::new(&big, &path).exists());
    assert!(t0.elapsed().as_secs() < 5, "tree-to-path must be fast");
}
