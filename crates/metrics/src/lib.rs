//! **cqapx-metrics** — tiered, zero-dependency observability primitives.
//!
//! The serving stack needs to answer "where did the time go" without
//! slowing down the path that produces the answer. Everything here is
//! hand-rolled on atomics (no external crates, like the rest of the
//! workspace's bottom layer):
//!
//! - [`MetricsLevel`] — an ordered opt-in ladder
//!   (`None < Counters < Debug < Trace`). Instrumented code gates on
//!   [`MetricsLevel::at_least`], a single integer compare on a copied
//!   field, so `None` costs one predictable branch per call site.
//! - [`Histogram`] — an HDR-style log-bucketed latency histogram:
//!   power-of-two buckets (`value → 64 - leading_zeros`), lock-free
//!   recording on relaxed atomics, quantile estimates
//!   (`p50/p90/p99/max`) by linear interpolation inside the landing
//!   bucket. Relative quantile error is bounded by the bucket ratio
//!   (a factor of 2), which is what latency SLO math needs; exact
//!   `count`, `sum`, and `max` are kept on the side.
//! - [`Counter`] / [`Gauge`] — relaxed atomic scalars.
//! - [`HistogramFamily`] / [`CounterFamily`] — label → instrument
//!   registries behind an `RwLock` (read-mostly: the engine interns a
//!   handle per label once, then records lock-free).
//! - [`MetricsSink`] / [`EventLog`] — structured [`TraceEvent`] spans
//!   for `Trace` level, kept in a bounded ring buffer.
//!
//! # Examples
//!
//! ```
//! use cqapx_metrics::{Histogram, MetricsLevel};
//!
//! let level = MetricsLevel::Counters;
//! let h = Histogram::new();
//! if level.at_least(MetricsLevel::Counters) {
//!     h.record(1_300); // e.g. µs
//! }
//! let s = h.snapshot();
//! assert_eq!(s.count, 1);
//! assert!(s.p99 >= 1_024 && s.p99 <= 2_047);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

/// How much instrumentation the stack records.
///
/// Levels are totally ordered; each includes everything below it.
/// Instrumented code asks [`MetricsLevel::at_least`] — one integer
/// compare — so the `None` path costs a single predictable branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum MetricsLevel {
    /// Record nothing beyond what the caller computes anyway.
    None,
    /// Latency histograms, per-tier counters, cache hit rates,
    /// queue/worker occupancy. The production default.
    #[default]
    Counters,
    /// Everything above plus per-operator plan timings and solver
    /// search internals (nodes, AC-3 revisions, budget exhaustions).
    Debug,
    /// Everything above plus per-request structured event spans.
    Trace,
}

impl MetricsLevel {
    /// Whether this level records instrumentation gated at `gate`.
    #[inline(always)]
    pub fn at_least(self, gate: MetricsLevel) -> bool {
        self >= gate
    }

    /// Parses a level name: `none`/`off`/`0`, `counters`, `debug`,
    /// `trace` (case-insensitive). Unknown names parse to `None`: a
    /// typo in an env var must not silently enable overhead.
    pub fn parse(s: &str) -> MetricsLevel {
        match s.trim().to_ascii_lowercase().as_str() {
            "counters" | "1" => MetricsLevel::Counters,
            "debug" | "2" => MetricsLevel::Debug,
            "trace" | "3" => MetricsLevel::Trace,
            _ => MetricsLevel::None,
        }
    }

    /// The level selected by the `CQAPX_METRICS` environment variable,
    /// or `Counters` when unset (counters are cheap enough to be on by
    /// default; `CQAPX_METRICS=none` turns them off).
    pub fn from_env() -> MetricsLevel {
        match std::env::var("CQAPX_METRICS") {
            Ok(v) => MetricsLevel::parse(&v),
            Err(_) => MetricsLevel::Counters,
        }
    }

    /// The level's canonical name.
    pub fn name(self) -> &'static str {
        match self {
            MetricsLevel::None => "none",
            MetricsLevel::Counters => "counters",
            MetricsLevel::Debug => "debug",
            MetricsLevel::Trace => "trace",
        }
    }
}

impl std::fmt::Display for MetricsLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Number of power-of-two buckets: bucket 0 holds the value `0`,
/// bucket `b ≥ 1` holds `[2^(b-1), 2^b - 1]`, bucket 63 additionally
/// absorbs everything above.
pub const BUCKETS: usize = 64;

/// The bucket index a value lands in (`0` for `0`, else
/// `64 - leading_zeros`, clamped to the last bucket).
#[inline]
pub fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros() as usize).min(BUCKETS - 1)
}

/// The inclusive `[lo, hi]` range of values a bucket holds (the last
/// bucket's `hi` is `u64::MAX`).
pub fn bucket_bounds(bucket: usize) -> (u64, u64) {
    assert!(bucket < BUCKETS, "bucket out of range");
    match bucket {
        0 => (0, 0),
        b if b == BUCKETS - 1 => (1u64 << (b - 1), u64::MAX),
        b => (1u64 << (b - 1), (1u64 << b) - 1),
    }
}

/// A lock-free log-bucketed histogram (HDR-style, power-of-two
/// buckets). Values are dimensionless; the engine records
/// microseconds. Recording is wait-free (one relaxed `fetch_add`, one
/// relaxed `fetch_max`); quantiles are computed on demand from a
/// bucket snapshot with linear interpolation inside the landing
/// bucket, so their relative error is bounded by the bucket ratio.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// A point-in-time copy of a [`Histogram`]: exact count/sum/max plus
/// interpolated quantiles.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Exact sum of recorded values.
    pub sum: u64,
    /// Exact minimum recorded value (0 when empty).
    pub min: u64,
    /// Exact maximum recorded value (0 when empty).
    pub max: u64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 90th percentile.
    pub p90: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Exact mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one value.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in microseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros() as u64);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Clears every bucket and scalar. Not atomic with respect to
    /// concurrent recorders; callers quiesce first (the engine resets
    /// between benchmark epochs, not mid-batch).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// A point-in-time snapshot with interpolated `p50/p90/p99`.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        // Derive the totals from the bucket snapshot so quantiles are
        // internally consistent even if recorders race the scalars.
        let count: u64 = buckets.iter().sum();
        let max = self.max.load(Ordering::Relaxed);
        let min = match self.min.load(Ordering::Relaxed) {
            u64::MAX => 0,
            m => m,
        };
        // No recorded value lies outside [min, max], so clamping the
        // interpolated estimate into that range only improves it (and
        // makes single-sample quantiles exact).
        let snap = |q: f64| quantile_from_buckets(&buckets, count, q).clamp(min, max);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min,
            max,
            p50: snap(0.50),
            p90: snap(0.90),
            p99: snap(0.99),
        }
    }
}

/// Estimates the `q`-quantile (0 ≤ q ≤ 1) from a bucket-count vector:
/// walk to the bucket holding the `ceil(q·count)`-th smallest value,
/// then interpolate linearly inside its `[lo, hi]` range by the rank's
/// position among that bucket's values.
fn quantile_from_buckets(buckets: &[u64], count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut seen = 0u64;
    for (i, &n) in buckets.iter().enumerate() {
        if n == 0 {
            continue;
        }
        if seen + n >= rank {
            let (lo, hi) = bucket_bounds(i);
            let hi = hi.min(lo.saturating_mul(2)); // tame the open-ended last bucket
            let within = (rank - seen - 1) as f64 / n as f64;
            return lo + ((hi - lo) as f64 * within) as u64;
        }
        seen += n;
    }
    0
}

/// A relaxed atomic event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A relaxed atomic level gauge (signed: occupancy deltas may
/// transiently race below zero under concurrent update).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Shifts the level by `delta`.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A label → [`Histogram`] registry. Read-mostly: callers intern an
/// `Arc` handle per label once (write lock on first sight only), then
/// record through it lock-free.
#[derive(Debug, Default)]
pub struct HistogramFamily {
    members: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl HistogramFamily {
    /// An empty family.
    pub fn new() -> HistogramFamily {
        HistogramFamily::default()
    }

    /// The histogram for `label`, created on first sight.
    pub fn with(&self, label: &str) -> Arc<Histogram> {
        if let Some(h) = self.members.read().unwrap().get(label) {
            return Arc::clone(h);
        }
        let mut members = self.members.write().unwrap();
        Arc::clone(members.entry(label.to_string()).or_default())
    }

    /// Snapshots every member, in label order.
    pub fn snapshot(&self) -> BTreeMap<String, HistogramSnapshot> {
        self.members
            .read()
            .unwrap()
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect()
    }

    /// Resets every member (labels stay interned).
    pub fn reset(&self) {
        for h in self.members.read().unwrap().values() {
            h.reset();
        }
    }
}

/// A label → [`Counter`] registry (same interning discipline as
/// [`HistogramFamily`]).
#[derive(Debug, Default)]
pub struct CounterFamily {
    members: RwLock<BTreeMap<String, Arc<Counter>>>,
}

impl CounterFamily {
    /// An empty family.
    pub fn new() -> CounterFamily {
        CounterFamily::default()
    }

    /// The counter for `label`, created on first sight.
    pub fn with(&self, label: &str) -> Arc<Counter> {
        if let Some(c) = self.members.read().unwrap().get(label) {
            return Arc::clone(c);
        }
        let mut members = self.members.write().unwrap();
        Arc::clone(members.entry(label.to_string()).or_default())
    }

    /// Adds `n` to the counter for `label`.
    pub fn add(&self, label: &str, n: u64) {
        self.with(label).add(n);
    }

    /// Current values, in label order.
    pub fn snapshot(&self) -> BTreeMap<String, u64> {
        self.members
            .read()
            .unwrap()
            .iter()
            .map(|(k, c)| (k.clone(), c.get()))
            .collect()
    }

    /// Resets every member (labels stay interned).
    pub fn reset(&self) {
        for c in self.members.read().unwrap().values() {
            c.reset();
        }
    }
}

/// One structured event span: a name plus key/value fields, stamped by
/// the producer (the engine stamps wall-clock microseconds since its
/// construction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Producer-relative timestamp in microseconds.
    pub at_us: u64,
    /// Event name (e.g. `"request"`).
    pub name: &'static str,
    /// Key/value payload, in emission order.
    pub fields: Vec<(&'static str, String)>,
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:>10}µs] {}", self.at_us, self.name)?;
        for (k, v) in &self.fields {
            write!(f, " {k}={v}")?;
        }
        Ok(())
    }
}

/// Where `Trace`-level spans go. The engine owns an [`EventLog`];
/// alternative sinks (stderr, test collectors) implement this.
pub trait MetricsSink: Send + Sync {
    /// The level this sink wants; producers gate on it.
    fn level(&self) -> MetricsLevel;
    /// Accepts one event. Only called when `level() ≥ Trace`.
    fn emit(&self, event: TraceEvent);
}

/// A bounded in-memory ring of [`TraceEvent`]s: the default
/// [`MetricsSink`]. Oldest events are dropped first; `dropped` counts
/// them so a reader knows the window slid.
#[derive(Debug)]
pub struct EventLog {
    level: MetricsLevel,
    capacity: usize,
    ring: Mutex<std::collections::VecDeque<TraceEvent>>,
    dropped: Counter,
}

impl EventLog {
    /// A ring holding at most `capacity` events, emitting at `level`.
    pub fn new(level: MetricsLevel, capacity: usize) -> EventLog {
        EventLog {
            level,
            capacity: capacity.max(1),
            ring: Mutex::new(std::collections::VecDeque::new()),
            dropped: Counter::new(),
        }
    }

    /// Takes every buffered event, oldest first.
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.ring.lock().unwrap().drain(..).collect()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted to make room since construction.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }
}

impl MetricsSink for EventLog {
    fn level(&self) -> MetricsLevel {
        self.level
    }

    fn emit(&self, event: TraceEvent) {
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.inc();
        }
        ring.push_back(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered_and_parse() {
        assert!(MetricsLevel::Trace.at_least(MetricsLevel::Debug));
        assert!(MetricsLevel::Counters.at_least(MetricsLevel::Counters));
        assert!(!MetricsLevel::None.at_least(MetricsLevel::Counters));
        assert_eq!(MetricsLevel::parse("TRACE"), MetricsLevel::Trace);
        assert_eq!(MetricsLevel::parse(" debug "), MetricsLevel::Debug);
        assert_eq!(MetricsLevel::parse("counters"), MetricsLevel::Counters);
        assert_eq!(MetricsLevel::parse("off"), MetricsLevel::None);
        assert_eq!(MetricsLevel::parse("bogus"), MetricsLevel::None);
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        // Every bucket's bounds round-trip through bucket_of.
        for b in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(b);
            assert_eq!(bucket_of(lo), b, "lo of bucket {b}");
            if b < BUCKETS - 1 {
                assert_eq!(bucket_of(hi), b, "hi of bucket {b}");
                assert_eq!(bucket_of(hi + 1), b + 1, "hi+1 of bucket {b}");
            }
        }
    }

    #[test]
    fn histogram_scalars_are_exact() {
        let h = Histogram::new();
        for v in [0, 1, 5, 100, 100, 7_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 7_206);
        assert_eq!(s.max, 7_000);
        h.reset();
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn quantiles_land_in_the_right_bucket() {
        let h = Histogram::new();
        // 89 fast (≈100µs bucket [64,127]), 10 medium ([1024,2047]),
        // 1 slow outlier.
        for _ in 0..89 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(1_500);
        }
        h.record(50_000);
        let s = h.snapshot();
        assert!(s.p50 >= 64 && s.p50 <= 127, "p50 = {}", s.p50);
        assert!(s.p90 >= 1_024 && s.p90 <= 2_047, "p90 = {}", s.p90);
        assert!(s.p99 >= 1_024 && s.p99 <= 2_047, "p99 = {}", s.p99);
        assert_eq!(s.max, 50_000);
    }

    #[test]
    fn quantiles_clamp_to_exact_max() {
        let h = Histogram::new();
        h.record(1_000);
        let s = h.snapshot();
        // A single sample: every quantile is that sample, not the
        // bucket's upper bound.
        assert_eq!(s.p50, 1_000);
        assert_eq!(s.p99, 1_000);
    }

    #[test]
    fn quantile_interpolation_is_monotone() {
        let h = Histogram::new();
        for v in 1..=1_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);
        // p50 of 1..=1000 is ~500; bucket [256,511] or [512,1023] is
        // acceptable at factor-2 resolution.
        assert!(s.p50 >= 256 && s.p50 <= 1_023, "p50 = {}", s.p50);
        assert!(s.p99 >= 512, "p99 = {}", s.p99);
    }

    #[test]
    fn empty_histogram_snapshot_is_zero() {
        assert_eq!(Histogram::new().snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn families_intern_and_reset() {
        let f = HistogramFamily::new();
        f.with("acyclic").record(10);
        f.with("acyclic").record(20);
        f.with("naive").record(30);
        let snap = f.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap["acyclic"].count, 2);
        assert_eq!(snap["naive"].count, 1);
        f.reset();
        assert_eq!(f.snapshot()["acyclic"].count, 0);

        let c = CounterFamily::new();
        c.add("hit", 3);
        c.with("hit").inc();
        assert_eq!(c.snapshot()["hit"], 4);
        c.reset();
        assert_eq!(c.snapshot()["hit"], 0);
    }

    #[test]
    fn event_log_bounds_and_counts_drops() {
        let log = EventLog::new(MetricsLevel::Trace, 2);
        for i in 0..5u64 {
            log.emit(TraceEvent {
                at_us: i,
                name: "request",
                fields: vec![("i", i.to_string())],
            });
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
        let events = log.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].at_us, 3);
        assert_eq!(events[1].at_us, 4);
        assert!(log.is_empty());
        assert!(events[1].to_string().contains("request"));
    }

    #[test]
    fn counters_and_gauges() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(3);
        g.add(-1);
        assert_eq!(g.get(), 2);
    }
}
