//! Strong treewidth approximations (Section 5.3).
//!
//! For a Boolean query over a single `m`-ary relation, a **strong
//! treewidth approximation** is a `TW(1)`-approximation of a query of the
//! *maximum possible* treewidth (`#variables − 1`, i.e. `G(Q)` complete).
//! Over graphs (`m = 2`) the notion trivializes (only `Q^triv` — the
//! tableau is a clique, non-bipartite for `n > 2`), but for `m > 2` there
//! is room: Proposition 5.13 turns *any* nontrivial 2-variable "potential"
//! approximation `Q'` into a full-treewidth `Q` it approximates;
//! Propositions 5.14/5.15 exhibit strong approximations with as many joins
//! as the original.

use cqapx_cq::{Atom, ConjunctiveQuery, VarId};
use cqapx_structures::Vocabulary;

/// A Boolean query over one `m`-ary relation is a **potential strong
/// treewidth approximation** when its graph has at most 2 nodes, i.e. it
/// uses at most 2 variables (any 3 variables in a maximal-treewidth query
/// would force a triangle in `G(Q')`).
pub fn is_potential_strong_approximation(q: &ConjunctiveQuery) -> bool {
    q.is_boolean() && q.vocabulary().len() == 1 && q.var_count() <= 2
}

/// `true` when `Q` has the maximum possible treewidth for its variable
/// count (its graph is complete: treewidth `n − 1`).
pub fn has_maximum_treewidth(q: &ConjunctiveQuery) -> bool {
    let n = q.var_count();
    n >= 2 && cqapx_cq::treewidth_of_query(q) == n - 1
}

/// Proposition 5.13: given a nontrivial potential strong treewidth
/// approximation `Q'` (2 variables, one `m`-ary relation, `m > 2`) and a
/// target variable count `n > m`, constructs a query `Q` with `n`
/// variables, complete graph `G(Q) = K_n`, such that `Q'` is a strong
/// treewidth approximation of `Q`. The atom count is bounded by
/// `k + n(n−1)/2 − 1` for `k` atoms in `Q'`.
///
/// # Panics
///
/// Panics when `Q'` is not a 2-variable query over a single relation of
/// arity > 2, when `n ≤ m`, or when `Q'` is trivial (some atom uses a
/// single variable only, or no atom repeats a variable).
pub fn prop_5_13_construct(q_prime: &ConjunctiveQuery, n: usize) -> ConjunctiveQuery {
    assert!(
        is_potential_strong_approximation(q_prime),
        "Q' must be a potential strong treewidth approximation"
    );
    let vocab: &Vocabulary = q_prime.vocabulary();
    let rel = vocab.rel_ids().next().expect("single relation");
    let m = vocab.arity(rel);
    assert!(m > 2, "the construction needs arity > 2");
    assert!(n > m, "need n > m");
    assert_eq!(q_prime.var_count(), 2, "Q' must use exactly two variables");

    // Identify variables x (0) and y (1); in every atom one variable
    // occurs at least twice. Find an atom where some variable occurs
    // exactly twice.
    let occurrences = |atom: &Atom, v: VarId| atom.args.iter().filter(|&&a| a == v).count();
    let twice_atom = q_prime.atoms().iter().enumerate().find_map(|(i, a)| {
        for v in [0u32, 1u32] {
            let occ = occurrences(a, v);
            if occ == 2 && occ < a.args.len() {
                return Some((i, v));
            }
        }
        None
    });

    let mut atoms: Vec<Atom> = Vec::new();
    // Q has variables x1..xn = ids 0..n-1 (x1 = id 0).
    let var_names: Vec<String> = (1..=n).map(|i| format!("x{i}")).collect();

    match twice_atom {
        Some((ai, y)) => {
            let atom = &q_prime.atoms()[ai];
            let y_positions: Vec<usize> = atom
                .args
                .iter()
                .enumerate()
                .filter(|&(_, &a)| a == y)
                .map(|(p, _)| p)
                .collect();
            // Atoms R(x1,…,x1, xi, xj) for 2 ≤ i ≤ j ≤ n at the two
            // y-positions.
            for i in 2..=n {
                for j in i..=n {
                    // x -> x1 everywhere, then place xi, xj at the two
                    // y-positions.
                    let mut args = vec![0 as VarId; m];
                    args[y_positions[0]] = (i - 1) as VarId;
                    args[y_positions[1]] = (j - 1) as VarId;
                    atoms.push(Atom { rel, args });
                }
            }
            // Every other atom: x -> x1, the r occurrences of y ->
            // x2, …, x_{r+1} in order.
            for (bi, b) in q_prime.atoms().iter().enumerate() {
                if bi == ai {
                    continue;
                }
                let mut args = vec![0 as VarId; m];
                let mut next = 1;
                for (p, &a) in b.args.iter().enumerate() {
                    if a == y {
                        args[p] = next as VarId;
                        next += 1;
                    } else {
                        args[p] = 0;
                    }
                }
                assert!(next <= n, "enough variables for the y occurrences");
                atoms.push(Atom { rel, args });
            }
        }
        None => {
            // Minimum repetition count p ≥ 3 of the minority variable.
            let (ai, y, p) = q_prime
                .atoms()
                .iter()
                .enumerate()
                .flat_map(|(i, a)| {
                    [0u32, 1u32].into_iter().filter_map(move |v| {
                        let occ = a.args.iter().filter(|&&x| x == v).count();
                        if occ > 0 && occ < a.args.len() {
                            Some((i, v, occ))
                        } else {
                            None
                        }
                    })
                })
                .min_by_key(|&(_, _, occ)| occ)
                .expect("nontrivial Q' has a mixed atom");
            let atom = &q_prime.atoms()[ai];
            let y_positions: Vec<usize> = atom
                .args
                .iter()
                .enumerate()
                .filter(|&(_, &a)| a == y)
                .map(|(pos, _)| pos)
                .collect();
            // Atoms R(x1,…,x1, x2,…,x_{p−1}, xi, xj) for p ≤ i < j ≤ n:
            // the first p−2 y-positions get x2.., the last two get xi, xj.
            for i in p..=n {
                for j in (i + 1)..=n {
                    let mut args = vec![0 as VarId; m];
                    for (idx, &pos) in y_positions.iter().enumerate() {
                        if idx < p - 2 {
                            args[pos] = (idx + 1) as VarId;
                        }
                    }
                    args[y_positions[p - 2]] = (i - 1) as VarId;
                    args[y_positions[p - 1]] = (j - 1) as VarId;
                    atoms.push(Atom { rel, args });
                }
            }
            // Atoms R(x1,…,x1, xi,…,xi) for 2 ≤ i ≤ n.
            for i in 2..=n {
                let mut args = vec![0 as VarId; m];
                for &pos in &y_positions {
                    args[pos] = (i - 1) as VarId;
                }
                atoms.push(Atom { rel, args });
            }
            // Every other atom as before.
            for (bi, b) in q_prime.atoms().iter().enumerate() {
                if bi == ai {
                    continue;
                }
                let mut args = vec![0 as VarId; m];
                let mut next = 1;
                for (pos, &a) in b.args.iter().enumerate() {
                    if a == y {
                        args[pos] = next as VarId;
                        next += 1;
                    } else {
                        args[pos] = 0;
                    }
                }
                atoms.push(Atom { rel, args });
            }
        }
    }

    ConjunctiveQuery::new(vocab.clone(), var_names, vec![], atoms)
}

/// Proposition 5.14's example pair `(Q, Q')` for arity `m = k ≥ 3`:
/// minimized queries with the **same number of joins** where `Q'` is a
/// strong treewidth approximation of `Q`.
pub fn prop_5_14_queries(k: usize) -> (ConjunctiveQuery, ConjunctiveQuery) {
    assert!(k >= 3, "Proposition 5.14 needs k ≥ 3");
    let vocab = Vocabulary::single(k);
    let rel = vocab.rel("R").expect("single relation R");
    // Q over variables x1..x_{k+1} (ids 0..k).
    let var_names: Vec<String> = (1..=k + 1).map(|i| format!("x{i}")).collect();
    let mut atoms = Vec::new();
    // R(x1, x2, x3, x4, …, xk)
    let mut a1: Vec<VarId> = vec![0, 1, 2];
    a1.extend((3..k).map(|i| i as VarId));
    atoms.push(Atom { rel, args: a1 });
    // R(x2, x1, x_{k+1}, x4, …, xk)
    let mut a2: Vec<VarId> = vec![1, 0, k as VarId];
    a2.extend((3..k).map(|i| i as VarId));
    atoms.push(Atom { rel, args: a2 });
    // R(x3, x_{k+1}, x1, x4, …, xk)
    let mut a3: Vec<VarId> = vec![2, k as VarId, 0];
    a3.extend((3..k).map(|i| i as VarId));
    atoms.push(Atom { rel, args: a3 });
    // R(xj, …, xj, x1, xj, …, xj) with x1 in position j, for 4 ≤ j ≤ k.
    for j in 4..=k {
        let mut args = vec![(j - 1) as VarId; k];
        args[j - 1] = 0;
        atoms.push(Atom { rel, args });
    }
    let q = ConjunctiveQuery::new(vocab.clone(), var_names, vec![], atoms);

    // Q': k atoms R(y,…,y,x,y,…,y), x in a different position each time.
    let mut atoms = Vec::new();
    for pos in 0..k {
        let mut args = vec![1 as VarId; k];
        args[pos] = 0;
        atoms.push(Atom { rel, args });
    }
    let q_prime = ConjunctiveQuery::new(vocab, vec!["x".into(), "y".into()], vec![], atoms);
    (q, q_prime)
}

/// Proposition 5.15's example pair over a ternary relation: `Q` is an
/// almost-triangle of maximum treewidth 3 and `Q'` a strong treewidth
/// approximation with the same number of joins.
pub fn prop_5_15_queries() -> (ConjunctiveQuery, ConjunctiveQuery) {
    let q = cqapx_cq::parse_cq("Q() :- R(x1,x2,x3), R(x2,x1,x4), R(x4,x3,x1)").unwrap();
    let qp = cqapx_cq::parse_cq("Q() :- R(x,y,y), R(y,x,y), R(y,y,x)").unwrap();
    (q, qp)
}

/// An instance of a ternary relation is an **almost-triangle** when some
/// element belongs to every tuple and removing it from each tuple leaves a
/// (directed) triangle.
pub fn is_almost_triangle(tuples: &[[u32; 3]]) -> bool {
    if tuples.len() != 3 {
        return false;
    }
    // candidate common elements
    let mut common: Vec<u32> = tuples[0].to_vec();
    for t in tuples {
        common.retain(|c| t.contains(c));
    }
    'cands: for &c in &common {
        // remove one occurrence of c from each tuple, keep order
        let mut pairs = Vec::new();
        for t in tuples {
            let pos = t.iter().position(|&x| x == c).expect("common element");
            let rest: Vec<u32> = t
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != pos)
                .map(|(_, &x)| x)
                .collect();
            pairs.push((rest[0].min(rest[1]), rest[0].max(rest[1])));
        }
        // the three residue pairs must form a triangle (as a graph) on
        // three distinct elements
        let mut elems: Vec<u32> = pairs.iter().flat_map(|&(a, b)| [a, b]).collect();
        elems.sort_unstable();
        elems.dedup();
        if elems.len() != 3 {
            continue 'cands;
        }
        if pairs.iter().any(|&(a, b)| a == b) {
            continue 'cands;
        }
        let mut distinct = pairs.clone();
        distinct.sort_unstable();
        distinct.dedup();
        if distinct.len() == 3 {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::{all_approximations, ApproxOptions};
    use crate::classes::TwK;
    use cqapx_cq::{contained_in, equivalent, is_minimized, parse_cq, treewidth_of_query};

    #[test]
    fn prop_515_pair_checks() {
        let (q, qp) = prop_5_15_queries();
        assert!(has_maximum_treewidth(&q));
        assert_eq!(treewidth_of_query(&q), 3);
        assert!(is_potential_strong_approximation(&qp));
        assert_eq!(q.join_count(), qp.join_count());
        assert!(is_minimized(&q), "Q is minimized");
        assert!(is_minimized(&qp), "Q' is minimized");
        assert!(contained_in(&qp, &q));
        // The almost-triangle shape of T_Q.
        assert!(is_almost_triangle(&[[0, 1, 2], [1, 0, 3], [3, 2, 0]]));
        // Q' really is a TW(1)-approximation of Q.
        let rep = all_approximations(&q, &TwK(1), &ApproxOptions::default());
        assert!(
            rep.approximations.iter().any(|a| equivalent(a, &qp)),
            "Q' among the TW(1)-approximations: {:?}",
            rep.approximations
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn prop_514_pair_checks() {
        for k in [3usize, 4] {
            let (q, qp) = prop_5_14_queries(k);
            assert_eq!(q.join_count(), qp.join_count(), "k={k}");
            assert!(has_maximum_treewidth(&q), "k={k}");
            assert!(is_potential_strong_approximation(&qp));
            assert!(contained_in(&qp, &q), "Q' ⊆ Q for k={k}");
            assert!(is_minimized(&qp), "Q' minimized for k={k}");
        }
    }

    #[test]
    fn prop_513_construction() {
        // Q'() :- R(x,y,y), R(y,x,y), R(y,y,x) has an atom with exactly two
        // occurrences of y? R(x,y,y): y occurs twice. Use it with n = 4, 5.
        let (_, qp) = prop_5_15_queries();
        for n in [4usize, 5] {
            let q = prop_5_13_construct(&qp, n);
            assert_eq!(q.var_count(), n);
            assert!(has_maximum_treewidth(&q), "G(Q) = K{n}");
            assert!(contained_in(&qp, &q), "Q' ⊆ Q for n={n}");
            let bound = (qp.atom_count()) + n * (n - 1) / 2 - 1;
            assert!(q.atom_count() <= bound, "atom bound for n={n}");
        }
    }

    #[test]
    fn prop_513_approximation_for_small_n() {
        // For n = 4 the construction's output is small enough to verify
        // approximation-hood exhaustively.
        let (_, qp) = prop_5_15_queries();
        let q = prop_5_13_construct(&qp, 4);
        let rep = all_approximations(&q, &TwK(1), &ApproxOptions::default());
        assert!(
            rep.approximations.iter().any(|a| equivalent(a, &qp)),
            "Q' must be a TW(1)-approximation of the generated Q; got {:?}",
            rep.approximations
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn graph_case_trivializes() {
        // Over graphs, a max-treewidth query with ≥ 3 vars has K_n tableau:
        // not bipartite, so only the trivial approximation (§5.3 remark).
        let q = parse_cq("Q() :- E(x,y), E(y,x), E(y,z), E(z,y), E(x,z), E(z,x)").unwrap();
        assert!(has_maximum_treewidth(&q));
        let rep = all_approximations(&q, &TwK(1), &ApproxOptions::default());
        assert_eq!(rep.approximations.len(), 1);
        assert_eq!(rep.approximations[0].atom_count(), 1);
    }

    #[test]
    fn almost_triangle_negative_cases() {
        // no common element
        assert!(!is_almost_triangle(&[[0, 1, 2], [1, 2, 3], [4, 5, 0]]));
        // common element, but the residue is a path, not a triangle
        assert!(!is_almost_triangle(&[[4, 1, 2], [4, 2, 3], [4, 3, 5]]));
        // repeated residue pair
        assert!(!is_almost_triangle(&[[4, 1, 2], [4, 2, 1], [4, 3, 1]]));
        // wrong tuple count
        assert!(!is_almost_triangle(&[[4, 1, 2], [4, 2, 3]]));
    }

    #[test]
    fn almost_triangle_positive_case() {
        // The paper's example: (4,1,2), (4,2,3), (4,3,1).
        assert!(is_almost_triangle(&[[4, 1, 2], [4, 2, 3], [4, 3, 1]]));
    }
}
