//! Structure theorems for queries over graphs (Section 5).
//!
//! * **Theorem 5.1** (Boolean trichotomy): classify `T_Q` as not
//!   bipartite / bipartite-unbalanced / bipartite-balanced; the acyclic
//!   approximations are resp. only `Q^triv`, only `Q^triv₂`, or all
//!   nontrivial and `K⃗₂`-free. Both tests are polynomial-time.
//! * **Corollary 5.3**: for cyclic Boolean graph CQs, every minimized
//!   acyclic approximation has strictly fewer joins.
//! * **Theorem 5.8** (non-Boolean dichotomy): approximations have a loop
//!   atom iff `T_Q` is not bipartite.
//! * **Theorem 5.10 / Corollary 5.11**: `TW(k)`-approximations have a loop
//!   iff `T_Q` is not `(k+1)`-colorable; a Boolean graph CQ has a
//!   nontrivial `TW(k)`-approximation iff its tableau is `(k+1)`-colorable.
//! * **Proposition 5.12**: testing whether `Q^triv_{k+1}` is a
//!   `TW(k)`-approximation is NP-hard for `k ≥ 2` (the reduction
//!   `G ↦ G^↔ + K⃗_{k+1}` is implemented in `cqapx-gadgets`).

use cqapx_cq::{tableau_of, ConjunctiveQuery};
use cqapx_graphs::{balance, coloring, Digraph};

/// The three cases of Theorem 5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BooleanTrichotomy {
    /// `T_Q` is not bipartite: the only acyclic approximation is
    /// `Q^triv() :- E(x,x)`.
    NotBipartite,
    /// `T_Q` is bipartite but not balanced: the only acyclic approximation
    /// is `Q^triv₂() :- E(x,y), E(y,x)`.
    BipartiteUnbalanced,
    /// `T_Q` is bipartite and balanced: all acyclic approximations are
    /// nontrivial and contain no `E(x,y), E(y,x)` pair.
    BipartiteBalanced,
}

/// Asserts that the query is Boolean and over the graphs vocabulary.
fn tableau_digraph(q: &ConjunctiveQuery) -> Digraph {
    assert_eq!(
        q.vocabulary(),
        &cqapx_structures::Vocabulary::graphs(),
        "theorem applies to queries over graphs"
    );
    Digraph::from_structure(&tableau_of(q).structure)
}

/// Classifies a Boolean graph CQ per Theorem 5.1 (polynomial time).
///
/// # Examples
///
/// ```
/// use cqapx_core::{classify_boolean_graph_query, BooleanTrichotomy};
/// use cqapx_cq::parse_cq;
///
/// let tri = parse_cq("Q() :- E(x,y), E(y,z), E(z,x)").unwrap();
/// assert_eq!(
///     classify_boolean_graph_query(&tri),
///     BooleanTrichotomy::NotBipartite
/// );
///
/// let c4 = parse_cq("Q() :- E(a,b), E(b,c), E(c,d), E(d,a)").unwrap();
/// assert_eq!(
///     classify_boolean_graph_query(&c4),
///     BooleanTrichotomy::BipartiteUnbalanced
/// );
/// ```
pub fn classify_boolean_graph_query(q: &ConjunctiveQuery) -> BooleanTrichotomy {
    assert!(q.is_boolean(), "Theorem 5.1 is about Boolean queries");
    let g = tableau_digraph(q);
    if !coloring::is_bipartite(&g) {
        BooleanTrichotomy::NotBipartite
    } else if !balance::is_balanced(&g) {
        BooleanTrichotomy::BipartiteUnbalanced
    } else {
        BooleanTrichotomy::BipartiteBalanced
    }
}

/// Theorem 5.8, decision form: do the acyclic approximations of the
/// (possibly non-Boolean) graph CQ contain a loop atom `E(x,x)`?
///
/// `true` iff `T_Q` is not bipartite.
pub fn approximations_need_loop(q: &ConjunctiveQuery) -> bool {
    !coloring::is_bipartite(&tableau_digraph(q))
}

/// Theorem 5.10, decision form: do the `TW(k)`-approximations of the graph
/// CQ contain a loop atom? `true` iff `T_Q` is not `(k+1)`-colorable.
///
/// Note the complexity gap the paper highlights: for `k = 1` this is
/// bipartiteness (polynomial), for `k ≥ 2` it is `(k+1)`-colorability
/// (NP-complete).
pub fn twk_approximations_need_loop(q: &ConjunctiveQuery, k: usize) -> bool {
    !coloring::is_k_colorable(&tableau_digraph(q), k + 1)
}

/// Corollary 5.11: a Boolean graph CQ has a nontrivial
/// `TW(k)`-approximation iff its tableau is `(k+1)`-colorable.
pub fn has_nontrivial_twk_approximation(q: &ConjunctiveQuery, k: usize) -> bool {
    assert!(q.is_boolean(), "Corollary 5.11 is about Boolean queries");
    coloring::is_k_colorable(&tableau_digraph(q), k + 1)
}

/// `true` when the graph CQ is cyclic (its tableau, viewed as a digraph,
/// has an oriented cycle of length ≥ 3 — equivalently `Q ∉ TW(1)` once
/// loops and double edges are set aside per the query-hypergraph reading).
pub fn is_cyclic_graph_query(q: &ConjunctiveQuery) -> bool {
    !cqapx_cq::classes::is_acyclic_query(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::{all_approximations, ApproxOptions};
    use crate::classes::TwK;
    use cqapx_cq::{equivalent, parse_cq};

    #[test]
    fn trichotomy_classification() {
        let balanced = parse_cq("Q() :- E(x,y), E(z,y), E(z,u)").unwrap();
        assert_eq!(
            classify_boolean_graph_query(&balanced),
            BooleanTrichotomy::BipartiteBalanced
        );
        let c5 = parse_cq("Q() :- E(a,b), E(b,c), E(c,d), E(d,e), E(e,a)").unwrap();
        assert_eq!(
            classify_boolean_graph_query(&c5),
            BooleanTrichotomy::NotBipartite
        );
        let loops = parse_cq("Q() :- E(x,x), E(x,y)").unwrap();
        assert_eq!(
            classify_boolean_graph_query(&loops),
            BooleanTrichotomy::NotBipartite
        );
    }

    #[test]
    fn trichotomy_predicts_approximations() {
        // One query per class; verify the predicted shape of acyclic
        // approximations via the exact algorithm.
        let opts = ApproxOptions::default();

        // Not bipartite → trivial loop only.
        let tri = parse_cq("Q() :- E(x,y), E(y,z), E(z,x)").unwrap();
        let rep = all_approximations(&tri, &TwK(1), &opts);
        assert_eq!(rep.approximations.len(), 1);
        assert!(equivalent(
            &rep.approximations[0],
            &crate::trivial::trivial_query(tri.vocabulary(), 0)
        ));

        // Bipartite unbalanced → K2^<-> only.
        let c4 = parse_cq("Q() :- E(a,b), E(b,c), E(c,d), E(d,a)").unwrap();
        let rep = all_approximations(&c4, &TwK(1), &opts);
        assert_eq!(rep.approximations.len(), 1);
        assert!(equivalent(
            &rep.approximations[0],
            &crate::trivial::trivial_bipartite_query()
        ));

        // Bipartite balanced → nontrivial, no K2^<-> subgoals.
        let q2 = parse_cq(
            "Q() :- E(x,y), E(y,z), E(z,u), E(x1,y1), E(y1,z1), E(z1,u1), E(x,z1), E(y,u1)",
        )
        .unwrap();
        assert_eq!(
            classify_boolean_graph_query(&q2),
            BooleanTrichotomy::BipartiteBalanced
        );
        let rep = all_approximations(&q2, &TwK(1), &opts);
        for a in &rep.approximations {
            // no loop atom, no symmetric pair
            for atom in a.atoms() {
                assert_ne!(atom.args[0], atom.args[1], "no loops in {a}");
            }
            let t = tableau_of(a);
            let g = Digraph::from_structure(&t.structure);
            for (u, v) in g.edges() {
                assert!(!g.has_edge(v, u), "no K2 in {a}");
            }
        }
    }

    #[test]
    fn corollary_53_fewer_joins() {
        // Every minimized acyclic approximation of a cyclic Boolean graph
        // CQ has strictly fewer joins.
        for qs in [
            "Q() :- E(x,y), E(y,z), E(z,x)",
            "Q() :- E(a,b), E(b,c), E(c,d), E(d,a)",
            "Q() :- E(x,y), E(y,z), E(z,u), E(x1,y1), E(y1,z1), E(z1,u1), E(x,z1), E(y,u1)",
        ] {
            let q = parse_cq(qs).unwrap();
            assert!(is_cyclic_graph_query(&q));
            let rep = all_approximations(&q, &TwK(1), &ApproxOptions::default());
            for a in &rep.approximations {
                assert!(
                    a.join_count() < q.join_count(),
                    "{a} must have fewer joins than {q}"
                );
            }
        }
    }

    #[test]
    fn theorem_58_dichotomy() {
        // Non-bipartite with free vars: loop required.
        let q = parse_cq("Q(x, y) :- E(x,y), E(y,z), E(z,x)").unwrap();
        assert!(approximations_need_loop(&q));
        let rep = all_approximations(&q, &TwK(1), &ApproxOptions::default());
        for a in &rep.approximations {
            assert!(
                a.atoms().iter().any(|at| at.args[0] == at.args[1]),
                "loop atom required in {a}"
            );
        }
        // Bipartite: some approximation avoids loops.
        let q = parse_cq("Q(x) :- E(x,y), E(z,y), E(z,u), E(x,u)").unwrap();
        assert!(!approximations_need_loop(&q));
        let rep = all_approximations(&q, &TwK(1), &ApproxOptions::default());
        assert!(rep
            .approximations
            .iter()
            .any(|a| a.atoms().iter().all(|at| at.args[0] != at.args[1])));
    }

    #[test]
    fn corollary_511_characterization() {
        // Wheel with odd rim: chromatic number 4 → no nontrivial TW(2)
        // approximation; but 4-colorable → nontrivial TW(3) approximation.
        use cqapx_graphs::generators::wheel;
        use cqapx_structures::Pointed;
        let q = cqapx_cq::query_from_tableau(&Pointed::boolean(wheel(5).to_structure()));
        assert!(!has_nontrivial_twk_approximation(&q, 2));
        assert!(has_nontrivial_twk_approximation(&q, 3));
        assert!(twk_approximations_need_loop(&q, 2));
        assert!(!twk_approximations_need_loop(&q, 3));
    }
}
